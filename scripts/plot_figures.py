#!/usr/bin/env python3
"""Turn the bench binaries' CSV blocks into the paper's figures.

Usage:
    build/bench/bench_fig4_fixed_ranks > fig4.txt
    scripts/plot_figures.py fig4.txt -o figures/

Each bench prints one or more blocks of the form

    == CSV <name> ==
    header,...
    row,...

This script extracts every block, writes it as figures/<name>.csv, and (if
matplotlib is available) renders a line chart per block mirroring the
paper's combined energy/duration/power charts. Without matplotlib it still
produces the CSV files, so the data pipeline works on a bare container.
"""

import argparse
import csv
import io
import pathlib
import re
import sys


def extract_blocks(text: str):
    """Yields (name, list_of_rows) for every '== CSV name ==' block."""
    pattern = re.compile(r"^== CSV (\S+) ==$", re.MULTILINE)
    matches = list(pattern.finditer(text))
    for index, match in enumerate(matches):
        start = match.end() + 1
        end = matches[index + 1].start() if index + 1 < len(matches) else len(text)
        body = text[start:end]
        rows = []
        for line in body.splitlines():
            line = line.strip()
            if not line:
                break  # blocks end at the first blank line
            if line.startswith(("==", "+", "|", "#", "--")):
                break
            rows.append(line)
        if len(rows) >= 2:
            parsed = list(csv.reader(io.StringIO("\n".join(rows))))
            yield match.group(1), parsed


def numeric(value: str):
    try:
        return float(value)
    except ValueError:
        return None


def plot_block(name, rows, outdir):
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False

    header, data = rows[0], rows[1:]
    # Choose an x axis: prefer 'n', then 'ranks'; group lines by the
    # remaining categorical columns (algorithm, layout, ...).
    x_candidates = [c for c in ("n", "ranks", "cap_w") if c in header]
    y_candidates = [
        c
        for c in ("total_j", "duration_s", "power_w", "energy_j",
                  "predicted_j", "executed_j")
        if c in header
    ]
    if not x_candidates or not y_candidates:
        return False
    x_col = header.index(x_candidates[0])
    cat_cols = [
        i
        for i, c in enumerate(header)
        if numeric(data[0][i]) is None and i != x_col
    ]

    for y_name in y_candidates:
        y_col = header.index(y_name)
        series = {}
        for row in data:
            key = ", ".join(row[i] for i in cat_cols) or "all"
            x = numeric(row[x_col])
            y = numeric(row[y_col])
            if x is None or y is None:
                continue
            series.setdefault(key, []).append((x, y))
        if not series:
            continue
        fig, ax = plt.subplots(figsize=(6.5, 4.0))
        for key, points in sorted(series.items()):
            points.sort()
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    marker="o", label=key)
        ax.set_xlabel(header[x_col])
        ax.set_ylabel(y_name)
        ax.set_title(f"{name}: {y_name} vs {header[x_col]}")
        if len(series) > 1:
            ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        path = outdir / f"{name}_{y_name}.png"
        fig.savefig(path, dpi=130)
        plt.close(fig)
        print(f"  wrote {path}")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+",
                        help="bench output files (or '-' for stdin)")
    parser.add_argument("-o", "--outdir", default="figures",
                        help="output directory (default: figures/)")
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    found = 0
    for source in args.inputs:
        text = sys.stdin.read() if source == "-" else pathlib.Path(
            source).read_text()
        for name, rows in extract_blocks(text):
            found += 1
            csv_path = outdir / f"{name}.csv"
            with open(csv_path, "w", newline="") as handle:
                csv.writer(handle).writerows(rows)
            print(f"wrote {csv_path} ({len(rows) - 1} rows)")
            if not plot_block(name, rows, outdir):
                print("  (matplotlib unavailable or block not plottable; "
                      "CSV only)")
    if found == 0:
        print("no '== CSV <name> ==' blocks found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
