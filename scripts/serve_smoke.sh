#!/usr/bin/env bash
# Serve-daemon crash-safety smoke (docs/serve.md): start powerlin_serve,
# push a mixed-tenant batch through it, SIGKILL the daemon mid-run, restart
# it over the same store, run the identical batch to completion, and prove
# the kill-and-restart guarantee — every job that completed before the kill
# is served from the journal (cached, not re-run) and the journal holds
# exactly one record per job: no lost and no duplicated completed jobs.
#
# Usage: scripts/serve_smoke.sh [powerlin_serve] [powerlin_report] [workdir]
set -euo pipefail

SERVE="${1:-build/tools/powerlin_serve}"
REPORT="${2:-build/tools/powerlin_report}"
DIR="${3:-$(mktemp -d)}"
SOCK="$DIR/serve.sock"
STORE="$DIR/store"
JOBS=120

wait_for_socket() {
  for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  echo "error: $SOCK never appeared" >&2
  exit 1
}

# One tiny dependency-free client: newline-delimited JSON over AF_UNIX is
# the whole wire protocol, so a stock python3 is enough to drive the daemon.
client() {
  python3 - "$SOCK" "$1" "$JOBS" <<'EOF'
import json, socket, sys, time

sock_path, mode, jobs = sys.argv[1], sys.argv[2], int(sys.argv[3])
TENANTS = ["interactive", "batch", "background"]


def spec(i):
    return {"tier": "numeric", "machine": "mini:8x4",
            "algorithm": "scalapack", "n": 192, "ranks": 4, "nb": 32,
            "seed": 1 + i}


def submit(i, wait):
    return (json.dumps({"op": "submit", "tenant": TENANTS[i % 3],
                        "wait": wait, "spec": spec(i)}) + "\n").encode()


s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)
buf = b""


def read_lines(count):
    global buf
    lines = []
    while len(lines) < count:
        while b"\n" in buf and len(lines) < count:
            line, buf = buf.split(b"\n", 1)
            lines.append(json.loads(line))
        if len(lines) < count:
            chunk = s.recv(1 << 16)
            if not chunk:
                raise SystemExit("error: daemon closed the connection early")
            buf += chunk
    return lines


if mode == "fire":
    # Fire-and-forget the whole batch, then block until a prefix of it has
    # completed (= been journaled) so the SIGKILL provably lands mid-run.
    for i in range(jobs):
        s.sendall(submit(i, False))
    queued = read_lines(jobs)
    assert all(r["ok"] for r in queued), "admission rejected a submit"
    deadline = time.time() + 60
    while time.time() < deadline:
        s.sendall(b'{"op":"stats"}\n')
        completed = read_lines(1)[0]["stats"]["scheduler"]["completed"]
        if completed >= 10:
            print(f"fire: {jobs} submitted, {int(completed)} completed "
                  "-> ready for SIGKILL")
            break
        time.sleep(0.02)
    else:
        raise SystemExit("error: no completions before the kill window")
elif mode == "finish":
    # Identical batch, pipelined with wait=true: previously-journaled jobs
    # answer instantly from the store, the rest execute exactly once.
    for i in range(jobs):
        s.sendall(submit(i, True))
    outcomes = read_lines(jobs)
    cached = sum(1 for r in outcomes if r.get("status") == "cached")
    done = sum(1 for r in outcomes if r.get("status") == "done")
    ok = sum(1 for r in outcomes if r.get("ok"))
    print(f"finish: ok={ok}/{jobs} cached={cached} executed={done}")
    assert ok == jobs, "a job failed after restart"
    assert cached + done == jobs, "unexpected submit status"
    assert cached > 0, "no pre-kill completion survived the restart"
    s.sendall(b'{"op":"drain"}\n')
    read_lines(1)
EOF
}

echo "== phase 1: start daemon, submit $JOBS jobs, SIGKILL mid-run"
"$SERVE" --socket="$SOCK" --store="$STORE" --workers=2 &
PID=$!
wait_for_socket
client fire
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
rm -f "$SOCK"

echo "== phase 2: restart over the same store, same batch to completion"
"$SERVE" --socket="$SOCK" --store="$STORE" --workers=2 &
PID=$!
wait_for_socket
client finish
wait "$PID"

echo "== phase 3: journal health"
"$REPORT" --store="$STORE" | tee "$DIR/report.txt"
grep -q "records: $JOBS " "$DIR/report.txt"
grep -q "duplicate journal keys: 0" "$DIR/report.txt"
echo "serve_smoke: PASS (no lost or duplicated completed jobs)"
