// Collective-schedule and transport benchmark: tree vs scalable schedules,
// payload pool on vs off.
//
// For each workload x rank count the harness runs the seed tree schedules
// and the scalable schedules (PLIN_XMPI_COLL=scalable equivalent) and
// records the virtual duration, the bytes funneled through rank 0
// (send + recv side, `TrafficCounters::through_bytes`), total message
// counts and host wall-clock. A pool-off run of the tree schedule gives
// the per-message allocation baseline the payload pool removes.
//
// Output: a table plus machine-readable `BENCH_collectives.json`
// (schema powerlin-bench-collectives/v1).
//
// Flags:
//   --smoke     small rank counts (CI smoke mode)
//   --out=PATH  JSON output path (default BENCH_collectives.json)
//   --check     exit nonzero unless, at the largest rank count,
//               (a) the scalable allgather and allreduce move >= 2x less
//                   bytes through rank 0 than the tree schedules, and
//               (b) the pool removes heap allocations (pool-on misses <
//                   pool-off misses).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "hwmodel/placement.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

xmpi::RunConfig harness_config(int ranks, xmpi::CollectiveMode collectives,
                               xmpi::PoolMode pool) {
  // Same fully loaded mini-cluster shape as bench_xmpi (2 sockets x 8
  // cores per node, just enough nodes for the rank count).
  constexpr int kCoresPerSocket = 8;
  const int nodes = (ranks + 2 * kCoresPerSocket - 1) / (2 * kCoresPerSocket);
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(std::max(nodes, 1), kCoresPerSocket);
  config.placement = hw::make_placement(ranks, hw::LoadLayout::kFullLoad,
                                        config.machine);
  config.executor = xmpi::ExecutorKind::kWorkerPool;
  config.transport.collectives = collectives;
  config.transport.pool = pool;
  return config;
}

// ---- workloads -------------------------------------------------------------

/// Ring-friendly allgather: every rank contributes 256 doubles (2 KiB) and
/// receives the 256*P concatenation — the tree schedule funnels all of it
/// through rank 0 twice (gather then broadcast).
void allgather_blocks(xmpi::Comm& comm) {
  constexpr std::size_t kChunk = 256;
  std::vector<double> mine(kChunk, comm.rank() + 0.25);
  std::vector<double> all(kChunk * static_cast<std::size_t>(comm.size()));
  for (int round = 0; round < 2; ++round) {
    comm.allgather(std::span<const double>(mine), std::span<double>(all));
  }
}

/// Large-vector allreduce (4096 doubles = 32 KiB): the reduce-scatter +
/// allgather schedule's bandwidth-bound regime.
void allreduce_vector(xmpi::Comm& comm) {
  constexpr std::size_t kCount = 4096;
  std::vector<double> data(kCount, comm.rank() * 1e-3 + 1.0);
  std::vector<double> out(kCount);
  for (int round = 0; round < 2; ++round) {
    comm.allreduce(std::span<const double>(data), std::span<double>(out),
                   xmpi::ReduceOp::kSum);
  }
}

/// Scalar allreduce: the latency-bound regime (recursive doubling), the
/// shape solvers hit once per panel (pivot norms, convergence checks).
void allreduce_scalar(xmpi::Comm& comm) {
  double acc = comm.rank() * 0.5;
  for (int round = 0; round < 8; ++round) {
    acc = comm.allreduce_value(acc, xmpi::ReduceOp::kMax);
  }
}

/// Pivot-selection shape: allreduce_maxloc once per "panel".
void maxloc_rounds(xmpi::Comm& comm) {
  for (int round = 0; round < 8; ++round) {
    (void)comm.allreduce_maxloc(static_cast<double>((comm.rank() * 7 + round) %
                                                    comm.size()),
                                comm.rank());
  }
}

using Workload = void (*)(xmpi::Comm&);

struct WorkloadSpec {
  const char* name;
  Workload body;
  bool gated;  // participates in the --check root-bytes gate
};

constexpr WorkloadSpec kWorkloads[] = {
    {"allgather", allgather_blocks, true},
    {"allreduce", allreduce_vector, true},
    {"allreduce_small", allreduce_scalar, false},
    {"maxloc", maxloc_rounds, false},
};

// ---- measurement -----------------------------------------------------------

template <typename F>
double seconds_of(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One mode of one workload: virtual + host timing and transport counters.
struct ModeSample {
  double duration_s = 0.0;      // virtual
  double host_s = 0.0;          // best-of-N wall clock
  std::uint64_t root_bytes = 0;  // rank 0 through_bytes()
  std::uint64_t messages = 0;   // world total (send-side)
  std::uint64_t allocs = 0;     // payload-pool misses = heap allocations
  std::uint64_t pool_hits = 0;
  std::uint64_t rendezvous = 0;
};

ModeSample sample(const WorkloadSpec& spec, int ranks,
                  xmpi::CollectiveMode collectives, xmpi::PoolMode pool) {
  const xmpi::RunConfig config = harness_config(ranks, collectives, pool);
  ModeSample out;
  const auto once = [&] {
    const xmpi::RunResult run = xmpi::Runtime::run(config, spec.body);
    out.duration_s = run.duration_s;
    out.root_bytes = run.rank_traffic.empty()
                         ? 0
                         : run.rank_traffic.front().through_bytes();
    out.messages = run.traffic.data_messages + run.traffic.control_messages;
    out.allocs = run.transport.pool.misses;
    out.pool_hits = run.transport.pool.hits;
    out.rendezvous = run.transport.rendezvous_messages;
  };
  double best = seconds_of(once);  // warm measurement doubles as rep 1
  const int reps = best > 1.0 ? 1 : 3;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(once));
  out.host_s = best;
  return out;
}

struct CaseResult {
  std::string workload;
  int ranks = 0;
  bool gated = false;
  ModeSample tree;
  ModeSample scalable;
  std::uint64_t pool_off_allocs = 0;  // tree schedule, pool disabled

  double root_ratio() const {
    return scalable.root_bytes > 0
               ? static_cast<double>(tree.root_bytes) /
                     static_cast<double>(scalable.root_bytes)
               : 0.0;
  }
};

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool write_json(const std::string& path, bool smoke,
                const std::vector<CaseResult>& results) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-collectives/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"results\": [\n";
  bool first = true;
  for (const CaseResult& r : results) {
    if (!first) out << ",\n";
    first = false;
    const auto mode_json = [&](const char* key, const ModeSample& m) {
      out << "\"" << key << "\": {\"duration_s\": " << fmt(m.duration_s)
          << ", \"root_through_bytes\": " << m.root_bytes
          << ", \"messages\": " << m.messages
          << ", \"alloc_count\": " << m.allocs
          << ", \"pool_hits\": " << m.pool_hits
          << ", \"rendezvous_messages\": " << m.rendezvous
          << ", \"host_s\": " << fmt(m.host_s) << "}";
    };
    out << "    {\"workload\": \"" << r.workload << "\", \"ranks\": "
        << r.ranks << ", ";
    mode_json("tree", r.tree);
    out << ", ";
    mode_json("scalable", r.scalable);
    out << ", \"root_bytes_ratio\": " << fmt(r.root_ratio())
        << ", \"pool_off_alloc_count\": " << r.pool_off_allocs << "}";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out.flush());
}

int run_harness(bool smoke, bool check, const std::string& out_path) {
  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{48, 144} : std::vector<int>{144, 576};

  std::vector<CaseResult> results;
  for (const WorkloadSpec& spec : kWorkloads) {
    for (const int ranks : rank_counts) {
      CaseResult r;
      r.workload = spec.name;
      r.ranks = ranks;
      r.gated = spec.gated;
      r.tree = sample(spec, ranks, xmpi::CollectiveMode::kTree,
                      xmpi::PoolMode::kOn);
      r.scalable = sample(spec, ranks, xmpi::CollectiveMode::kScalable,
                          xmpi::PoolMode::kOn);
      r.pool_off_allocs = sample(spec, ranks, xmpi::CollectiveMode::kTree,
                                 xmpi::PoolMode::kOff)
                              .allocs;
      results.push_back(std::move(r));
    }
  }

  std::printf("%-16s %6s | %14s %14s %7s | %10s %10s %10s\n", "workload",
              "ranks", "tree root B", "scal root B", "ratio", "allocs off",
              "allocs on", "rndzvs");
  for (const CaseResult& r : results) {
    std::printf("%-16s %6d | %14llu %14llu %6.2fx | %10llu %10llu %10llu\n",
                r.workload.c_str(), r.ranks,
                static_cast<unsigned long long>(r.tree.root_bytes),
                static_cast<unsigned long long>(r.scalable.root_bytes),
                r.root_ratio(),
                static_cast<unsigned long long>(r.pool_off_allocs),
                static_cast<unsigned long long>(r.tree.allocs),
                static_cast<unsigned long long>(r.tree.rendezvous));
  }

  if (!write_json(out_path, smoke, results)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!check) return 0;
  int failures = 0;
  const int largest = rank_counts.back();
  // Rendezvous delivery already bypasses the allocator for most exact-match
  // receives, so the pool's remaining win is gated in aggregate over the
  // whole sweep rather than per workload (any single case can legitimately
  // go ~all-rendezvous under favourable host scheduling).
  std::uint64_t allocs_on = 0;
  std::uint64_t allocs_off = 0;
  for (const CaseResult& r : results) {
    if (r.ranks != largest) continue;
    allocs_on += r.tree.allocs;
    allocs_off += r.pool_off_allocs;
    if (r.gated && r.root_ratio() < 2.0) {
      std::fprintf(stderr,
                   "FAIL: %s at %d ranks moves only %.2fx less data through "
                   "rank 0 with the scalable schedule (need >= 2x)\n",
                   r.workload.c_str(), r.ranks, r.root_ratio());
      ++failures;
    }
  }
  if (allocs_on >= allocs_off) {
    std::fprintf(stderr,
                 "FAIL: pool-on allocations (%llu) not below pool-off "
                 "(%llu) at %d ranks\n",
                 static_cast<unsigned long long>(allocs_on),
                 static_cast<unsigned long long>(allocs_off), largest);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_collectives.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s' (expected --smoke --check "
                   "--out=PATH)\n",
                   argv[i]);
      return 2;
    }
  }
  return run_harness(smoke, check, out_path);
}
