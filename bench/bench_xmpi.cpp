// google-benchmark microbenchmarks for the xmpi runtime: host cost of
// spawning a world, point-to-point messaging, and collectives. Reported
// virtual times for the same operations come out of the figure benches.
#include <benchmark/benchmark.h>

#include "hwmodel/placement.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

xmpi::RunConfig config_for(int ranks) {
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(16, 4);
  config.placement =
      hw::make_placement(ranks, hw::LoadLayout::kFullLoad, config.machine);
  return config;
}

void BM_RuntimeSpawn(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    const auto result =
        xmpi::Runtime::run(config, [](xmpi::Comm&) {});
    benchmark::DoNotOptimize(result.duration_s);
  }
}
BENCHMARK(BM_RuntimeSpawn)->Arg(4)->Arg(16)->Arg(64);

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const xmpi::RunConfig config = config_for(2);
  const std::size_t count = bytes / sizeof(double);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [count](xmpi::Comm& comm) {
      std::vector<double> buffer(count, 1.0);
      for (int i = 0; i < 64; ++i) {
        if (comm.rank() == 0) {
          comm.send(std::span<const double>(buffer), 1, 0);
          comm.recv(std::span<double>(buffer), 1, 0);
        } else {
          comm.recv(std::span<double>(buffer), 0, 0);
          comm.send(std::span<const double>(buffer), 0, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(8192)->Arg(262144);

void BM_Bcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      std::vector<double> data(1024, comm.rank() * 1.0);
      for (int i = 0; i < 16; ++i) {
        comm.bcast(std::span<double>(data), 0);
      }
    });
  }
}
BENCHMARK(BM_Bcast)->Arg(8)->Arg(32);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      for (int i = 0; i < 16; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(8)->Arg(32);

void BM_AllreduceMaxloc(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      for (int i = 0; i < 16; ++i) {
        (void)comm.allreduce_maxloc(comm.rank() * 1.0 + i, comm.rank());
      }
    });
  }
}
BENCHMARK(BM_AllreduceMaxloc)->Arg(8)->Arg(32);

void BM_NonblockingOverlap(benchmark::State& state) {
  // irecv posted early, compute overlapped, wait late.
  const xmpi::RunConfig config = config_for(8);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      std::vector<double> in(1024);
      std::vector<double> out(1024, 1.0);
      const int peer = comm.rank() ^ 1;
      for (int i = 0; i < 16; ++i) {
        xmpi::Request recv = comm.irecv(std::span<double>(in), peer, 0);
        (void)comm.isend(std::span<const double>(out), peer, 0);
        comm.compute(xmpi::ComputeCost{1e5, 0.0, 1.0});
        recv.wait();
      }
    });
  }
}
BENCHMARK(BM_NonblockingOverlap);

void BM_CommSplit(benchmark::State& state) {
  const xmpi::RunConfig config = config_for(32);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      xmpi::Comm node = comm.split_shared_node();
      benchmark::DoNotOptimize(node.rank());
    });
  }
}
BENCHMARK(BM_CommSplit);

}  // namespace

BENCHMARK_MAIN();
