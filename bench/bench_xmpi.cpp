// xmpi runtime perf-regression harness + google-benchmark microbenchmarks.
//
// Default mode runs the regression harness: it sweeps paper-scale rank
// counts over runtime-dominated workloads (world spawn, spawn+collectives,
// ring point-to-point, wildcard gather) under BOTH executors — the bounded
// worker pool and the retained thread-per-rank baseline — prints a host
// wall-clock table and writes machine-readable `BENCH_xmpi.json`
// (mirroring BENCH_kernels.json) so runtime performance has a recorded
// trajectory. Simulated outputs are bit-identical across executors, so
// only host seconds are compared.
//
// Flags:
//   --smoke         small rank counts (CI smoke mode)
//   --out=PATH      JSON output path (default BENCH_xmpi.json)
//   --check         exit nonzero unless the pool beats thread-per-rank on
//                   the largest spawn+collective case measured with both
//   --gbench        run the original google-benchmark microbenchmarks
//                   (remaining argv is passed through to the library)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rss.hpp"

#include "hwmodel/placement.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

// ---- regression harness ----------------------------------------------------

xmpi::RunConfig harness_config(int ranks, xmpi::ExecutorKind executor) {
  // Fully loaded mini-cluster nodes (2 sockets x 8 cores), just enough
  // nodes to hold the rank count — 1296 ranks ⇒ 81 nodes, the paper's
  // largest campaign scale.
  constexpr int kCoresPerSocket = 8;
  const int nodes = (ranks + 2 * kCoresPerSocket - 1) / (2 * kCoresPerSocket);
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(std::max(nodes, 1), kCoresPerSocket);
  config.placement = hw::make_placement(ranks, hw::LoadLayout::kFullLoad,
                                        config.machine);
  config.executor = executor;
  return config;
}

void spawn_only(xmpi::Comm&) {}

/// The acceptance workload: repeated barrier + broadcast + allreduce rounds,
/// which in the pool exercises park/resume on every collective hop.
void spawn_collective(xmpi::Comm& comm) {
  double value = comm.rank() == 0 ? 1.5 : 0.0;
  for (int round = 0; round < 4; ++round) {
    comm.barrier();
    comm.bcast_value(value, /*root=*/0);
    (void)comm.allreduce_value(1.0, xmpi::ReduceOp::kSum);
  }
}

/// Neighbour ring: point-to-point heavy, every rank parks in recv.
void ring_exchange(xmpi::Comm& comm) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  for (int round = 0; round < 8; ++round) {
    comm.send_value(comm.rank() + round, next, /*tag=*/1);
    (void)comm.recv_value<int>(prev, /*tag=*/1);
  }
}

/// Rank 0 drains a wildcard receive per peer — the indexed mailbox's
/// wildcard scan plus targeted wakeup under maximal fan-in.
void wildcard_gather(xmpi::Comm& comm) {
  if (comm.rank() == 0) {
    for (int i = 1; i < comm.size(); ++i) {
      (void)comm.recv_value<int>(xmpi::kAnySource, xmpi::kAnyTag);
    }
  } else {
    comm.send_value(comm.rank(), 0, /*tag=*/comm.rank() % 7);
  }
}

using Workload = void (*)(xmpi::Comm&);

struct WorkloadSpec {
  const char* name;
  Workload body;
};

constexpr WorkloadSpec kWorkloads[] = {
    {"spawn", spawn_only},
    {"spawn+collective", spawn_collective},
    {"ring", ring_exchange},
    {"wildcard_gather", wildcard_gather},
};

template <typename F>
double seconds_of(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-N wall-clock (one untimed warmup; fewer reps for slow cases).
template <typename F>
double best_seconds(F&& body) {
  const double first = seconds_of(body);
  int reps = 3;
  if (first > 2.0) reps = 1;
  if (first < 0.02) reps = 6;
  double best = first;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(body));
  return best;
}

struct HarnessResult {
  std::string workload;
  int ranks = 0;
  double pool_s = 0.0;
  double threads_s = 0.0;  // 0 ⇒ baseline skipped at this scale
  std::size_t pool_workers = 0;
  // Payload-pool behaviour of one run (last timed repetition): misses are
  // actual heap allocations, hits are recycled buffers, peak is the high
  // watermark of live payload bytes.
  std::uint64_t alloc_count = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t peak_payload_bytes = 0;
  // Max RSS sampled *during* the pool runs (bench/rss.hpp). VmHWM would be
  // monotonic across the whole sweep and so attribute the largest earlier
  // case to every later row.
  std::uint64_t peak_rss_bytes = 0;

  bool has_baseline() const { return threads_s > 0.0; }
  double speedup() const {
    return has_baseline() && pool_s > 0.0 ? threads_s / pool_s : 0.0;
  }
};

HarnessResult measure(const WorkloadSpec& spec, int ranks,
                      bool run_thread_baseline) {
  HarnessResult result;
  result.workload = spec.name;
  result.ranks = ranks;

  const xmpi::RunConfig pool_config =
      harness_config(ranks, xmpi::ExecutorKind::kWorkerPool);
  std::size_t workers = 0;
  {
    plin::bench::RssSampler rss;
    result.pool_s = best_seconds([&] {
      const xmpi::RunResult run = xmpi::Runtime::run(pool_config, spec.body);
      workers = run.host_workers;
      result.alloc_count = run.transport.pool.misses;
      result.pool_hits = run.transport.pool.hits;
      result.peak_payload_bytes = run.transport.pool.peak_payload_bytes;
      benchmark::DoNotOptimize(run.duration_s);
    });
    rss.stop();
    result.peak_rss_bytes = rss.peak_bytes();
  }
  result.pool_workers = workers;

  if (run_thread_baseline) {
    const xmpi::RunConfig threads_config =
        harness_config(ranks, xmpi::ExecutorKind::kThreadPerRank);
    result.threads_s = best_seconds([&] {
      const xmpi::RunResult run = xmpi::Runtime::run(threads_config,
                                                     spec.body);
      benchmark::DoNotOptimize(run.duration_s);
    });
  }
  return result;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool write_json(const std::string& path, bool smoke,
                const std::vector<HarnessResult>& results) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-xmpi/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"results\": [\n";
  bool first = true;
  for (const HarnessResult& r : results) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"workload\": \"" << r.workload << "\", \"ranks\": "
        << r.ranks << ", \"pool_workers\": " << r.pool_workers
        << ", \"alloc_count\": " << r.alloc_count
        << ", \"pool_hits\": " << r.pool_hits
        << ", \"peak_payload_bytes\": " << r.peak_payload_bytes
        << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"pool_s\": " << fmt(r.pool_s) << ", \"threads_s\": ";
    if (r.has_baseline()) {
      out << fmt(r.threads_s) << ", \"speedup\": " << fmt(r.speedup());
    } else {
      out << "null, \"speedup\": null";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out.flush());
}

int run_harness(bool smoke, bool check, const std::string& out_path) {
  // Paper campaign scales; the thread-per-rank baseline is skipped above
  // 576 ranks (the point of the pool is that 1296 host threads are not a
  // reasonable execution vehicle — the 1296-rank rows demonstrate the
  // pool completing where the baseline oversubscribes the host ~100x).
  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{48, 144} : std::vector<int>{144, 576, 1296};
  const int baseline_cap = smoke ? 144 : 576;

  std::vector<HarnessResult> results;
  for (const WorkloadSpec& spec : kWorkloads) {
    for (const int ranks : rank_counts) {
      results.push_back(measure(spec, ranks, ranks <= baseline_cap));
    }
  }

  std::printf("%-18s %6s %8s | %12s %12s %8s\n", "workload", "ranks",
              "workers", "pool s", "threads s", "speedup");
  const HarnessResult* gate = nullptr;
  for (const HarnessResult& r : results) {
    if (r.has_baseline()) {
      std::printf("%-18s %6d %8zu | %12.6f %12.6f %7.2fx\n",
                  r.workload.c_str(), r.ranks, r.pool_workers, r.pool_s,
                  r.threads_s, r.speedup());
    } else {
      std::printf("%-18s %6d %8zu | %12.6f %12s %8s\n", r.workload.c_str(),
                  r.ranks, r.pool_workers, r.pool_s, "-", "-");
    }
    if (r.workload == "spawn+collective" && r.has_baseline() &&
        (gate == nullptr || r.ranks > gate->ranks)) {
      gate = &r;
    }
  }

  if (!write_json(out_path, smoke, results)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (check && gate != nullptr && gate->speedup() < 1.0) {
    std::fprintf(stderr,
                 "FAIL: worker pool (%.6f s) slower than thread-per-rank "
                 "(%.6f s) on spawn+collective at %d ranks\n",
                 gate->pool_s, gate->threads_s, gate->ranks);
    return 1;
  }
  return 0;
}

// ---- google-benchmark microbenchmarks (run with --gbench) ------------------

xmpi::RunConfig config_for(int ranks) {
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(16, 4);
  config.placement =
      hw::make_placement(ranks, hw::LoadLayout::kFullLoad, config.machine);
  return config;
}

void BM_RuntimeSpawn(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    const auto result =
        xmpi::Runtime::run(config, [](xmpi::Comm&) {});
    benchmark::DoNotOptimize(result.duration_s);
  }
}
BENCHMARK(BM_RuntimeSpawn)->Arg(4)->Arg(16)->Arg(64);

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const xmpi::RunConfig config = config_for(2);
  const std::size_t count = bytes / sizeof(double);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [count](xmpi::Comm& comm) {
      std::vector<double> buffer(count, 1.0);
      for (int i = 0; i < 64; ++i) {
        if (comm.rank() == 0) {
          comm.send(std::span<const double>(buffer), 1, 0);
          comm.recv(std::span<double>(buffer), 1, 0);
        } else {
          comm.recv(std::span<double>(buffer), 0, 0);
          comm.send(std::span<const double>(buffer), 0, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(8192)->Arg(262144);

void BM_Bcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      std::vector<double> data(1024, comm.rank() * 1.0);
      for (int i = 0; i < 16; ++i) {
        comm.bcast(std::span<double>(data), 0);
      }
    });
  }
}
BENCHMARK(BM_Bcast)->Arg(8)->Arg(32);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      for (int i = 0; i < 16; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(8)->Arg(32);

void BM_AllreduceMaxloc(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const xmpi::RunConfig config = config_for(ranks);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      for (int i = 0; i < 16; ++i) {
        (void)comm.allreduce_maxloc(comm.rank() * 1.0 + i, comm.rank());
      }
    });
  }
}
BENCHMARK(BM_AllreduceMaxloc)->Arg(8)->Arg(32);

void BM_NonblockingOverlap(benchmark::State& state) {
  // irecv posted early, compute overlapped, wait late.
  const xmpi::RunConfig config = config_for(8);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      std::vector<double> in(1024);
      std::vector<double> out(1024, 1.0);
      const int peer = comm.rank() ^ 1;
      for (int i = 0; i < 16; ++i) {
        xmpi::Request recv = comm.irecv(std::span<double>(in), peer, 0);
        (void)comm.isend(std::span<const double>(out), peer, 0);
        comm.compute(xmpi::ComputeCost{1e5, 0.0, 1.0});
        recv.wait();
      }
    });
  }
}
BENCHMARK(BM_NonblockingOverlap);

void BM_CommSplit(benchmark::State& state) {
  const xmpi::RunConfig config = config_for(32);
  for (auto _ : state) {
    xmpi::Runtime::run(config, [](xmpi::Comm& comm) {
      xmpi::Comm node = comm.split_shared_node();
      benchmark::DoNotOptimize(node.rank());
    });
  }
}
BENCHMARK(BM_CommSplit);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  bool gbench = false;
  std::string out_path = "BENCH_xmpi.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--gbench") == 0) {
      gbench = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (gbench) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  // Harness mode takes no positional arguments; reject typos instead of
  // silently running a different sweep than the user asked for.
  if (passthrough.size() > 1) {
    std::fprintf(stderr,
                 "error: unknown argument '%s' (expected --smoke --check "
                 "--out=PATH --gbench)\n",
                 passthrough[1]);
    return 2;
  }
  return run_harness(smoke, check, out_path);
}
