// Portability study: would the paper's conclusions transfer from Marconi
// A3 (2 x 24-core Skylake, Omni-Path) to a denser machine (2 x 64-core
// EPYC-generation nodes, 200 Gb/s fabric)? The full evaluation grid runs
// on both machine models; the table reports which algorithm wins each cell
// on each machine, and whether the paper's headline conclusions (full load
// cheapest, ScaLAPACK more energy-efficient overall, IMe competitive when
// distributed) survive.
#include <iostream>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "perfsim/simulator.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace plin;

struct Cell {
  double t_ime, t_sca, e_ime, e_sca;
};

Cell evaluate(const perfsim::Simulator& simulator,
              const hw::MachineSpec& machine, std::size_t n, int ranks) {
  const hw::Placement placement =
      hw::make_placement(ranks, hw::LoadLayout::kFullLoad, machine);
  const auto ime =
      simulator.predict({perfsim::Algorithm::kIme, n, 64, 0}, placement);
  const auto sca = simulator.predict(
      {perfsim::Algorithm::kScalapack, n, 64, 0}, placement);
  return Cell{ime.duration_s, sca.duration_s, ime.total_j(), sca.total_j()};
}

}  // namespace

int main() {
  const std::vector<hw::MachineSpec> machines = {hw::marconi_a3(),
                                                 hw::epyc_cluster()};
  std::cout << "Machine portability: the evaluation grid on two machine "
               "models\n\n";

  for (const hw::MachineSpec& machine : machines) {
    const perfsim::Simulator simulator(machine);
    std::cout << "-- " << machine.name << " (" << machine.node.cores()
              << " cores/node, "
              << format_si(machine.node.peak_flops(), "Flop/s") << " peak) --\n";
    TextTable table({"n", "ranks", "faster", "T ratio IMe/SCAL",
                     "lower energy", "E ratio IMe/SCAL"});
    int sca_energy_wins = 0;
    int ime_time_wins = 0;
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        const Cell cell = evaluate(simulator, machine, n, ranks);
        if (cell.e_sca < cell.e_ime) ++sca_energy_wins;
        if (cell.t_ime < cell.t_sca) ++ime_time_wins;
        table.add_row({std::to_string(n), std::to_string(ranks),
                       cell.t_ime < cell.t_sca ? "IMe" : "ScaLAPACK",
                       format_fixed(cell.t_ime / cell.t_sca, 2),
                       cell.e_ime < cell.e_sca ? "IMe" : "ScaLAPACK",
                       format_fixed(cell.e_ime / cell.e_sca, 2)});
      }
    }
    table.print(std::cout);
    std::cout << "summary: ScaLAPACK is the energy winner in "
              << sca_energy_wins << "/12 cells; IMe is the duration winner "
              << "in " << ime_time_wins << "/12 cells.\n\n";
  }

  std::cout << "== CSV machines ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"machine", "n", "ranks", "t_ime_s", "t_sca_s", "e_ime_j",
                 "e_sca_j"});
  for (const hw::MachineSpec& machine : machines) {
    const perfsim::Simulator simulator(machine);
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        const Cell cell = evaluate(simulator, machine, n, ranks);
        csv.write_row({machine.name, std::to_string(n),
                       std::to_string(ranks), format_fixed(cell.t_ime, 6),
                       format_fixed(cell.t_sca, 6),
                       format_fixed(cell.e_ime, 3),
                       format_fixed(cell.e_sca, 3)});
      }
    }
  }
  return 0;
}
