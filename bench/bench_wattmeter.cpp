// The simulated external wattmeter — the paper's §6 plan to "integrate our
// analysis with external ground-truth measurements". Samples each node's
// power on a fixed virtual-time grid (no RAPL quantization, every domain
// visible) while the solvers run, then compares the wattmeter's energy
// against the PAPI-window measurement the white-box monitor reports —
// quantifying the accuracy concern the paper raises about PAPI.
#include <algorithm>
#include <iostream>

#include "hwmodel/placement.hpp"
#include "monitor/white_box.hpp"
#include "solvers/gepp/pdgesv.hpp"
#include "solvers/ime/imep.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

/// ASCII sparkline for a power series.
std::string sparkline(const std::vector<xmpi::TimelineSample>& samples) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double hi = 0.0;
  for (const auto& s : samples) hi = std::max(hi, s.node_w());
  std::string line;
  for (const auto& s : samples) {
    const int level =
        hi > 0.0 ? std::min(7, static_cast<int>(8.0 * s.node_w() / hi)) : 0;
    line += kLevels[level];
  }
  return line;
}

}  // namespace

int main() {
  const std::size_t n = 768;
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(8, 4);
  config.placement =
      hw::make_placement(16, hw::LoadLayout::kFullLoad, config.machine);
  config.timeline_period_s = 0.0005;  // 0.5 ms wattmeter

  std::cout << "Simulated external wattmeter vs PAPI windows (n=" << n
            << ", 16 ranks, 0.5 ms sampling)\n\n";

  TextTable table({"solver", "duration", "wattmeter energy", "PAPI energy",
                   "PAPI error", "node-0 power profile"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const bool use_ime : {true, false}) {
    double papi_j = 0.0;
    const xmpi::RunResult run =
        xmpi::Runtime::run(config, [&](xmpi::Comm& world) {
          const monitor::RunMeasurement m = monitor::monitored_run(
              world, monitor::MonitorOptions{}, [&](xmpi::Comm& comm) {
                if (use_ime) {
                  solvers::ImepOptions options;
                  options.n = n;
                  options.seed = 81;
                  (void)solve_imep(comm, options);
                } else {
                  solvers::PdgesvOptions options;
                  options.n = n;
                  options.seed = 81;
                  options.nb = 32;
                  (void)solve_pdgesv(comm, options);
                }
              });
          if (world.rank() == 0) papi_j = m.total_j();
        });

    // Integrate the wattmeter over the whole run.
    double meter_j = 0.0;
    for (const xmpi::NodeTimeline& node : run.timeline) {
      double prev_t = 0.0;
      for (const xmpi::TimelineSample& s : node.samples) {
        meter_j += s.node_w() * (s.t - prev_t);
        prev_t = s.t;
      }
    }

    const char* name = use_ime ? "IMe" : "ScaLAPACK";
    table.add_row({name, format_duration(run.duration_s),
                   format_energy(meter_j), format_energy(papi_j),
                   format_fixed(100.0 * (papi_j / meter_j - 1.0), 2) + " %",
                   sparkline(run.timeline[0].samples)});
    for (const xmpi::TimelineSample& s : run.timeline[0].samples) {
      csv_rows.push_back({name, format_fixed(s.t, 6),
                          format_fixed(s.pkg_w[0] + s.pkg_w[1], 3),
                          format_fixed(s.dram_w[0] + s.dram_w[1], 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe PAPI window undershoots the wattmeter: it opens after "
               "setup and closes at the\nlast node barrier, and its "
               "counters tick once per millisecond — the accuracy gap\nthe "
               "paper plans to quantify with a real external meter.\n";

  std::cout << "\n== CSV wattmeter ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"solver", "t_s", "pkg_w", "dram_w"});
  for (const auto& row : csv_rows) csv.write_row(row);
  return 0;
}
