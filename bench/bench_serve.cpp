// Serve-daemon load generator and perf-regression harness (docs/serve.md).
//
// Boots an in-process Engine + Server on a real AF_UNIX socket, then
// drives it with three phases:
//
//   1. cold-submit       unique replay-tier specs, one blocking client —
//                        every request executes on a worker;
//   2. cached-resubmit   the same specs again — every request is a cache
//                        hit served straight from the journaled store;
//   3. sustained-load    N concurrent clients (one thread + one connection
//                        each, default 1000) issuing a heavy-tailed mix:
//                        ~80% of requests land on a small pre-warmed hot
//                        set, ~20% are unique cold specs, spread across
//                        three tenants with 4:2:1 fair-share weights.
//
// Prints a wall-clock table and writes machine-readable `BENCH_serve.json`
// (p50/p99 latency, jobs/sec, cache-hit ratio, full server counters).
//
// Flags:
//   --smoke           fewer requests per client (CI smoke mode)
//   --clients=N       concurrent clients in phase 3 (default 1000)
//   --requests=N      requests per client (default 16; smoke 4)
//   --workers=N       engine worker threads (default 4)
//   --out=PATH        JSON output path (default BENCH_serve.json)
//   --check           exit nonzero unless every request succeeded, nothing
//                     was rejected, the cached-resubmit p50 is >= 5x
//                     faster than the cold p50, and (with --baseline) the
//                     deterministic request counts and client-side hit
//                     ratio match the checked-in baseline
//   --baseline=PATH   checked-in BENCH_serve JSON to regress against
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/store.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace plin;

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "plin_bench_serve" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Replay-tier spec: executes in milliseconds, so thousands of requests
/// stay cheap while still exercising the full submit/execute/journal path.
batch::JobSpec replay_spec(std::uint64_t seed, std::size_t n = 96) {
  batch::JobSpec spec;
  spec.tier = batch::Tier::kReplay;
  spec.machine = "mini:8x4";
  spec.algorithm = perfsim::Algorithm::kScalapack;
  spec.n = n;
  spec.ranks = 4;
  spec.nb = 32;
  spec.seed = seed;
  return spec;
}

/// Cold-phase spec: numeric tier, so the worker actually runs the solver
/// through xmpi and execution dominates the socket round-trip — the
/// cold/cached ratio then measures the cache, not the wire.
batch::JobSpec cold_spec(int i) {
  batch::JobSpec spec = replay_spec(900000 + static_cast<std::uint64_t>(i),
                                    96);
  spec.tier = batch::Tier::kNumeric;
  return spec;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Connects with retries: a thousand simultaneous connects can transiently
/// overflow the listen backlog, which is backpressure, not failure.
std::unique_ptr<serve::Client> connect_client(const std::string& socket) {
  for (int attempt = 0;; ++attempt) {
    try {
      return std::make_unique<serve::Client>(socket);
    } catch (const Error&) {
      if (attempt >= 500) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

bool response_ok(const json::Value& response) {
  const json::Value* ok = response.find("ok");
  if (ok == nullptr || !ok->as_bool()) return false;
  const json::Value* status = response.find("status");
  return status == nullptr || status->as_string() == "done" ||
         status->as_string() == "cached";
}

struct LoadResult {
  std::vector<double> latencies_s;
  std::size_t hot = 0;
  std::size_t unique = 0;
  std::size_t errors = 0;
};

const char* kTenants[3] = {"interactive", "batch", "background"};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.require_known({"smoke", "check", "out", "baseline", "clients",
                        "requests", "workers", "help"});
    if (args.get_bool("help", false)) {
      std::cout << "bench_serve [--smoke] [--check] [--clients=N] "
                   "[--requests=N] [--workers=N] [--out=PATH] "
                   "[--baseline=PATH]\n";
      return 0;
    }
    const bool smoke = args.get_bool("smoke", false);
    const bool check = args.get_bool("check", false);
    const std::string out_path = args.get("out", "BENCH_serve.json");
    const std::string baseline_path = args.get("baseline", "");
    const int clients = static_cast<int>(args.get_int("clients", 1000));
    const int requests_per_client =
        static_cast<int>(args.get_int("requests", smoke ? 4 : 16));
    const int workers = static_cast<int>(args.get_int("workers", 4));
    constexpr int kHotSpecs = 16;
    constexpr int kColdSpecs = 32;

    const std::string dir = scratch_dir("run");
    const std::string socket = dir + "/serve.sock";

    batch::ResultStore store(dir + "/store");
    serve::EngineOptions engine_options;
    engine_options.workers = workers;
    engine_options.default_tenant.max_queued = 65536;
    serve::Engine engine(store, engine_options);
    serve::TenantConfig tenant;
    tenant.max_queued = 65536;
    tenant.weight = 4.0;
    engine.configure_tenant(kTenants[0], tenant);
    tenant.weight = 2.0;
    engine.configure_tenant(kTenants[1], tenant);
    tenant.weight = 1.0;
    engine.configure_tenant(kTenants[2], tenant);

    serve::ServerOptions server_options;
    server_options.socket_path = socket;
    server_options.listen_backlog = 1024;
    serve::Server server(engine, server_options);
    std::thread io([&server] { server.serve(); });

    std::cout << "serve load harness: " << clients << " clients x "
              << requests_per_client << " requests, " << workers
              << " workers" << (smoke ? " (smoke)" : "") << "\n\n";

    // Phase 1+2: cold submits, then the identical specs as cache hits.
    std::vector<double> cold_s;
    std::vector<double> hot_s;
    std::size_t phase_errors = 0;
    double cold_wall = 0.0;
    double hot_wall = 0.0;
    {
      auto control = connect_client(socket);
      Stopwatch wall;
      for (int i = 0; i < kColdSpecs; ++i) {
        const double t0 = now_s();
        const json::Value response = control->submit(
            cold_spec(i), "interactive", /*wait=*/true);
        cold_s.push_back(now_s() - t0);
        if (!response_ok(response)) ++phase_errors;
      }
      cold_wall = wall.elapsed_s();
      wall = Stopwatch();
      for (int i = 0; i < kColdSpecs; ++i) {
        const double t0 = now_s();
        const json::Value response = control->submit(
            cold_spec(i), "interactive", /*wait=*/true);
        hot_s.push_back(now_s() - t0);
        if (!response_ok(response)) ++phase_errors;
      }
      hot_wall = wall.elapsed_s();
      // Pre-warm the sustained-load hot set so its hit ratio is exact.
      for (int i = 0; i < kHotSpecs; ++i) {
        const json::Value response =
            control->submit(replay_spec(1 + i), "interactive", /*wait=*/true);
        if (!response_ok(response)) ++phase_errors;
      }
    }
    const double cold_p50 = percentile(cold_s, 0.50);
    const double hot_p50 = percentile(hot_s, 0.50);
    const double cache_speedup = hot_p50 > 0.0 ? cold_p50 / hot_p50 : 0.0;

    // Phase 3: sustained heavy-tailed load from `clients` threads.
    std::vector<LoadResult> results(static_cast<std::size_t>(clients));
    std::mutex barrier_mutex;
    std::condition_variable barrier_cv;
    int ready = 0;
    bool go = false;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        LoadResult& mine = results[static_cast<std::size_t>(c)];
        try {
          auto client = connect_client(socket);
          std::mt19937 rng(static_cast<std::uint32_t>(7919 * c + 17));
          {
            std::unique_lock<std::mutex> lock(barrier_mutex);
            ++ready;
            barrier_cv.notify_all();
            barrier_cv.wait(lock, [&] { return go; });
          }
          for (int r = 0; r < requests_per_client; ++r) {
            const bool is_hot = rng() % 100 < 80;
            const std::uint64_t seed =
                is_hot ? 1 + rng() % kHotSpecs
                       : 1000000 + static_cast<std::uint64_t>(c) * 1000 + r;
            is_hot ? ++mine.hot : ++mine.unique;
            const double t0 = now_s();
            const json::Value response = client->submit(
                replay_spec(seed), kTenants[c % 3], /*wait=*/true);
            mine.latencies_s.push_back(now_s() - t0);
            if (!response_ok(response)) ++mine.errors;
          }
        } catch (const std::exception&) {
          ++mine.errors;
        }
      });
    }
    std::unique_lock<std::mutex> lock(barrier_mutex);
    barrier_cv.wait(lock, [&] { return ready == clients; });
    Stopwatch load_wall;
    go = true;
    barrier_cv.notify_all();
    lock.unlock();
    for (std::thread& t : threads) t.join();
    const double load_s = load_wall.elapsed_s();

    std::vector<double> load_latencies;
    std::size_t hot_requests = 0;
    std::size_t unique_requests = 0;
    std::size_t errors = phase_errors;
    for (const LoadResult& r : results) {
      load_latencies.insert(load_latencies.end(), r.latencies_s.begin(),
                            r.latencies_s.end());
      hot_requests += r.hot;
      unique_requests += r.unique;
      errors += r.errors;
    }
    const std::size_t load_requests = hot_requests + unique_requests;
    const double load_p50 = percentile(load_latencies, 0.50);
    const double load_p99 = percentile(load_latencies, 0.99);
    const double jobs_per_s =
        load_s > 0.0 ? static_cast<double>(load_requests) / load_s : 0.0;
    const double client_hit_ratio =
        load_requests > 0
            ? static_cast<double>(hot_requests) /
                  static_cast<double>(load_requests)
            : 0.0;

    // Server-side truth, then graceful drain.
    json::Value server_stats = json::make_object();
    {
      auto control = connect_client(socket);
      server_stats = control->stats().at("stats");
      control->drain();
    }
    io.join();
    const double rejected = server_stats.at("scheduler").at("rejected")
                                .as_number();
    const double store_hit_ratio =
        server_stats.at("cache").at("hit_ratio").as_number();

    TextTable table({"phase", "requests", "p50", "p99", "jobs/s"});
    auto ms = [](double s) {
      std::ostringstream text;
      text.precision(3);
      text << std::fixed << s * 1e3 << " ms";
      return text.str();
    };
    auto rate = [](double r) {
      std::ostringstream text;
      text.precision(0);
      text << std::fixed << r;
      return text.str();
    };
    table.add_row({"cold-submit", std::to_string(kColdSpecs), ms(cold_p50),
                   ms(percentile(cold_s, 0.99)),
                   rate(kColdSpecs / std::max(cold_wall, 1e-9))});
    table.add_row({"cached-resubmit", std::to_string(kColdSpecs),
                   ms(hot_p50), ms(percentile(hot_s, 0.99)),
                   rate(kColdSpecs / std::max(hot_wall, 1e-9))});
    table.add_row({"sustained-load", std::to_string(load_requests),
                   ms(load_p50), ms(load_p99), rate(jobs_per_s)});
    table.print(std::cout);
    std::cout << "\ncache speedup (cold p50 / cached p50): ";
    std::cout.precision(1);
    std::cout << std::fixed << cache_speedup << "x\n";
    std::cout << "client hit ratio " << client_hit_ratio
              << ", store hit ratio " << store_hit_ratio << ", errors "
              << errors << ", wall " << format_duration(load_s) << "\n";

    json::Value load = json::make_object();
    load.set("wall_s", load_s);
    load.set("requests", static_cast<double>(load_requests));
    load.set("hot_requests", static_cast<double>(hot_requests));
    load.set("unique_requests", static_cast<double>(unique_requests));
    load.set("p50_ms", load_p50 * 1e3);
    load.set("p99_ms", load_p99 * 1e3);
    load.set("jobs_per_s", jobs_per_s);
    load.set("client_hit_ratio", client_hit_ratio);

    json::Value root = json::make_object();
    root.set("schema", "powerlin-bench-serve/v1");
    root.set("mode", smoke ? "smoke" : "full");
    root.set("clients", static_cast<double>(clients));
    root.set("requests_per_client", static_cast<double>(requests_per_client));
    root.set("workers", static_cast<double>(workers));
    root.set("errors", static_cast<double>(errors));
    root.set("cold_p50_ms", cold_p50 * 1e3);
    root.set("cached_p50_ms", hot_p50 * 1e3);
    root.set("cache_speedup", cache_speedup);
    root.set("load", std::move(load));
    root.set("server", std::move(server_stats));
    {
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      out << json::serialize(root) << "\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (!check) return 0;
    bool pass = true;
    auto gate = [&pass](const std::string& name, bool ok) {
      std::cout << "check: " << name << "=" << (ok ? "pass" : "FAIL")
                << "\n";
      pass = pass && ok;
    };
    gate("no-errors", errors == 0);
    gate("no-rejections", rejected == 0.0);
    gate("clients>=1000", clients >= 1000);
    gate("cache-speedup>=5x", cache_speedup >= 5.0);
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path, std::ios::binary);
      std::ostringstream text;
      text << in.rdbuf();
      const json::Value baseline = json::parse(text.str());
      const json::Value& base_load = baseline.at("load");
      // The request mix is seeded, so these two are exactly reproducible
      // (latency numbers are not, and are deliberately not gated).
      gate("baseline-request-count",
           base_load.at("requests").as_number() ==
               static_cast<double>(load_requests));
      gate("baseline-hit-ratio",
           std::abs(base_load.at("client_hit_ratio").as_number() -
                    client_hit_ratio) < 1e-12);
    }
    return pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
