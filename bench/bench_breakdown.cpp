// Reproduces the per-domain observations of §5.3/§5.4:
//   * in one-socket (24 ranks) deployments, the nominally idle package
//     consumes only ~50-60% less than the busy one (not near-zero);
//   * DRAM power gap between IMe and ScaLAPACK (12-18% typical, larger at
//     144 ranks);
//   * full-load deployments are the most energy-efficient.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace plin;
  const std::vector<hw::LoadLayout> layouts = {
      hw::LoadLayout::kFullLoad, hw::LoadLayout::kHalfLoadOneSocket,
      hw::LoadLayout::kHalfLoadTwoSockets};
  const bench::PaperSweep sweep(layouts);

  std::cout << "Per-domain breakdown (replay tier) — the paper's §5.3/§5.4 "
               "observations\n\n";

  std::cout << "-- package 0 vs package 1 in the one-socket deployment --\n";
  {
    TextTable table({"algorithm", "n", "ranks", "pkg0", "pkg1",
                     "pkg1 lower by"});
    for (perfsim::Algorithm algorithm :
         {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
      for (std::size_t n : {17280ul, 34560ul}) {
        for (int ranks : hw::kPaperRankCounts) {
          const auto& p = sweep.at(algorithm, n, ranks,
                                   hw::LoadLayout::kHalfLoadOneSocket);
          const double drop = 1.0 - p.pkg_j[1] / p.pkg_j[0];
          table.add_row({perfsim::to_string(algorithm), std::to_string(n),
                         std::to_string(ranks), format_energy(p.pkg_j[0]),
                         format_energy(p.pkg_j[1]),
                         format_fixed(100.0 * drop, 1) + " %"});
        }
      }
      table.add_rule();
    }
    table.print(std::cout);
    std::cout << "(the paper found the idle socket consuming 50-60% less "
                 "than the busy one\n rather than being near zero — a Slurm "
                 "pinning artifact we model as leakage)\n\n";
  }

  std::cout << "-- DRAM power gap IMe vs ScaLAPACK (full load) --\n";
  {
    TextTable table({"n", "ranks", "IMe DRAM W", "SCAL DRAM W", "gap"});
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        const auto& ime = sweep.at(perfsim::Algorithm::kIme, n, ranks);
        const auto& sca = sweep.at(perfsim::Algorithm::kScalapack, n, ranks);
        table.add_row(
            {std::to_string(n), std::to_string(ranks),
             format_power(ime.dram_power_w()),
             format_power(sca.dram_power_w()),
             format_fixed(
                 100.0 * (ime.dram_power_w() / sca.dram_power_w() - 1.0),
                 1) +
                 " %"});
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "-- energy per layout (n = 17280, both algorithms) --\n";
  {
    TextTable table({"algorithm", "ranks", "full", "half 1-socket",
                     "half 2-socket"});
    for (perfsim::Algorithm algorithm :
         {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
      for (int ranks : hw::kPaperRankCounts) {
        table.add_row(
            {perfsim::to_string(algorithm), std::to_string(ranks),
             format_energy(sweep.at(algorithm, 17280, ranks,
                                    hw::LoadLayout::kFullLoad)
                               .total_j()),
             format_energy(sweep.at(algorithm, 17280, ranks,
                                    hw::LoadLayout::kHalfLoadOneSocket)
                               .total_j()),
             format_energy(sweep.at(algorithm, 17280, ranks,
                                    hw::LoadLayout::kHalfLoadTwoSockets)
                               .total_j())});
      }
    }
    table.print(std::cout);
  }

  bench::csv_block_header(std::cout, "breakdown");
  CsvWriter csv(std::cout);
  csv.write_row({"algorithm", "n", "ranks", "layout", "pkg0_j", "pkg1_j",
                 "dram0_j", "dram1_j", "duration_s"});
  for (perfsim::Algorithm algorithm :
       {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        for (hw::LoadLayout layout : layouts) {
          const auto& p = sweep.at(algorithm, n, ranks, layout);
          csv.write_row({perfsim::to_string(algorithm), std::to_string(n),
                         std::to_string(ranks), hw::to_string(layout),
                         format_fixed(p.pkg_j[0], 3),
                         format_fixed(p.pkg_j[1], 3),
                         format_fixed(p.dram_j[0], 3),
                         format_fixed(p.dram_j[1], 3),
                         format_fixed(p.duration_s, 6)});
        }
      }
    }
  }
  return 0;
}
