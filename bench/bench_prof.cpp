// Span-tracing overhead harness (`BENCH_prof.json`).
//
// Measures what src/prof costs the host when it is OFF (runtime toggle
// false), ON (recorder active on every rank), and — when the binary was
// built with -DPLIN_PROF=OFF — COMPILED OUT (every hook is an empty inline
// stub). Two workloads bracket the hot paths the recorder touches:
//
//   * spawn+collective at paper scale (576 ranks; 144 in --smoke): the
//     per-message / per-collective record cost in the xmpi runtime;
//   * a GEPP solve at n=1728 (576 in --smoke): the per-phase bracket cost
//     inside a compute-dominated solver.
//
// Simulated results are virtual-time, so tracing must not change them:
// `--check` exits nonzero if any duration or energy total differs between
// the off and on runs (bit-for-bit), or if the on-run produced no trace
// while tracing is compiled in.
//
// Flags:
//   --smoke     smaller scales (CI smoke mode)
//   --out=PATH  JSON output path (default BENCH_prof.json)
//   --check     verify off-vs-on bit-identical simulated outputs
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "hwmodel/placement.hpp"
#include "prof/recorder.hpp"
#include "solvers/gepp/pdgesv.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

xmpi::RunConfig base_config(int ranks) {
  constexpr int kCoresPerSocket = 8;
  const int nodes = (ranks + 2 * kCoresPerSocket - 1) / (2 * kCoresPerSocket);
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(std::max(nodes, 1), kCoresPerSocket);
  config.placement =
      hw::make_placement(ranks, hw::LoadLayout::kFullLoad, config.machine);
  return config;
}

/// The bench_xmpi acceptance workload: collective-dense, so every hop
/// crosses the runtime hooks the recorder instruments.
void spawn_collective(xmpi::Comm& comm) {
  double value = comm.rank() == 0 ? 1.5 : 0.0;
  for (int round = 0; round < 4; ++round) {
    comm.barrier();
    comm.bcast_value(value, /*root=*/0);
    (void)comm.allreduce_value(1.0, xmpi::ReduceOp::kSum);
  }
}

template <typename F>
double seconds_of(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-N wall-clock (one untimed warmup; fewer reps for slow cases).
template <typename F>
double best_seconds(F&& body) {
  const double first = seconds_of(body);
  int reps = 3;
  if (first > 2.0) reps = 1;
  if (first < 0.02) reps = 6;
  double best = first;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(body));
  return best;
}

struct ProbeResult {
  std::string workload;
  int ranks = 0;
  double off_s = 0.0;
  double on_s = 0.0;
  // Simulated outputs captured from the last off/on run for --check.
  double off_duration = 0.0;
  double on_duration = 0.0;
  double off_energy = 0.0;
  double on_energy = 0.0;
  bool trace_present = false;

  double overhead() const {
    return off_s > 0.0 ? on_s / off_s - 1.0 : 0.0;
  }
};

template <typename Body>
ProbeResult measure(const char* name, int ranks, Body&& body) {
  ProbeResult result;
  result.workload = name;
  result.ranks = ranks;

  xmpi::RunConfig config = base_config(ranks);
  config.trace = false;
  result.off_s = best_seconds([&] {
    const xmpi::RunResult run = xmpi::Runtime::run(config, body);
    result.off_duration = run.duration_s;
    result.off_energy = run.energy.total_j();
  });

  config.trace = true;
  result.on_s = best_seconds([&] {
    const xmpi::RunResult run = xmpi::Runtime::run(config, body);
    result.on_duration = run.duration_s;
    result.on_energy = run.energy.total_j();
    result.trace_present = run.trace != nullptr;
  });
  return result;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool write_json(const std::string& path, bool smoke,
                const std::vector<ProbeResult>& results) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-prof/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"compiled_in\": " << (prof::kCompiledIn ? "true" : "false")
      << ",\n"
      // When compiled_in is false the binary was built -DPLIN_PROF=OFF and
      // "off_s" measures the fully compiled-out hooks; "on_s" then measures
      // the runtime toggle hitting empty stubs.
      << "  \"results\": [\n";
  bool first = true;
  for (const ProbeResult& r : results) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"workload\": \"" << r.workload << "\", \"ranks\": "
        << r.ranks << ", \"off_s\": " << fmt(r.off_s) << ", \"on_s\": "
        << fmt(r.on_s) << ", \"overhead\": " << fmt(r.overhead()) << "}";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out.flush());
}

int run_harness(bool smoke, bool check, const std::string& out_path) {
  const int collective_ranks = smoke ? 144 : 576;
  const std::size_t gepp_n = smoke ? 576 : 1728;
  const int gepp_ranks = smoke ? 16 : 64;

  std::vector<ProbeResult> results;
  results.push_back(
      measure("spawn+collective", collective_ranks, spawn_collective));
  results.push_back(measure("gepp_solve", gepp_ranks, [gepp_n](
                                                          xmpi::Comm& comm) {
    solvers::PdgesvOptions options;
    options.n = gepp_n;
    options.seed = 7;
    (void)solve_pdgesv(comm, options);
  }));

  std::printf("tracing compiled %s\n\n",
              prof::kCompiledIn ? "IN" : "OUT (-DPLIN_PROF=OFF)");
  std::printf("%-18s %6s | %12s %12s %9s\n", "workload", "ranks", "off s",
              "on s", "overhead");
  for (const ProbeResult& r : results) {
    std::printf("%-18s %6d | %12.6f %12.6f %8.2f%%\n", r.workload.c_str(),
                r.ranks, r.off_s, r.on_s, 100.0 * r.overhead());
  }

  if (!write_json(out_path, smoke, results)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (check) {
    for (const ProbeResult& r : results) {
      if (r.off_duration != r.on_duration || r.off_energy != r.on_energy) {
        std::fprintf(stderr,
                     "FAIL: %s simulated outputs differ with tracing on "
                     "(duration %.17g vs %.17g, energy %.17g vs %.17g)\n",
                     r.workload.c_str(), r.off_duration, r.on_duration,
                     r.off_energy, r.on_energy);
        return 1;
      }
      if (prof::kCompiledIn && !r.trace_present) {
        std::fprintf(stderr, "FAIL: %s traced run produced no trace\n",
                     r.workload.c_str());
        return 1;
      }
    }
    std::printf("check passed: off-vs-on simulated outputs bit-identical\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_prof.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s' (expected --smoke --check "
                   "--out=PATH)\n",
                   argv[i]);
      return 2;
    }
  }
  return run_harness(smoke, check, out_path);
}
