// CG fast-path harness: gates the three layers of the sparse CG hot-loop
// optimization (docs/sparse.md).
//
//   1. overlap bit-identity — the halo/compute overlap path (interior SpMV
//      under an in-flight halo, boundary rows after wait_all) must
//      reproduce the blocking reference solve bitwise: same solution bits,
//      same iteration count, at the bench's rank count.
//   2. end-to-end iteration speedup — at the latency-dominated smoke point
//      (small rows-per-rank, so the allreduce rounds dominate the simulated
//      iteration) the default fused path (overlap + fused collectives) must
//      beat the blocking shape by >= 1.3x per iteration of virtual time.
//      The full-mode point is 4x larger, SpMV-dominated, and reports the
//      (legitimately smaller, Amdahl-bounded) speedup without gating it.
//      Both run at tolerance 1e-7: above relative residual 1e-6 the
//      fused recurrence is trusted and every iteration is a single round
//      (the residual-replacement guard in solvers/cg/cg.hpp re-measures
//      below that, which would re-add rounds a tolerance-1e-11 run pays).
//   3. SIMD SpMV kernel — the 8-lane kSimd kernel against the kScalar
//      reference on a host wall-clock microbenchmark over the blockdiag
//      family (dense 64-wide rows, the kernel's best case and the reason
//      the family exists). The floor is ISA-aware — 2x where the AVX-512
//      path dispatches, 1.2x for the AVX2/generic fallbacks — and
//      bandwidth-aware: a pure-streaming probe over the same bytes
//      (values + column indices) measures the host's attainable ceiling,
//      and on machines where even a perfect kernel could not reach the ISA
//      floor (SpMV at this size is memory-bound by design — that is the
//      family's whole point) the gate drops to 75% of that ceiling.
//
// It also replays the speedup point through the perfsim CG model and
// checks the predicted per-iteration time against the executed one within
// the existing 3x model envelope (both directions).
//
// Everything lands in BENCH_cg.json (schema powerlin-bench-cg/v1). The
// virtual-time fields are fully deterministic and compared exactly against
// the checked-in smoke baseline under --check; the host wall-clock SpMV
// timings are machine-dependent and only floor-gated, never baselined.
//
// Flags:
//   --smoke           CI sizes (speedup point n=4Ki) instead of n=16Ki
//   --check           exit nonzero unless every gate above holds and — when
//                     --baseline is given — the deterministic fields match
//                     the checked-in smoke baseline
//   --out=PATH        JSON output path (default BENCH_cg.json)
//   --baseline=PATH   checked-in BENCH_cg_smoke.json to compare against
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "perfsim/simulator.hpp"
#include "solvers/cg/cg.hpp"
#include "sparse/generate.hpp"
#include "sparse/spmv_kernel.hpp"
#include "support/stopwatch.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

constexpr int kRanks = 8;
constexpr double kTolerance = 1e-7;  // keeps the fused bulk at one round

struct CgRun {
  std::vector<double> x;
  int iters = 0;
  double duration_s = 0.0;
  double iter_s = 0.0;  // duration / iterations
};

CgRun run_path(std::size_t n, solvers::CgPath path) {
  const hw::MachineSpec machine = hw::mini_cluster(/*nodes=*/2,
                                                   /*cores_per_socket=*/4);
  xmpi::RunConfig config;
  config.machine = machine;
  config.placement =
      hw::make_placement(kRanks, hw::LoadLayout::kFullLoad, machine);
  CgRun out;
  const xmpi::RunResult run =
      xmpi::Runtime::run(config, [&](xmpi::Comm& comm) {
        solvers::CgOptions options;
        options.kind = sparse::SparseKind::kStencil5;
        options.n = n;
        options.seed = 1;
        options.tolerance = kTolerance;
        options.path = path;
        const solvers::CgResult r = solve_pcg(comm, options);
        if (comm.rank() == 0) {
          out.x = r.x;
          out.iters = r.iterations;
        }
      });
  out.duration_s = run.duration_s;
  out.iter_s = out.iters > 0 ? run.duration_s / out.iters : 0.0;
  return out;
}

/// Best-of-reps host seconds for `sweeps` back-to-back SpMVs under the
/// given kernel (the result sum is returned through *sink so the loop
/// cannot be optimized away).
double time_spmv(const sparse::CsrMatrix& a, const std::vector<double>& x,
                 sparse::SpmvKernel kernel, int sweeps, double* sink) {
  sparse::SpmvConfig config;
  config.kernel = kernel;
  sparse::set_spmv_config(config);
  std::vector<double> y(a.rows);
  spmv(a, x, y);  // warm the caches and the page tables
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch wall;
    for (int s = 0; s < sweeps; ++s) spmv(a, x, y);
    best = std::min(best, wall.elapsed_s());
  }
  sparse::reset_spmv_config();
  for (const double v : y) *sink += v;
  return best / sweeps;
}

/// Best-of-reps host seconds to stream the bytes one SpMV sweep reads
/// (values + column indices), with 8-lane integer sums — no arithmetic
/// bottleneck, so this is the host's attainable memory ceiling for the
/// kernel working set.
double time_stream_floor(const sparse::CsrMatrix& a, std::uint64_t* sink) {
  const std::size_t val_words = a.values.size();
  const std::size_t col_words = a.col_idx.size() / 2;  // u32 pairs as u64
  const unsigned char* vals =
      reinterpret_cast<const unsigned char*>(a.values.data());
  const unsigned char* cols =
      reinterpret_cast<const unsigned char*>(a.col_idx.data());
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch wall;
    std::uint64_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (const auto [base, words] :
         {std::pair{vals, val_words}, std::pair{cols, col_words}}) {
      std::size_t w = 0;
      for (; w + 8 <= words; w += 8) {
        for (int l = 0; l < 8; ++l) {
          std::uint64_t word;
          std::memcpy(&word, base + (w + l) * 8, 8);
          acc[l] += word;
        }
      }
    }
    for (const std::uint64_t v : acc) *sink += v;
    best = std::min(best, wall.elapsed_s());
  }
  return best;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

double baseline_field(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"" + name + "\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_cg.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s' (expected --smoke --check "
                   "--out=PATH --baseline=PATH)\n",
                   argv[i]);
      return 2;
    }
  }

  const std::size_t n = smoke ? 4096 : 16384;
  std::printf("bench_cg: stencil5 n=%zu, %d ranks, tol %g (%s)\n", n, kRanks,
              kTolerance, smoke ? "smoke" : "full");

  // --- 1. overlap bit-identity -------------------------------------------
  const CgRun blocking = run_path(n, solvers::CgPath::kBlocking);
  const CgRun overlap = run_path(n, solvers::CgPath::kOverlap);
  const bool bit_identical =
      overlap.iters == blocking.iters && overlap.x == blocking.x;
  std::printf("  overlap:  %s blocking (%d iters)\n",
              bit_identical ? "bit-identical to" : "DIVERGED from",
              blocking.iters);

  // --- 2. end-to-end iteration speedup -----------------------------------
  const CgRun fused = run_path(n, solvers::CgPath::kFused);
  const double speedup =
      fused.iter_s > 0.0 ? blocking.iter_s / fused.iter_s : 0.0;
  std::printf("  blocking: %8.3f us/iter (%d iters)\n",
              blocking.iter_s * 1e6, blocking.iters);
  std::printf("  fused:    %8.3f us/iter (%d iters) -> %.2fx\n",
              fused.iter_s * 1e6, fused.iters, speedup);

  // --- 3. SIMD SpMV kernel (host wall clock) -----------------------------
  const std::size_t spmv_n = 65536;
  const sparse::CsrMatrix a =
      sparse::generate_matrix(sparse::SparseKind::kBlockDiag, 1, spmv_n);
  std::vector<double> x(spmv_n);
  for (std::size_t i = 0; i < spmv_n; ++i) {
    x[i] = std::sin(static_cast<double>(i) * 0.11) + 1.5;
  }
  double sink = 0.0;
  const double scalar_s =
      time_spmv(a, x, sparse::SpmvKernel::kScalar, /*sweeps=*/8, &sink);
  const double simd_s =
      time_spmv(a, x, sparse::SpmvKernel::kSimd, /*sweeps=*/8, &sink);
  const double spmv_speedup = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
  const std::string isa = sparse::simd_isa();
  const double isa_floor = isa == "avx512" ? 2.0 : 1.2;
  std::uint64_t stream_sink = 0;
  const double stream_s = time_stream_floor(a, &stream_sink);
  // The best any kernel streaming these bytes can do over the scalar
  // reference on this host (memory-bound by design at this size).
  const double attainable = stream_s > 0.0 ? scalar_s / stream_s : isa_floor;
  const double spmv_floor = std::min(isa_floor, 0.75 * attainable);
  std::printf("  spmv n=%zu nnz=%zu (%s): scalar %.3f ms, simd %.3f ms -> "
              "%.2fx (stream ceiling %.2fx, floor %.2fx)%s\n",
              spmv_n, a.nnz(), isa.c_str(), scalar_s * 1e3, simd_s * 1e3,
              spmv_speedup, attainable, spmv_floor,
              sink == 1e300 && stream_sink == 1 ? "!" : "");

  // --- 4. perfsim replay envelope ----------------------------------------
  const hw::MachineSpec machine = hw::mini_cluster(2, 4);
  const perfsim::Simulator simulator(machine);
  perfsim::Workload workload;
  workload.algorithm = perfsim::Algorithm::kCg;
  workload.matrix = sparse::SparseKind::kStencil5;
  workload.n = n;
  workload.tolerance = kTolerance;
  const hw::Placement placement =
      hw::make_placement(kRanks, hw::LoadLayout::kFullLoad, machine);
  const perfsim::Prediction prediction =
      simulator.predict(workload, placement);
  const int model_iters =
      perfsim::cg_model_iters(workload.matrix, workload.tolerance);
  const double predicted_iter_s =
      model_iters > 0 ? prediction.duration_s / model_iters : 0.0;
  const double model_ratio =
      fused.iter_s > 0.0 ? predicted_iter_s / fused.iter_s : 0.0;
  std::printf("  replay:   %8.3f us/iter predicted (%.2fx executed)\n",
              predicted_iter_s * 1e6, model_ratio);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-cg/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"n\": " << n << ",\n"
      << "  \"ranks\": " << kRanks << ",\n"
      << "  \"blocking_iters\": " << blocking.iters << ",\n"
      << "  \"blocking_s\": " << fmt(blocking.duration_s) << ",\n"
      << "  \"blocking_iter_s\": " << fmt(blocking.iter_s) << ",\n"
      << "  \"overlap_s\": " << fmt(overlap.duration_s) << ",\n"
      << "  \"fused_iters\": " << fused.iters << ",\n"
      << "  \"fused_s\": " << fmt(fused.duration_s) << ",\n"
      << "  \"fused_iter_s\": " << fmt(fused.iter_s) << ",\n"
      << "  \"speedup\": " << fmt(speedup) << ",\n"
      << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n"
      << "  \"simd_isa\": \"" << isa << "\",\n"
      << "  \"spmv_scalar_s\": " << fmt(scalar_s) << ",\n"
      << "  \"spmv_simd_s\": " << fmt(simd_s) << ",\n"
      << "  \"spmv_speedup\": " << fmt(spmv_speedup) << ",\n"
      << "  \"spmv_stream_s\": " << fmt(stream_s) << ",\n"
      << "  \"spmv_attainable\": " << fmt(attainable) << ",\n"
      << "  \"spmv_floor\": " << fmt(spmv_floor) << ",\n"
      << "  \"predicted_iter_s\": " << fmt(predicted_iter_s) << ",\n"
      << "  \"model_ratio\": " << fmt(model_ratio) << "\n}\n";
  if (!out.flush()) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    bool ok = true;
    if (!bit_identical) {
      std::fprintf(stderr,
                   "FAIL: overlap path is not bit-identical to blocking\n");
      ok = false;
    }
    if (smoke && speedup < 1.3) {
      std::fprintf(stderr,
                   "FAIL: fused iteration speedup %.2fx below the 1.3x "
                   "gate at the latency-dominated smoke point\n",
                   speedup);
      ok = false;
    }
    if (spmv_speedup < spmv_floor) {
      std::fprintf(stderr,
                   "FAIL: simd spmv speedup %.2fx below the %.2fx floor "
                   "(%s, stream ceiling %.2fx)\n",
                   spmv_speedup, spmv_floor, isa.c_str(), attainable);
      ok = false;
    }
    if (model_ratio > 3.0 || (model_ratio > 0.0 && model_ratio < 1.0 / 3.0)) {
      std::fprintf(stderr,
                   "FAIL: perfsim per-iteration prediction off by %.2fx "
                   "(envelope 3x)\n",
                   model_ratio);
      ok = false;
    }
    if (!baseline_path.empty()) {
      // Virtual-time outputs are deterministic: iterations exact, durations
      // to the %.6g precision the baseline file stores.
      const struct {
        const char* name;
        double value;
        bool exact;
      } fields[] = {
          {"blocking_iters", static_cast<double>(blocking.iters), true},
          {"fused_iters", static_cast<double>(fused.iters), true},
          {"blocking_s", blocking.duration_s, false},
          {"overlap_s", overlap.duration_s, false},
          {"fused_s", fused.duration_s, false},
      };
      for (const auto& field : fields) {
        const double base = baseline_field(baseline_path, field.name);
        if (base < 0.0) {
          std::fprintf(stderr, "FAIL: no %s field in %s\n", field.name,
                       baseline_path.c_str());
          ok = false;
          continue;
        }
        const bool match = field.exact
                               ? base == field.value
                               : std::fabs(field.value - base) <= 1e-5 * base;
        if (!match) {
          std::fprintf(stderr, "FAIL: %s %.6g != baseline %.6g\n",
                       field.name, field.value, base);
          ok = false;
        }
      }
      if (ok) std::printf("check ok: matches %s\n", baseline_path.c_str());
    }
    if (!ok) return 1;
  }
  return 0;
}
