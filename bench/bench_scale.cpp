// 100k-virtual-rank scale harness: gates the compact-rank-state work.
//
// Measures, at a deterministic campaign point of N ranks (default 100000,
// --smoke drops to 10000 for CI):
//
//   1. bytes_per_rank_state — RSS growth of constructing the full rank
//      state (placement + World + FiberScheduler) divided by N. Fiber
//      stacks are leased lazily at first dispatch, so this is exactly the
//      steady-state footprint *excluding live fiber stacks* that the
//      acceptance criterion bounds at 4 KiB/rank.
//   2. spawn_ranks_per_s — throughput of running an empty rank body on
//      every rank through the worker pool (stack lease, context setup,
//      dispatch, recycle).
//   3. allreduce wall time — 64 doubles under the scalable schedules
//      (recursive doubling at this count), verified in-harness.
//   4. allgather wall time — 1 byte per rank under the scalable schedules
//      (Bruck above 128 ranks), verified in-harness.
//
// Peak RSS of phases 3/4 is sampled by bench/rss.hpp; the sparse peer-map
// aggregates (RunResult::peer_entries_max) and process-wide StackPool
// counters round out the report. Everything lands in BENCH_scale.json
// (schema powerlin-bench-scale/v1).
//
// Flags:
//   --smoke           10000 ranks instead of 100000
//   --ranks=N         explicit rank count (overrides --smoke / default)
//   --out=PATH        JSON output path (default BENCH_scale.json)
//   --check           exit nonzero unless bytes_per_rank_state <= 4096 and,
//                     when --baseline is given, <= 1.2x the baseline value
//   --baseline=PATH   checked-in BENCH_scale.json to regress against
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rss.hpp"

#include "hwmodel/placement.hpp"
#include "xmpi/runtime.hpp"
#include "xmpi/scheduler.hpp"
#include "xmpi/stackpool.hpp"
#include "xmpi/world.hpp"

namespace {

using namespace plin;

/// Same mini-cluster shape as bench_xmpi: fully loaded 2x8-core nodes,
/// just enough of them to hold the rank count (100000 ranks => 6250 nodes).
xmpi::RunConfig scale_config(int ranks) {
  constexpr int kCoresPerSocket = 8;
  const int nodes = (ranks + 2 * kCoresPerSocket - 1) / (2 * kCoresPerSocket);
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(std::max(nodes, 1), kCoresPerSocket);
  config.placement =
      hw::make_placement(ranks, hw::LoadLayout::kFullLoad, config.machine);
  config.executor = xmpi::ExecutorKind::kWorkerPool;
  // The whole point of this harness: the scalable schedule family at a
  // non-power-of-two rank count.
  config.transport.collectives = xmpi::CollectiveMode::kScalable;
  return config;
}

template <typename F>
double seconds_of(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Report {
  int ranks = 0;
  bool smoke = false;
  std::uint64_t rank_state_total_bytes = 0;
  double bytes_per_rank_state = 0.0;
  double spawn_s = 0.0;
  double spawn_ranks_per_s = 0.0;
  double allreduce_s = 0.0;
  std::uint64_t allreduce_peak_rss_bytes = 0;
  double allgather_s = 0.0;
  std::uint64_t allgather_peak_rss_bytes = 0;
  std::uint64_t peer_entries_max = 0;
  std::uint64_t peer_entries_total = 0;
  xmpi::StackPool::Stats stacks;
};

/// RSS growth of materializing every per-rank structure without running
/// anything: placement, World (slab RankState array, mailboxes, layout,
/// ledgers) and the FiberScheduler task table. No fiber is dispatched, so
/// no stack is leased — matching the "excluding live fiber stacks" wording
/// of the acceptance criterion.
std::uint64_t measure_rank_state_bytes(int ranks) {
  const std::uint64_t rss0 = bench::current_rss_bytes();
  const xmpi::RunConfig config = scale_config(ranks);
  xmpi::World world(config.machine, config.placement);
  world.configure_transport(config.transport);
  std::vector<xmpi::FiberScheduler::Task> tasks;
  tasks.reserve(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    xmpi::FiberScheduler::Task task;
    task.body = [] {};
    task.hw = &world.rank_state(rank).hw_context;
    tasks.push_back(std::move(task));
  }
  xmpi::FiberScheduler scheduler(std::move(tasks),
                                 xmpi::FiberScheduler::Options{});
  const std::uint64_t rss1 = bench::current_rss_bytes();
  return rss1 > rss0 ? rss1 - rss0 : 0;
}

/// Rank body for the allreduce leg: element 0 carries the rank id, the
/// rest carry 1.0. Both reductions are integer-valued and well inside
/// 2^53, so the expected sums are exact in double and a bitwise mismatch
/// means a broken schedule, not rounding.
void allreduce_body(xmpi::Comm& comm, std::atomic<int>& failures) {
  constexpr std::size_t kCount = 64;
  const int p = comm.size();
  std::vector<double> data(kCount, 1.0);
  data[0] = static_cast<double>(comm.rank());
  std::vector<double> out(kCount, 0.0);
  comm.allreduce(std::span<const double>(data), std::span<double>(out),
                 xmpi::ReduceOp::kSum);
  const double expected0 =
      static_cast<double>(p) * static_cast<double>(p - 1) / 2.0;
  bool ok = out[0] == expected0;
  for (std::size_t i = 1; ok && i < kCount; ++i) {
    ok = out[i] == static_cast<double>(p);
  }
  if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
}

/// Rank body for the allgather leg: one byte per rank. Boundary ranks
/// verify the full vector; everyone else spot-checks (a full check on all
/// ranks would be O(P^2) host work at 100k ranks).
void allgather_body(xmpi::Comm& comm, std::atomic<int>& failures) {
  const int p = comm.size();
  const auto tag = [](int rank) {
    return static_cast<std::uint8_t>(rank & 0xff);
  };
  const std::uint8_t mine = tag(comm.rank());
  std::vector<std::uint8_t> out(static_cast<std::size_t>(p), 0);
  comm.allgather(std::span<const std::uint8_t>(&mine, 1),
                 std::span<std::uint8_t>(out));
  bool ok = true;
  if (comm.rank() == 0 || comm.rank() == p - 1) {
    for (int i = 0; ok && i < p; ++i) ok = out[i] == tag(i);
  } else {
    ok = out[comm.rank()] == mine && out[0] == tag(0) &&
         out[p - 1] == tag(p - 1);
  }
  if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool write_json(const std::string& path, const Report& r) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-scale/v1\",\n"
      << "  \"mode\": \"" << (r.smoke ? "smoke" : "full") << "\",\n"
      << "  \"ranks\": " << r.ranks << ",\n"
      << "  \"rank_state_total_bytes\": " << r.rank_state_total_bytes
      << ",\n"
      << "  \"bytes_per_rank_state\": " << fmt(r.bytes_per_rank_state)
      << ",\n"
      << "  \"spawn_s\": " << fmt(r.spawn_s) << ",\n"
      << "  \"spawn_ranks_per_s\": " << fmt(r.spawn_ranks_per_s) << ",\n"
      << "  \"allreduce_s\": " << fmt(r.allreduce_s) << ",\n"
      << "  \"allreduce_peak_rss_bytes\": " << r.allreduce_peak_rss_bytes
      << ",\n"
      << "  \"allgather_s\": " << fmt(r.allgather_s) << ",\n"
      << "  \"allgather_peak_rss_bytes\": " << r.allgather_peak_rss_bytes
      << ",\n"
      << "  \"peer_entries_max\": " << r.peer_entries_max << ",\n"
      << "  \"peer_entries_total\": " << r.peer_entries_total << ",\n"
      << "  \"stackpool\": {\"slabs\": " << r.stacks.slabs
      << ", \"mapped_bytes\": " << r.stacks.mapped_bytes
      << ", \"served\": " << r.stacks.served
      << ", \"reuse_hits\": " << r.stacks.reuse_hits
      << ", \"peak_live\": " << r.stacks.peak_live << "}\n"
      << "}\n";
  return static_cast<bool>(out.flush());
}

/// Pulls "bytes_per_rank_state": <number> out of a previous report. A
/// full JSON parser would be overkill for one flat field we wrote
/// ourselves; returns a negative value when the file or field is missing.
double baseline_bytes_per_rank(const std::string& path) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"bytes_per_rank_state\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  int ranks_override = 0;
  std::string out_path = "BENCH_scale.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--ranks=", 8) == 0) {
      ranks_override = std::atoi(argv[i] + 8);
      if (ranks_override < 2) {
        std::fprintf(stderr, "error: --ranks must be >= 2\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s' (expected --smoke "
                   "--ranks=N --check --out=PATH --baseline=PATH)\n",
                   argv[i]);
      return 2;
    }
  }

  Report report;
  report.smoke = smoke;
  report.ranks = ranks_override != 0 ? ranks_override : (smoke ? 10000
                                                               : 100000);
  const int ranks = report.ranks;
  std::printf("bench_scale: %d ranks (%s)\n", ranks,
              smoke ? "smoke" : "full");

  // Phase 1: steady-state rank footprint. Measured first, in a process
  // that has not yet run a workload, so the RSS delta is not polluted by
  // allocator reuse of earlier peaks.
  report.rank_state_total_bytes = measure_rank_state_bytes(ranks);
  report.bytes_per_rank_state =
      static_cast<double>(report.rank_state_total_bytes) / ranks;
  std::printf("  rank state        %8.1f bytes/rank  (%.1f MiB total)\n",
              report.bytes_per_rank_state,
              report.rank_state_total_bytes / (1024.0 * 1024.0));

  const xmpi::RunConfig config = scale_config(ranks);
  std::atomic<int> failures{0};

  // Phase 2: spawn throughput (empty bodies — stack lease + context setup
  // + dispatch + recycle per rank).
  report.spawn_s = seconds_of([&] {
    (void)xmpi::Runtime::run(config, [](xmpi::Comm&) {});
  });
  report.spawn_ranks_per_s = ranks / report.spawn_s;
  std::printf("  spawn             %8.3f s  (%.0f ranks/s)\n",
              report.spawn_s, report.spawn_ranks_per_s);

  // Phase 3: allreduce of 64 doubles (recursive-doubling path at this
  // count), verified on every rank.
  {
    bench::RssSampler sampler;
    xmpi::RunResult run;
    report.allreduce_s = seconds_of([&] {
      run = xmpi::Runtime::run(config, [&failures](xmpi::Comm& comm) {
        allreduce_body(comm, failures);
      });
    });
    sampler.stop();
    report.allreduce_peak_rss_bytes = sampler.peak_bytes();
    report.peer_entries_max =
        std::max(report.peer_entries_max, run.peer_entries_max);
    report.peer_entries_total =
        std::max(report.peer_entries_total, run.peer_entries_total);
  }
  std::printf("  allreduce(64 f64) %8.3f s  (peak rss %.1f MiB)\n",
              report.allreduce_s,
              report.allreduce_peak_rss_bytes / (1024.0 * 1024.0));

  // Phase 4: allgather of 1 byte per rank (Bruck path), verified.
  {
    bench::RssSampler sampler;
    xmpi::RunResult run;
    report.allgather_s = seconds_of([&] {
      run = xmpi::Runtime::run(config, [&failures](xmpi::Comm& comm) {
        allgather_body(comm, failures);
      });
    });
    sampler.stop();
    report.allgather_peak_rss_bytes = sampler.peak_bytes();
    report.peer_entries_max =
        std::max(report.peer_entries_max, run.peer_entries_max);
    report.peer_entries_total =
        std::max(report.peer_entries_total, run.peer_entries_total);
  }
  std::printf("  allgather(1 B)    %8.3f s  (peak rss %.1f MiB)\n",
              report.allgather_s,
              report.allgather_peak_rss_bytes / (1024.0 * 1024.0));

  report.stacks = xmpi::StackPool::instance().stats();
  std::printf("  peer entries      max %llu / total %llu\n",
              static_cast<unsigned long long>(report.peer_entries_max),
              static_cast<unsigned long long>(report.peer_entries_total));
  std::printf("  stackpool         %llu slabs, %llu served, %llu reused, "
              "peak live %llu\n",
              static_cast<unsigned long long>(report.stacks.slabs),
              static_cast<unsigned long long>(report.stacks.served),
              static_cast<unsigned long long>(report.stacks.reuse_hits),
              static_cast<unsigned long long>(report.stacks.peak_live));

  if (failures.load() != 0) {
    std::fprintf(stderr, "FAIL: %d ranks saw wrong collective results\n",
                 failures.load());
    return 1;
  }

  if (!write_json(out_path, report)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    constexpr double kMaxBytesPerRank = 4096.0;
    if (report.bytes_per_rank_state > kMaxBytesPerRank) {
      std::fprintf(stderr,
                   "FAIL: %.1f bytes/rank exceeds the %.0f-byte budget\n",
                   report.bytes_per_rank_state, kMaxBytesPerRank);
      return 1;
    }
    if (!baseline_path.empty()) {
      const double baseline = baseline_bytes_per_rank(baseline_path);
      if (baseline <= 0.0) {
        std::fprintf(stderr, "FAIL: no bytes_per_rank_state in %s\n",
                     baseline_path.c_str());
        return 1;
      }
      if (report.bytes_per_rank_state > 1.2 * baseline) {
        std::fprintf(stderr,
                     "FAIL: %.1f bytes/rank regresses >20%% over the "
                     "baseline %.1f\n",
                     report.bytes_per_rank_state, baseline);
        return 1;
      }
      std::printf("check ok: %.1f bytes/rank (baseline %.1f)\n",
                  report.bytes_per_rank_state, baseline);
    }
  }
  return 0;
}
