// Reproduces the paper's §2 fault-tolerance motivation (citing Artioli,
// Loreti & Ciampolini 2019): IMe's integrated algorithm-based fault
// tolerance (a local checksum column, rebuilt in place) versus the
// checkpoint/restart technique usually applied to Gaussian elimination.
// Both are run fault-free (pure protection overhead) and with one injected
// fault (protection + recovery), against their unprotected baselines.
#include <iostream>

#include "hwmodel/placement.hpp"
#include "solvers/gepp/pdgesv.hpp"
#include "solvers/ime/imep.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

int main() {
  using namespace plin;
  const std::size_t n = 512;
  const std::size_t nb = 16;
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(8, 4);
  config.placement =
      hw::make_placement(16, hw::LoadLayout::kFullLoad, config.machine);

  const auto run_ime = [&](bool protect, bool fault) {
    return xmpi::Runtime::run(config, [&](xmpi::Comm& comm) {
      solvers::ImepOptions options;
      options.n = n;
      options.seed = 71;
      options.checksum_ft = protect;
      if (fault) {
        options.inject_faults = {{n / 2, 3}};
      }
      (void)solve_imep(comm, options);
    });
  };
  const auto run_lu = [&](bool protect, bool fault) {
    return xmpi::Runtime::run(config, [&](xmpi::Comm& comm) {
      if (protect) {
        solvers::PdgetrfFtOptions options;
        options.base.n = n;
        options.base.seed = 71;
        options.base.nb = nb;
        options.checkpoint_every_panels = 4;
        if (fault) {
          options.inject_fault_at_panel = n / nb / 2 + 3;
        }
        (void)pdgetrf_checkpointed(comm, options);
      } else {
        solvers::PdgesvOptions options;
        options.n = n;
        options.seed = 71;
        options.nb = nb;
        (void)pdgetrf(comm, options);
      }
    });
  };

  std::cout << "Fault-tolerance comparison (numeric tier, n=" << n
            << ", 16 ranks): IMe checksum ABFT vs\nLU checkpoint/restart "
               "(checkpoint every 4 panels)\n\n";
  TextTable table({"technique", "mode", "duration", "energy",
                   "overhead vs baseline"});
  std::vector<std::vector<std::string>> csv_rows;

  struct Case {
    const char* technique;
    const char* mode;
    xmpi::RunResult result;
    double baseline_j;
  };
  const xmpi::RunResult ime_base = run_ime(false, false);
  const xmpi::RunResult lu_base = run_lu(false, false);
  const std::vector<Case> cases = {
      {"IMe checksum", "baseline (off)", ime_base, ime_base.energy.total_j()},
      {"IMe checksum", "protected, no fault", run_ime(true, false),
       ime_base.energy.total_j()},
      {"IMe checksum", "protected + 1 fault", run_ime(true, true),
       ime_base.energy.total_j()},
      {"LU checkpoint", "baseline (off)", lu_base, lu_base.energy.total_j()},
      {"LU checkpoint", "protected, no fault", run_lu(true, false),
       lu_base.energy.total_j()},
      {"LU checkpoint", "protected + 1 fault", run_lu(true, true),
       lu_base.energy.total_j()},
  };
  for (const Case& c : cases) {
    const double overhead =
        100.0 * (c.result.energy.total_j() / c.baseline_j - 1.0);
    table.add_row({c.technique, c.mode, format_duration(c.result.duration_s),
                   format_energy(c.result.energy.total_j()),
                   format_fixed(overhead, 1) + " %"});
    csv_rows.push_back({c.technique, c.mode,
                        format_fixed(c.result.duration_s, 9),
                        format_fixed(c.result.energy.total_j(), 6)});
  }
  table.print(std::cout);
  std::cout << "\nIMe's integrated fault tolerance costs a checksum column "
               "per rank and recovers\nlocally; checkpoint/restart pays "
               "snapshot traffic continuously and recomputes\nlost panels "
               "on a fault — the relation the paper cites from the IMe "
               "literature.\n";

  std::cout << "\n== CSV ft_comparison ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"technique", "mode", "duration_s", "total_j"});
  for (const auto& row : csv_rows) csv.write_row(row);
  return 0;
}
