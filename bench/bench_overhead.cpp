// Quantifies the monitoring overhead the paper accepts as its accuracy
// compromise (§4): the white-box protocol's extra communicator splits and
// synchronization barriers versus an unmonitored run, plus the black-box
// variant without world-alignment barriers.
#include <iostream>

#include "hwmodel/placement.hpp"
#include "monitor/white_box.hpp"
#include "solvers/ime/imep.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

int main() {
  using namespace plin;
  const hw::MachineSpec machine = hw::mini_cluster(8, 4);

  std::cout << "Monitoring overhead (numeric tier, executed)\n\n";
  TextTable table({"n", "ranks", "bare", "white-box", "black-box",
                   "white-box overhead"});
  struct Row {
    std::size_t n;
    int ranks;
    double bare, white, black;
  };
  std::vector<Row> rows;

  for (const auto& [n, ranks] :
       std::vector<std::pair<std::size_t, int>>{{256, 8}, {512, 8},
                                                {512, 16}, {768, 16}}) {
    xmpi::RunConfig config;
    config.machine = machine;
    config.placement =
        hw::make_placement(ranks, hw::LoadLayout::kFullLoad, machine);
    const auto solve = [n = n](xmpi::Comm& comm) {
      solvers::ImepOptions options;
      options.n = n;
      options.seed = 17;
      (void)solve_imep(comm, options);
    };

    const double bare = xmpi::Runtime::run(config, solve).duration_s;
    const double white =
        xmpi::Runtime::run(config, [&](xmpi::Comm& world) {
          (void)monitor::monitored_run(world, monitor::MonitorOptions{},
                                       solve);
        }).duration_s;
    const double black =
        xmpi::Runtime::run(config, [&](xmpi::Comm& world) {
          (void)monitor::blackbox_run(world, monitor::MonitorOptions{},
                                      solve);
        }).duration_s;

    rows.push_back(Row{n, ranks, bare, white, black});
    table.add_row({std::to_string(n), std::to_string(ranks),
                   format_duration(bare), format_duration(white),
                   format_duration(black),
                   format_fixed(100.0 * (white / bare - 1.0), 2) + " %"});
  }
  table.print(std::cout);
  std::cout << "\nThe paper: \"despite a slight overhead compromise due to "
               "synchronization,\nthis design permits accurate "
               "measurements.\"\n";

  std::cout << "\n== CSV overhead ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"n", "ranks", "bare_s", "whitebox_s", "blackbox_s"});
  for (const Row& row : rows) {
    csv.write_row({std::to_string(row.n), std::to_string(row.ranks),
                   format_fixed(row.bare, 9), format_fixed(row.white, 9),
                   format_fixed(row.black, 9)});
  }
  return 0;
}
