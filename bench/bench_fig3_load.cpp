// Reproduces Figure 3: energy consumption of fully loaded processors
// (48 ranks/node) versus the two half-loaded deployments (24 ranks on one
// socket; 12+12 across both sockets), for IMe and ScaLAPACK across the
// four matrix sizes.
//
// Paper findings to check against: the full-load configuration always
// consumes least; the two half-load variants are close to each other.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace plin;
  using bench::PaperSweep;
  const std::vector<hw::LoadLayout> layouts = {
      hw::LoadLayout::kFullLoad, hw::LoadLayout::kHalfLoadOneSocket,
      hw::LoadLayout::kHalfLoadTwoSockets};
  const PaperSweep sweep(layouts);

  std::cout << "Figure 3 — full-load vs half-load energy (replay tier, "
               "Marconi A3)\n\n";
  for (int ranks : hw::kPaperRankCounts) {
    TextTable table({"algorithm", "n", "full 48r/n", "half 24r/1skt",
                     "half 12+12", "full is lowest"});
    for (perfsim::Algorithm algorithm :
         {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
      for (std::size_t n : hw::kPaperMatrixSizes) {
        const double full =
            sweep.at(algorithm, n, ranks, hw::LoadLayout::kFullLoad)
                .total_j();
        const double half1 =
            sweep.at(algorithm, n, ranks, hw::LoadLayout::kHalfLoadOneSocket)
                .total_j();
        const double half2 =
            sweep
                .at(algorithm, n, ranks, hw::LoadLayout::kHalfLoadTwoSockets)
                .total_j();
        table.add_row({perfsim::to_string(algorithm), std::to_string(n),
                       format_energy(full), format_energy(half1),
                       format_energy(half2),
                       (full <= half1 && full <= half2) ? "yes" : "NO"});
      }
      table.add_rule();
    }
    std::cout << "-- " << ranks << " ranks --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  bench::csv_block_header(std::cout, "fig3_load");
  CsvWriter csv(std::cout);
  csv.write_row({"algorithm", "n", "ranks", "layout", "duration_s",
                 "total_j"});
  for (perfsim::Algorithm algorithm :
       {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        for (hw::LoadLayout layout : layouts) {
          const perfsim::Prediction& p = sweep.at(algorithm, n, ranks, layout);
          csv.write_row({perfsim::to_string(algorithm), std::to_string(n),
                         std::to_string(ranks), hw::to_string(layout),
                         format_fixed(p.duration_s, 6),
                         format_fixed(p.total_j(), 3)});
        }
      }
    }
  }

  bench::run_numeric_miniature(std::cout);
  return 0;
}
