// Batch orchestrator perf-regression harness.
//
// Runs one numeric-tier campaign grid through the orchestrator four ways —
// fresh on 1 worker, fresh on 4 workers, interrupted + resumed, and a
// pure-cache resume — prints a host wall-clock table and writes
// machine-readable `BENCH_batch.json` (mirroring BENCH_kernels.json /
// BENCH_xmpi.json) so orchestration overhead has a recorded trajectory.
// The simulated results are bit-identical across all four schedules, which
// the harness verifies by diffing the stores' report bytes.
//
// Flags:
//   --smoke      smaller grid (CI smoke mode)
//   --out PATH   JSON output path (default BENCH_batch.json)
//   --check      exit nonzero unless (a) every schedule produced the same
//                report bytes and (b) the pure-cache resume beat the fresh
//                single-worker run
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "batch/campaign.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace plin;

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "plin_bench_batch" / name;
  fs::remove_all(dir);
  return dir.string();
}

struct Case {
  std::string name;
  double host_s = 0.0;
  std::size_t executed = 0;
  std::size_t cached = 0;
  std::string report;  // report.csv bytes
};

Case run_case(const std::string& name, const batch::CampaignManifest& manifest,
              batch::CampaignOptions options) {
  Case result;
  result.name = name;
  Stopwatch wall;
  const batch::CampaignResult campaign =
      batch::run_campaign(manifest, options);
  result.host_s = wall.elapsed_s();
  result.executed = campaign.outcome.executed;
  result.cached = campaign.outcome.cached;
  result.report = read_file(campaign.csv_path);
  if (!campaign.outcome.failures.empty()) {
    throw Error("bench_batch: campaign case '" + name + "' had failures");
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool check = args.get_bool("check", false);
  const std::string out_path = args.get("out", "BENCH_batch.json");

  batch::CampaignManifest manifest;
  manifest.name = smoke ? "bench-batch-smoke" : "bench-batch";
  manifest.tier = batch::Tier::kNumeric;
  manifest.machine = "mini:8x4";
  manifest.algorithms = {perfsim::Algorithm::kIme,
                         perfsim::Algorithm::kScalapack};
  manifest.sizes = smoke ? std::vector<std::size_t>{96, 128}
                         : std::vector<std::size_t>{128, 192, 256};
  manifest.rank_counts = smoke ? std::vector<int>{4} : std::vector<int>{4, 8};
  manifest.layouts = {hw::LoadLayout::kFullLoad,
                      hw::LoadLayout::kHalfLoadTwoSockets};
  manifest.repetitions = 2;

  std::vector<Case> cases;
  try {
    batch::CampaignOptions serial;
    serial.store_dir = scratch_dir("serial");
    serial.workers = 1;
    cases.push_back(run_case("fresh-1-worker", manifest, serial));

    batch::CampaignOptions pooled;
    pooled.store_dir = scratch_dir("pooled");
    pooled.workers = 4;
    cases.push_back(run_case("fresh-4-workers", manifest, pooled));

    batch::CampaignOptions interrupted;
    interrupted.store_dir = scratch_dir("interrupted");
    interrupted.workers = 4;
    interrupted.max_jobs = manifest.job_count() / 2;
    run_case("interrupt-half", manifest, interrupted);
    interrupted.max_jobs = static_cast<std::size_t>(-1);
    cases.push_back(run_case("resume-after-interrupt", manifest,
                             interrupted));

    // Pure cache: every job served from the journal, no execution.
    cases.push_back(run_case("resume-pure-cache", manifest, serial));
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }

  TextTable table({"case", "host time", "executed", "cached"});
  for (const Case& c : cases) {
    table.add_row({c.name, format_duration(c.host_s),
                   std::to_string(c.executed), std::to_string(c.cached)});
  }
  std::cout << "batch orchestrator harness (" << manifest.job_count()
            << " jobs x " << manifest.repetitions << " reps, numeric tier"
            << (smoke ? ", smoke" : "") << ")\n\n";
  table.print(std::cout);

  bool identical = true;
  for (const Case& c : cases) {
    if (c.report != cases.front().report) identical = false;
  }
  std::cout << "\nreports byte-identical across schedules: "
            << (identical ? "yes" : "NO") << "\n";

  std::ofstream json(out_path, std::ios::trunc);
  json << "{\n  \"bench\": \"batch\",\n  \"jobs\": " << manifest.job_count()
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"reports_identical\": " << (identical ? "true" : "false")
       << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    json << "    {\"name\": \"" << c.name << "\", \"host_s\": " << c.host_s
         << ", \"executed\": " << c.executed << ", \"cached\": " << c.cached
         << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (check) {
    const bool cache_wins = cases.back().host_s < cases.front().host_s;
    std::cout << "check: identical=" << (identical ? "pass" : "FAIL")
              << " cache-beats-fresh=" << (cache_wins ? "pass" : "FAIL")
              << "\n";
    return identical && cache_wins ? 0 : 1;
  }
  return 0;
}
