// Pins the replay tier against the execution tier: for configurations
// small enough to run, the analytic predictions must track the virtual
// durations and energies of the actually-executed solvers. This is the
// license for generating the paper-scale figures from perfsim
// (tests/model_validation_test.cpp asserts the bounds; this bench prints
// the full comparison).
#include <iostream>

#include "hwmodel/placement.hpp"
#include "perfsim/simulator.hpp"
#include "solvers/gepp/pdgesv.hpp"
#include "solvers/ime/imep.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

int main() {
  using namespace plin;
  const hw::MachineSpec machine = hw::mini_cluster(32, 4);
  const perfsim::Simulator simulator(machine);

  std::cout << "Replay tier vs execution tier (mini-cluster, 2x4-core "
               "nodes)\n\n";
  TextTable table({"algorithm", "n", "ranks", "layout", "T executed",
                   "T predicted", "T err", "E executed", "E predicted",
                   "E err"});
  struct Cell {
    perfsim::Algorithm alg;
    std::size_t n;
    int ranks;
    hw::LoadLayout layout;
  };
  const std::vector<Cell> cells = {
      {perfsim::Algorithm::kIme, 256, 8, hw::LoadLayout::kFullLoad},
      {perfsim::Algorithm::kIme, 512, 8, hw::LoadLayout::kFullLoad},
      {perfsim::Algorithm::kIme, 512, 16, hw::LoadLayout::kFullLoad},
      {perfsim::Algorithm::kIme, 512, 16, hw::LoadLayout::kHalfLoadTwoSockets},
      {perfsim::Algorithm::kScalapack, 256, 8, hw::LoadLayout::kFullLoad},
      {perfsim::Algorithm::kScalapack, 512, 8, hw::LoadLayout::kFullLoad},
      {perfsim::Algorithm::kScalapack, 512, 16, hw::LoadLayout::kFullLoad},
      {perfsim::Algorithm::kScalapack, 512, 16,
       hw::LoadLayout::kHalfLoadTwoSockets},
  };

  std::vector<std::vector<std::string>> csv_rows;
  for (const Cell& cell : cells) {
    xmpi::RunConfig config;
    config.machine = machine;
    config.placement = hw::make_placement(cell.ranks, cell.layout, machine);
    const std::size_t nb = 16;

    const xmpi::RunResult executed = xmpi::Runtime::run(
        config, [&](xmpi::Comm& comm) {
          if (cell.alg == perfsim::Algorithm::kIme) {
            solvers::ImepOptions options;
            options.n = cell.n;
            options.seed = 7;
            (void)solve_imep(comm, options);
          } else {
            solvers::PdgesvOptions options;
            options.n = cell.n;
            options.seed = 7;
            options.nb = nb;
            (void)solve_pdgesv(comm, options);
          }
        });
    const perfsim::Prediction predicted = simulator.predict(
        perfsim::Workload{cell.alg, cell.n, nb}, config.placement);

    const double terr = rel_diff(predicted.duration_s, executed.duration_s);
    const double eerr =
        rel_diff(predicted.total_j(), executed.energy.total_j());
    table.add_row({perfsim::to_string(cell.alg), std::to_string(cell.n),
                   std::to_string(cell.ranks), hw::to_string(cell.layout),
                   format_duration(executed.duration_s),
                   format_duration(predicted.duration_s),
                   format_fixed(100.0 * terr, 1) + " %",
                   format_energy(executed.energy.total_j()),
                   format_energy(predicted.total_j()),
                   format_fixed(100.0 * eerr, 1) + " %"});
    csv_rows.push_back({perfsim::to_string(cell.alg), std::to_string(cell.n),
                        std::to_string(cell.ranks),
                        hw::to_string(cell.layout),
                        format_fixed(executed.duration_s, 9),
                        format_fixed(predicted.duration_s, 9),
                        format_fixed(executed.energy.total_j(), 6),
                        format_fixed(predicted.total_j(), 6)});
  }
  table.print(std::cout);

  std::cout << "\n== CSV model_validation ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"algorithm", "n", "ranks", "layout", "executed_s",
                 "predicted_s", "executed_j", "predicted_j"});
  for (const auto& row : csv_rows) csv.write_row(row);
  return 0;
}
