// Reproduces Figure 2 as an executable trace: the structure of the MPI
// program in the common-nodes solution. Runs a 4-node miniature and prints
// each rank's protocol events in virtual-time order, showing the
// communicator split, the monitoring-rank election, the barrier-bracketed
// measurement window and the solver phase.
#include <algorithm>
#include <iostream>
#include <mutex>
#include <vector>

#include "hwmodel/placement.hpp"
#include "monitor/white_box.hpp"
#include "solvers/ime/imep.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

int main() {
  using namespace plin;

  struct Event {
    double time;
    int rank;
    int node;
    std::string what;
  };
  std::vector<Event> events;
  std::mutex mutex;
  const auto log_event = [&](xmpi::Comm& comm, const std::string& what) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back(Event{comm.now(), comm.rank(), comm.my_node(), what});
  };

  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(4, 2);  // 4 nodes x 2x2 cores
  config.placement =
      hw::make_placement(16, hw::LoadLayout::kFullLoad, config.machine);

  xmpi::Runtime::run(config, [&](xmpi::Comm& world) {
    log_event(world, "MPI init");
    xmpi::Comm node_comm = world.split_shared_node();
    const bool monitoring = node_comm.rank() == node_comm.size() - 1;
    if (monitoring) {
      log_event(world, "elected monitoring rank of node " +
                           std::to_string(world.my_node()));
    }
    node_comm.barrier();
    log_event(world, "MPI barrier sync COMM_NODE");
    monitor::MonitoringSession session;
    if (monitoring) {
      session.start(world);
      log_event(world, "starts monitoring");
    }
    world.barrier();
    log_event(world, "MPI barrier sync COMM_WORLD");

    solvers::ImepOptions options;
    options.n = 384;
    options.seed = 2;
    (void)solve_imep(world, options);
    log_event(world, "runs its linear system solver part: done");

    node_comm.barrier();
    log_event(world, "MPI barrier sync COMM_NODE");
    if (monitoring) {
      session.stop(world);
      log_event(world,
                "stops monitoring: " +
                    format_energy(session.total_pkg_j() +
                                  session.total_dram_j()) +
                    " in " + format_duration(session.duration_s()));
      session.terminate();
    }
    world.barrier();
    log_event(world, "MPI finalize");
  });

  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.rank < b.rank;
  });

  std::cout << "Figure 2 — structure of the MPI program (executed trace, "
               "16 ranks on 4 nodes)\n\n";
  TextTable table({"virtual time", "rank", "node", "event"});
  // The full trace is long; print the interesting subset: every event of
  // the monitoring ranks plus rank 0, and all election/monitoring events.
  for (const Event& event : events) {
    const bool interesting =
        event.rank == 0 || event.what.find("monitor") != std::string::npos ||
        event.what.find("elected") != std::string::npos;
    if (!interesting) continue;
    table.add_row({format_duration(event.time), std::to_string(event.rank),
                   std::to_string(event.node), event.what});
  }
  table.print(std::cout);
  std::cout << "\n(total events traced: " << events.size() << " across "
            << config.placement.ranks << " ranks)\n";
  return 0;
}
