// Reproduces Table 1: the nine (ranks, nodes, ranks-per-node, sockets)
// test configurations on Marconi A3.
#include <iostream>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace plin;
  const hw::MachineSpec machine = hw::marconi_a3();
  const auto rows = hw::table1_configurations(machine);

  std::cout << "Table 1 — test configurations for nodes, ranks and sockets ("
            << machine.name << ")\n\n";
  TextTable table({"Ranks", "Nodes", "Ranks per Node", "Sockets",
                   "Ranks socket 0", "Ranks socket 1", "layout"});
  int last_ranks = 0;
  for (const hw::Table1Row& row : rows) {
    const hw::Placement& p = row.placement;
    if (p.ranks != last_ranks && last_ranks != 0) table.add_rule();
    last_ranks = p.ranks;
    table.add_row({std::to_string(p.ranks), std::to_string(p.nodes),
                   std::to_string(p.ranks_per_node),
                   std::to_string(p.sockets_used),
                   std::to_string(p.ranks_socket0),
                   std::to_string(p.ranks_socket1),
                   hw::to_string(p.layout)});
  }
  table.print(std::cout);

  std::cout << "\n== CSV table1 ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"ranks", "nodes", "ranks_per_node", "sockets",
                 "ranks_socket0", "ranks_socket1", "layout"});
  for (const hw::Table1Row& row : rows) {
    const hw::Placement& p = row.placement;
    csv.write_row({std::to_string(p.ranks), std::to_string(p.nodes),
                   std::to_string(p.ranks_per_node),
                   std::to_string(p.sockets_used),
                   std::to_string(p.ranks_socket0),
                   std::to_string(p.ranks_socket1),
                   hw::to_string(p.layout)});
  }
  return 0;
}
