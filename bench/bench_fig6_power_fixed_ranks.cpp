// Reproduces Figure 6: energy consumption and average power at fixed rank
// counts, varying the matrix dimension.
//
// Paper findings to check against: power (energy over duration) is a
// near-horizontal line across matrix sizes, and the IMe vs ScaLAPACK power
// values differ by roughly 12-18%.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace plin;
  const bench::PaperSweep sweep;

  std::cout << "Figure 6 — energy and power at fixed ranks, varying matrix "
               "size (replay tier)\n\n";
  for (int ranks : hw::kPaperRankCounts) {
    TextTable table({"n", "IMe energy", "SCAL energy", "IMe power",
                     "SCAL power", "power ratio"});
    for (std::size_t n : hw::kPaperMatrixSizes) {
      const auto& ime = sweep.at(perfsim::Algorithm::kIme, n, ranks);
      const auto& sca = sweep.at(perfsim::Algorithm::kScalapack, n, ranks);
      table.add_row(
          {std::to_string(n), format_energy(ime.total_j()),
           format_energy(sca.total_j()), format_power(ime.avg_power_w()),
           format_power(sca.avg_power_w()),
           format_fixed(ime.avg_power_w() / sca.avg_power_w(), 3)});
    }
    std::cout << "-- " << ranks << " ranks --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  bench::csv_block_header(std::cout, "fig6_power_fixed_ranks");
  CsvWriter csv(std::cout);
  csv.write_row({"ranks", "n", "algorithm", "total_j", "power_w",
                 "dram_power_w"});
  for (int ranks : hw::kPaperRankCounts) {
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (perfsim::Algorithm algorithm :
           {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
        const auto& p = sweep.at(algorithm, n, ranks);
        csv.write_row({std::to_string(ranks), std::to_string(n),
                       perfsim::to_string(algorithm),
                       format_fixed(p.total_j(), 3),
                       format_fixed(p.avg_power_w(), 3),
                       format_fixed(p.dram_power_w(), 3)});
      }
    }
  }

  bench::run_numeric_miniature(std::cout);
  return 0;
}
