// Sparse CG harness: gates the memory-bound workload family's two
// load-bearing properties.
//
//   1. determinism — the campaign point (CG on the numeric tier, white-box
//      monitor, mini cluster) re-run across host worker counts, the
//      thread-per-rank executor and the scalable collective schedules must
//      reproduce the solution bit pattern and iteration count exactly;
//      host knobs (workers, executor) must not move the virtual duration or
//      energy either (the xmpi contract every solver honors).
//   2. memory-boundedness — at the smoke point the modeled SpMV DRAM-byte
//      term must dominate the flop term (that is the entire reason the
//      family exists next to the compute-bound dense verticals): with
//      bytes_per_flop ~10 and a fair-share of the socket bandwidth, the
//      time ratio mem/flop sits well above 1.
//
// Per family (stencil5 + banded) it also records duration, energy, CG
// iterations, nnz and the scaled residual of the converged solve.
// Everything lands in BENCH_sparse.json (schema powerlin-bench-sparse/v1).
//
// Sizes: CG iterates in O(sqrt(kappa)) sweeps of O(n) traffic, so the runs
// are far shorter than a dense factorization at the same n — and the RAPL
// counters the white-box monitor reads update only once a millisecond
// (msr/rapl_msr.hpp). The points are therefore sized so the simulated
// duration sits well past that quantum (n=64Ki smoke, ~3 ms; n=256Ki full,
// ~12 ms at 8 ranks); sub-millisecond CG jobs legitimately read ~0 J.
//
// Flags:
//   --smoke           CI sizes (n=64Ki) instead of the full n=256Ki
//   --check           exit nonzero unless the runs are bit-identical, the
//                     dominance ratio is >= 1, every residual passes the
//                     campaign gate (1e-10), and — when --baseline is given
//                     — iteration counts and durations match the checked-in
//                     smoke baseline (both are fully deterministic)
//   --out=PATH        JSON output path (default BENCH_sparse.json)
//   --baseline=PATH   checked-in BENCH_sparse_smoke.json to compare against
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "hwmodel/sparse.hpp"
#include "monitor/campaign.hpp"
#include "solvers/cg/cg.hpp"
#include "solvers/efficiency.hpp"
#include "sparse/generate.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

struct FamilyResult {
  sparse::SparseKind kind = sparse::SparseKind::kStencil5;
  std::size_t n = 0;
  int ranks = 0;
  double duration_s = 0.0;
  double energy_j = 0.0;
  double residual = 0.0;
  int iters = 0;
  std::size_t nnz = 0;
};

FamilyResult run_family(sparse::SparseKind kind, std::size_t n, int ranks) {
  const hw::MachineSpec machine = hw::mini_cluster(/*nodes=*/2,
                                                   /*cores_per_socket=*/4);
  monitor::JobSpec spec;
  spec.algorithm = perfsim::Algorithm::kCg;
  spec.matrix = kind;
  spec.n = n;
  spec.ranks = ranks;
  spec.seed = 1;
  spec.repetitions = 1;

  const monitor::JobResult job = monitor::run_job(machine, spec);
  FamilyResult r;
  r.kind = kind;
  r.n = n;
  r.ranks = ranks;
  r.duration_s = job.mean_duration_s();
  r.energy_j = job.mean_total_j();
  r.residual = job.worst_residual();
  r.iters = job.repetitions.at(0).cg_iters;
  r.nnz = job.repetitions.at(0).nnz;
  return r;
}

struct CgRun {
  std::vector<double> x;
  int iters = 0;
  double duration_s = 0.0;
  double energy_j = 0.0;
};

CgRun run_once(const xmpi::RunConfig& config, std::size_t n) {
  CgRun out;
  const xmpi::RunResult run =
      xmpi::Runtime::run(config, [&](xmpi::Comm& comm) {
        solvers::CgOptions options;
        options.kind = sparse::SparseKind::kStencil5;
        options.n = n;
        options.seed = 1;
        const solvers::CgResult r = solve_pcg(comm, options);
        if (comm.rank() == 0) {
          out.x = r.x;
          out.iters = r.iterations;
        }
      });
  out.duration_s = run.duration_s;
  out.energy_j = run.energy.total_j();
  return out;
}

/// Re-runs the stencil5 point across host/schedule knobs; true iff every
/// run reproduces the reference solution bitwise (and the host-only knobs
/// also reproduce the virtual duration and energy exactly).
bool check_determinism(std::size_t n, int ranks, std::string* detail) {
  const hw::MachineSpec machine = hw::mini_cluster(2, 4);
  const auto config = [&](auto&&... set) {
    xmpi::RunConfig c;
    c.machine = machine;
    c.placement =
        hw::make_placement(ranks, hw::LoadLayout::kFullLoad, machine);
    (set(c), ...);
    return c;
  };

  const CgRun reference =
      run_once(config([](xmpi::RunConfig& c) { c.workers = 2; }), n);
  struct Variant {
    const char* name;
    CgRun run;
    bool host_only;  // must also match duration/energy bitwise
  };
  const Variant variants[] = {
      {"workers=5",
       run_once(config([](xmpi::RunConfig& c) { c.workers = 5; }), n), true},
      {"threads",
       run_once(config([](xmpi::RunConfig& c) {
                  c.executor = xmpi::ExecutorKind::kThreadPerRank;
                }),
                n),
       true},
      {"scalable",
       run_once(config([](xmpi::RunConfig& c) {
                  c.transport.collectives = xmpi::CollectiveMode::kScalable;
                }),
                n),
       false},
  };
  for (const Variant& v : variants) {
    if (v.run.iters != reference.iters || v.run.x != reference.x) {
      *detail = std::string(v.name) + " diverged from the reference solve";
      return false;
    }
    if (v.host_only && (v.run.duration_s != reference.duration_s ||
                        v.run.energy_j != reference.energy_j)) {
      *detail = std::string(v.name) + " perturbed the simulated outputs";
      return false;
    }
  }
  return true;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool write_json(const std::string& path, bool smoke,
                const std::vector<FamilyResult>& results,
                double bytes_per_flop, double dominance_ratio,
                bool bit_identical) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-sparse/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  for (const FamilyResult& r : results) {
    const std::string k = sparse::kind_token(r.kind);
    out << "  \"" << k << "_n\": " << r.n << ",\n"
        << "  \"" << k << "_ranks\": " << r.ranks << ",\n"
        << "  \"" << k << "_s\": " << fmt(r.duration_s) << ",\n"
        << "  \"" << k << "_j\": " << fmt(r.energy_j) << ",\n"
        << "  \"" << k << "_residual\": " << fmt(r.residual) << ",\n"
        << "  \"" << k << "_iters\": " << r.iters << ",\n"
        << "  \"" << k << "_nnz\": " << r.nnz << ",\n";
  }
  out << "  \"bytes_per_flop\": " << fmt(bytes_per_flop) << ",\n"
      << "  \"dominance_ratio\": " << fmt(dominance_ratio) << ",\n"
      << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
      << "\n}\n";
  return static_cast<bool>(out.flush());
}

/// Pulls one flat "key": <number> field out of a previous report (same
/// no-parser shortcut as bench_mixed: we wrote the file ourselves).
double baseline_field(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"" + name + "\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_sparse.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s' (expected --smoke --check "
                   "--out=PATH --baseline=PATH)\n",
                   argv[i]);
      return 2;
    }
  }

  const std::size_t n = smoke ? 65536 : 262144;
  constexpr int kRanks = 8;
  std::printf("bench_sparse: CG on CSR, %d ranks, n=%zu (%s)\n", kRanks, n,
              smoke ? "smoke" : "full");

  std::vector<FamilyResult> results;
  for (const sparse::SparseKind kind :
       {sparse::SparseKind::kStencil5, sparse::SparseKind::kBanded}) {
    const FamilyResult r = run_family(kind, n, kRanks);
    std::printf("  %-8s %8.4f ms %8.2f mJ | %4d iters | nnz %-8zu | "
                "residual %.2e\n",
                sparse::kind_token(kind), r.duration_s * 1e3,
                r.energy_j * 1e3, r.iters, r.nnz, r.residual);
    results.push_back(r);
  }

  // Memory-boundedness at the stencil smoke point: time ratio of the DRAM
  // term over the flop term for one modeled SpMV, with the fair bandwidth
  // share the 4 ranks of each socket get at full load.
  const hw::MachineSpec machine = hw::mini_cluster(2, 4);
  const std::size_t nnz = results.front().nnz;
  const double rows = static_cast<double>(n) / kRanks;
  const double bytes_per_flop = hw::csr_spmv_bytes_per_flop(
      static_cast<double>(nnz) / kRanks, rows);
  const double bw_share = machine.node.socket.dram_bandwidth_bs /
                          machine.node.socket.cores;
  const double dominance_ratio = bytes_per_flop *
                                 solvers::kSpmv.efficiency *
                                 machine.node.socket.core.peak_flops() /
                                 bw_share;
  std::printf("  SpMV %.2f bytes/flop, DRAM/flop time ratio %.2f\n",
              bytes_per_flop, dominance_ratio);

  std::string detail;
  const bool bit_identical = check_determinism(256, kRanks, &detail);
  std::printf("  determinism: %s\n",
              bit_identical ? "bit-identical across workers / executors / "
                              "collectives"
                            : detail.c_str());

  if (!write_json(out_path, smoke, results, bytes_per_flop, dominance_ratio,
                  bit_identical)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    bool ok = true;
    if (!bit_identical) {
      std::fprintf(stderr, "FAIL: %s\n", detail.c_str());
      ok = false;
    }
    if (dominance_ratio < 1.0) {
      std::fprintf(stderr,
                   "FAIL: SpMV flop term dominates (ratio %.2f < 1): the "
                   "family is not memory-bound\n",
                   dominance_ratio);
      ok = false;
    }
    for (const FamilyResult& r : results) {
      if (r.residual > 1e-10) {
        std::fprintf(stderr, "FAIL: %s residual %.3g above the campaign "
                             "gate 1e-10\n",
                     sparse::kind_token(r.kind), r.residual);
        ok = false;
      }
    }
    if (!baseline_path.empty()) {
      for (const FamilyResult& r : results) {
        const std::string k = sparse::kind_token(r.kind);
        const double base_iters = baseline_field(baseline_path, k + "_iters");
        const double base_s = baseline_field(baseline_path, k + "_s");
        if (base_iters < 0.0 || base_s < 0.0) {
          std::fprintf(stderr, "FAIL: no %s fields in %s\n", k.c_str(),
                       baseline_path.c_str());
          ok = false;
          continue;
        }
        // Both are deterministic: iterations exact, duration to the %.6g
        // precision the baseline file stores.
        if (static_cast<int>(base_iters) != r.iters) {
          std::fprintf(stderr,
                       "FAIL: %s iterations %d != baseline %d\n", k.c_str(),
                       r.iters, static_cast<int>(base_iters));
          ok = false;
        }
        if (std::fabs(r.duration_s - base_s) > 1e-5 * base_s) {
          std::fprintf(stderr,
                       "FAIL: %s duration %.6g s != baseline %.6g s\n",
                       k.c_str(), r.duration_s, base_s);
          ok = false;
        }
      }
      if (ok) std::printf("check ok: matches %s\n", baseline_path.c_str());
    }
    if (!ok) return 1;
  }
  return 0;
}
