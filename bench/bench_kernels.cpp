// Kernel perf-regression harness + google-benchmark microbenchmarks.
//
// Default mode runs the regression harness: it sweeps GEMM shapes (square,
// panel-shaped, KC-thin trailing-update) and the triangular solves over
// BOTH kernel paths — the retained naive reference and the cache-blocked
// packed engine — at BOTH precisions (fp64 and the fp32 tier the mixed
// GEPP factorization runs on), cross-checks their results, prints a
// GFLOP/s table and writes machine-readable `BENCH_kernels.json` so
// subsequent PRs have a perf trajectory to compare against.
//
// Flags:
//   --smoke         tiny sizes (CI smoke mode)
//   --out=PATH      JSON output path (default BENCH_kernels.json)
//   --check         exit nonzero unless blocked >= naive GFLOP/s on the
//                   largest square GEMM shape of the sweep
//   --gbench        run the original google-benchmark microbenchmarks
//                   (remaining argv is passed through to the library)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "linalg/generate.hpp"
#include "linalg/kernel_config.hpp"
#include "linalg/kernels.hpp"
#include "solvers/gepp/sequential.hpp"
#include "solvers/ime/sequential.hpp"
#include "support/rng.hpp"

namespace {

using namespace plin;

// ---- regression harness ----------------------------------------------------

template <typename T>
linalg::BasicMatrix<T> random_matrix(std::size_t rows, std::size_t cols,
                                     std::uint64_t seed) {
  linalg::BasicMatrix<T> m(rows, cols);
  Rng rng(seed);
  for (T& v : m.flat()) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  return m;
}

template <typename T>
constexpr const char* precision_name() {
  return sizeof(T) == sizeof(double) ? "fp64" : "fp32";
}

/// Naive-vs-blocked divergence envelope: the paths may round partial sums
/// differently, so the bound scales with the reduction length and the
/// scalar's epsilon; anything beyond it is a real bug.
template <typename T>
double diff_budget(std::size_t k) {
  const double unit = sizeof(T) == sizeof(double) ? 1e-12 : 1e-3;
  return unit * static_cast<double>(k) * 16.0;
}

template <typename F>
double seconds_of(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-N wall-clock of `body` (one untimed warmup; N adapts so cheap
/// shapes are sampled more often than half-second ones).
template <typename F>
double best_seconds(F&& body) {
  const double first = seconds_of(body);
  int reps = 2;
  if (first < 0.05) reps = 8;
  if (first > 0.5) reps = 1;
  double best = first;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(body));
  return best;
}

struct GemmResult {
  std::string shape;
  const char* precision = "fp64";
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  double gflops_naive = 0.0;
  double gflops_blocked = 0.0;
  double max_abs_diff = 0.0;
  double diff_limit = 0.0;

  double speedup() const {
    return gflops_naive > 0.0 ? gflops_blocked / gflops_naive : 0.0;
  }
};

template <typename T>
GemmResult measure_gemm(const std::string& shape, std::size_t m, std::size_t n,
                        std::size_t k) {
  const linalg::BasicMatrix<T> a = random_matrix<T>(m, k, 101 + m + n + k);
  const linalg::BasicMatrix<T> b = random_matrix<T>(k, n, 202 + m + n + k);
  const linalg::BasicMatrix<T> c0 = random_matrix<T>(m, n, 303 + m + n + k);
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);

  linalg::BasicMatrix<T> c_naive = c0;
  linalg::BasicMatrix<T> c_blocked = c0;
  linalg::gemm_naive<T>(T(1), a.view(), b.view(), T(0.5), c_naive.view());
  linalg::gemm_blocked<T>(T(1), a.view(), b.view(), T(0.5), c_blocked.view());
  double diff = 0.0;
  for (std::size_t i = 0; i < m * n; ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(c_naive.flat()[i]) -
                                    static_cast<double>(c_blocked.flat()[i])));
  }

  linalg::BasicMatrix<T> c = c0;
  const double t_naive = best_seconds([&] {
    linalg::gemm_naive<T>(T(1), a.view(), b.view(), T(0.5), c.view());
    benchmark::DoNotOptimize(c.flat().data());
  });
  const double t_blocked = best_seconds([&] {
    linalg::gemm_blocked<T>(T(1), a.view(), b.view(), T(0.5), c.view());
    benchmark::DoNotOptimize(c.flat().data());
  });

  GemmResult result;
  result.shape = shape;
  result.precision = precision_name<T>();
  result.m = m;
  result.n = n;
  result.k = k;
  result.gflops_naive = flops / t_naive * 1e-9;
  result.gflops_blocked = flops / t_blocked * 1e-9;
  result.max_abs_diff = diff;
  result.diff_limit = diff_budget<T>(k);
  return result;
}

struct TrsmResult {
  std::string kernel;
  const char* precision = "fp64";
  std::size_t n = 0;
  std::size_t m = 0;
  double gflops_naive = 0.0;
  double gflops_blocked = 0.0;
  double max_abs_diff = 0.0;
};

template <typename T>
TrsmResult measure_trsm_lower(std::size_t n, std::size_t m) {
  linalg::BasicMatrix<T> l = random_matrix<T>(n, n, 404 + n);
  // Scale the strict lower triangle down so the solve is well conditioned
  // (unit-lower with O(1) entries grows the solution exponentially in n,
  // which would make the naive/blocked cross-check meaningless).
  const T scale = T(1) / static_cast<T>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) l(i, j) *= scale;
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = T(0);
    l(i, i) = T(1);
  }
  const linalg::BasicMatrix<T> b0 = random_matrix<T>(n, m, 505 + n);
  const double flops = static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(m);

  linalg::BasicMatrix<T> x_naive = b0;
  linalg::BasicMatrix<T> x_blocked = b0;
  linalg::trsm_lower_unit_naive<T>(l.view(), x_naive.view());
  linalg::trsm_lower_unit_blocked<T>(l.view(), x_blocked.view());
  double diff = 0.0;
  for (std::size_t i = 0; i < n * m; ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(x_naive.flat()[i]) -
                                    static_cast<double>(x_blocked.flat()[i])));
  }

  linalg::BasicMatrix<T> x(n, m);
  const double t_naive = best_seconds([&] {
    x = b0;
    linalg::trsm_lower_unit_naive<T>(l.view(), x.view());
    benchmark::DoNotOptimize(x.flat().data());
  });
  const double t_blocked = best_seconds([&] {
    x = b0;
    linalg::trsm_lower_unit_blocked<T>(l.view(), x.view());
    benchmark::DoNotOptimize(x.flat().data());
  });

  TrsmResult result;
  result.kernel = sizeof(T) == sizeof(double) ? "dtrsm_lower_unit"
                                              : "strsm_lower_unit";
  result.precision = precision_name<T>();
  result.n = n;
  result.m = m;
  result.gflops_naive = flops / t_naive * 1e-9;
  result.gflops_blocked = flops / t_blocked * 1e-9;
  result.max_abs_diff = diff;
  return result;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool write_json(const std::string& path, bool smoke,
                const std::vector<GemmResult>& gemm,
                const std::vector<TrsmResult>& trsm) {
  const linalg::KernelConfig& cfg = linalg::active_kernel_config();
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-kernels/v2\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"kernel_config\": {\"mc\": " << cfg.mc << ", \"kc\": " << cfg.kc
      << ", \"nc\": " << cfg.nc << ", \"mr\": " << cfg.mr << ", \"nr\": "
      << cfg.nr << ", \"trsm_block\": " << cfg.trsm_block << "},\n"
      << "  \"results\": [\n";
  bool first = true;
  for (const GemmResult& r : gemm) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"kernel\": \""
        << (std::strcmp(r.precision, "fp64") == 0 ? "dgemm" : "sgemm")
        << "\", \"precision\": \"" << r.precision << "\", \"shape\": \""
        << r.shape << "\", \"m\": " << r.m << ", \"n\": " << r.n
        << ", \"k\": " << r.k
        << ", \"gflops_naive\": " << fmt(r.gflops_naive)
        << ", \"gflops_blocked\": " << fmt(r.gflops_blocked)
        << ", \"speedup\": " << fmt(r.speedup())
        << ", \"max_abs_diff\": " << fmt(r.max_abs_diff) << "}";
  }
  for (const TrsmResult& r : trsm) {
    if (!first) out << ",\n";
    first = false;
    const double speedup =
        r.gflops_naive > 0.0 ? r.gflops_blocked / r.gflops_naive : 0.0;
    out << "    {\"kernel\": \"" << r.kernel << "\", \"precision\": \""
        << r.precision << "\", \"shape\": \"square\""
        << ", \"m\": " << r.n << ", \"n\": " << r.m << ", \"k\": " << r.n
        << ", \"gflops_naive\": " << fmt(r.gflops_naive)
        << ", \"gflops_blocked\": " << fmt(r.gflops_blocked)
        << ", \"speedup\": " << fmt(speedup)
        << ", \"max_abs_diff\": " << fmt(r.max_abs_diff) << "}";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out.flush());
}

int run_harness(bool smoke, bool check, const std::string& out_path) {
  // Shapes mirror how the solvers drive GEMM: square (whole-problem),
  // panel-shaped (tall-skinny C, the L21 * U12 panel product) and KC-thin
  // trailing updates (rank-nb, the dgetrf hot loop).
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64, 128, 192}
            : std::vector<std::size_t>{128, 256, 384, 512};
  const std::size_t nb = 64;

  std::vector<GemmResult> gemm;
  for (std::size_t s : sizes) {
    gemm.push_back(measure_gemm<double>("square", s, s, s));
    gemm.push_back(measure_gemm<float>("square", s, s, s));
  }
  for (std::size_t s : sizes) {
    if (s <= nb) continue;
    gemm.push_back(measure_gemm<double>("panel", s, nb, nb));
    gemm.push_back(measure_gemm<float>("panel", s, nb, nb));
    gemm.push_back(measure_gemm<double>("trailing", s, s, nb));
    gemm.push_back(measure_gemm<float>("trailing", s, s, nb));
  }

  std::vector<TrsmResult> trsm;
  const std::size_t trsm_n = sizes.back();
  trsm.push_back(measure_trsm_lower<double>(trsm_n, trsm_n));
  trsm.push_back(measure_trsm_lower<float>(trsm_n, trsm_n));

  std::printf("%-23s %6s %6s %6s | %12s %12s %8s %12s\n", "kernel/shape", "m",
              "n", "k", "naive GF/s", "blocked GF/s", "speedup",
              "max|diff|");
  const GemmResult* largest_square = nullptr;
  bool numerics_ok = true;
  for (const GemmResult& r : gemm) {
    const bool fp64 = std::strcmp(r.precision, "fp64") == 0;
    std::printf("%s/%-12s %4s %6zu %6zu %6zu | %12.3f %12.3f %7.2fx "
                "%12.3g\n",
                fp64 ? "dgemm" : "sgemm", r.shape.c_str(), r.precision, r.m,
                r.n, r.k, r.gflops_naive, r.gflops_blocked, r.speedup(),
                r.max_abs_diff);
    if (r.max_abs_diff > r.diff_limit) numerics_ok = false;
    if (fp64 && r.shape == "square" &&
        (largest_square == nullptr || r.m > largest_square->m)) {
      largest_square = &r;
    }
  }
  for (const TrsmResult& r : trsm) {
    std::printf("%-18s %4s %6zu %6zu %6s | %12.3f %12.3f %7.2fx %12.3g\n",
                r.kernel.c_str(), r.precision, r.n, r.m, "-", r.gflops_naive,
                r.gflops_blocked, r.gflops_blocked / r.gflops_naive,
                r.max_abs_diff);
  }

  if (!write_json(out_path, smoke, gemm, trsm)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!numerics_ok) {
    std::fprintf(stderr, "FAIL: naive/blocked results diverged\n");
    return 1;
  }
  if (check && largest_square != nullptr &&
      largest_square->gflops_blocked < largest_square->gflops_naive) {
    std::fprintf(stderr,
                 "FAIL: blocked dgemm (%.3f GF/s) slower than naive "
                 "(%.3f GF/s) at %zu^3\n",
                 largest_square->gflops_blocked, largest_square->gflops_naive,
                 largest_square->m);
    return 1;
  }
  return 0;
}

// ---- google-benchmark microbenchmarks (run with --gbench) ------------------

void BM_Dgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(1, n);
  const linalg::Matrix b = linalg::generate_system_matrix(2, n);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::dgemm(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.flat().data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Dgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_DgemmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(1, n);
  const linalg::Matrix b = linalg::generate_system_matrix(2, n);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::dgemm_naive(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.flat().data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DgemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_Sgemm(benchmark::State& state) {
  // The fp32 engine the mixed-precision GEPP factorization runs on: same
  // blocked path as dgemm with twice the SIMD lanes per vector register.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::BasicMatrix<float> a = random_matrix<float>(n, n, 11);
  const linalg::BasicMatrix<float> b = random_matrix<float>(n, n, 12);
  linalg::BasicMatrix<float> c(n, n);
  for (auto _ : state) {
    linalg::gemm<float>(1.0f, a.view(), b.view(), 0.0f, c.view());
    benchmark::DoNotOptimize(c.flat().data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_StrsmLowerUnit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::BasicMatrix<float> l = random_matrix<float>(n, n, 13);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) l(i, j) /= static_cast<float>(n);
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0f;
    l(i, i) = 1.0f;
  }
  const linalg::BasicMatrix<float> b = random_matrix<float>(n, n, 14);
  for (auto _ : state) {
    linalg::BasicMatrix<float> x = b;
    linalg::trsm_lower_unit<float>(l.view(), x.view());
    benchmark::DoNotOptimize(x.flat().data());
  }
}
BENCHMARK(BM_StrsmLowerUnit)->Arg(128)->Arg(256);

void BM_TrsmLowerUnit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix l = linalg::generate_system_matrix(3, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
    l(i, i) = 1.0;
  }
  linalg::Matrix b = linalg::generate_system_matrix(4, n);
  for (auto _ : state) {
    linalg::Matrix x = b;
    linalg::dtrsm_lower_unit(l.view(), x.view());
    benchmark::DoNotOptimize(x.flat().data());
  }
}
BENCHMARK(BM_TrsmLowerUnit)->Arg(128)->Arg(256);

void BM_ImeLevelUpdate(benchmark::State& state) {
  // One IMe level on an n x n table: the g-factor scaling plus the
  // pivot-column subtraction over all equations.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix m = linalg::generate_system_matrix(5, n);
  std::vector<double> c(n, 1.01);
  const std::size_t l = n - 1;
  for (auto _ : state) {
    const double inv = 1.0 / m(l, l);
    for (std::size_t j = 0; j < n - 1; ++j) {
      const double g = m(l, j) * inv;
      for (std::size_t r = 0; r <= l; ++r) m(r, j) -= g * c[r];
    }
    benchmark::DoNotOptimize(m.flat().data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * (n - 1),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ImeLevelUpdate)->Arg(256)->Arg(512);

void BM_SolveImeBlocked(benchmark::State& state) {
  // The level-blocked variant: block size is the sweep parameter. Larger
  // blocks trade rank-1 sweeps for rank-k updates (better cache reuse on
  // tables that exceed cache).
  const std::size_t n = 384;
  const std::size_t kb = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(8, n);
  const std::vector<double> b = linalg::generate_rhs(8, n);
  for (auto _ : state) {
    auto x = solvers::solve_ime_blocked(a, b, kb);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SolveImeBlocked)->Arg(1)->Arg(8)->Arg(32)->Arg(96);

void BM_SolveGepp(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(6, n);
  const std::vector<double> b = linalg::generate_rhs(6, n);
  for (auto _ : state) {
    auto x = solvers::solve_gepp(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SolveGepp)->Arg(128)->Arg(256);

void BM_SolveIme(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(6, n);
  const std::vector<double> b = linalg::generate_rhs(6, n);
  for (auto _ : state) {
    auto x = solvers::solve_ime(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SolveIme)->Arg(128)->Arg(256);

void BM_GenerateSystem(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto a = linalg::generate_system_matrix(7, n);
    benchmark::DoNotOptimize(a.flat().data());
  }
}
BENCHMARK(BM_GenerateSystem)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  bool gbench = false;
  std::string out_path = "BENCH_kernels.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--gbench") == 0) {
      gbench = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (gbench) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  // Harness mode takes no positional arguments; reject typos instead of
  // silently running a different sweep than the user asked for.
  if (passthrough.size() > 1) {
    std::fprintf(stderr,
                 "error: unknown argument '%s' (expected --smoke --check "
                 "--out=PATH --gbench)\n",
                 passthrough[1]);
    return 2;
  }
  return run_harness(smoke, check, out_path);
}
