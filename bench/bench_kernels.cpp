// google-benchmark microbenchmarks for the numeric kernels: GEMM,
// triangular solves, the IMe level update, and the two sequential solvers.
// These measure HOST throughput of the real arithmetic (the virtual-time
// cost model is exercised by the figure benches).
#include <benchmark/benchmark.h>

#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "solvers/gepp/sequential.hpp"
#include "solvers/ime/sequential.hpp"

namespace {

using namespace plin;

void BM_Dgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(1, n);
  const linalg::Matrix b = linalg::generate_system_matrix(2, n);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::dgemm(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.flat().data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Dgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_TrsmLowerUnit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix l = linalg::generate_system_matrix(3, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
    l(i, i) = 1.0;
  }
  linalg::Matrix b = linalg::generate_system_matrix(4, n);
  for (auto _ : state) {
    linalg::Matrix x = b;
    linalg::dtrsm_lower_unit(l.view(), x.view());
    benchmark::DoNotOptimize(x.flat().data());
  }
}
BENCHMARK(BM_TrsmLowerUnit)->Arg(128)->Arg(256);

void BM_ImeLevelUpdate(benchmark::State& state) {
  // One IMe level on an n x n table: the g-factor scaling plus the
  // pivot-column subtraction over all equations.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix m = linalg::generate_system_matrix(5, n);
  std::vector<double> c(n, 1.01);
  const std::size_t l = n - 1;
  for (auto _ : state) {
    const double inv = 1.0 / m(l, l);
    for (std::size_t j = 0; j < n - 1; ++j) {
      const double g = m(l, j) * inv;
      for (std::size_t r = 0; r <= l; ++r) m(r, j) -= g * c[r];
    }
    benchmark::DoNotOptimize(m.flat().data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * (n - 1),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ImeLevelUpdate)->Arg(256)->Arg(512);

void BM_SolveImeBlocked(benchmark::State& state) {
  // The level-blocked variant: block size is the sweep parameter. Larger
  // blocks trade rank-1 sweeps for rank-k updates (better cache reuse on
  // tables that exceed cache).
  const std::size_t n = 384;
  const std::size_t kb = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(8, n);
  const std::vector<double> b = linalg::generate_rhs(8, n);
  for (auto _ : state) {
    auto x = solvers::solve_ime_blocked(a, b, kb);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SolveImeBlocked)->Arg(1)->Arg(8)->Arg(32)->Arg(96);

void BM_SolveGepp(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(6, n);
  const std::vector<double> b = linalg::generate_rhs(6, n);
  for (auto _ : state) {
    auto x = solvers::solve_gepp(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SolveGepp)->Arg(128)->Arg(256);

void BM_SolveIme(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = linalg::generate_system_matrix(6, n);
  const std::vector<double> b = linalg::generate_rhs(6, n);
  for (auto _ : state) {
    auto x = solvers::solve_ime(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SolveIme)->Arg(128)->Arg(256);

void BM_GenerateSystem(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto a = linalg::generate_system_matrix(7, n);
    benchmark::DoNotOptimize(a.flat().data());
  }
}
BENCHMARK(BM_GenerateSystem)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
