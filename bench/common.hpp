// Shared helpers for the figure/table benches: the paper-scale sweep grid
// (replay tier) and a numeric-tier miniature that exercises the same
// pipeline end-to-end through the executing runtime and the white-box
// monitor.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "monitor/campaign.hpp"
#include "perfsim/simulator.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace plin::bench {

struct SweepKey {
  perfsim::Algorithm algorithm;
  std::size_t n;
  int ranks;
  hw::LoadLayout layout;

  bool operator<(const SweepKey& other) const {
    return std::tie(algorithm, n, ranks, layout) <
           std::tie(other.algorithm, other.n, other.ranks, other.layout);
  }
};

/// All paper configurations (2 algorithms x 4 sizes x 3 rank counts x the
/// requested layouts) predicted by the replay tier on Marconi A3.
class PaperSweep {
 public:
  explicit PaperSweep(std::vector<hw::LoadLayout> layouts = {
                          hw::LoadLayout::kFullLoad}) {
    const hw::MachineSpec machine = hw::marconi_a3();
    const perfsim::Simulator simulator(machine);
    for (perfsim::Algorithm algorithm :
         {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
      for (std::size_t n : hw::kPaperMatrixSizes) {
        for (int ranks : hw::kPaperRankCounts) {
          for (hw::LoadLayout layout : layouts) {
            const hw::Placement placement =
                hw::make_placement(ranks, layout, machine);
            results_[SweepKey{algorithm, n, ranks, layout}] =
                simulator.predict(
                    perfsim::Workload{algorithm, n,
                                      solvers::kDefaultBlock},
                    placement);
          }
        }
      }
    }
  }

  const perfsim::Prediction& at(perfsim::Algorithm algorithm, std::size_t n,
                                int ranks,
                                hw::LoadLayout layout =
                                    hw::LoadLayout::kFullLoad) const {
    return results_.at(SweepKey{algorithm, n, ranks, layout});
  }

 private:
  std::map<SweepKey, perfsim::Prediction> results_;
};

/// Runs the numeric-tier miniature of one paper cell through the real
/// solvers, runtime and white-box monitor, and prints the resulting
/// campaign rows. Demonstrates that the full pipeline is live, not just
/// the analytic replay.
inline void run_numeric_miniature(std::ostream& os) {
  os << "\n== numeric-tier miniature (executed on xmpi through the "
        "white-box monitor) ==\n";
  const hw::MachineSpec machine = hw::mini_cluster(/*nodes=*/8,
                                                   /*cores_per_socket=*/4);
  std::vector<monitor::JobResult> jobs;
  for (perfsim::Algorithm algorithm :
       {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
    monitor::JobSpec spec;
    spec.algorithm = algorithm;
    spec.n = 512;
    spec.ranks = 16;
    spec.nb = 32;
    spec.repetitions = 1;
    jobs.push_back(monitor::run_job(machine, spec));
  }
  monitor::print_campaign_table(os, jobs);
}

/// Emits a CSV block under a marker so plotting scripts can scrape bench
/// output.
inline void csv_block_header(std::ostream& os, const std::string& name) {
  os << "\n== CSV " << name << " ==\n";
}

}  // namespace plin::bench
