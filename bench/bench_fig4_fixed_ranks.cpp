// Reproduces Figure 4: total energy consumption and duration for fixed
// rank counts (144, 576, 1296 at 48 ranks/node), sweeping the matrix
// dimension.
//
// Paper findings to check against: energy and duration grow superlinearly
// with n; IMe's energy is always >= ScaLAPACK's; energy tracks duration.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace plin;
  const bench::PaperSweep sweep;

  std::cout << "Figure 4 — energy and time at fixed ranks, varying matrix "
               "size (replay tier)\n\n";
  for (int ranks : hw::kPaperRankCounts) {
    TextTable table({"n", "IMe time", "ScaLAPACK time", "IMe energy",
                     "ScaLAPACK energy", "E ratio IMe/SCAL"});
    for (std::size_t n : hw::kPaperMatrixSizes) {
      const auto& ime = sweep.at(perfsim::Algorithm::kIme, n, ranks);
      const auto& sca = sweep.at(perfsim::Algorithm::kScalapack, n, ranks);
      table.add_row({std::to_string(n), format_duration(ime.duration_s),
                     format_duration(sca.duration_s),
                     format_energy(ime.total_j()),
                     format_energy(sca.total_j()),
                     format_fixed(ime.total_j() / sca.total_j(), 2)});
    }
    std::cout << "-- " << ranks << " ranks (48 per node) --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  bench::csv_block_header(std::cout, "fig4_fixed_ranks");
  CsvWriter csv(std::cout);
  csv.write_row(
      {"ranks", "n", "algorithm", "duration_s", "total_j", "pkg_j", "dram_j"});
  for (int ranks : hw::kPaperRankCounts) {
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (perfsim::Algorithm algorithm :
           {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
        const auto& p = sweep.at(algorithm, n, ranks);
        csv.write_row({std::to_string(ranks), std::to_string(n),
                       perfsim::to_string(algorithm),
                       format_fixed(p.duration_s, 6),
                       format_fixed(p.total_j(), 3),
                       format_fixed(p.total_pkg_j(), 3),
                       format_fixed(p.total_dram_j(), 3)});
      }
    }
  }

  bench::run_numeric_miniature(std::cout);
  return 0;
}
