// Reproduces the paper's §5.1/§5.3 phase comparison: the campaign monitors
// both the general execution and the matrix allocation/deallocation phase
// separately, and finds "the data pertaining to the general execution and
// the computation phase of the algorithm do not exhibit significant
// differences" — i.e., allocation is not where the energy goes.
#include <iostream>

#include "hwmodel/placement.hpp"
#include "monitor/white_box.hpp"
#include "solvers/gepp/pdgesv.hpp"
#include "solvers/ime/imep.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

int main() {
  using namespace plin;
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(8, 4);
  config.placement =
      hw::make_placement(16, hw::LoadLayout::kFullLoad, config.machine);

  std::cout << "Phase-separated monitoring (numeric tier, 16 ranks): "
               "allocation vs execution\n\n";
  TextTable table({"algorithm", "n", "phase", "duration", "energy",
                   "share of total"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const bool use_ime : {true, false}) {
    for (const std::size_t n : {512ul, 768ul}) {
      monitor::PhasedMeasurement measurement;
      xmpi::Runtime::run(config, [&](xmpi::Comm& world) {
        std::vector<monitor::Phase> phases;
        // Allocation phase: first-touch of this rank's share of the table
        // (the solvers also charge their own allocation internally; this
        // standalone phase isolates the cost the paper's §5.1 discusses).
        phases.push_back(monitor::Phase{
            "allocation", [n](xmpi::Comm& comm) {
              const double local_bytes =
                  8.0 * static_cast<double>(n) * static_cast<double>(n) /
                  comm.size();
              comm.memory_touch(local_bytes);
            }});
        phases.push_back(monitor::Phase{
            "execution", [n, use_ime](xmpi::Comm& comm) {
              if (use_ime) {
                solvers::ImepOptions options;
                options.n = n;
                options.seed = 31;
                (void)solve_imep(comm, options);
              } else {
                solvers::PdgesvOptions options;
                options.n = n;
                options.seed = 31;
                options.nb = 32;
                (void)solve_pdgesv(comm, options);
              }
            }});
        const monitor::PhasedMeasurement m = monitor::monitored_run_phases(
            world, monitor::MonitorOptions{}, std::move(phases));
        if (world.rank() == 0) measurement = m;
      });

      const char* alg = use_ime ? "IMe" : "ScaLAPACK";
      for (const auto& [name, phase] : measurement.phases) {
        const double share =
            measurement.total.total_j() > 0.0
                ? phase.total_j() / measurement.total.total_j()
                : 0.0;
        table.add_row({alg, std::to_string(n), name,
                       format_duration(phase.duration_s),
                       format_energy(phase.total_j()),
                       format_fixed(100.0 * share, 1) + " %"});
        csv_rows.push_back({alg, std::to_string(n), name,
                            format_fixed(phase.duration_s, 9),
                            format_fixed(phase.total_j(), 6)});
      }
      table.add_row({alg, std::to_string(n), "total",
                     format_duration(measurement.total.duration_s),
                     format_energy(measurement.total.total_j()), "100 %"});
      table.add_rule();
    }
  }
  table.print(std::cout);
  std::cout << "\nAs in the paper, the execution phase dominates: general "
               "execution and computation\nphase barely differ, and "
               "allocation is a small slice despite hitting DRAM.\n";

  std::cout << "\n== CSV phases ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"algorithm", "n", "phase", "duration_s", "total_j"});
  for (const auto& row : csv_rows) csv.write_row(row);
  return 0;
}
