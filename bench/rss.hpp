// Resident-set-size helpers shared by the bench harnesses.
//
// VmHWM (the kernel's high-water mark) is monotonic over the process
// lifetime, so reading it after a run reports the peak of *everything that
// ever ran*, not of the run under measurement. The harnesses instead
// sample current RSS from /proc/self/statm on a background thread and
// keep the max seen inside the measured window.
#pragma once

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <thread>

namespace plin::bench {

/// Current resident set in bytes (0 if /proc is unavailable).
inline std::uint64_t current_rss_bytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long pages_total = 0;
  unsigned long long pages_resident = 0;
  const int fields = std::fscanf(statm, "%llu %llu", &pages_total,
                                 &pages_resident);
  std::fclose(statm);
  if (fields != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return pages_resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

/// Samples current RSS every ~1 ms for the object's lifetime and exposes
/// the maximum. Wrap the measured region:
///
///   RssSampler sampler;
///   run_workload();
///   const std::uint64_t peak = sampler.peak_bytes();
class RssSampler {
 public:
  RssSampler() {
    peak_.store(current_rss_bytes(), std::memory_order_relaxed);
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        sample();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  ~RssSampler() {
    stop();
  }

  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

  /// Stops sampling (idempotent) and takes one final sample so short
  /// windows are never missed entirely.
  void stop() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
      sample();
    }
  }

  std::uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  void sample() {
    const std::uint64_t now = current_rss_bytes();
    std::uint64_t seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> peak_{0};
  std::thread thread_;
};

}  // namespace plin::bench
