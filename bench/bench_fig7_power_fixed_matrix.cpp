// Reproduces Figure 7: energy consumption and average power at fixed
// matrix sizes, varying the number of ranks.
//
// Paper findings to check against: power grows roughly proportionally with
// the deployed ranks for both algorithms (the energy trend alone looks
// erratic; power "enhances the real trend").
#include <iostream>

#include "common.hpp"

int main() {
  using namespace plin;
  const bench::PaperSweep sweep;

  std::cout << "Figure 7 — energy and power at fixed matrix size, varying "
               "ranks (replay tier)\n\n";
  for (std::size_t n : hw::kPaperMatrixSizes) {
    TextTable table({"ranks", "IMe energy", "SCAL energy", "IMe power",
                     "SCAL power", "power per rank (IMe)"});
    for (int ranks : hw::kPaperRankCounts) {
      const auto& ime = sweep.at(perfsim::Algorithm::kIme, n, ranks);
      const auto& sca = sweep.at(perfsim::Algorithm::kScalapack, n, ranks);
      table.add_row({std::to_string(ranks), format_energy(ime.total_j()),
                     format_energy(sca.total_j()),
                     format_power(ime.avg_power_w()),
                     format_power(sca.avg_power_w()),
                     format_power(ime.avg_power_w() / ranks)});
    }
    std::cout << "-- n = " << n << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  bench::csv_block_header(std::cout, "fig7_power_fixed_matrix");
  CsvWriter csv(std::cout);
  csv.write_row({"n", "ranks", "algorithm", "total_j", "power_w"});
  for (std::size_t n : hw::kPaperMatrixSizes) {
    for (int ranks : hw::kPaperRankCounts) {
      for (perfsim::Algorithm algorithm :
           {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
        const auto& p = sweep.at(algorithm, n, ranks);
        csv.write_row({std::to_string(n), std::to_string(ranks),
                       perfsim::to_string(algorithm),
                       format_fixed(p.total_j(), 3),
                       format_fixed(p.avg_power_w(), 3)});
      }
    }
  }

  bench::run_numeric_miniature(std::cout);
  return 0;
}
