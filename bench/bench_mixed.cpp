// Mixed-precision GEPP harness: gates the fp32-factorize + fp64-refine
// work against the full-fp64 baseline.
//
// For each configured matrix size it runs the same campaign point (GEPP on
// the numeric tier, white-box monitor, mini cluster) twice — once at fp64,
// once mixed — and reports per size:
//
//   1. time-to-solution   — simulated duration of either run, and the
//      mixed-over-fp64 speedup (fp32 factorization runs against the doubled
//      fp32 peak with halved DRAM traffic; refinement adds fp64 sweeps).
//   2. energy-to-solution — modeled PKG+DRAM joules from the white-box
//      monitor, and the fp64-over-mixed energy ratio.
//   3. accuracy           — scaled residuals of both solutions; mixed must
//      land within 10x of the fp64 baseline (it normally matches, since
//      refinement iterates to the same n*eps64-scaled tolerance).
//   4. refine_iters / fell_back — the SLATE-style iteration count.
//
// Everything lands in BENCH_mixed.json (schema powerlin-bench-mixed/v1).
//
// The campaign point is 4 ranks on a 2-node mini cluster with nb=64: a
// compute-bound shape where the precision of the trailing update matters.
// At high rank-to-size ratios the per-column pivot collectives (latency,
// precision-independent) dominate the critical path and the fp32 advantage
// washes out — that regime is measured, not hidden: bench_breakdown and
// the campaign grid cover it.
//
// Flags:
//   --smoke           CI sizes (n=512, 768) instead of the full n >= 1024
//   --check           exit nonzero unless every size holds the residual
//                     10x bound and the speedup floor (1.2x smoke, 1.5x
//                     time + 1.4x energy full), and — when --baseline is
//                     given — the worst residual ratio does not regress
//                     >50% over the checked-in smoke baseline
//   --out=PATH        JSON output path (default BENCH_mixed.json)
//   --baseline=PATH   checked-in BENCH_mixed_smoke.json to regress against
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hwmodel/machine.hpp"
#include "monitor/campaign.hpp"
#include "perfsim/prediction.hpp"

namespace {

using namespace plin;

struct SizeResult {
  std::size_t n = 0;
  int ranks = 0;
  double fp64_s = 0.0;
  double mixed_s = 0.0;
  double speedup = 0.0;       // fp64_s / mixed_s
  double fp64_j = 0.0;
  double mixed_j = 0.0;
  double energy_ratio = 0.0;  // fp64_j / mixed_j
  double fp64_residual = 0.0;
  double mixed_residual = 0.0;
  double residual_ratio = 0.0;  // mixed_residual / fp64_residual
  int refine_iters = 0;
  bool fell_back = false;
};

SizeResult run_size(std::size_t n, int ranks) {
  const hw::MachineSpec machine = hw::mini_cluster(/*nodes=*/2,
                                                   /*cores_per_socket=*/4);
  monitor::JobSpec spec;
  spec.algorithm = perfsim::Algorithm::kScalapack;
  spec.n = n;
  spec.ranks = ranks;
  spec.seed = 1;
  spec.nb = 64;
  spec.repetitions = 1;

  SizeResult r;
  r.n = n;
  r.ranks = ranks;

  spec.precision = perfsim::Precision::kFp64;
  const monitor::JobResult fp64 = monitor::run_job(machine, spec);
  r.fp64_s = fp64.mean_duration_s();
  r.fp64_j = fp64.mean_total_j();
  r.fp64_residual = fp64.worst_residual();

  spec.precision = perfsim::Precision::kMixed;
  const monitor::JobResult mixed = monitor::run_job(machine, spec);
  r.mixed_s = mixed.mean_duration_s();
  r.mixed_j = mixed.mean_total_j();
  r.mixed_residual = mixed.worst_residual();
  r.refine_iters = mixed.repetitions.at(0).refine_iters;
  r.fell_back = mixed.repetitions.at(0).fell_back;

  r.speedup = r.mixed_s > 0.0 ? r.fp64_s / r.mixed_s : 0.0;
  r.energy_ratio = r.mixed_j > 0.0 ? r.fp64_j / r.mixed_j : 0.0;
  r.residual_ratio =
      r.fp64_residual > 0.0 ? r.mixed_residual / r.fp64_residual : 0.0;
  return r;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool write_json(const std::string& path, bool smoke,
                const std::vector<SizeResult>& results) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"powerlin-bench-mixed/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    out << "    {\"n\": " << r.n << ", \"ranks\": " << r.ranks
        << ", \"fp64_s\": " << fmt(r.fp64_s)
        << ", \"mixed_s\": " << fmt(r.mixed_s)
        << ", \"speedup\": " << fmt(r.speedup)
        << ", \"fp64_j\": " << fmt(r.fp64_j)
        << ", \"mixed_j\": " << fmt(r.mixed_j)
        << ", \"energy_ratio\": " << fmt(r.energy_ratio)
        << ", \"fp64_residual\": " << fmt(r.fp64_residual)
        << ", \"mixed_residual\": " << fmt(r.mixed_residual)
        << ", \"residual_ratio\": " << fmt(r.residual_ratio)
        << ", \"refine_iters\": " << r.refine_iters
        << ", \"fell_back\": " << (r.fell_back ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  double worst_ratio = 0.0;
  double min_speedup = 0.0;
  double min_energy_ratio = 0.0;
  for (const SizeResult& r : results) {
    if (r.residual_ratio > worst_ratio) worst_ratio = r.residual_ratio;
    if (min_speedup == 0.0 || r.speedup < min_speedup) {
      min_speedup = r.speedup;
    }
    if (min_energy_ratio == 0.0 || r.energy_ratio < min_energy_ratio) {
      min_energy_ratio = r.energy_ratio;
    }
  }
  out << "  ],\n"
      << "  \"min_speedup\": " << fmt(min_speedup) << ",\n"
      << "  \"min_energy_ratio\": " << fmt(min_energy_ratio) << ",\n"
      << "  \"worst_residual_ratio\": " << fmt(worst_ratio) << "\n"
      << "}\n";
  return static_cast<bool>(out.flush());
}

/// Pulls one flat "key": <number> field out of a previous report (same
/// no-parser shortcut as bench_scale: we wrote the file ourselves).
double baseline_field(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"" + name + "\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_mixed.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s' (expected --smoke --check "
                   "--out=PATH --baseline=PATH)\n",
                   argv[i]);
      return 2;
    }
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{512, 768}
            : std::vector<std::size_t>{1024, 1536, 2048};
  constexpr int kRanks = 4;
  std::printf("bench_mixed: GEPP fp64 vs mixed, %d ranks (%s)\n", kRanks,
              smoke ? "smoke" : "full");

  std::vector<SizeResult> results;
  for (const std::size_t n : sizes) {
    const SizeResult r = run_size(n, kRanks);
    std::printf("  n=%-5zu fp64 %8.4f s %8.2f J | mixed %8.4f s %8.2f J | "
                "%.2fx time %.2fx energy | iters=%d%s residual %.2e vs "
                "%.2e\n",
                r.n, r.fp64_s, r.fp64_j, r.mixed_s, r.mixed_j, r.speedup,
                r.energy_ratio, r.refine_iters,
                r.fell_back ? " (FELL BACK)" : "", r.mixed_residual,
                r.fp64_residual);
    results.push_back(r);
  }

  if (!write_json(out_path, smoke, results)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    const double min_speedup = smoke ? 1.2 : 1.5;
    const double min_energy_ratio = smoke ? 1.0 : 1.4;
    bool ok = true;
    for (const SizeResult& r : results) {
      if (r.fell_back) {
        std::fprintf(stderr, "FAIL: n=%zu fell back to fp64\n", r.n);
        ok = false;
      }
      if (r.residual_ratio > 10.0) {
        std::fprintf(stderr,
                     "FAIL: n=%zu mixed residual %.3g is %.1fx the fp64 "
                     "baseline (10x bound)\n",
                     r.n, r.mixed_residual, r.residual_ratio);
        ok = false;
      }
      if (r.speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: n=%zu speedup %.2fx below the %.1fx floor\n",
                     r.n, r.speedup, min_speedup);
        ok = false;
      }
      if (r.energy_ratio < min_energy_ratio) {
        std::fprintf(stderr,
                     "FAIL: n=%zu energy ratio %.2fx below the %.1fx "
                     "floor\n",
                     r.n, r.energy_ratio, min_energy_ratio);
        ok = false;
      }
    }
    if (!baseline_path.empty()) {
      const double base_ratio =
          baseline_field(baseline_path, "worst_residual_ratio");
      if (base_ratio < 0.0) {
        std::fprintf(stderr, "FAIL: no worst_residual_ratio in %s\n",
                     baseline_path.c_str());
        ok = false;
      } else {
        double worst = 0.0;
        for (const SizeResult& r : results) {
          if (r.residual_ratio > worst) worst = r.residual_ratio;
        }
        // Allow headroom for host rounding drift; a real accuracy
        // regression (refinement converging to a worse defect) blows
        // straight through 1.5x.
        if (worst > 1.5 * base_ratio) {
          std::fprintf(stderr,
                       "FAIL: worst residual ratio %.3g regresses >50%% "
                       "over the baseline %.3g\n",
                       worst, base_ratio);
          ok = false;
        } else {
          std::printf("check ok: worst residual ratio %.3g (baseline "
                      "%.3g)\n",
                      worst, base_ratio);
        }
      }
    }
    if (!ok) return 1;
  }
  return 0;
}
