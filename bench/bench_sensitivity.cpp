// Sensitivity ablation for the calibrated model knobs EXPERIMENTS.md
// documents: how the IMe-vs-ScaLAPACK crossover and the energy gap move
// when the interconnect latency, the IMe flop coefficient (via an
// effective-throughput proxy) and the socket memory bandwidth change.
// This is the "which assumptions carry the result" audit for the replay
// tier.
#include <iostream>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "perfsim/simulator.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace plin;

struct CellResult {
  double t_ime, t_sca, e_ime, e_sca;
};

CellResult evaluate(const hw::MachineSpec& machine, std::size_t n,
                    int ranks) {
  const perfsim::Simulator simulator(machine);
  const hw::Placement placement =
      hw::make_placement(ranks, hw::LoadLayout::kFullLoad, machine);
  const perfsim::Prediction ime =
      simulator.predict({perfsim::Algorithm::kIme, n, 64}, placement);
  const perfsim::Prediction sca =
      simulator.predict({perfsim::Algorithm::kScalapack, n, 64}, placement);
  return CellResult{ime.duration_s, sca.duration_s, ime.total_j(),
                    sca.total_j()};
}

void sweep(std::ostream& os, const std::string& knob,
           const std::vector<std::pair<std::string, hw::MachineSpec>>&
               variants) {
  os << "-- knob: " << knob << " (cell: n=17280, 576 ranks, full load) --\n";
  TextTable table({"variant", "IMe time", "SCAL time", "T ratio",
                   "IMe energy", "SCAL energy", "E ratio"});
  for (const auto& [name, machine] : variants) {
    const CellResult cell = evaluate(machine, 17280, 576);
    table.add_row({name, format_duration(cell.t_ime),
                   format_duration(cell.t_sca),
                   format_fixed(cell.t_ime / cell.t_sca, 2),
                   format_energy(cell.e_ime), format_energy(cell.e_sca),
                   format_fixed(cell.e_ime / cell.e_sca, 2)});
  }
  table.print(os);
  os << "\n";
}

}  // namespace

int main() {
  std::cout << "Model sensitivity ablation (replay tier)\n\n";

  // 1) Interconnect latency: LU pays a pivot-latency chain per column,
  //    IMe pays one resync per level — latency moves the crossover.
  {
    std::vector<std::pair<std::string, hw::MachineSpec>> variants;
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      hw::MachineSpec machine = hw::marconi_a3();
      machine.network.internode_latency_s *= scale;
      machine.network.intersocket_latency_s *= scale;
      machine.network.intrasocket_latency_s *= scale;
      variants.emplace_back("latency x" + format_fixed(scale, 1), machine);
    }
    sweep(std::cout, "interconnect latency", variants);
  }

  // 2) Socket memory bandwidth: IMe's table streaming and payload
  //    ingestion are bandwidth-bound; LU's GEMM is not.
  {
    std::vector<std::pair<std::string, hw::MachineSpec>> variants;
    for (const double scale : {0.5, 1.0, 2.0}) {
      hw::MachineSpec machine = hw::marconi_a3();
      machine.node.socket.dram_bandwidth_bs *= scale;
      variants.emplace_back("bandwidth x" + format_fixed(scale, 1), machine);
    }
    sweep(std::cout, "socket DRAM bandwidth", variants);
  }

  // 3) Core clock (throughput proxy for the IMe flop-coefficient debate:
  //    halving effective throughput is equivalent to doubling the charged
  //    flops).
  {
    std::vector<std::pair<std::string, hw::MachineSpec>> variants;
    for (const double scale : {0.75, 1.0, 1.5}) {
      hw::MachineSpec machine = hw::marconi_a3();
      machine.node.socket.core.clock_ghz *= scale;
      variants.emplace_back("clock x" + format_fixed(scale, 2), machine);
    }
    sweep(std::cout, "core throughput", variants);
  }

  // 4) Where does the crossover sit as latency scales? Scan the full grid.
  std::cout << "-- IMe-faster cells vs latency scale --\n";
  TextTable table({"latency scale", "IMe wins at (n, ranks)"});
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    hw::MachineSpec machine = hw::marconi_a3();
    machine.network.internode_latency_s *= scale;
    machine.network.intersocket_latency_s *= scale;
    machine.network.intrasocket_latency_s *= scale;
    std::string wins;
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        const CellResult cell = evaluate(machine, n, ranks);
        if (cell.t_ime < cell.t_sca) {
          if (!wins.empty()) wins += ", ";
          wins += "(" + std::to_string(n) + "," + std::to_string(ranks) + ")";
        }
      }
    }
    table.add_row({"x" + format_fixed(scale, 1),
                   wins.empty() ? "none" : wins});
  }
  table.print(std::cout);
  std::cout << "\nHigher latency favours IMe (its pipelined levels amortize "
               "latency; LU's\nper-column pivot chain cannot) — consistent "
               "with the paper finding IMe\ncompetitive on a real, noisier "
               "interconnect.\n";
  return 0;
}
