// Reproduces Figure 5: total energy consumption and duration for fixed
// matrix sizes, sweeping the number of ranks (strong scaling).
//
// Paper findings to check against: duration falls as ranks increase
// (strong scalability); ScaLAPACK is faster in the dense configurations
// while IMe wins the more distributed ones (576/1296 ranks at n = 8640 and
// 17280).
#include <iostream>

#include "common.hpp"

int main() {
  using namespace plin;
  const bench::PaperSweep sweep;

  std::cout << "Figure 5 — energy and time at fixed matrix size, varying "
               "ranks (replay tier)\n\n";
  for (std::size_t n : hw::kPaperMatrixSizes) {
    TextTable table({"ranks", "IMe time", "ScaLAPACK time", "faster",
                     "IMe energy", "ScaLAPACK energy"});
    for (int ranks : hw::kPaperRankCounts) {
      const auto& ime = sweep.at(perfsim::Algorithm::kIme, n, ranks);
      const auto& sca = sweep.at(perfsim::Algorithm::kScalapack, n, ranks);
      table.add_row({std::to_string(ranks), format_duration(ime.duration_s),
                     format_duration(sca.duration_s),
                     ime.duration_s < sca.duration_s ? "IMe" : "ScaLAPACK",
                     format_energy(ime.total_j()),
                     format_energy(sca.total_j())});
    }
    std::cout << "-- n = " << n << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  bench::csv_block_header(std::cout, "fig5_fixed_matrix");
  CsvWriter csv(std::cout);
  csv.write_row({"n", "ranks", "algorithm", "duration_s", "total_j"});
  for (std::size_t n : hw::kPaperMatrixSizes) {
    for (int ranks : hw::kPaperRankCounts) {
      for (perfsim::Algorithm algorithm :
           {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
        const auto& p = sweep.at(algorithm, n, ranks);
        csv.write_row({std::to_string(n), std::to_string(ranks),
                       perfsim::to_string(algorithm),
                       format_fixed(p.duration_s, 6),
                       format_fixed(p.total_j(), 3)});
      }
    }
  }

  bench::run_numeric_miniature(std::cout);
  return 0;
}
