// Ablation for the paper's stated next phase (§6): applying RAPL power
// caps during execution. Sweeps per-package power limits on a numeric-tier
// IMe run and reports the duration/energy trade-off: capping stretches
// execution (DVFS cube-root law) while clamping package power — the
// energy-vs-time Pareto the paper wants to explore.
#include <iostream>

#include "hwmodel/placement.hpp"
#include "monitor/white_box.hpp"
#include "papisim/papi.hpp"
#include "solvers/ime/imep.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

int main() {
  using namespace plin;
  xmpi::RunConfig config;
  config.machine = hw::mini_cluster(8, 4);
  config.placement =
      hw::make_placement(8, hw::LoadLayout::kFullLoad, config.machine);
  // Nominal package power: base + 4 cores flat out.
  const double nominal = hw::PowerModel(config.machine.power)
                             .package_full_power_w(4);

  std::cout << "Power-cap ablation (numeric tier, IMe n=512 on 8 ranks; "
               "nominal package power "
            << format_power(nominal) << ")\n\n";
  TextTable table({"cap per package", "duration", "PKG energy",
                   "total energy", "avg power"});

  struct Row {
    double cap, duration, pkg, total;
  };
  std::vector<Row> rows;
  for (const double cap_w :
       {0.0, nominal * 1.2, nominal * 0.8, nominal * 0.6, nominal * 0.45}) {
    double duration = 0.0;
    double pkg = 0.0;
    double total = 0.0;
    xmpi::Runtime::run(config, [&](xmpi::Comm& world) {
      const monitor::RunMeasurement m = monitor::monitored_run(
          world, monitor::MonitorOptions{}, [&](xmpi::Comm& comm) {
            if (cap_w > 0.0) {
              // Every node's lowest rank programs its two packages.
              if (comm.my_location().core == 0 &&
                  comm.my_location().socket == 0) {
                (void)papisim::set_powercap_limit(
                    "powercap:::POWER_LIMIT_A_UW:ZONE0",
                    static_cast<long long>(cap_w * 1e6));
                (void)papisim::set_powercap_limit(
                    "powercap:::POWER_LIMIT_A_UW:ZONE1",
                    static_cast<long long>(cap_w * 1e6));
              }
              comm.barrier();
            }
            solvers::ImepOptions options;
            options.n = 512;
            options.seed = 19;
            (void)solve_imep(comm, options);
          });
      if (world.rank() == 0) {
        duration = m.duration_s;
        pkg = m.total_pkg_j();
        total = m.total_j();
      }
    });
    rows.push_back(Row{cap_w, duration, pkg, total});
    table.add_row({cap_w > 0.0 ? format_power(cap_w) : std::string("none"),
                   format_duration(duration), format_energy(pkg),
                   format_energy(total),
                   format_power(duration > 0.0 ? total / duration : 0.0)});
  }
  table.print(std::cout);
  std::cout << "\nTight caps trade longer runtimes for lower power; the "
               "energy optimum depends on\nhow much static (base) power the "
               "stretched runtime keeps burning.\n";

  std::cout << "\n== CSV powercap ==\n";
  CsvWriter csv(std::cout);
  csv.write_row({"cap_w", "duration_s", "pkg_j", "total_j"});
  for (const Row& row : rows) {
    csv.write_row({format_fixed(row.cap, 2), format_fixed(row.duration, 9),
                   format_fixed(row.pkg, 6), format_fixed(row.total, 6)});
  }
  return 0;
}
