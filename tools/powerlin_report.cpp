// powerlin_report — the self-checking reproduction report.
//
// Replays the paper's full evaluation grid on the Marconi A3 model and
// checks every §5 claim this repository reproduces, printing a PASS/FAIL
// line per claim plus the numbers behind it. Exit code 0 iff every claim
// holds — the one-command answer to "does this reproduction still stand?".
//
// A second mode, `--trace DIR`, renders the summary.json of a span-trace
// bundle (docs/tracing.md) as human-readable tables: per-phase energy
// attribution, communication totals and the critical-path breakdown.
//
// A third mode, `--store DIR`, inspects a campaign/serve result store:
// journal health (duplicates, stale records, torn-tail recovery), the
// record inventory, and — when the serve daemon left a stats snapshot
// (<DIR>/serve_stats.json, docs/serve.md) — the cache and tenant counters.
//
//   ./powerlin_report [--markdown]   (--help for the flag reference)
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "batch/report.hpp"
#include "batch/store.hpp"
#include "hwmodel/placement.hpp"
#include "perfsim/simulator.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "support/version.hpp"

namespace {

using namespace plin;

struct Claim {
  std::string id;
  std::string text;
  bool pass = false;
  std::string evidence;
};

class Grid {
 public:
  Grid() {
    const hw::MachineSpec machine = hw::marconi_a3();
    const perfsim::Simulator simulator(machine);
    for (perfsim::Algorithm a :
         {perfsim::Algorithm::kIme, perfsim::Algorithm::kScalapack}) {
      for (std::size_t n : hw::kPaperMatrixSizes) {
        for (int ranks : hw::kPaperRankCounts) {
          for (hw::LoadLayout layout :
               {hw::LoadLayout::kFullLoad, hw::LoadLayout::kHalfLoadOneSocket,
                hw::LoadLayout::kHalfLoadTwoSockets}) {
            grid_[key(a, n, ranks, layout)] = simulator.predict(
                {a, n, 64, 100},
                hw::make_placement(ranks, layout, machine));
          }
        }
      }
    }
  }

  const perfsim::Prediction& at(
      perfsim::Algorithm a, std::size_t n, int ranks,
      hw::LoadLayout layout = hw::LoadLayout::kFullLoad) const {
    return grid_.at(key(a, n, ranks, layout));
  }

 private:
  static std::string key(perfsim::Algorithm a, std::size_t n, int ranks,
                         hw::LoadLayout layout) {
    return std::to_string(static_cast<int>(a)) + "/" + std::to_string(n) +
           "/" + std::to_string(ranks) + "/" +
           std::to_string(static_cast<int>(layout));
  }
  std::map<std::string, perfsim::Prediction> grid_;
};

/// `--trace DIR`: renders <DIR>/summary.json (written by a traced run —
/// docs/tracing.md) as tables.
int report_trace(const std::string& dir) {
  const std::string path = dir + "/summary.json";
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::cerr << "error: cannot open " << path
              << " (expected a trace bundle directory)\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  const json::Value doc = json::parse(buffer.str());

  std::cout << "Trace summary: " << path << "\n"
            << "  duration " << format_duration(doc.at("duration_s").as_number())
            << ", " << doc.at("ranks").as_number() << " ranks, "
            << doc.at("dropped_spans").as_number() << " dropped spans"
            << (doc.at("complete").as_bool()
                    ? ""
                    : " (ring overflow: attribution is partial)")
            << "\n\n";

  const json::Value& energy = doc.at("energy");
  std::cout << "Per-phase energy attribution (CPU "
            << format_energy(energy.at("total_cpu_j").as_number()) << ", DRAM "
            << format_energy(energy.at("total_dram_j").as_number()) << "):\n";
  TextTable phases({"phase", "seconds", "compute", "commwait", "CPU energy",
                    "DRAM energy"});
  for (const json::Value& row : energy.at("phases").as_array()) {
    phases.add_row({row.at("phase").as_string(),
                    format_duration(row.at("seconds").as_number()),
                    format_duration(row.at("compute_s").as_number()),
                    format_duration(row.at("commwait_s").as_number()),
                    format_energy(row.at("cpu_j").as_number()),
                    format_energy(row.at("dram_j").as_number())});
  }
  phases.print(std::cout);

  const json::Value& comm = doc.at("comm");
  std::cout << "\nCommunication: " << comm.at("total_messages").as_number()
            << " messages, " << comm.at("total_bytes").as_number()
            << " bytes, "
            << format_duration(comm.at("total_wait_s").as_number())
            << " receive wait (" << comm.at("edges").as_array().size()
            << " rank pairs)\n";

  const json::Value& path_doc = doc.at("critical_path");
  std::cout << "\nCritical path: "
            << format_duration(path_doc.at("duration_s").as_number())
            << " ending on rank " << path_doc.at("end_rank").as_number()
            << " (" << path_doc.at("rank_switches").as_number()
            << " rank switches; compute "
            << format_duration(path_doc.at("compute_s").as_number())
            << ", comm wait "
            << format_duration(path_doc.at("commwait_s").as_number())
            << ", network "
            << format_duration(path_doc.at("network_s").as_number()) << ")\n";
  TextTable critical({"phase", "critical", "total rank time", "slack"});
  for (const json::Value& row : path_doc.at("phases").as_array()) {
    critical.add_row({row.at("phase").as_string(),
                      format_duration(row.at("critical_s").as_number()),
                      format_duration(row.at("total_rank_s").as_number()),
                      format_duration(row.at("slack_s").as_number())});
  }
  critical.print(std::cout);
  return 0;
}

/// `--store DIR`: renders the store's journal health and record inventory,
/// plus the serve daemon's stats snapshot when one exists.
int report_store(const std::string& dir) {
  const batch::ResultStore store(dir);
  const batch::StoreStats stats = store.stats();

  std::cout << "Result store: " << dir << "\n"
            << "  records: " << store.size() << " (replayed "
            << stats.replayed << " journal lines)\n"
            << "  duplicate journal keys: " << stats.duplicate_keys << "\n"
            << "  stale-format records skipped: " << stats.skipped_stale
            << "\n"
            << "  torn tail recovered: " << (stats.torn_tail ? "yes" : "no")
            << "\n";

  if (store.size() > 0) {
    std::cout << "\nRecord inventory:\n";
    batch::print_report_table(std::cout, store.all_records());
  }

  const std::string stats_path = dir + "/serve_stats.json";
  std::ifstream is(stats_path, std::ios::binary);
  if (!is) {
    std::cout << "  (no serve stats snapshot: " << stats_path << ")\n";
    return 0;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  const json::Value doc = json::parse(buffer.str());

  const auto count = [](const json::Value& obj, std::string_view key) {
    const json::Value* v = obj.find(key);
    return v != nullptr ? static_cast<long>(v->as_number()) : 0L;
  };

  if (const json::Value* cache = doc.find("cache")) {
    const long hits = count(*cache, "hits");
    const long misses = count(*cache, "misses");
    const long total = hits + misses;
    std::cout << "\nCache (probe counters while the daemon ran):\n"
              << "  hits " << hits << ", misses " << misses << ", inserts "
              << count(*cache, "inserts") << ", hit ratio "
              << format_fixed(total > 0 ? 100.0 * hits / total : 0.0, 1)
              << "%\n";
  }
  if (const json::Value* engine = doc.find("scheduler")) {
    std::cout << "Scheduler: " << count(*engine, "submitted")
              << " submitted, " << count(*engine, "completed")
              << " completed (" << count(*engine, "executed") << " executed, "
              << count(*engine, "cache_hits") << " cache hits, "
              << count(*engine, "coalesced") << " coalesced), "
              << count(*engine, "failed") << " failed, "
              << count(*engine, "rejected") << " rejected, "
              << count(*engine, "retries") << " retries, "
              << count(*engine, "timeouts") << " timeouts\n";
  }
  if (const json::Value* tenants = doc.find("tenants")) {
    TextTable table({"tenant", "weight", "submitted", "completed", "hits",
                     "coalesced", "rejected", "failed"});
    for (const auto& [name, row] : tenants->as_object()) {
      table.add_row({name, format_fixed(row.at("weight").as_number(), 1),
                     std::to_string(count(row, "submitted")),
                     std::to_string(count(row, "completed")),
                     std::to_string(count(row, "cache_hits")),
                     std::to_string(count(row, "coalesced")),
                     std::to_string(count(row, "rejected")),
                     std::to_string(count(row, "failed"))});
    }
    std::cout << "\nPer-tenant accounting:\n";
    table.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.require_known({"markdown", "trace", "store", "version", "help"});
    if (args.get_bool("version", false)) {
      std::cout << "powerlin_report " << plin::kVersion << "\n";
      return 0;
    }
    if (args.has("trace")) return report_trace(args.get("trace", ""));
    if (args.has("store")) return report_store(args.get("store", ""));
  } catch (const plin::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  if (args.get_bool("help", false)) {
    std::cout << "powerlin_report — self-checking reproduction report\n\n"
                 "  --markdown   emit the claim table as GitHub markdown\n"
                 "  --trace DIR  render DIR/summary.json (a span-trace "
                 "bundle, docs/tracing.md)\n"
                 "  --store DIR  inspect a result store: journal health, "
                 "records, and the\n"
                 "               serve daemon's stats snapshot when present "
                 "(docs/serve.md)\n"
                 "  --version    print the release version and exit\n"
                 "  --help       this text\n";
    return 0;
  }
  const bool markdown = args.get_bool("markdown", false);
  const Grid grid;
  using A = perfsim::Algorithm;
  std::vector<Claim> claims;

  // --- Figure 3: full load always consumes least --------------------------
  {
    Claim claim{"fig3", "full-load deployments always consume least energy",
                true, ""};
    int cells = 0;
    for (A a : {A::kIme, A::kScalapack}) {
      for (std::size_t n : hw::kPaperMatrixSizes) {
        for (int ranks : hw::kPaperRankCounts) {
          const double full =
              grid.at(a, n, ranks, hw::LoadLayout::kFullLoad).total_j();
          if (full > grid.at(a, n, ranks, hw::LoadLayout::kHalfLoadOneSocket)
                         .total_j() ||
              full > grid.at(a, n, ranks,
                             hw::LoadLayout::kHalfLoadTwoSockets)
                         .total_j()) {
            claim.pass = false;
          }
          ++cells;
        }
      }
    }
    claim.evidence = "checked " + std::to_string(cells) + " cells";
    claims.push_back(claim);
  }

  // --- Figure 5: ScaLAPACK wins dense, IMe wins distributed ----------------
  {
    Claim claim{"fig5-dense",
                "ScaLAPACK is faster in the dense configurations "
                "(n >= 25920, excluding the 1296/25920 near-tie)",
                true, ""};
    for (int ranks : hw::kPaperRankCounts) {
      for (std::size_t n : {25920ul, 34560ul}) {
        if (ranks == 1296 && n == 25920) continue;
        if (grid.at(A::kScalapack, n, ranks).duration_s >=
            grid.at(A::kIme, n, ranks).duration_s) {
          claim.pass = false;
        }
      }
    }
    claims.push_back(claim);

    Claim ime_claim{"fig5-distributed",
                    "IMe is faster at 576/1296 ranks for n = 8640/17280",
                    true, ""};
    std::ostringstream evidence;
    for (int ranks : {576, 1296}) {
      for (std::size_t n : {8640ul, 17280ul}) {
        const double ti = grid.at(A::kIme, n, ranks).duration_s;
        const double ts = grid.at(A::kScalapack, n, ranks).duration_s;
        if (ti >= ts) ime_claim.pass = false;
        evidence << "(" << n << "," << ranks << "): "
                 << format_fixed(ti / ts, 2) << "x  ";
      }
    }
    ime_claim.evidence = evidence.str();
    claims.push_back(ime_claim);
  }

  // --- §5.4: energy gap 50-60% at dense cells, shrinking when distributed --
  {
    const double dense = grid.at(A::kIme, 34560, 144).total_j() /
                         grid.at(A::kScalapack, 34560, 144).total_j();
    const double distributed =
        grid.at(A::kIme, 8640, 1296).total_j() /
        grid.at(A::kScalapack, 8640, 1296).total_j();
    Claim claim{"s54-energy",
                "total energy gap ~50-60% in ScaLAPACK's favour at the "
                "dense corner, shrinking toward the distributed corner",
                dense > 1.7 && dense < 2.7 && distributed < dense, ""};
    claim.evidence = "dense ratio " + format_fixed(dense, 2) +
                     ", distributed ratio " + format_fixed(distributed, 2);
    claims.push_back(claim);
  }

  // --- Figure 6: power gap 12-18%, flat across n ----------------------------
  {
    double lo = 1e300;
    double hi = 0.0;
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        const double ratio = grid.at(A::kIme, n, ranks).avg_power_w() /
                             grid.at(A::kScalapack, n, ranks).avg_power_w();
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
      }
    }
    Claim claim{"fig6-power", "IMe/ScaLAPACK power ratio in a ~12-18% band",
                lo > 1.05 && hi < 1.22, ""};
    claim.evidence = "ratios span " + format_fixed(lo, 3) + " .. " +
                     format_fixed(hi, 3);
    claims.push_back(claim);
  }

  // --- §5.3: one-socket deployments show the package imbalance -------------
  {
    const auto& p =
        grid.at(A::kIme, 17280, 576, hw::LoadLayout::kHalfLoadOneSocket);
    const double drop = 1.0 - p.pkg_j[1] / p.pkg_j[0];
    Claim claim{"s53-socket",
                "the nominally idle socket consumes ~40-60% less than the "
                "busy one (not ~0)",
                drop > 0.30 && drop < 0.65, ""};
    claim.evidence = "pkg1 lower by " + format_fixed(100.0 * drop, 1) + "%";
    claims.push_back(claim);
  }

  // --- §5.4: DRAM power gap favours ScaLAPACK everywhere -------------------
  {
    Claim claim{"s54-dram", "IMe draws more DRAM power in every cell", true,
                ""};
    for (std::size_t n : hw::kPaperMatrixSizes) {
      for (int ranks : hw::kPaperRankCounts) {
        if (grid.at(A::kIme, n, ranks).dram_power_w() <=
            grid.at(A::kScalapack, n, ranks).dram_power_w()) {
          claim.pass = false;
        }
      }
    }
    claims.push_back(claim);
  }

  // --- render ----------------------------------------------------------------
  int failures = 0;
  if (markdown) {
    std::cout << "| claim | status | evidence |\n|---|---|---|\n";
  } else {
    std::cout << "powerlin reproduction report (replay tier, Marconi A3 "
                 "model)\n\n";
  }
  for (const Claim& claim : claims) {
    if (!claim.pass) ++failures;
    if (markdown) {
      std::cout << "| " << claim.text << " | "
                << (claim.pass ? "PASS" : "FAIL") << " | " << claim.evidence
                << " |\n";
    } else {
      std::cout << (claim.pass ? "[PASS] " : "[FAIL] ") << claim.id << ": "
                << claim.text
                << (claim.evidence.empty() ? "" : " — " + claim.evidence)
                << "\n";
    }
  }
  std::cout << "\n" << (claims.size() - failures) << "/" << claims.size()
            << " paper claims reproduced.\n";
  return failures == 0 ? 0 : 1;
}
