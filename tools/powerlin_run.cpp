// powerlin_run — command-line driver for energy profiling runs.
//
//   powerlin_run --tier numeric --algorithm ime --n 512 --ranks 16
//   powerlin_run --tier replay  --algorithm scalapack --n 34560 --ranks 1296
//   powerlin_run --campaign manifests/ci_smoke.plc --store campaign_store
//
// Run `powerlin_run --help` for the full flag reference. Unknown flags are
// rejected (a mistyped manifest or flag fails loudly instead of being
// silently ignored).
#include <iostream>

#include "batch/campaign.hpp"
#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "monitor/campaign.hpp"
#include "perfsim/simulator.hpp"
#include "solvers/jacobi/jacobi.hpp"
#include "sparse/generate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "support/version.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

constexpr const char* kUsage = R"(powerlin_run — energy profiling driver

One-off modes:
  --tier       numeric (execute on xmpi, default) | replay (perfsim)
  --algorithm  ime (default) | scalapack | jacobi | cg
  --n          matrix dimension (default 512 numeric / 17280 replay)
  --ranks      MPI ranks (default 16 numeric / 576 replay)
  --layout     full (default) | half1 | half2
  --nb         ScaLAPACK block size (default 64 replay; 32 numeric)
  --seed       generator seed (default 1)
  --reps       numeric repetitions (default 1)
  --precision  fp64 (default) | mixed (fp32 factorization + fp64 iterative
               refinement; scalapack only — docs/mixed_precision.md; the
               replay tier prices it with the refinement-iteration model)
  --tol        Jacobi tolerance (default 1e-12); CG tolerance (default 1e-11)
  --dominance  Jacobi diagonal dominance (default 0)
  --iterations Jacobi replay sweep count (default 100)
  --matrix     CG sparse family: stencil5 (default) | stencil9 | stencil27 |
               banded | random | blockdiag (docs/sparse.md)
  --precond    CG preconditioner: none (default) | jacobi (diagonal)
  --out        directory for per-processor monitor files (numeric)
  --trace-dir  archive the span-trace bundle of the run into this directory
               (numeric tier; first repetition only — docs/tracing.md)

Campaign mode (batch orchestrator, docs/campaign.md):
  --campaign   path to a campaign manifest; runs the whole grid through the
               job queue with the content-addressed result store, skipping
               every job already journaled (resume = re-run same command)
  --store      result store directory (default campaign_store)
  --workers    override the manifest's host worker count
  --max-jobs   execute at most N jobs this invocation, then stop (the
               deterministic interrupt used to test resumability)
  --trace-dir  archive one span-trace bundle per numeric job under
               <trace-dir>/<job key>/ (docs/tracing.md)

  --version    print the release version and exit
  --help       this text
)";

hw::LoadLayout parse_layout(const std::string& name) {
  return batch::parse_layout_token(name);
}

int run_replay(const CliArgs& args) {
  const hw::MachineSpec machine = hw::marconi_a3();
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 17280));
  const int ranks = static_cast<int>(args.get_int("ranks", 576));
  const hw::LoadLayout layout = parse_layout(args.get("layout", "full"));
  const std::string algorithm = args.get("algorithm", "ime");
  const std::size_t nb = static_cast<std::size_t>(args.get_int("nb", 64));
  perfsim::Workload workload;
  workload.n = n;
  workload.nb = nb;
  if (algorithm == "scalapack") {
    workload.algorithm = perfsim::Algorithm::kScalapack;
  } else if (algorithm == "jacobi") {
    workload.algorithm = perfsim::Algorithm::kJacobi;
    workload.iterations = static_cast<int>(args.get_int("iterations", 100));
  } else if (algorithm == "cg") {
    workload.algorithm = perfsim::Algorithm::kCg;
    workload.matrix =
        sparse::parse_kind_token(args.get("matrix", "stencil5"));
    workload.tolerance = args.get_double("tol", 1e-11);
    workload.precond =
        solvers::parse_precond_token(args.get("precond", "none"));
  } else {
    workload.algorithm = perfsim::Algorithm::kIme;
  }
  workload.precision =
      batch::parse_precision_token(args.get("precision", "fp64"));
  if (workload.precision != perfsim::Precision::kFp64 &&
      workload.algorithm != perfsim::Algorithm::kScalapack) {
    std::cerr << "error: --precision mixed is a GEPP (scalapack) variant; "
                 "IMe/Jacobi have no fp32 path\n";
    return 1;
  }
  const perfsim::Algorithm alg = workload.algorithm;

  const perfsim::Simulator simulator(machine);
  const hw::Placement placement = hw::make_placement(ranks, layout, machine);
  const perfsim::Prediction p = simulator.predict(workload, placement);

  std::cout << "Replay-tier prediction on " << machine.name << ": "
            << perfsim::to_string(alg) << " ("
            << perfsim::to_string(workload.precision) << "), n=" << n << ", "
            << placement.describe() << "\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"duration", format_duration(p.duration_s)});
  table.add_row({"PKG energy (socket 0)", format_energy(p.pkg_j[0])});
  table.add_row({"PKG energy (socket 1)", format_energy(p.pkg_j[1])});
  table.add_row({"DRAM energy (socket 0)", format_energy(p.dram_j[0])});
  table.add_row({"DRAM energy (socket 1)", format_energy(p.dram_j[1])});
  table.add_row({"total energy", format_energy(p.total_j())});
  table.add_row({"average power", format_power(p.avg_power_w())});
  table.add_row({"DRAM power", format_power(p.dram_power_w())});
  table.add_row({"critical-path compute", format_duration(p.compute_s)});
  table.add_row({"critical-path comm", format_duration(p.comm_s)});
  table.print(std::cout);
  return 0;
}

int run_numeric(const CliArgs& args) {
  const hw::MachineSpec machine = hw::mini_cluster(32, 4);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 512));
  const int ranks = static_cast<int>(args.get_int("ranks", 16));
  const hw::LoadLayout layout = parse_layout(args.get("layout", "full"));
  const std::string algorithm = args.get("algorithm", "ime");

  if (algorithm == "jacobi") {
    xmpi::RunConfig config;
    config.machine = machine;
    config.placement = hw::make_placement(ranks, layout, machine);
    config.trace_dir = args.get("trace-dir", "");
    solvers::JacobiResult result;
    const xmpi::RunResult run =
        xmpi::Runtime::run(config, [&](xmpi::Comm& comm) {
          solvers::JacobiOptions options;
          options.n = n;
          options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
          options.tolerance = args.get_double("tol", 1e-12);
          options.dominance = args.get_double("dominance", 0.0);
          const solvers::JacobiResult r = solve_pjacobi(comm, options);
          if (comm.rank() == 0) result = r;
        });
    std::cout << "Jacobi: " << (result.converged ? "converged" : "DID NOT "
                                                                 "converge")
              << " in " << result.iterations << " iterations, duration "
              << format_duration(run.duration_s) << ", energy "
              << format_energy(run.energy.total_j()) << "\n";
    return result.converged ? 0 : 1;
  }

  monitor::JobSpec spec;
  if (algorithm == "scalapack") {
    spec.algorithm = perfsim::Algorithm::kScalapack;
  } else if (algorithm == "cg") {
    spec.algorithm = perfsim::Algorithm::kCg;
    spec.matrix = sparse::parse_kind_token(args.get("matrix", "stencil5"));
    spec.tolerance = args.get_double("tol", 1e-11);
    spec.precond = solvers::parse_precond_token(args.get("precond", "none"));
  } else {
    spec.algorithm = perfsim::Algorithm::kIme;
  }
  spec.n = n;
  spec.ranks = ranks;
  spec.layout = layout;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.nb = static_cast<std::size_t>(args.get_int("nb", 32));
  spec.repetitions = static_cast<int>(args.get_int("reps", 1));
  spec.precision =
      batch::parse_precision_token(args.get("precision", "fp64"));

  monitor::MonitorOptions options;
  options.output_dir = args.get("out", "");
  options.trace_dir = args.get("trace-dir", "");

  const monitor::JobResult result =
      monitor::run_job(machine, spec, options);
  const std::vector<monitor::JobResult> jobs = {result};
  monitor::print_campaign_table(std::cout, jobs);
  return 0;
}

int run_campaign_mode(const CliArgs& args) {
  const batch::CampaignManifest manifest =
      batch::load_manifest_file(args.get("campaign", ""));
  batch::CampaignOptions options;
  options.store_dir = args.get("store", "campaign_store");
  options.workers = static_cast<int>(args.get_int("workers", 0));
  const long max_jobs = args.get_int("max-jobs", -1);
  if (max_jobs >= 0) {
    options.max_jobs = static_cast<std::size_t>(max_jobs);
  }
  options.trace_dir = args.get("trace-dir", "");

  const batch::CampaignResult result = batch::run_campaign(manifest, options);

  std::cout << "Campaign '" << manifest.name << "': "
            << result.outcome.executed << " executed, "
            << result.outcome.cached << " cached, "
            << result.outcome.failures.size() << " failed, "
            << result.outcome.stopped << " stopped ("
            << result.records.size() << "/"
            << (result.records.size() + result.missing)
            << " jobs in store)\n"
            << "Store cache: " << result.store_stats.hits << " hits, "
            << result.store_stats.misses << " misses, "
            << result.store_stats.inserts << " inserts this invocation\n\n";
  batch::print_report_table(std::cout, result.records);
  if (!result.csv_path.empty()) {
    std::cout << "\nReports: " << result.csv_path << ", "
              << result.markdown_path << "\n";
  }
  for (const batch::JobFailure& failure : result.outcome.failures) {
    std::cerr << "failed after " << failure.attempts << " attempt(s): "
              << failure.spec.describe() << ": " << failure.error << "\n";
  }
  if (!result.outcome.failures.empty()) return 1;
  return result.outcome.stopped > 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.require_known({"tier", "algorithm", "n", "ranks", "layout", "nb",
                        "seed", "reps", "precision", "tol", "dominance",
                        "iterations", "matrix", "precond", "out", "campaign",
                        "store",
                        "workers", "max-jobs", "trace-dir", "version",
                        "help"});
    if (args.get_bool("help", false)) {
      std::cout << kUsage;
      return 0;
    }
    if (args.get_bool("version", false)) {
      std::cout << "powerlin_run " << plin::kVersion << "\n";
      return 0;
    }
    if (args.has("campaign")) return run_campaign_mode(args);
    const std::string tier = args.get("tier", "numeric");
    if (tier == "replay") return run_replay(args);
    if (tier == "numeric") return run_numeric(args);
    std::cerr << "unknown --tier (use numeric | replay): " << tier << "\n";
    return 1;
  } catch (const plin::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
