// powerlin_run — command-line driver for one-off energy profiling runs.
//
//   powerlin_run --tier numeric --algorithm ime --n 512 --ranks 16
//   powerlin_run --tier replay  --algorithm scalapack --n 34560 --ranks 1296
//
// Flags:
//   --tier       numeric (execute on xmpi, default) | replay (perfsim)
//   --algorithm  ime (default) | scalapack | jacobi (numeric only)
//   --n          matrix dimension (default 512 numeric / 17280 replay)
//   --ranks      MPI ranks (default 16 numeric / 576 replay)
//   --layout     full (default) | half1 | half2
//   --nb         ScaLAPACK block size (default 64; 32 for numeric)
//   --seed       generator seed (default 1)
//   --reps       numeric repetitions (default 1)
//   --tol        Jacobi tolerance (default 1e-12)
//   --out        directory for per-processor monitor files (numeric)
#include <iostream>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "monitor/campaign.hpp"
#include "perfsim/simulator.hpp"
#include "solvers/jacobi/jacobi.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

namespace {

using namespace plin;

hw::LoadLayout parse_layout(const std::string& name) {
  if (name == "full") return hw::LoadLayout::kFullLoad;
  if (name == "half1") return hw::LoadLayout::kHalfLoadOneSocket;
  if (name == "half2") return hw::LoadLayout::kHalfLoadTwoSockets;
  throw InvalidArgument("unknown --layout (use full | half1 | half2): " +
                        name);
}

int run_replay(const CliArgs& args) {
  const hw::MachineSpec machine = hw::marconi_a3();
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 17280));
  const int ranks = static_cast<int>(args.get_int("ranks", 576));
  const hw::LoadLayout layout = parse_layout(args.get("layout", "full"));
  const std::string algorithm = args.get("algorithm", "ime");
  const std::size_t nb = static_cast<std::size_t>(args.get_int("nb", 64));
  perfsim::Workload workload;
  workload.n = n;
  workload.nb = nb;
  if (algorithm == "scalapack") {
    workload.algorithm = perfsim::Algorithm::kScalapack;
  } else if (algorithm == "jacobi") {
    workload.algorithm = perfsim::Algorithm::kJacobi;
    workload.iterations = static_cast<int>(args.get_int("iterations", 100));
  } else {
    workload.algorithm = perfsim::Algorithm::kIme;
  }
  const perfsim::Algorithm alg = workload.algorithm;

  const perfsim::Simulator simulator(machine);
  const hw::Placement placement = hw::make_placement(ranks, layout, machine);
  const perfsim::Prediction p = simulator.predict(workload, placement);

  std::cout << "Replay-tier prediction on " << machine.name << ": "
            << perfsim::to_string(alg) << ", n=" << n << ", "
            << placement.describe() << "\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"duration", format_duration(p.duration_s)});
  table.add_row({"PKG energy (socket 0)", format_energy(p.pkg_j[0])});
  table.add_row({"PKG energy (socket 1)", format_energy(p.pkg_j[1])});
  table.add_row({"DRAM energy (socket 0)", format_energy(p.dram_j[0])});
  table.add_row({"DRAM energy (socket 1)", format_energy(p.dram_j[1])});
  table.add_row({"total energy", format_energy(p.total_j())});
  table.add_row({"average power", format_power(p.avg_power_w())});
  table.add_row({"DRAM power", format_power(p.dram_power_w())});
  table.add_row({"critical-path compute", format_duration(p.compute_s)});
  table.add_row({"critical-path comm", format_duration(p.comm_s)});
  table.print(std::cout);
  return 0;
}

int run_numeric(const CliArgs& args) {
  const hw::MachineSpec machine = hw::mini_cluster(32, 4);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 512));
  const int ranks = static_cast<int>(args.get_int("ranks", 16));
  const hw::LoadLayout layout = parse_layout(args.get("layout", "full"));
  const std::string algorithm = args.get("algorithm", "ime");

  if (algorithm == "jacobi") {
    xmpi::RunConfig config;
    config.machine = machine;
    config.placement = hw::make_placement(ranks, layout, machine);
    solvers::JacobiResult result;
    const xmpi::RunResult run =
        xmpi::Runtime::run(config, [&](xmpi::Comm& comm) {
          solvers::JacobiOptions options;
          options.n = n;
          options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
          options.tolerance = args.get_double("tol", 1e-12);
          options.dominance = args.get_double("dominance", 0.0);
          const solvers::JacobiResult r = solve_pjacobi(comm, options);
          if (comm.rank() == 0) result = r;
        });
    std::cout << "Jacobi: " << (result.converged ? "converged" : "DID NOT "
                                                                 "converge")
              << " in " << result.iterations << " iterations, duration "
              << format_duration(run.duration_s) << ", energy "
              << format_energy(run.energy.total_j()) << "\n";
    return result.converged ? 0 : 1;
  }

  monitor::JobSpec spec;
  spec.algorithm = algorithm == "scalapack" ? perfsim::Algorithm::kScalapack
                                            : perfsim::Algorithm::kIme;
  spec.n = n;
  spec.ranks = ranks;
  spec.layout = layout;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.nb = static_cast<std::size_t>(args.get_int("nb", 32));
  spec.repetitions = static_cast<int>(args.get_int("reps", 1));

  monitor::MonitorOptions options;
  options.output_dir = args.get("out", "");

  const monitor::JobResult result =
      monitor::run_job(machine, spec, options);
  const std::vector<monitor::JobResult> jobs = {result};
  monitor::print_campaign_table(std::cout, jobs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    const std::string tier = args.get("tier", "numeric");
    if (tier == "replay") return run_replay(args);
    if (tier == "numeric") return run_numeric(args);
    std::cerr << "unknown --tier (use numeric | replay): " << tier << "\n";
    return 1;
  } catch (const plin::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
