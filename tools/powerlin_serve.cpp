// powerlin_serve — campaign-as-a-service daemon (docs/serve.md).
//
// Listens on a local AF_UNIX socket for newline-delimited JSON job
// requests, schedules them across tenants with weighted fair-share atop a
// bounded worker pool, dedupes identical specs against the content-
// addressed result store, and journals every completion crash-safely: a
// SIGKILL mid-run loses nothing that was acknowledged, and a restart
// serves previously-completed jobs from the store without re-running them.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish queued jobs,
// flush every pending response, persist serve_stats.json, exit 0.
#include <csignal>
#include <iostream>
#include <fstream>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/version.hpp"

namespace {

using namespace plin;  // NOLINT(build/namespaces) - tool main

constexpr const char* kUsage = R"(powerlin_serve - campaign-as-a-service daemon

Serves job requests over a local socket (newline-delimited JSON; protocol
reference in docs/serve.md). Identical requests dedupe against the
content-addressed result store; completed jobs are journaled before they
are acknowledged, so kill -9 + restart never loses or re-runs a completed
job.

Usage:
  powerlin_serve --socket=PATH --store=DIR [options]

  --socket       AF_UNIX socket path to listen on (required)
  --store        result-store directory (required; created if missing)
  --workers      worker threads executing jobs (default 2)
  --retries      extra attempts after a job failure (default 0)
  --timeout      cooperative per-attempt budget in host seconds (default 0
                 = unlimited; an over-budget result is discarded + retried)
  --backoff      host seconds before retry k is k*backoff (default 0)
  --max-queued   per-tenant admission limit on queued jobs (default 1024)
  --max-inflight per-tenant cap on concurrently running jobs (default 0 =
                 uncapped; fair-share still applies)
  --stats        also print the stats JSON to stdout on exit
  --version      print version
  --help         this text

On drain the daemon writes <store>/serve_stats.json (scheduler + tenant +
cache counters); render it with `powerlin_report --store=DIR`.
)";

serve::Server* g_server = nullptr;

void handle_signal(int) {
  // Async-signal-safe: stop() only writes one byte to the self-pipe.
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.require_known({"socket", "store", "workers", "retries", "timeout",
                        "backoff", "max-queued", "max-inflight", "stats",
                        "version", "help"});
    if (args.get_bool("help", false)) {
      std::cout << kUsage;
      return 0;
    }
    if (args.get_bool("version", false)) {
      std::cout << "powerlin_serve " << plin::kVersion << "\n";
      return 0;
    }
    const std::string socket_path = args.get("socket", "");
    const std::string store_dir = args.get("store", "");
    if (socket_path.empty() || store_dir.empty()) {
      std::cerr << "error: --socket and --store are required (--help)\n";
      return 1;
    }

    batch::ResultStore store(store_dir);
    if (store.recovered_torn_tail()) {
      std::cerr << "note: recovered a torn journal tail (previous daemon "
                   "died mid-write); the torn line was dropped\n";
    }

    serve::EngineOptions options;
    options.workers = static_cast<int>(args.get_int("workers", 2));
    options.retries = static_cast<int>(args.get_int("retries", 0));
    options.timeout_s = args.get_double("timeout", 0.0);
    options.backoff_s = args.get_double("backoff", 0.0);
    options.default_tenant.max_queued =
        static_cast<int>(args.get_int("max-queued", 1024));
    options.default_tenant.max_inflight =
        static_cast<int>(args.get_int("max-inflight", 0));
    serve::Engine engine(store, options);

    serve::ServerOptions server_options;
    server_options.socket_path = socket_path;
    serve::Server server(engine, server_options);
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    std::cerr << "powerlin_serve " << plin::kVersion << " listening on "
              << socket_path << " (store " << store_dir << ", "
              << options.workers << " workers, " << store.size()
              << " records journaled)\n";
    server.serve();
    g_server = nullptr;

    const std::string stats_text = json::serialize(engine.stats_json());
    {
      std::ofstream out(store_dir + "/serve_stats.json",
                        std::ios::binary | std::ios::trunc);
      out << stats_text << "\n";
    }
    if (args.get_bool("stats", false)) std::cout << stats_text << "\n";
    std::cerr << "powerlin_serve drained: " << store.size()
              << " records in the store\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
