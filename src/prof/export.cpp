#include "prof/export.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace plin::prof {
namespace {

/// Maximum points per node on the power counter track; denser series are
/// resampled onto a uniform grid (deterministically — a pure function of
/// the span data).
constexpr std::size_t kMaxCounterPoints = 512;

std::string escaped(std::string_view text) {
  return json::serialize(json::Value(std::string(text)));
}

std::string us(double seconds) {  // virtual seconds -> trace microseconds
  return json::format_number(seconds * 1e6);
}

/// One trace_event line still missing its pid/tid framing.
struct Slice {
  double t0 = 0.0;
  double dur = 0.0;
  bool instant = false;
  std::string name;  // already JSON-escaped (includes quotes)
  const char* cat = "";
  std::string args;  // raw JSON object text, or empty
  std::size_t index = 0;
};

void append_rank_slices(std::string& out, const RankTrace& rank,
                        bool& first) {
  std::vector<Slice> slices;
  slices.reserve(rank.phases.size() + rank.spans.size());
  for (const PhaseSpan& phase : rank.phases) {
    Slice s;
    s.t0 = phase.t0;
    s.dur = phase.t1 - phase.t0;
    s.name = escaped(rank.names[static_cast<std::size_t>(phase.name)]);
    s.cat = "phase";
    slices.push_back(std::move(s));
  }
  for (const Span& span : rank.spans) {
    Slice s;
    s.t0 = span.t0;
    s.dur = span.t1 - span.t0;
    switch (span.kind) {
      case SpanKind::kActivity:
        s.name = escaped(hw::to_string(span.activity));
        s.cat = hw::to_string(span.activity);
        break;
      case SpanKind::kCollective:
        s.name = escaped(rank.names[static_cast<std::size_t>(span.name)]);
        s.cat = "collective";
        break;
      case SpanKind::kSend:
      case SpanKind::kRecv: {
        const bool send = span.kind == SpanKind::kSend;
        s.name = send ? "\"send\"" : "\"recv\"";
        s.cat = "msg";
        s.args = "{\"peer\":" + std::to_string(span.peer) +
                 ",\"bytes\":" + std::to_string(span.bytes) +
                 ",\"tag\":" + std::to_string(span.tag) +
                 ",\"seq\":" + std::to_string(span.seq);
        if (!send && span.aux > span.t0) {
          s.args += ",\"wait_us\":" + us(span.aux - span.t0);
        }
        s.args += "}";
        break;
      }
      case SpanKind::kInstant:
        s.instant = true;
        s.name = escaped(rank.names[static_cast<std::size_t>(span.name)]);
        s.cat = "marker";
        break;
    }
    slices.push_back(std::move(s));
  }
  // Nesting order for trace viewers: outer slices (earlier start, longer
  // duration) first; original order is the final tie-break so the sort is
  // total and deterministic.
  for (std::size_t i = 0; i < slices.size(); ++i) slices[i].index = i;
  std::sort(slices.begin(), slices.end(), [](const Slice& a, const Slice& b) {
    if (a.t0 != b.t0) return a.t0 < b.t0;
    if (a.dur != b.dur) return a.dur > b.dur;
    return a.index < b.index;
  });

  const std::string frame = ",\"pid\":" + std::to_string(rank.node) +
                            ",\"tid\":" + std::to_string(rank.world_rank);
  for (const Slice& s : slices) {
    out += first ? "" : ",\n";
    first = false;
    if (s.instant) {
      out += "{\"ph\":\"i\",\"name\":" + s.name + ",\"s\":\"t\"" + frame +
             ",\"ts\":" + us(s.t0) + "}";
      continue;
    }
    out += "{\"ph\":\"X\",\"name\":" + s.name + ",\"cat\":\"" + s.cat +
           "\"" + frame + ",\"ts\":" + us(s.t0) +
           ",\"dur\":" + json::format_number(s.dur * 1e6);
    if (!s.args.empty()) out += ",\"args\":" + s.args;
    out += "}";
  }
}

/// Per-node dynamic CPU power (watts above all-idle, uncapped) as a
/// stepwise counter series built from the activity span edges.
void append_power_counters(std::string& out, const TraceData& trace,
                           bool& first) {
  const hw::PowerModel power{trace.power};
  const double idle_w = power.core_power_w(hw::ActivityKind::kIdle);

  std::set<int> nodes;
  for (const RankTrace& rank : trace.ranks) nodes.insert(rank.node);
  for (const int node : nodes) {
    std::vector<std::pair<double, double>> edges;  // (t, watts delta)
    for (const RankTrace& rank : trace.ranks) {
      if (rank.node != node) continue;
      for (const Span& span : rank.spans) {
        if (span.kind != SpanKind::kActivity || span.t1 <= span.t0) continue;
        const double watts = power.core_power_w(span.activity) - idle_w;
        edges.emplace_back(span.t0, watts);
        edges.emplace_back(span.t1, -watts);
      }
    }
    // stable: ties keep rank-major program order, fixing the FP fold.
    std::stable_sort(edges.begin(), edges.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<std::pair<double, double>> points;  // (t, cumulative watts)
    double watts = 0.0;
    for (std::size_t i = 0; i < edges.size();) {
      const double t = edges[i].first;
      for (; i < edges.size() && edges[i].first == t; ++i) {
        watts += edges[i].second;
      }
      points.emplace_back(t, watts);
    }
    if (points.size() > kMaxCounterPoints && trace.duration_s > 0.0) {
      std::vector<std::pair<double, double>> sampled;
      sampled.reserve(kMaxCounterPoints);
      std::size_t cursor = 0;
      double value = 0.0;
      for (std::size_t k = 0; k < kMaxCounterPoints; ++k) {
        const double t = trace.duration_s *
                         static_cast<double>(k) /
                         static_cast<double>(kMaxCounterPoints - 1);
        while (cursor < points.size() && points[cursor].first <= t) {
          value = points[cursor].second;
          ++cursor;
        }
        sampled.emplace_back(t, value);
      }
      points = std::move(sampled);
    }
    for (const auto& [t, value] : points) {
      out += first ? "" : ",\n";
      first = false;
      out += "{\"ph\":\"C\",\"name\":\"dynamic power\",\"pid\":" +
             std::to_string(node) + ",\"tid\":0,\"ts\":" + us(t) +
             ",\"args\":{\"w\":" + json::format_number(value) + "}}";
    }
  }
}

void write_text_file(const std::filesystem::path& path,
                     const std::string& text) {
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  if (!os) throw IoError("cannot open for write: " + path.string());
  os << text;
  if (!os) throw IoError("write failed: " + path.string());
}

}  // namespace

std::string perfetto_json(const TraceData& trace) {
  std::string out;
  out += "[\n";
  bool first = true;

  std::set<int> nodes;
  for (const RankTrace& rank : trace.ranks) nodes.insert(rank.node);
  for (const int node : nodes) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(node) + ",\"args\":{\"name\":\"node " +
           std::to_string(node) + "\"}}";
  }
  for (const RankTrace& rank : trace.ranks) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(rank.node) + ",\"tid\":" +
           std::to_string(rank.world_rank) + ",\"args\":{\"name\":\"rank " +
           std::to_string(rank.world_rank) + "\"}}";
    append_rank_slices(out, rank, first);
  }
  append_power_counters(out, trace, first);
  out += "\n]\n";
  return out;
}

void write_perfetto(const std::string& path, const TraceData& trace) {
  write_text_file(path, perfetto_json(trace));
}

json::Value summary_json(const TraceData& trace,
                         const EnergyAttribution& energy,
                         const CommMatrix& comm, const CriticalPath& path) {
  json::Value doc = json::make_object();
  doc.set("schema", "powerlin-trace-summary/v1");
  doc.set("duration_s", trace.duration_s);
  doc.set("ranks", static_cast<int>(trace.ranks.size()));
  doc.set("ring_capacity", static_cast<double>(trace.ring_capacity));
  doc.set("dropped_spans", static_cast<double>(trace.dropped_spans()));
  doc.set("complete", energy.complete);

  json::Value energy_doc = json::make_object();
  energy_doc.set("total_cpu_j", energy.total_cpu_j);
  energy_doc.set("total_dram_j", energy.total_dram_j);
  json::Array phase_rows;
  for (const PhaseEnergyRow& row : energy.rows) {
    json::Value entry = json::make_object();
    entry.set("phase", row.phase);
    entry.set("seconds", row.seconds);
    entry.set("compute_s", row.compute_s);
    entry.set("membound_s", row.membound_s);
    entry.set("commactive_s", row.commactive_s);
    entry.set("commwait_s", row.commwait_s);
    entry.set("cpu_j", row.cpu_j);
    entry.set("dram_j", row.dram_j);
    phase_rows.push_back(std::move(entry));
  }
  energy_doc.set("phases", json::Value(std::move(phase_rows)));
  doc.set("energy", std::move(energy_doc));

  json::Value comm_doc = json::make_object();
  comm_doc.set("total_messages", static_cast<double>(comm.total_messages));
  comm_doc.set("total_bytes", static_cast<double>(comm.total_bytes));
  comm_doc.set("total_wait_s", comm.total_wait_s);
  json::Array edge_rows;
  for (const CommEdge& edge : comm.edges) {
    json::Value entry = json::make_object();
    entry.set("src", edge.src);
    entry.set("dst", edge.dst);
    entry.set("messages", static_cast<double>(edge.messages));
    entry.set("bytes", static_cast<double>(edge.bytes));
    entry.set("wait_s", edge.wait_s);
    edge_rows.push_back(std::move(entry));
  }
  comm_doc.set("edges", json::Value(std::move(edge_rows)));
  doc.set("comm", std::move(comm_doc));

  // Collective calls aggregated by schedule name (ring-buffered spans, so
  // counts are lower bounds under overflow — dropped_spans above says by
  // how much). Schedule variants show up as distinct names (e.g. "reduce"
  // vs "allreduce:rsag" vs "allgather:ring"), which is how a trace
  // attributes time to the transport's collective modes (docs/xmpi.md).
  std::map<std::string, std::pair<std::uint64_t, double>> collectives;
  for (const RankTrace& rank : trace.ranks) {
    for (const Span& span : rank.spans) {
      if (span.kind != SpanKind::kCollective) continue;
      if (span.name < 0 ||
          static_cast<std::size_t>(span.name) >= rank.names.size()) {
        continue;
      }
      auto& entry = collectives[rank.names[static_cast<std::size_t>(
          span.name)]];
      entry.first += 1;
      entry.second += span.t1 - span.t0;
    }
  }
  json::Array collective_rows;
  for (const auto& [name, stat] : collectives) {
    json::Value entry = json::make_object();
    entry.set("name", name);
    entry.set("count", static_cast<double>(stat.first));
    entry.set("rank_seconds", stat.second);
    collective_rows.push_back(std::move(entry));
  }
  doc.set("collectives", json::Value(std::move(collective_rows)));

  json::Value path_doc = json::make_object();
  path_doc.set("duration_s", path.duration_s);
  path_doc.set("end_rank", path.end_rank);
  path_doc.set("rank_switches", path.rank_switches);
  path_doc.set("truncated", path.truncated);
  path_doc.set("compute_s", path.compute_s);
  path_doc.set("membound_s", path.membound_s);
  path_doc.set("commactive_s", path.commactive_s);
  path_doc.set("commwait_s", path.commwait_s);
  path_doc.set("network_s", path.network_s);
  json::Array cp_rows;
  for (const CriticalPhase& row : path.phases) {
    json::Value entry = json::make_object();
    entry.set("phase", row.phase);
    entry.set("critical_s", row.critical_s);
    entry.set("total_rank_s", row.total_rank_s);
    entry.set("slack_s", row.slack_s);
    cp_rows.push_back(std::move(entry));
  }
  path_doc.set("phases", json::Value(std::move(cp_rows)));
  doc.set("critical_path", std::move(path_doc));

  json::Array pkg_rows;
  for (const PackagePower& pkg : trace.packages) {
    json::Value entry = json::make_object();
    entry.set("node", pkg.node);
    entry.set("package", pkg.package);
    entry.set("pkg_j", pkg.pkg_j);
    entry.set("dram_j", pkg.dram_j);
    entry.set("dram_traffic_bytes", pkg.dram_traffic_bytes);
    entry.set("cap_w", pkg.cap_w);
    entry.set("ranked_cores", pkg.ranked_cores);
    pkg_rows.push_back(std::move(entry));
  }
  doc.set("packages", json::Value(std::move(pkg_rows)));
  return doc;
}

json::Value summary_json(const TraceData& trace) {
  return summary_json(trace, attribute_energy(trace), comm_matrix(trace),
                      critical_path(trace));
}

std::string phases_csv(const EnergyAttribution& energy) {
  std::string out =
      "phase,seconds,compute_s,membound_s,commactive_s,commwait_s,cpu_j,"
      "dram_j\n";
  for (const PhaseEnergyRow& row : energy.rows) {
    out += row.phase + "," + json::format_number(row.seconds) + "," +
           json::format_number(row.compute_s) + "," +
           json::format_number(row.membound_s) + "," +
           json::format_number(row.commactive_s) + "," +
           json::format_number(row.commwait_s) + "," +
           json::format_number(row.cpu_j) + "," +
           json::format_number(row.dram_j) + "\n";
  }
  return out;
}

std::string comm_matrix_csv(const CommMatrix& comm) {
  std::string out = "src,dst,messages,bytes,wait_s\n";
  for (const CommEdge& edge : comm.edges) {
    out += std::to_string(edge.src) + "," + std::to_string(edge.dst) + "," +
           std::to_string(edge.messages) + "," + std::to_string(edge.bytes) +
           "," + json::format_number(edge.wait_s) + "\n";
  }
  return out;
}

std::string critical_path_csv(const CriticalPath& path) {
  std::string out = "phase,critical_s,total_rank_s,slack_s\n";
  for (const CriticalPhase& row : path.phases) {
    out += row.phase + "," + json::format_number(row.critical_s) + "," +
           json::format_number(row.total_rank_s) + "," +
           json::format_number(row.slack_s) + "\n";
  }
  return out;
}

void write_trace_bundle(const std::string& dir, const TraceData& trace) {
  const std::filesystem::path root(dir);
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) throw IoError("cannot create trace dir: " + dir);

  const EnergyAttribution energy = attribute_energy(trace);
  const CommMatrix comm = comm_matrix(trace);
  const CriticalPath path = critical_path(trace);

  write_text_file(root / "trace.json", perfetto_json(trace));
  write_text_file(root / "summary.json",
                  json::serialize(summary_json(trace, energy, comm, path)) +
                      "\n");
  write_text_file(root / "phases.csv", phases_csv(energy));
  write_text_file(root / "comm_matrix.csv", comm_matrix_csv(comm));
  write_text_file(root / "critical_path.csv", critical_path_csv(path));
}

}  // namespace plin::prof
