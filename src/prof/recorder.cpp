#include "prof/recorder.hpp"

#include <algorithm>
#include <mutex>

#include "support/error.hpp"

namespace plin::prof {

namespace {

/// Process-wide recycler for span-ring storage. One ring per rank adds up:
/// at 100k ranks an eager 4096-span reserve per recorder would cost
/// gigabytes before a single span is recorded. Rings are leased here on
/// first use, handed back (capacity intact) by take()/destruction, and
/// only kMaxPooledRings vectors are cached so the pool itself stays
/// bounded. With the worker-pool executor only ~workers ranks record
/// concurrently, so the same few rings serve the whole run.
class RingPool {
 public:
  static RingPool& instance() {
    static RingPool* pool = new RingPool();  // leaked: outlive all workers
    return *pool;
  }

  std::vector<Span> acquire(std::size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!rings_.empty()) {
        std::vector<Span> ring = std::move(rings_.back());
        rings_.pop_back();
        ring.clear();
        return ring;
      }
    }
    std::vector<Span> ring;
    ring.reserve(std::min<std::size_t>(capacity, 4096));
    return ring;
  }

  void release(std::vector<Span>&& ring) {
    if (ring.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (rings_.size() < kMaxPooledRings) rings_.push_back(std::move(ring));
  }

 private:
  static constexpr std::size_t kMaxPooledRings = 256;
  std::mutex mutex_;
  std::vector<std::vector<Span>> rings_;
};

}  // namespace

SpanRecorder::SpanRecorder(std::size_t ring_capacity)
    : capacity_(std::max<std::size_t>(ring_capacity, 16)) {}

SpanRecorder::~SpanRecorder() {
  RingPool::instance().release(std::move(ring_));
}

void SpanRecorder::push(const Span& span) {
  ++total_;
  if (ring_.size() < capacity_) {
    // First span: lease ring storage from the pool (constructing the
    // recorder allocates nothing, so idle ranks stay free).
    if (ring_.capacity() == 0) {
      ring_ = RingPool::instance().acquire(capacity_);
    }
    ring_.push_back(span);
    return;
  }
  ring_[head_] = span;
  head_ = (head_ + 1) % capacity_;
}

std::int32_t SpanRecorder::intern(std::string_view name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::int32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

void SpanRecorder::activity(hw::ActivityKind kind, double t0, double t1,
                            double dram_bytes) {
  Span span;
  span.kind = SpanKind::kActivity;
  span.activity = kind;
  span.t0 = t0;
  span.t1 = t1;
  span.aux = dram_bytes;
  push(span);
}

void SpanRecorder::send(double t0, double t1, int peer_world,
                        std::int64_t bytes, int tag, std::uint64_t seq) {
  Span span;
  span.kind = SpanKind::kSend;
  span.t0 = t0;
  span.t1 = t1;
  span.peer = peer_world;
  span.bytes = bytes;
  span.tag = tag;
  span.seq = seq;
  push(span);
  PeerStat& stat = peers_[peer_world];
  stat.peer = peer_world;
  stat.sent_messages += 1;
  stat.sent_bytes += static_cast<std::uint64_t>(bytes);
}

void SpanRecorder::recv(double t0, double t1, double arrival, int peer_world,
                        std::int64_t bytes, int tag, std::uint64_t seq) {
  Span span;
  span.kind = SpanKind::kRecv;
  span.t0 = t0;
  span.t1 = t1;
  span.aux = arrival;
  span.peer = peer_world;
  span.bytes = bytes;
  span.tag = tag;
  span.seq = seq;
  push(span);
  PeerStat& stat = peers_[peer_world];
  stat.peer = peer_world;
  stat.recv_messages += 1;
  stat.recv_bytes += static_cast<std::uint64_t>(bytes);
  if (arrival > t0) stat.recv_wait_s += arrival - t0;
}

void SpanRecorder::begin_phase(std::string_view name, double t) {
  phase_stack_.emplace_back(intern(name), t);
}

void SpanRecorder::end_phase(double t) {
  PLIN_CHECK_MSG(!phase_stack_.empty(),
                 "prof: end_phase without a matching begin_phase");
  const auto [name, t0] = phase_stack_.back();
  phase_stack_.pop_back();
  PhaseSpan phase;
  phase.t0 = t0;
  phase.t1 = t;
  phase.name = name;
  phase.depth = static_cast<std::int32_t>(phase_stack_.size());
  phases_.push_back(phase);
}

void SpanRecorder::begin_collective(std::string_view name, double t) {
  collective_stack_.emplace_back(intern(name), t);
}

void SpanRecorder::end_collective(double t) {
  PLIN_CHECK_MSG(!collective_stack_.empty(),
                 "prof: end_collective without a matching begin_collective");
  const auto [name, t0] = collective_stack_.back();
  collective_stack_.pop_back();
  Span span;
  span.kind = SpanKind::kCollective;
  span.t0 = t0;
  span.t1 = t;
  span.name = name;
  push(span);
}

void SpanRecorder::instant(std::string_view name, double t) {
  Span span;
  span.kind = SpanKind::kInstant;
  span.t0 = t;
  span.t1 = t;
  span.name = intern(name);
  push(span);
}

std::uint64_t SpanRecorder::dropped() const {
  return total_ - static_cast<std::uint64_t>(ring_.size());
}

RankTrace SpanRecorder::take(int world_rank, int node, int socket, int core,
                             double finish_s) {
  RankTrace out;
  out.world_rank = world_rank;
  out.node = node;
  out.socket = socket;
  out.core = core;
  out.finish_s = finish_s;
  out.names = std::move(names_);
  out.phases = std::move(phases_);
  out.dropped = dropped();
  // Unroll the ring oldest-first (head_ is the eviction cursor, i.e. the
  // oldest surviving span once the ring has wrapped).
  out.spans.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.spans.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  out.peers.reserve(peers_.size());
  for (const auto& [peer, stat] : peers_) out.peers.push_back(stat);

  RingPool::instance().release(std::move(ring_));
  ring_ = std::vector<Span>();
  head_ = 0;
  total_ = 0;
  names_.clear();
  name_ids_.clear();
  phases_.clear();
  phase_stack_.clear();
  collective_stack_.clear();
  peers_.clear();
  return out;
}

}  // namespace plin::prof
