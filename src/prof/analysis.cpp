#include "prof/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

namespace plin::prof {
namespace {

constexpr const char* kUnphased = "(unphased)";
constexpr const char* kBaseline = "(baseline)";

/// Innermost-enclosing-phase lookup for one rank. Phases arrive in close
/// order; re-sorting by (t0, depth) puts deeper brackets after their
/// parents even when both opened at the same virtual instant (begin_phase
/// does not advance the clock), so the first hit walking backwards from
/// the query point is the innermost open bracket.
class PhaseIndex {
 public:
  explicit PhaseIndex(const RankTrace& rank) {
    by_t0_.reserve(rank.phases.size());
    for (const PhaseSpan& phase : rank.phases) by_t0_.push_back(&phase);
    std::sort(by_t0_.begin(), by_t0_.end(),
              [](const PhaseSpan* a, const PhaseSpan* b) {
                if (a->t0 != b->t0) return a->t0 < b->t0;
                return a->depth < b->depth;
              });
  }

  /// The innermost phase with t0 <= t < t1, or nullptr.
  const PhaseSpan* innermost(double t) const {
    auto it = std::upper_bound(
        by_t0_.begin(), by_t0_.end(), t,
        [](double value, const PhaseSpan* p) { return value < p->t0; });
    while (it != by_t0_.begin()) {
      --it;
      if ((*it)->t1 > t) return *it;
    }
    return nullptr;
  }

 private:
  std::vector<const PhaseSpan*> by_t0_;
};

/// First-appearance-ordered row lookup (the order is deterministic because
/// ranks are visited in world-rank order and spans in program order).
template <typename Row>
class RowTable {
 public:
  Row& row(const std::string& name) {
    const auto [it, inserted] = index_.try_emplace(name, rows_.size());
    if (inserted) {
      rows_.emplace_back();
      rows_.back().phase = name;
    }
    return rows_[it->second];
  }

  std::vector<Row>& rows() { return rows_; }

 private:
  std::vector<Row> rows_;
  std::map<std::string, std::size_t> index_;
};

const std::string& phase_name(const RankTrace& rank, const PhaseSpan* phase) {
  static const std::string unphased = kUnphased;
  if (phase == nullptr) return unphased;
  return rank.names[static_cast<std::size_t>(phase->name)];
}

/// Residual r such that folding `partial + r` reproduces `total`
/// bit-exactly. Grouping segment energies by phase re-associates the
/// floating-point sum, so the plain difference can be one ulp off; the
/// nextafter nudge absorbs that (the loop moves by single ulps and both
/// operands are non-negative with partial <= total in practice, so it
/// terminates in a step or two).
double exact_residual(double total, double partial) {
  double r = total - partial;
  for (int i = 0; i < 64 && partial + r != total; ++i) {
    r = std::nextafter(r, partial + r < total
                              ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity());
  }
  return r;
}

void add_kind_seconds(PhaseEnergyRow& row, hw::ActivityKind kind, double dt) {
  switch (kind) {
    case hw::ActivityKind::kCompute: row.compute_s += dt; break;
    case hw::ActivityKind::kMemBound: row.membound_s += dt; break;
    case hw::ActivityKind::kCommActive: row.commactive_s += dt; break;
    case hw::ActivityKind::kCommWait: row.commwait_s += dt; break;
    case hw::ActivityKind::kIdle: break;
  }
}

}  // namespace

EnergyAttribution attribute_energy(const TraceData& trace) {
  EnergyAttribution out;
  const hw::PowerModel power{trace.power};
  const double idle_w = power.core_power_w(hw::ActivityKind::kIdle);

  std::map<std::pair<int, int>, double> scales;
  for (const PackagePower& pkg : trace.packages) {
    scales[{pkg.node, pkg.package}] = pkg.dynamic_scale;
    out.total_cpu_j += pkg.pkg_j;
    out.total_dram_j += pkg.dram_j;
  }

  RowTable<PhaseEnergyRow> table;
  for (const RankTrace& rank : trace.ranks) {
    out.dropped_spans += rank.dropped;
    const PhaseIndex phases(rank);
    const auto scale_it = scales.find({rank.node, rank.socket});
    const double scale = scale_it != scales.end() ? scale_it->second : 1.0;
    for (const Span& span : rank.spans) {
      if (span.kind != SpanKind::kActivity) continue;
      const double dt = span.t1 - span.t0;
      PhaseEnergyRow& row =
          table.row(phase_name(rank, phases.innermost(span.t0)));
      row.seconds += dt;
      add_kind_seconds(row, span.activity, dt);
      row.cpu_j += dt * (power.core_power_w(span.activity) - idle_w) * scale;
      row.dram_j += span.aux * power.dram_energy_per_byte();
    }
  }
  out.complete = out.dropped_spans == 0;

  // Baseline row: package base power, idle-core power, idle-socket leakage
  // and (with drops) any unmirrored dynamic energy — everything the ledger
  // totals carry beyond the span-attributed joules. Constructed so the
  // front-to-back fold of `rows` lands exactly on the totals.
  double cpu_sum = 0.0;
  double dram_sum = 0.0;
  for (const PhaseEnergyRow& row : table.rows()) {
    cpu_sum += row.cpu_j;
    dram_sum += row.dram_j;
  }
  PhaseEnergyRow baseline;
  baseline.phase = kBaseline;
  baseline.cpu_j = exact_residual(out.total_cpu_j, cpu_sum);
  baseline.dram_j = exact_residual(out.total_dram_j, dram_sum);
  table.rows().push_back(std::move(baseline));

  out.rows = std::move(table.rows());
  return out;
}

CommMatrix comm_matrix(const TraceData& trace) {
  CommMatrix out;
  out.ranks = static_cast<int>(trace.ranks.size());
  std::map<std::pair<int, int>, CommEdge> edges;
  for (const RankTrace& rank : trace.ranks) {
    for (const PeerStat& peer : rank.peers) {
      if (peer.sent_messages > 0) {
        CommEdge& edge = edges[{rank.world_rank, peer.peer}];
        edge.src = rank.world_rank;
        edge.dst = peer.peer;
        edge.messages += peer.sent_messages;
        edge.bytes += peer.sent_bytes;
      }
      if (peer.recv_messages > 0) {
        CommEdge& edge = edges[{peer.peer, rank.world_rank}];
        edge.src = peer.peer;
        edge.dst = rank.world_rank;
        edge.wait_s += peer.recv_wait_s;
      }
    }
  }
  out.edges.reserve(edges.size());
  for (const auto& [key, edge] : edges) {
    out.total_messages += edge.messages;
    out.total_bytes += edge.bytes;
    out.total_wait_s += edge.wait_s;
    out.edges.push_back(edge);
  }
  return out;
}

namespace {

/// Per-rank span indices for the critical-path walk.
struct RankIndex {
  std::vector<const Span*> activities;  // program order (t1 nondecreasing)
  std::vector<const Span*> recvs;
  std::vector<const Span*> sends;       // seq ascending (program order)
  const RankTrace* rank = nullptr;
};

const Span* find_send(const RankIndex& idx, std::uint64_t seq) {
  const auto it = std::lower_bound(
      idx.sends.begin(), idx.sends.end(), seq,
      [](const Span* s, std::uint64_t value) { return s->seq < value; });
  if (it == idx.sends.end() || (*it)->seq != seq) return nullptr;
  return *it;
}

void add_path_kind(CriticalPath& out, hw::ActivityKind kind, double dt) {
  switch (kind) {
    case hw::ActivityKind::kCompute: out.compute_s += dt; break;
    case hw::ActivityKind::kMemBound: out.membound_s += dt; break;
    case hw::ActivityKind::kCommActive: out.commactive_s += dt; break;
    case hw::ActivityKind::kCommWait: out.commwait_s += dt; break;
    case hw::ActivityKind::kIdle: break;
  }
}

}  // namespace

CriticalPath critical_path(const TraceData& trace) {
  CriticalPath out;
  out.duration_s = trace.duration_s;
  if (trace.ranks.empty()) return out;

  out.end_rank = 0;
  for (const RankTrace& rank : trace.ranks) {
    if (rank.finish_s >
        trace.ranks[static_cast<std::size_t>(out.end_rank)].finish_s) {
      out.end_rank = rank.world_rank;
    }
  }

  std::vector<RankIndex> index(trace.ranks.size());
  std::vector<PhaseIndex> phases;
  phases.reserve(trace.ranks.size());
  RowTable<CriticalPhase> rows;
  std::size_t total_spans = 0;
  for (std::size_t r = 0; r < trace.ranks.size(); ++r) {
    const RankTrace& rank = trace.ranks[r];
    RankIndex& idx = index[r];
    idx.rank = &rank;
    phases.emplace_back(rank);
    for (const Span& span : rank.spans) {
      switch (span.kind) {
        case SpanKind::kActivity: idx.activities.push_back(&span); break;
        case SpanKind::kRecv: idx.recvs.push_back(&span); break;
        case SpanKind::kSend: idx.sends.push_back(&span); break;
        default: break;
      }
    }
    total_spans += rank.spans.size();
    // Per-phase core-second totals (the slack baseline), accumulated in
    // rank-major program order.
    for (const Span* span : idx.activities) {
      rows.row(phase_name(rank, phases[r].innermost(span->t0)))
          .total_rank_s += span->t1 - span->t0;
    }
  }

  // Adds the local activity of (a, b] on rank `r` to the path buckets.
  const auto add_window = [&](std::size_t r, double a, double b) {
    const RankIndex& idx = index[r];
    auto it = std::upper_bound(
        idx.activities.begin(), idx.activities.end(), a,
        [](double value, const Span* s) { return value < s->t1; });
    for (; it != idx.activities.end() && (*it)->t0 < b; ++it) {
      const double lo = std::max(a, (*it)->t0);
      const double hi = std::min(b, (*it)->t1);
      if (hi <= lo) continue;
      add_path_kind(out, (*it)->activity, hi - lo);
      rows.row(phase_name(*idx.rank, phases[r].innermost((*it)->t0)))
          .critical_s += hi - lo;
    }
  };

  std::size_t cur = static_cast<std::size_t>(out.end_rank);
  double t = trace.ranks[cur].finish_s;
  const std::size_t max_steps = total_spans + trace.ranks.size() + 16;
  for (std::size_t step = 0; t > 0.0; ++step) {
    if (step >= max_steps) {
      out.truncated = true;
      break;
    }
    const RankIndex& idx = index[cur];
    if (idx.rank->dropped > 0) out.truncated = true;

    // Latest receive completed by `t` that actually waited on its sender;
    // receives whose message had already arrived do not constrain the path.
    const Span* blocking = nullptr;
    auto it = std::upper_bound(
        idx.recvs.begin(), idx.recvs.end(), t,
        [](double value, const Span* s) { return value < s->t1; });
    while (it != idx.recvs.begin()) {
      --it;
      if ((*it)->aux > (*it)->t0) {
        blocking = *it;
        break;
      }
    }
    if (blocking == nullptr) {
      add_window(cur, 0.0, t);
      break;
    }

    add_window(cur, blocking->aux, t);
    const RankIndex& sender = index[static_cast<std::size_t>(blocking->peer)];
    const Span* send = find_send(sender, blocking->seq);
    if (send == nullptr) {
      // The matching send fell out of the sender's ring: close out locally.
      out.truncated = true;
      add_window(cur, 0.0, blocking->aux);
      break;
    }
    out.network_s += std::max(0.0, blocking->aux - send->t1);
    ++out.rank_switches;
    cur = static_cast<std::size_t>(blocking->peer);
    t = send->t1;
  }

  for (CriticalPhase& row : rows.rows()) {
    row.slack_s = row.total_rank_s - row.critical_s;
  }
  out.phases = std::move(rows.rows());
  return out;
}

}  // namespace plin::prof
