// Analyses over one run's TraceData: per-phase energy attribution, the
// rank×rank communication matrix, and critical-path extraction through the
// send/recv dependency graph.
//
// All three are pure functions of TraceData, iterate ranks in world-rank
// order and spans in program order, and therefore produce byte-identical
// results across executors and worker counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/span.hpp"

namespace plin::prof {

// -- energy attribution ---------------------------------------------------

struct PhaseEnergyRow {
  std::string phase;        // "(unphased)" / "(baseline)" pseudo-rows
  double seconds = 0.0;     // core-seconds of ledger activity in the phase
  double compute_s = 0.0;
  double membound_s = 0.0;
  double commactive_s = 0.0;
  double commwait_s = 0.0;
  double cpu_j = 0.0;       // cap-scaled dynamic CPU energy
  double dram_j = 0.0;      // DRAM traffic energy
};

/// Joins the activity spans (exact mirrors of the EnergyLedger segments)
/// to the innermost enclosing phase bracket of their rank. The final
/// "(baseline)" row carries package base + idle-core + idle-socket-leakage
/// energy and is constructed so that summing `rows` front to back
/// reproduces `total_cpu_j` / `total_dram_j` — which are themselves the
/// ledger package totals summed in package order, i.e. bit-identical to
/// RunResult.energy — with no lost or double-counted joules.
struct EnergyAttribution {
  std::vector<PhaseEnergyRow> rows;  // first-appearance order
  double total_cpu_j = 0.0;          // == sum of PackagePower.pkg_j
  double total_dram_j = 0.0;         // == sum of PackagePower.dram_j
  bool complete = true;              // false once the span ring dropped
  std::uint64_t dropped_spans = 0;
};

EnergyAttribution attribute_energy(const TraceData& trace);

// -- communication matrix -------------------------------------------------

struct CommEdge {
  int src = 0;
  int dst = 0;
  std::uint64_t messages = 0;  // sender-side count (data + control)
  std::uint64_t bytes = 0;
  double wait_s = 0.0;         // receiver-side blocked time on this edge
};

struct CommMatrix {
  int ranks = 0;
  std::vector<CommEdge> edges;  // sorted by (src, dst); zero edges omitted
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  double total_wait_s = 0.0;
};

/// Built from the per-peer counters, so it is exact even when the span
/// ring overflowed.
CommMatrix comm_matrix(const TraceData& trace);

// -- critical path --------------------------------------------------------

struct CriticalPhase {
  std::string phase;          // "(unphased)" for activity outside brackets
  double critical_s = 0.0;    // time this phase spends on the critical path
  double total_rank_s = 0.0;  // core-seconds of the phase across all ranks
  double slack_s = 0.0;       // total_rank_s - critical_s
};

/// The longest dependency chain ending at the last-finishing rank: local
/// activity runs the chain backwards until a receive that actually waited,
/// then jumps to the matching send on the sender (named by the per-sender
/// sequence number stamped into every envelope).
struct CriticalPath {
  double duration_s = 0.0;   // == TraceData.duration_s
  int end_rank = -1;         // last rank to finish (ties: lowest rank)
  int rank_switches = 0;     // sender jumps taken by the walk
  bool truncated = false;    // a ring-dropped span broke the chain
  double compute_s = 0.0;    // path time by activity kind
  double membound_s = 0.0;
  double commactive_s = 0.0;
  double commwait_s = 0.0;
  double network_s = 0.0;    // in-flight gaps between send end and arrival
  std::vector<CriticalPhase> phases;  // first-appearance order
};

CriticalPath critical_path(const TraceData& trace);

}  // namespace plin::prof
