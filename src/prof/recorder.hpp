// SpanRecorder — the per-rank recording engine behind span.hpp.
//
// Single-writer by construction: only the owning rank's fiber/thread calls
// the hooks, so there is no locking on the hot path. The xmpi scheduler
// hands a rank's execution between host workers through its queue mutex,
// which orders those accesses (the same contract VirtualClock relies on).
//
// Cost model: every hook is a couple of stores into a preallocated ring.
// When tracing is disabled the hooks are never reached (Comm keeps a null
// recorder pointer); when the subsystem is compiled out (PLIN_PROF_DISABLED
// / -DPLIN_PROF=OFF) the null check itself folds away via kCompiledIn.
//
// The span ring drops the *oldest* spans on overflow — a deterministic
// program-order eviction, so an overflowing trace is still byte-identical
// across executors. Phase brackets and per-peer counters live outside the
// ring and are never dropped.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "prof/span.hpp"

namespace plin::prof {

#if defined(PLIN_PROF_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Default span-ring capacity per rank; override via
/// RunConfig::trace_ring_spans or the PLIN_TRACE_SPANS environment variable.
inline constexpr std::size_t kDefaultRingSpans = std::size_t{1} << 16;

class SpanRecorder {
 public:
  explicit SpanRecorder(std::size_t ring_capacity);
  /// Returns the ring storage to the shared process-wide pool (see
  /// recorder.cpp): with one recorder per rank, eagerly reserving each
  /// ring would multiply to gigabytes at 100k ranks, so rings are leased
  /// and recycled instead.
  ~SpanRecorder();

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  // -- hooks (owning rank only; virtual-time stamps) ----------------------

  /// Mirrors one EnergyLedger activity segment.
  void activity(hw::ActivityKind kind, double t0, double t1,
                double dram_bytes);

  /// Allocates the next send sequence number (stamped into the Envelope so
  /// the receiver can name the matching send span).
  std::uint64_t next_send_seq() { return ++send_seq_; }

  void send(double t0, double t1, int peer_world, std::int64_t bytes,
            int tag, std::uint64_t seq);
  void recv(double t0, double t1, double arrival, int peer_world,
            std::int64_t bytes, int tag, std::uint64_t seq);

  void begin_phase(std::string_view name, double t);
  void end_phase(double t);

  void begin_collective(std::string_view name, double t);
  void end_collective(double t);

  void instant(std::string_view name, double t);

  // -- extraction ---------------------------------------------------------

  std::uint64_t dropped() const;

  /// Moves the recorded data out (ring unrolled oldest-first, open phase /
  /// collective brackets discarded). The recorder is empty afterwards.
  RankTrace take(int world_rank, int node, int socket, int core,
                 double finish_s);

 private:
  std::int32_t intern(std::string_view name);
  void push(const Span& span);

  std::size_t capacity_;
  std::vector<Span> ring_;
  std::size_t head_ = 0;     // eviction cursor once the ring is full
  std::uint64_t total_ = 0;  // spans ever pushed
  std::uint64_t send_seq_ = 0;

  std::vector<PhaseSpan> phases_;  // closed brackets, close order
  std::vector<std::pair<std::int32_t, double>> phase_stack_;
  std::vector<std::pair<std::int32_t, double>> collective_stack_;

  std::vector<std::string> names_;
  std::map<std::string, std::int32_t, std::less<>> name_ids_;

  std::map<int, PeerStat> peers_;
};

}  // namespace plin::prof
