// prof — structured span tracing over xmpi's virtual clocks.
//
// Every traced rank owns one SpanRecorder (recorder.hpp). The xmpi hooks
// feed it three families of records:
//
//   - activity spans: an exact mirror of the EnergyLedger segments the rank
//     produced (compute / membound / comm-active / comm-wait), so joules can
//     be re-derived per span and attributed to phases;
//   - message spans: one kSend per send_impl, one kRecv per completed
//     receive (carrying the sender's world rank and per-sender sequence
//     number), forming the dependency graph the critical-path walk follows;
//   - brackets: named phase spans (solver/monitor regions, unbounded) and
//     collective spans (barrier/bcast/reduce/..., ring-buffered), plus
//     zero-length instants (PAPI read points).
//
// All timestamps are virtual seconds. Nothing here depends on the host
// scheduler, so the collected TraceData — and every canonical export built
// from it — is byte-identical across executors and worker counts
// (docs/tracing.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwmodel/power.hpp"

namespace plin::prof {

enum class SpanKind : std::uint8_t {
  kActivity,    // one EnergyLedger segment; `activity` holds the kind
  kSend,        // send_impl: local overhead + payload on the wire
  kRecv,        // completed receive: entry .. copied-out
  kCollective,  // one collective call (barrier/bcast/reduce/gather/...)
  kInstant,     // zero-length marker
};

/// One ring-buffered record. Fields outside a kind's family are zero.
struct Span {
  double t0 = 0.0;
  double t1 = 0.0;
  /// kActivity: DRAM bytes attributed to the segment.
  /// kRecv: virtual arrival time of the matched message (t0 < aux means
  /// the receiver waited on the sender).
  double aux = 0.0;
  std::int64_t bytes = 0;   // payload bytes (kSend/kRecv)
  std::uint64_t seq = 0;    // sender-local message sequence (kSend/kRecv)
  SpanKind kind = SpanKind::kActivity;
  hw::ActivityKind activity = hw::ActivityKind::kIdle;  // kActivity only
  std::int32_t name = -1;   // name-table id (kCollective/kInstant)
  std::int32_t peer = -1;   // world rank of the other side (kSend/kRecv)
  std::int32_t tag = 0;     // message tag (kSend/kRecv)
};

/// A closed begin/end bracket. Phases live outside the span ring: they are
/// low-frequency and the energy attribution needs every one of them.
struct PhaseSpan {
  double t0 = 0.0;
  double t1 = 0.0;
  std::int32_t name = -1;
  std::int32_t depth = 0;  // nesting depth at open time (0 = outermost)
};

/// Per-peer message totals. Kept as counters (not ring entries) so the
/// communication matrix stays exact even when the span ring overflows.
struct PeerStat {
  int peer = -1;  // world rank of the other side
  std::uint64_t sent_messages = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_messages = 0;
  std::uint64_t recv_bytes = 0;
  /// Receive-side blocked time charged to messages from `peer`.
  double recv_wait_s = 0.0;
};

/// Everything one rank recorded, extracted after its rank_main returned.
struct RankTrace {
  int world_rank = 0;
  int node = 0;
  int socket = 0;
  int core = 0;
  double finish_s = 0.0;            // the rank's final virtual clock value
  std::vector<std::string> names;   // id -> string, interned in program order
  std::vector<PhaseSpan> phases;    // close order
  std::vector<Span> spans;          // ring contents, oldest first
  std::uint64_t dropped = 0;        // spans evicted by the ring
  std::vector<PeerStat> peers;      // sorted by peer world rank
};

/// EnergyLedger totals of one package over [0, duration], copied out while
/// the World is alive so analyses can reconcile span joules against the
/// authoritative counters.
struct PackagePower {
  int node = 0;
  int package = 0;
  double pkg_j = 0.0;   // == RunResult.energy value for this package
  double dram_j = 0.0;
  double dram_traffic_bytes = 0.0;
  double cap_w = 0.0;            // active RAPL cap (0 = uncapped)
  double dynamic_scale = 1.0;    // cap_effect dynamic scale applied at read
  int ranked_cores = 0;
};

/// One run's collected trace: the input to analysis.hpp and export.hpp.
struct TraceData {
  double duration_s = 0.0;
  std::uint64_t ring_capacity = 0;
  hw::PowerSpec power;
  std::vector<RankTrace> ranks;        // world-rank order
  std::vector<PackagePower> packages;  // node-major, package-minor

  std::uint64_t dropped_spans() const {
    std::uint64_t total = 0;
    for (const RankTrace& rank : ranks) total += rank.dropped;
    return total;
  }
};

}  // namespace plin::prof
