// Canonical exports of one run's TraceData (docs/tracing.md):
//
//   - trace.json: Chrome/Perfetto trace_event JSON — one track per rank
//     (grouped under its node's process), slices for phases, collectives,
//     activities and messages, plus a per-node dynamic-power counter track;
//   - summary.json: the three analyses as one machine-readable document;
//   - phases.csv / comm_matrix.csv / critical_path.csv: flat tables.
//
// Every number is formatted with json::format_number and every string is
// escaped through the json serializer, so for a given job spec the bytes
// are identical across executors and worker counts — the property the CI
// trace-diff job and prof_test assert.
#pragma once

#include <string>

#include "prof/analysis.hpp"
#include "support/json.hpp"

namespace plin::prof {

/// The Perfetto/Chrome trace_event document as a string.
std::string perfetto_json(const TraceData& trace);

/// Writes perfetto_json to `path`; throws plin::IoError on failure.
void write_perfetto(const std::string& path, const TraceData& trace);

/// summary.json document built from precomputed analyses.
json::Value summary_json(const TraceData& trace,
                         const EnergyAttribution& energy,
                         const CommMatrix& comm, const CriticalPath& path);

/// Convenience overload: runs the three analyses itself.
json::Value summary_json(const TraceData& trace);

std::string phases_csv(const EnergyAttribution& energy);
std::string comm_matrix_csv(const CommMatrix& comm);
std::string critical_path_csv(const CriticalPath& path);

/// Writes the full bundle (trace.json, summary.json, phases.csv,
/// comm_matrix.csv, critical_path.csv) into `dir`, creating it if needed.
void write_trace_bundle(const std::string& dir, const TraceData& trace);

}  // namespace plin::prof
