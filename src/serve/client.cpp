#include "serve/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace plin::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PLIN_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
                 "serve: socket path too long for AF_UNIX");
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw IoError("serve client: socket() failed");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("serve client: connect(" + socket_path +
                  ") failed: " + std::strerror(errno));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::read_line() {
  for (;;) {
    const std::size_t newline = inbuf_.find('\n');
    if (newline != std::string::npos) {
      std::string line = inbuf_.substr(0, newline);
      inbuf_.erase(0, newline + 1);
      return line;
    }
    char buffer[4096];
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      inbuf_.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw IoError("serve client: connection closed mid-response");
  }
}

json::Value Client::request(const json::Value& body) {
  std::string line = json::serialize(body);
  line += '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + sent, line.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw IoError("serve client: write failed");
  }
  return json::parse(read_line());
}

json::Value Client::ping() {
  json::Value body = json::make_object();
  body.set("op", "ping");
  return request(body);
}

json::Value Client::submit(const batch::JobSpec& spec,
                           const std::string& tenant, bool wait,
                           const std::string& tag) {
  json::Value body = json::make_object();
  body.set("op", "submit");
  body.set("tenant", tenant);
  if (wait) body.set("wait", true);
  if (!tag.empty()) body.set("tag", tag);
  body.set("spec", spec_to_json(spec));
  return request(body);
}

json::Value Client::wait_key(const std::string& key) {
  json::Value body = json::make_object();
  body.set("op", "wait");
  body.set("key", key);
  return request(body);
}

json::Value Client::stats() {
  json::Value body = json::make_object();
  body.set("op", "stats");
  return request(body);
}

json::Value Client::drain() {
  json::Value body = json::make_object();
  body.set("op", "drain");
  return request(body);
}

}  // namespace plin::serve
