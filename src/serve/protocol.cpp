#include "serve/protocol.hpp"

#include <utility>

#include "support/error.hpp"

namespace plin::serve {

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kSubmit: return "submit";
    case Op::kWait: return "wait";
    case Op::kStats: return "stats";
    case Op::kDrain: return "drain";
  }
  return "?";
}

namespace {

Op parse_op(const std::string& token) {
  if (token == "ping") return Op::kPing;
  if (token == "submit") return Op::kSubmit;
  if (token == "wait") return Op::kWait;
  if (token == "stats") return Op::kStats;
  if (token == "drain") return Op::kDrain;
  throw InvalidArgument("serve: unknown op '" + token +
                        "' (ping | submit | wait | stats | drain)");
}

}  // namespace

batch::JobSpec spec_from_json(const json::Value& value) {
  batch::JobSpec spec;
  for (const auto& [field, v] : value.as_object()) {
    if (field == "tier") {
      spec.tier = batch::parse_tier(v.as_string());
    } else if (field == "machine") {
      spec.machine = v.as_string();
    } else if (field == "algorithm") {
      spec.algorithm = batch::parse_algorithm_token(v.as_string());
    } else if (field == "n") {
      spec.n = static_cast<std::size_t>(v.as_number());
    } else if (field == "ranks") {
      spec.ranks = static_cast<int>(v.as_number());
    } else if (field == "layout") {
      spec.layout = batch::parse_layout_token(v.as_string());
    } else if (field == "nb") {
      spec.nb = static_cast<std::size_t>(v.as_number());
    } else if (field == "seed") {
      spec.seed = static_cast<std::uint64_t>(v.as_number());
    } else if (field == "reps") {
      spec.repetitions = static_cast<int>(v.as_number());
    } else if (field == "iterations") {
      spec.iterations = static_cast<int>(v.as_number());
    } else if (field == "power_cap_w") {
      spec.power_cap_w = v.as_number();
    } else if (field == "precision") {
      spec.precision = batch::parse_precision_token(v.as_string());
    } else {
      throw InvalidArgument("serve: unknown spec field '" + field + "'");
    }
  }
  PLIN_CHECK_MSG(spec.n > 0, "serve: spec needs n > 0");
  PLIN_CHECK_MSG(spec.ranks > 0, "serve: spec needs ranks > 0");
  PLIN_CHECK_MSG(spec.repetitions > 0, "serve: spec needs reps > 0");
  return spec;
}

json::Value spec_to_json(const batch::JobSpec& spec) {
  json::Value out = json::make_object();
  out.set("tier", batch::to_string(spec.tier));
  out.set("machine", spec.machine);
  out.set("algorithm", batch::algorithm_token(spec.algorithm));
  out.set("n", static_cast<double>(spec.n));
  out.set("ranks", spec.ranks);
  out.set("layout", batch::layout_token(spec.layout));
  out.set("nb", static_cast<double>(spec.nb));
  out.set("seed", static_cast<double>(spec.seed));
  out.set("reps", spec.repetitions);
  out.set("iterations", spec.iterations);
  out.set("power_cap_w", spec.power_cap_w);
  out.set("precision", batch::precision_token(spec.precision));
  return out;
}

Request parse_request(const std::string& line) {
  const json::Value root = json::parse(line);
  Request request;
  request.op = parse_op(root.at("op").as_string());
  if (const json::Value* tag = root.find("tag")) {
    request.tag = tag->as_string();
  }
  switch (request.op) {
    case Op::kSubmit: {
      if (const json::Value* tenant = root.find("tenant")) {
        request.tenant = tenant->as_string();
        PLIN_CHECK_MSG(!request.tenant.empty(),
                       "serve: tenant must be non-empty");
      }
      if (const json::Value* wait = root.find("wait")) {
        request.wait = wait->as_bool();
      }
      request.spec = spec_from_json(root.at("spec"));
      break;
    }
    case Op::kWait: {
      request.key = root.at("key").as_string();
      PLIN_CHECK_MSG(request.key.size() == 16,
                     "serve: key must be 16 hex digits (JobSpec::key)");
      break;
    }
    case Op::kPing:
    case Op::kStats:
    case Op::kDrain:
      break;
  }
  return request;
}

json::Value make_response(const Request& request, bool ok) {
  json::Value out = json::make_object();
  out.set("ok", ok);
  out.set("op", to_string(request.op));
  if (!request.tag.empty()) out.set("tag", request.tag);
  return out;
}

json::Value error_response(const std::string& message,
                           const std::string& tag) {
  json::Value out = json::make_object();
  out.set("ok", false);
  out.set("error", message);
  if (!tag.empty()) out.set("tag", tag);
  return out;
}

}  // namespace plin::serve
