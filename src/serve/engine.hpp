// Engine — the serve daemon's scheduler core, with no sockets in sight so
// every policy is unit-testable in-process.
//
// Jobs enter per-tenant FIFO queues and are dispatched to a bounded worker
// pool by stride scheduling: each tenant carries a virtual "pass" that
// advances by 1/weight per dispatched job, and the runnable tenant with the
// lowest pass goes next. A weight-2 tenant therefore drains twice as fast
// as a weight-1 tenant under contention, while an idle tenant's first job
// never waits behind a backlog it didn't cause (its pass is re-based onto
// the current minimum on activation).
//
// Deduplication is the content-addressed store key (batch/spec.hpp):
//   * key already completed -> cache hit, served without touching a worker;
//   * key queued or running  -> the submit coalesces onto the inflight job
//     (one execution, every subscriber notified);
//   * otherwise              -> queued, executed, journaled via
//     ResultStore::put before subscribers are woken — a completed job is
//     persisted before anyone is told about it, which is what makes the
//     kill-and-restart guarantee ("no lost or duplicated completed jobs")
//     hold: after a crash the journal replays exactly the completions that
//     were acknowledged-or-about-to-be.
//
// Admission control is per tenant (max queued, max inflight); a full queue
// rejects the submit (backpressure is explicit, not an unbounded buffer).
// Job timeouts are cooperative (checked when the job returns, like the
// batch queue); failures retry with linear backoff up to `retries` times.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "batch/store.hpp"
#include "support/json.hpp"

namespace plin::serve {

struct TenantConfig {
  double weight = 1.0;    // fair-share weight (pass advances by 1/weight)
  int max_queued = 1024;  // admission: pending jobs beyond this are rejected
  int max_inflight = 0;   // 0 = no per-tenant inflight cap
};

struct EngineOptions {
  int workers = 2;
  int retries = 0;             // extra attempts after a failure/timeout
  double timeout_s = 0.0;      // cooperative per-attempt budget; 0 = none
  double backoff_s = 0.0;      // host sleep before attempt k is k*backoff_s
  TenantConfig default_tenant;
  /// Test hook replacing batch::execute_job (fault injection, fake clocks).
  std::function<batch::JobRecord(const batch::JobSpec&)> executor;
};

/// Terminal state of one key, delivered to subscribers.
struct JobOutcome {
  bool ok = false;
  std::string key;
  std::string error;  // final attempt's message when !ok
};

enum class SubmitStatus { kCached, kQueued, kCoalesced, kRejected };

const char* to_string(SubmitStatus status);

struct TenantStats {
  double weight = 1.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
};

struct EngineStats {
  std::uint64_t submitted = 0;   // all submit() calls
  std::uint64_t executed = 0;    // jobs actually run on a worker
  std::uint64_t completed = 0;   // jobs that reached the store
  std::uint64_t cache_hits = 0;  // served straight from the store
  std::uint64_t coalesced = 0;   // submits merged onto an inflight key
  std::uint64_t rejected = 0;    // admission-control refusals
  std::uint64_t failed = 0;      // keys whose final attempt failed
  std::uint64_t retries = 0;     // re-attempts after failure/timeout
  std::uint64_t timeouts = 0;    // attempts over the cooperative budget
  std::uint64_t queued_now = 0;  // pending jobs at snapshot time
  std::uint64_t inflight_now = 0;
  std::map<std::string, TenantStats> tenants;
};

class Engine {
 public:
  Engine(batch::ResultStore& store, EngineOptions options);
  ~Engine();  // drains

  /// Admission + dedupe decision for one job. kCached/kCoalesced/kQueued
  /// all eventually produce a terminal JobOutcome for spec.key().
  SubmitStatus submit(const std::string& tenant, const batch::JobSpec& spec);

  /// Invokes `callback` with the terminal outcome of `key` — immediately
  /// (from this thread) if the key is already terminal or stored, later
  /// (from a worker thread) otherwise. Unknown keys fail immediately.
  /// Callbacks must not call back into the engine (post to your own queue).
  void subscribe(const std::string& key,
                 std::function<void(const JobOutcome&)> callback);

  /// Blocking convenience over subscribe() for tests and simple clients.
  JobOutcome wait(const std::string& key);

  /// Registers / reconfigures a tenant (otherwise first submit creates it
  /// with options.default_tenant).
  void configure_tenant(const std::string& name, const TenantConfig& config);

  /// Stops admission, runs every queued job to completion, joins workers.
  /// Idempotent; called by the destructor.
  void drain();

  bool draining() const;

  /// The backing store (thread-safe; the server reads records for
  /// completed-job responses).
  batch::ResultStore& store() { return store_; }

  EngineStats stats() const;

  /// The engine's stats plus the store's cache counters as one JSON object
  /// — the daemon's /stats payload, also persisted as serve_stats.json and
  /// rendered by `powerlin_report --store`.
  json::Value stats_json() const;

 private:
  struct Tenant {
    TenantConfig config;
    TenantStats stats;
    double pass = 0.0;
    std::deque<std::string> queue;  // pending keys, FIFO within the tenant
    int inflight = 0;
  };

  enum class KeyState { kQueued, kRunning, kDone, kFailed };

  struct Job {
    batch::JobSpec spec;
    std::string tenant;
    KeyState state = KeyState::kQueued;
    std::string error;
    std::vector<std::function<void(const JobOutcome&)>> subscribers;
  };

  void worker_loop();
  /// Picks the next (tenant, key) under lock; returns false when draining
  /// and empty.
  bool next_job(std::string* key);
  void finish_job(const std::string& key, bool ok, const std::string& error);

  batch::ResultStore& store_;
  EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: queue non-empty or draining
  std::condition_variable idle_cv_;   // drain: everything terminal
  std::map<std::string, Tenant> tenants_;
  std::map<std::string, Job> jobs_;   // every non-terminal + terminal key
  std::uint64_t queued_ = 0;
  std::uint64_t inflight_ = 0;
  bool draining_ = false;
  EngineStats totals_;
  std::vector<std::thread> workers_;
};

}  // namespace plin::serve
