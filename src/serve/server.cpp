#include "serve/server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace plin::serve {
namespace {

// A request line larger than this is a protocol violation, not a job.
constexpr std::size_t kMaxLineBytes = 1 << 20;

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  PLIN_CHECK_MSG(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "serve: fcntl(O_NONBLOCK) failed");
}

}  // namespace

Server::Server(Engine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  PLIN_CHECK_MSG(!options_.socket_path.empty(),
                 "serve: socket_path is required");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PLIN_CHECK_MSG(options_.socket_path.size() < sizeof(addr.sun_path),
                 "serve: socket path too long for AF_UNIX");
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("serve: socket() failed");
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw IoError("serve: bind(" + options_.socket_path +
                  ") failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    ::close(listen_fd_);
    throw IoError("serve: listen() failed");
  }
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    throw IoError("serve: pipe() failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
}

Server::~Server() {
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  ::unlink(options_.socket_path.c_str());
}

void Server::stop() {
  stopping_.store(true);
  const char byte = 's';
  // Best effort: the loop also re-checks stopping_ on every wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void Server::post_deferred(std::uint64_t id, const json::Value& response) {
  {
    std::lock_guard<std::mutex> lock(deferred_mutex_);
    deferred_.emplace_back(id, json::serialize(response) + "\n");
  }
  const char byte = 'd';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void Server::queue_response(Connection& conn, const json::Value& response) {
  conn.outbuf += json::serialize(response);
  conn.outbuf += '\n';
}

void Server::handle_line(Connection& conn, const std::string& line) {
  if (line.empty()) return;
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    queue_response(conn, error_response(e.what()));
    return;
  }
  switch (request.op) {
    case Op::kPing: {
      queue_response(conn, make_response(request, true));
      return;
    }
    case Op::kStats: {
      json::Value response = make_response(request, true);
      response.set("stats", engine_.stats_json());
      queue_response(conn, response);
      return;
    }
    case Op::kDrain: {
      json::Value response = make_response(request, true);
      response.set("draining", true);
      queue_response(conn, response);
      stop();
      return;
    }
    case Op::kSubmit: {
      const std::string key = request.spec.key();
      SubmitStatus status;
      try {
        status = engine_.submit(request.tenant, request.spec);
      } catch (const std::exception& e) {
        queue_response(conn, error_response(e.what(), request.tag));
        return;
      }
      if (request.wait && (status == SubmitStatus::kQueued ||
                           status == SubmitStatus::kCoalesced)) {
        defer_outcome(conn, request, key, to_string(status));
        return;
      }
      json::Value response =
          make_response(request, status != SubmitStatus::kRejected);
      response.set("key", key);
      response.set("status", to_string(status));
      if (status == SubmitStatus::kCached) {
        response.set("record", batch::to_json(engine_.store().lookup(key)));
      }
      queue_response(conn, response);
      return;
    }
    case Op::kWait: {
      defer_outcome(conn, request, request.key, "waiting");
      return;
    }
  }
}

void Server::defer_outcome(Connection& conn, const Request& request,
                           const std::string& key,
                           const std::string& status) {
  ++conn.pending;
  const std::uint64_t id = conn.id;
  const std::string op_name = to_string(request.op);
  const std::string tag = request.tag;
  // The callback runs on an engine worker thread (or inline, for already-
  // terminal keys): it only builds JSON and posts to the deferred queue.
  engine_.subscribe(key, [this, id, op_name, tag, key,
                          status](const JobOutcome& outcome) {
    json::Value response = json::make_object();
    response.set("ok", outcome.ok);
    response.set("op", op_name);
    if (!tag.empty()) response.set("tag", tag);
    response.set("key", key);
    response.set("status", outcome.ok ? "done" : "failed");
    response.set("via", status);
    if (outcome.ok) {
      response.set("record", batch::to_json(engine_.store().lookup(key)));
    } else {
      response.set("error", outcome.error);
    }
    post_deferred(id, response);
  });
}

void Server::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_id_++;
    connections_.emplace(conn->id, std::move(conn));
  }
}

bool Server::pump_reads(Connection& conn) {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn.inbuf.append(buffer, static_cast<std::size_t>(n));
      if (conn.inbuf.size() > kMaxLineBytes) return false;
      continue;
    }
    if (n == 0) {
      conn.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = conn.inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    handle_line(conn, conn.inbuf.substr(start, newline - start));
    start = newline + 1;
  }
  if (start > 0) conn.inbuf.erase(0, start);
  return true;
}

bool Server::pump_writes(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::write(conn.fd, conn.outbuf.data(), conn.outbuf.size());
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

void Server::drain_deferred() {
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  {
    std::lock_guard<std::mutex> lock(deferred_mutex_);
    ready.swap(deferred_);
  }
  for (auto& [id, line] : ready) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;  // client went away: drop
    it->second->outbuf += line;
    if (it->second->pending > 0) --it->second->pending;
  }
}

void Server::close_connection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ::close(it->second->fd);
  connections_.erase(it);
}

void Server::serve() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // connection id per pollfd (0: none)
  for (;;) {
    drain_deferred();

    const bool stopping = stopping_.load();
    if (stopping) {
      // Graceful drain: stop accepting, run every queued job, then flush.
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      engine_.drain();     // blocks until all queued jobs are terminal
      drain_deferred();    // completions posted during the drain
      bool all_flushed = true;
      std::vector<std::uint64_t> dead;
      for (auto& [id, conn] : connections_) {
        if (!pump_writes(*conn)) dead.push_back(id);
        else if (!conn->outbuf.empty() || conn->pending > 0) {
          all_flushed = false;
        }
      }
      for (const std::uint64_t id : dead) close_connection(id);
      if (all_flushed) return;
    }

    fds.clear();
    fd_conn.clear();
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    std::vector<std::uint64_t> flushed;
    for (auto& [id, conn] : connections_) {
      if (conn->eof && conn->outbuf.empty() && conn->pending == 0) {
        flushed.push_back(id);
        continue;
      }
      short events = conn->eof ? 0 : POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      fd_conn.push_back(id);
    }
    for (const std::uint64_t id : flushed) close_connection(id);

    // 100 ms tick while stopping so the flush loop re-checks promptly even
    // if a wake byte was consumed before the last completion posted.
    const int timeout_ms = stopping ? 100 : -1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw IoError("serve: poll() failed");
    }

    std::vector<std::uint64_t> dead;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (p.fd == listen_fd_) {
        accept_clients();
        continue;
      }
      if (p.fd == wake_read_fd_) {
        char sink[256];
        while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      const std::uint64_t id = fd_conn[i];
      const auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      bool alive = true;
      if (p.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (p.revents & (POLLIN | POLLHUP))) {
        alive = pump_reads(conn);
      }
      if (alive && (p.revents & POLLOUT)) alive = pump_writes(conn);
      if (!alive) dead.push_back(id);
    }
    for (const std::uint64_t id : dead) close_connection(id);
  }
}

}  // namespace plin::serve
