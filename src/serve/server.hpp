// Server — the daemon's socket front-end: one poll()-driven IO thread
// multiplexing every client connection over an AF_UNIX stream socket.
//
// Wire format: newline-delimited JSON (serve/protocol.hpp). The IO loop
// never blocks on a client: reads are buffered per connection, writes are
// queued per connection and drained as POLLOUT allows, and deferred
// responses (submit with wait, wait) are completed via Engine::subscribe
// callbacks that post onto a pending-response queue and wake the loop
// through a self-pipe — worker threads never touch a socket.
//
// Shutdown: stop() (the SIGTERM handler calls it via the self-pipe, making
// the signal path async-signal-safe) stops accepting, lets queued work
// drain through the engine, flushes every pending response, then closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace plin::serve {

struct ServerOptions {
  std::string socket_path;  // required; unlinked + rebound on start
  int listen_backlog = 128;
};

class Server {
 public:
  /// Binds and listens immediately (throws IoError on failure); serve()
  /// then runs the IO loop on the calling thread until stop().
  Server(Engine& engine, ServerOptions options);
  ~Server();

  /// Runs the IO loop until stop(); returns after the drain completed and
  /// every pending response was flushed.
  void serve();

  /// Requests shutdown from any thread (or a signal handler: the only work
  /// is one write() to the self-pipe).
  void stop();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;     // generation id: stale callbacks are dropped
    std::string inbuf;
    std::string outbuf;
    std::size_t pending = 0;  // deferred responses not yet delivered
    bool eof = false;         // client closed; flush remaining, then close
  };

  void handle_line(Connection& conn, const std::string& line);
  void queue_response(Connection& conn, const json::Value& response);
  /// Registers an Engine::subscribe callback that answers `request` for
  /// `key` once the job is terminal.
  void defer_outcome(Connection& conn, const Request& request,
                     const std::string& key, const std::string& status);
  /// Thread-safe: posts a response for connection `id` and wakes the loop.
  void post_deferred(std::uint64_t id, const json::Value& response);
  void accept_clients();
  bool pump_reads(Connection& conn);   // false: connection died
  bool pump_writes(Connection& conn);  // false: connection died
  void drain_deferred();
  void close_connection(std::uint64_t id);

  Engine& engine_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;

  std::mutex deferred_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> deferred_;
};

}  // namespace plin::serve
