#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "batch/runner.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace plin::serve {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kCached: return "cached";
    case SubmitStatus::kQueued: return "queued";
    case SubmitStatus::kCoalesced: return "coalesced";
    case SubmitStatus::kRejected: return "rejected";
  }
  return "?";
}

Engine::Engine(batch::ResultStore& store, EngineOptions options)
    : store_(store), options_(std::move(options)) {
  PLIN_CHECK_MSG(options_.workers > 0, "serve: need >= 1 worker");
  if (!options_.executor) {
    options_.executor = [](const batch::JobSpec& spec) {
      return batch::execute_job(spec);
    };
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() { drain(); }

void Engine::configure_tenant(const std::string& name,
                              const TenantConfig& config) {
  PLIN_CHECK_MSG(config.weight > 0.0, "serve: tenant weight must be > 0");
  PLIN_CHECK_MSG(config.max_queued > 0, "serve: max_queued must be > 0");
  PLIN_CHECK_MSG(config.max_inflight >= 0,
                 "serve: max_inflight must be >= 0 (0 = uncapped)");
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& tenant = tenants_[name];
  tenant.config = config;
  tenant.stats.weight = config.weight;
}

SubmitStatus Engine::submit(const std::string& tenant_name,
                            const batch::JobSpec& spec) {
  PLIN_CHECK_MSG(!tenant_name.empty(), "serve: tenant must be non-empty");
  const std::string key = spec.key();
  std::lock_guard<std::mutex> lock(mutex_);

  auto it = tenants_.find(tenant_name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant_name, Tenant{}).first;
    it->second.config = options_.default_tenant;
    it->second.stats.weight = it->second.config.weight;
  }
  Tenant& tenant = it->second;
  ++totals_.submitted;
  ++tenant.stats.submitted;

  if (draining_) {
    ++totals_.rejected;
    ++tenant.stats.rejected;
    return SubmitStatus::kRejected;
  }

  // Dedupe against inflight work first: coalescing beats even a store hit
  // because it needs no journal read.
  const auto job_it = jobs_.find(key);
  if (job_it != jobs_.end() && (job_it->second.state == KeyState::kQueued ||
                                job_it->second.state == KeyState::kRunning)) {
    ++totals_.coalesced;
    ++tenant.stats.coalesced;
    return SubmitStatus::kCoalesced;
  }

  // Dedupe against completed work (the counting cache probe).
  if (store_.probe(key).has_value()) {
    ++totals_.cache_hits;
    ++tenant.stats.cache_hits;
    ++totals_.completed;
    ++tenant.stats.completed;
    return SubmitStatus::kCached;
  }

  // Admission control: explicit backpressure instead of unbounded queues.
  if (static_cast<int>(tenant.queue.size()) >= tenant.config.max_queued) {
    ++totals_.rejected;
    ++tenant.stats.rejected;
    return SubmitStatus::kRejected;
  }

  // A previously-failed key is resubmittable: reset it in place (its
  // subscribers were already notified of the failure).
  Job& job = jobs_[key];
  job.spec = spec;
  job.tenant = tenant_name;
  job.state = KeyState::kQueued;
  job.error.clear();

  // Stride fair-share: an idle tenant joins at the current minimum pass of
  // the active tenants, so it competes fairly from now on instead of
  // burning accumulated credit or waiting out a backlog it didn't cause.
  if (tenant.queue.empty() && tenant.inflight == 0) {
    double min_pass = tenant.pass;
    bool any_active = false;
    for (const auto& [name, other] : tenants_) {
      if (name == tenant_name) continue;
      if (other.queue.empty() && other.inflight == 0) continue;
      min_pass = any_active ? std::min(min_pass, other.pass) : other.pass;
      any_active = true;
    }
    if (any_active) tenant.pass = std::max(tenant.pass, min_pass);
  }
  tenant.queue.push_back(key);
  ++queued_;
  work_cv_.notify_one();
  return SubmitStatus::kQueued;
}

bool Engine::next_job(std::string* key) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // The runnable tenant with the lowest (pass, name).
    Tenant* best = nullptr;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.queue.empty()) continue;
      if (tenant.config.max_inflight > 0 &&
          tenant.inflight >= tenant.config.max_inflight) {
        continue;
      }
      if (best == nullptr || tenant.pass < best->pass) best = &tenant;
    }
    if (best != nullptr) {
      *key = best->queue.front();
      best->queue.pop_front();
      best->pass += 1.0 / best->config.weight;
      ++best->inflight;
      --queued_;
      ++inflight_;
      jobs_.at(*key).state = KeyState::kRunning;
      return true;
    }
    if (draining_ && queued_ == 0) return false;
    work_cv_.wait(lock);
  }
}

void Engine::worker_loop() {
  std::string key;
  while (next_job(&key)) {
    batch::JobSpec spec;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      spec = jobs_.at(key).spec;
    }
    std::string error;
    bool ok = false;
    const int attempts = 1 + std::max(0, options_.retries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++totals_.retries;
        }
        if (options_.backoff_s > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              options_.backoff_s * attempt));
        }
      }
      Stopwatch watch;
      try {
        const batch::JobRecord record = options_.executor(spec);
        if (options_.timeout_s > 0.0 &&
            watch.elapsed_s() > options_.timeout_s) {
          std::lock_guard<std::mutex> lock(mutex_);
          ++totals_.timeouts;
          error = "job exceeded the cooperative timeout (" +
                  std::to_string(options_.timeout_s) + " s); result discarded";
          continue;
        }
        // Persist before acknowledging: the journal line is flushed inside
        // put(), so a crash after this point re-serves the record from the
        // store instead of re-running it.
        store_.put(record);
        ok = true;
        break;
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    finish_job(key, ok, error);
  }
}

void Engine::finish_job(const std::string& key, bool ok,
                        const std::string& error) {
  std::vector<std::function<void(const JobOutcome&)>> subscribers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job& job = jobs_.at(key);
    Tenant& tenant = tenants_.at(job.tenant);
    --tenant.inflight;
    --inflight_;
    ++totals_.executed;
    if (ok) {
      ++totals_.completed;
      ++tenant.stats.completed;
    } else {
      ++totals_.failed;
      ++tenant.stats.failed;
    }
    job.state = ok ? KeyState::kDone : KeyState::kFailed;
    job.error = error;
    subscribers = std::move(job.subscribers);
    job.subscribers.clear();
    if (ok) jobs_.erase(key);  // the store is the terminal record now
  }
  JobOutcome outcome;
  outcome.ok = ok;
  outcome.key = key;
  outcome.error = error;
  for (const auto& callback : subscribers) callback(outcome);
  work_cv_.notify_all();  // an inflight slot freed up
  idle_cv_.notify_all();
}

void Engine::subscribe(const std::string& key,
                       std::function<void(const JobOutcome&)> callback) {
  JobOutcome outcome;
  outcome.key = key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(key);
    if (it != jobs_.end() && (it->second.state == KeyState::kQueued ||
                              it->second.state == KeyState::kRunning)) {
      it->second.subscribers.push_back(std::move(callback));
      return;
    }
    if (it != jobs_.end() && it->second.state == KeyState::kFailed) {
      outcome.ok = false;
      outcome.error = it->second.error;
    } else if (store_.contains(key)) {
      outcome.ok = true;
    } else {
      outcome.ok = false;
      outcome.error = "unknown key (never submitted, or rejected)";
    }
  }
  callback(outcome);
}

JobOutcome Engine::wait(const std::string& key) {
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    JobOutcome outcome;
  };
  auto shared = std::make_shared<Shared>();
  subscribe(key, [shared](const JobOutcome& outcome) {
    std::lock_guard<std::mutex> lock(shared->m);
    shared->outcome = outcome;
    shared->done = true;
    shared->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(shared->m);
  shared->cv.wait(lock, [&] { return shared->done; });
  return shared->outcome;
}

void Engine::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool Engine::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats out = totals_;
  out.queued_now = queued_;
  out.inflight_now = inflight_;
  for (const auto& [name, tenant] : tenants_) {
    out.tenants[name] = tenant.stats;
  }
  return out;
}

json::Value Engine::stats_json() const {
  const EngineStats engine = stats();
  const batch::StoreStats store = store_.stats();

  json::Value scheduler = json::make_object();
  scheduler.set("submitted", static_cast<double>(engine.submitted));
  scheduler.set("executed", static_cast<double>(engine.executed));
  scheduler.set("completed", static_cast<double>(engine.completed));
  scheduler.set("cache_hits", static_cast<double>(engine.cache_hits));
  scheduler.set("coalesced", static_cast<double>(engine.coalesced));
  scheduler.set("rejected", static_cast<double>(engine.rejected));
  scheduler.set("failed", static_cast<double>(engine.failed));
  scheduler.set("retries", static_cast<double>(engine.retries));
  scheduler.set("timeouts", static_cast<double>(engine.timeouts));
  scheduler.set("queued_now", static_cast<double>(engine.queued_now));
  scheduler.set("inflight_now", static_cast<double>(engine.inflight_now));

  json::Value tenants = json::make_object();
  for (const auto& [name, t] : engine.tenants) {
    json::Value one = json::make_object();
    one.set("weight", t.weight);
    one.set("submitted", static_cast<double>(t.submitted));
    one.set("completed", static_cast<double>(t.completed));
    one.set("cache_hits", static_cast<double>(t.cache_hits));
    one.set("coalesced", static_cast<double>(t.coalesced));
    one.set("rejected", static_cast<double>(t.rejected));
    one.set("failed", static_cast<double>(t.failed));
    tenants.set(name, std::move(one));
  }

  json::Value cache = json::make_object();
  cache.set("hits", static_cast<double>(store.hits));
  cache.set("misses", static_cast<double>(store.misses));
  cache.set("inserts", static_cast<double>(store.inserts));
  cache.set("replayed", static_cast<double>(store.replayed));
  cache.set("duplicate_keys", static_cast<double>(store.duplicate_keys));
  cache.set("skipped_stale", static_cast<double>(store.skipped_stale));
  cache.set("torn_tail", store.torn_tail);
  cache.set("hit_ratio", store.hit_ratio());

  json::Value root = json::make_object();
  root.set("scheduler", std::move(scheduler));
  root.set("tenants", std::move(tenants));
  root.set("cache", std::move(cache));
  return root;
}

}  // namespace plin::serve
