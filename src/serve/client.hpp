// Client — a minimal blocking client for the serve daemon: connects to the
// AF_UNIX socket, writes one JSON line per request, reads one JSON line
// per response. One Client is one connection; it is not thread-safe (use
// one per thread — the load generator does exactly that).
#pragma once

#include <string>

#include "batch/spec.hpp"
#include "support/json.hpp"

namespace plin::serve {

class Client {
 public:
  /// Connects immediately; throws IoError when the daemon is not up.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request object and blocks for its response line.
  json::Value request(const json::Value& body);

  /// Convenience wrappers over request().
  json::Value ping();
  json::Value submit(const batch::JobSpec& spec, const std::string& tenant,
                     bool wait, const std::string& tag = {});
  json::Value wait_key(const std::string& key);
  json::Value stats();
  json::Value drain();

 private:
  std::string read_line();

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace plin::serve
