// Wire protocol of the powerlin serve daemon (docs/serve.md).
//
// Transport: newline-delimited JSON over a local AF_UNIX stream socket —
// one request object per line, one response object per line, in order.
// Framing is byte-trivial on purpose: any language with a JSON library and
// a socket can drive the daemon, and the crash-safe layers below never
// depend on partial-line state.
//
// Requests:
//   {"op":"ping"}
//   {"op":"submit","tenant":"fig5","wait":true,"spec":{...}}
//   {"op":"wait","key":"<16-hex>"}
//   {"op":"stats"}
//   {"op":"drain"}
// Every request may carry a free-form "tag" string which the matching
// response echoes (client-side correlation). The "spec" object uses the
// same field names as the result store's record format (batch/record.cpp);
// absent fields take the JobSpec defaults.
//
// Responses always carry "ok" (bool) and echo "op" (+"tag"); submit/wait
// add "key", "status" and, for completed jobs, the stored record.
#pragma once

#include <string>

#include "batch/spec.hpp"
#include "support/json.hpp"

namespace plin::serve {

enum class Op { kPing, kSubmit, kWait, kStats, kDrain };

const char* to_string(Op op);

/// One decoded request line.
struct Request {
  Op op = Op::kPing;
  std::string tenant = "default";  // submit: fair-share accounting bucket
  std::string tag;                 // echoed verbatim in the response
  bool wait = false;               // submit: defer response to completion
  batch::JobSpec spec;             // submit only
  std::string key;                 // wait only
};

/// Parses a spec object using record-format field names; absent fields keep
/// the JobSpec defaults. Throws InvalidArgument on unknown fields or bad
/// token values, so client typos fail loudly instead of silently running
/// the default grid point.
batch::JobSpec spec_from_json(const json::Value& value);

/// Serializes a spec with the record-format field names (every field,
/// including defaults — the echo is for humans debugging, not for hashing).
json::Value spec_to_json(const batch::JobSpec& spec);

/// Parses one request line; throws InvalidArgument with a precise message
/// on malformed JSON, unknown ops, or bad specs.
Request parse_request(const std::string& line);

/// Response constructors (serialized by the caller; one line each).
json::Value make_response(const Request& request, bool ok);
json::Value error_response(const std::string& message,
                           const std::string& tag = {});

}  // namespace plin::serve
