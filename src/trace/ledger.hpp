// EnergyLedger — integrates the PowerModel over recorded per-core activity
// to produce the per-package and per-DRAM energies that the simulated RAPL
// counters expose.
//
// One ledger exists per simulated node. Rank threads append activity
// segments concurrently; the (rare) counter reads performed by the
// monitoring rank scan and clip segments against the query time. Package
// energy at time t is
//
//   pkg_base * t  +  core_idle * (unused core-time)  +  sum of segment
//   dynamic energy, scaled by the active power cap if one is set;
//
// a package with no ranks placed on it additionally receives
// `idle_socket_leakage` times the sibling package's dynamic energy — the
// paper's §5.3 observation that the "idle" socket consumes only 50–60% less
// than the busy one.
#pragma once

#include <mutex>
#include <vector>

#include "hwmodel/power.hpp"

namespace plin::trace {

struct ActivitySegment {
  double t0 = 0.0;
  double t1 = 0.0;
  hw::ActivityKind kind = hw::ActivityKind::kIdle;
  double dram_bytes = 0.0;  // memory traffic attributed to this segment
};

class EnergyLedger {
 public:
  /// `cores_per_package[p]` = cores physically present on package p;
  /// `ranked_cores_per_package[p]` = cores that have a rank scheduled.
  EnergyLedger(hw::PowerModel power, std::vector<int> cores_per_package,
               std::vector<int> ranked_cores_per_package);

  int packages() const { return static_cast<int>(cores_.size()); }

  /// Appends one activity segment executed on `package`. Thread-safe.
  ///
  /// `lane` buckets the segment (typically by core index within the
  /// package, i.e. one lane per rank). Reads accumulate lane by lane in
  /// lane order, and each lane is appended by a single rank in its program
  /// order — so every energy/traffic sum has a host-schedule-independent
  /// floating-point association, part of xmpi's bit-identical-results
  /// contract (docs/xmpi.md). Lanes grow on demand; callers that don't
  /// care (tests) can leave everything in lane 0.
  void record(int package, const ActivitySegment& segment, int lane = 0);

  /// Sets (watts) or clears (0) the RAPL power cap of a package. Capping
  /// scales the dynamic energy of *subsequent* reads; the throughput side
  /// of the cap is applied by the execution engine via
  /// PowerModel::cap_effect.
  void set_package_cap(int package, double watts);
  double package_cap(int package) const;

  /// Cumulative package energy in joules over virtual [0, t].
  double package_energy_j(int package, double t) const;

  /// Cumulative DRAM-domain energy in joules over virtual [0, t].
  double dram_energy_j(int package, double t) const;

  /// Dynamic (above idle) energy of the package's cores over [0, t];
  /// exposed for the leakage model and for test introspection.
  double package_dynamic_j(int package, double t) const;

  /// Total bytes of DRAM traffic recorded against the package's domain.
  double dram_traffic_bytes(int package, double t) const;

  /// Core-seconds spent in `kind` on this package over [0, t] (sum across
  /// the package's cores) — the utilization breakdown behind the power
  /// numbers.
  double activity_seconds(int package, hw::ActivityKind kind, double t) const;

  const hw::PowerModel& power_model() const { return power_; }

 private:
  double dynamic_locked(int package, double t) const;
  double traffic_locked(int package, double t) const;

  hw::PowerModel power_;
  std::vector<int> cores_;
  std::vector<int> ranked_cores_;
  std::vector<double> caps_w_;
  /// segments_[package][lane] — per-package, per-lane append-only logs.
  std::vector<std::vector<std::vector<ActivitySegment>>> segments_;
  mutable std::mutex mutex_;
};

}  // namespace plin::trace
