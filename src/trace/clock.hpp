// Virtual time. Every simulated rank owns a VirtualClock advanced by the
// compute and communication cost models; all paper-facing durations and all
// RAPL counter reads are taken against these clocks, never the host clock.
#pragma once

#include <algorithm>

#include "support/error.hpp"

namespace plin::trace {

class VirtualClock {
 public:
  VirtualClock() = default;

  double now() const { return now_s_; }

  void advance(double dt) {
    PLIN_ASSERT(dt >= 0.0);
    now_s_ += dt;
  }

  /// Jump forward to `t` if it is in the future (used when a receive
  /// completes at the sender-determined arrival time).
  void advance_to(double t) { now_s_ = std::max(now_s_, t); }

 private:
  double now_s_ = 0.0;
};

}  // namespace plin::trace
