#include "trace/ledger.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace plin::trace {
namespace {

/// Fraction of [t0, t1] that lies within [0, t].
double clipped_span(double t0, double t1, double t) {
  return std::max(0.0, std::min(t1, t) - t0);
}

}  // namespace

EnergyLedger::EnergyLedger(hw::PowerModel power,
                           std::vector<int> cores_per_package,
                           std::vector<int> ranked_cores_per_package)
    : power_(power),
      cores_(std::move(cores_per_package)),
      ranked_cores_(std::move(ranked_cores_per_package)) {
  PLIN_CHECK(!cores_.empty());
  PLIN_CHECK(ranked_cores_.size() == cores_.size());
  caps_w_.assign(cores_.size(), 0.0);
  segments_.resize(cores_.size());
}

void EnergyLedger::record(int package, const ActivitySegment& segment,
                          int lane) {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  PLIN_CHECK_MSG(lane >= 0, "lane must be non-negative");
  PLIN_ASSERT(segment.t1 >= segment.t0);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& lanes = segments_[static_cast<std::size_t>(package)];
  if (lanes.size() <= static_cast<std::size_t>(lane)) {
    lanes.resize(static_cast<std::size_t>(lane) + 1);
  }
  lanes[static_cast<std::size_t>(lane)].push_back(segment);
}

void EnergyLedger::set_package_cap(int package, double watts) {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  PLIN_CHECK_MSG(watts >= 0.0, "power cap must be non-negative");
  std::lock_guard<std::mutex> lock(mutex_);
  caps_w_[static_cast<std::size_t>(package)] = watts;
}

double EnergyLedger::package_cap(int package) const {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  return caps_w_[static_cast<std::size_t>(package)];
}

// The read loops below iterate lanes in index order and each lane in
// append order, so accumulation order — hence the floating-point result —
// does not depend on how rank execution interleaved on the host.

double EnergyLedger::dynamic_locked(int package, double t) const {
  const double idle_w = power_.core_power_w(hw::ActivityKind::kIdle);
  double joules = 0.0;
  for (const auto& lane : segments_[static_cast<std::size_t>(package)]) {
    for (const ActivitySegment& seg : lane) {
      const double span = clipped_span(seg.t0, seg.t1, t);
      if (span <= 0.0) continue;
      joules += span * (power_.core_power_w(seg.kind) - idle_w);
    }
  }
  return joules;
}

double EnergyLedger::traffic_locked(int package, double t) const {
  double bytes = 0.0;
  for (const auto& lane : segments_[static_cast<std::size_t>(package)]) {
    for (const ActivitySegment& seg : lane) {
      const double length = seg.t1 - seg.t0;
      if (length <= 0.0) {
        // Instantaneous traffic attribution: counts if it happened before t.
        if (seg.t0 <= t) bytes += seg.dram_bytes;
        continue;
      }
      bytes += seg.dram_bytes * (clipped_span(seg.t0, seg.t1, t) / length);
    }
  }
  return bytes;
}

double EnergyLedger::package_dynamic_j(int package, double t) const {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  return dynamic_locked(package, t);
}

double EnergyLedger::package_energy_j(int package, double t) const {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  PLIN_CHECK_MSG(t >= 0.0, "query time must be non-negative");
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t p = static_cast<std::size_t>(package);
  const double idle_w = power_.core_power_w(hw::ActivityKind::kIdle);
  double joules = power_.pkg_base_w() * t + cores_[p] * idle_w * t;

  double dynamic = dynamic_locked(package, t);
  if (ranked_cores_[p] == 0 && packages() == 2) {
    // Nominally idle socket: picks up a fraction of the busy sibling's
    // dynamic power (OS noise, snoops, uncore clocks) — DESIGN.md §5.
    const int sibling = package == 0 ? 1 : 0;
    dynamic = power_.idle_socket_leakage() * dynamic_locked(sibling, t);
  } else if (caps_w_[p] > 0.0) {
    dynamic *= power_.cap_effect(caps_w_[p], ranked_cores_[p]).dynamic_scale;
  }
  return joules + dynamic;
}

double EnergyLedger::dram_energy_j(int package, double t) const {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  PLIN_CHECK_MSG(t >= 0.0, "query time must be non-negative");
  std::lock_guard<std::mutex> lock(mutex_);
  return power_.dram_base_w() * t +
         traffic_locked(package, t) * power_.dram_energy_per_byte();
}

double EnergyLedger::activity_seconds(int package, hw::ActivityKind kind,
                                      double t) const {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  double seconds = 0.0;
  for (const auto& lane : segments_[static_cast<std::size_t>(package)]) {
    for (const ActivitySegment& seg : lane) {
      if (seg.kind != kind) continue;
      seconds += clipped_span(seg.t0, seg.t1, t);
    }
  }
  return seconds;
}

double EnergyLedger::dram_traffic_bytes(int package, double t) const {
  PLIN_CHECK_MSG(package >= 0 && package < packages(), "package out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  return traffic_locked(package, t);
}

}  // namespace plin::trace
