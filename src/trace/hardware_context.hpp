// HardwareContext — what "the hardware under this thread" looks like to the
// measurement stack. The xmpi runtime binds one context per rank thread;
// the simulated MSR device and papisim read through it, exactly as real
// PAPI reads the MSRs of the node it runs on.
#pragma once

#include "trace/clock.hpp"
#include "trace/ledger.hpp"

namespace plin::trace {

struct HardwareContext {
  /// Energy ledger of the node this thread runs on.
  EnergyLedger* ledger = nullptr;
  /// The reading thread's virtual clock (RAPL counters are sampled at the
  /// reader's current virtual time).
  const VirtualClock* clock = nullptr;
  /// Node id, used only for report file naming.
  int node = 0;
};

/// Binds `context` to the calling thread (nullptr to unbind). The pointer
/// must stay valid until unbound.
void bind_thread_hardware(const HardwareContext* context);

/// Context bound to the calling thread, or nullptr.
const HardwareContext* thread_hardware();

/// RAII binder for rank threads and tests.
class ScopedHardwareBinding {
 public:
  explicit ScopedHardwareBinding(const HardwareContext* context) {
    bind_thread_hardware(context);
  }
  ScopedHardwareBinding(const ScopedHardwareBinding&) = delete;
  ScopedHardwareBinding& operator=(const ScopedHardwareBinding&) = delete;
  ~ScopedHardwareBinding() { bind_thread_hardware(nullptr); }
};

}  // namespace plin::trace
