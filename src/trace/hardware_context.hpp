// HardwareContext — what "the hardware under this thread" looks like to the
// measurement stack. The xmpi runtime binds one context per rank thread;
// the simulated MSR device and papisim read through it, exactly as real
// PAPI reads the MSRs of the node it runs on.
#pragma once

#include "trace/clock.hpp"
#include "trace/ledger.hpp"

namespace plin::trace {

struct HardwareContext {
  /// Energy ledger of the node this thread runs on.
  EnergyLedger* ledger = nullptr;
  /// The reading thread's virtual clock (RAPL counters are sampled at the
  /// reader's current virtual time).
  const VirtualClock* clock = nullptr;
  /// Node id, used only for report file naming.
  int node = 0;
};

/// Binds `context` to the calling thread (nullptr to unbind). The pointer
/// must stay valid until unbound.
///
/// Both functions are deliberately out of line: a simulated rank can park
/// mid-call and resume on a different host worker (see xmpi's
/// FiberScheduler), so the thread-local they guard must be re-read through
/// a call the compiler cannot cache across a context switch.
void bind_thread_hardware(const HardwareContext* context);

/// Context bound to the calling thread, or nullptr.
const HardwareContext* thread_hardware();

/// RAII binder for rank execution and tests. Restores whatever binding the
/// thread had before, so nesting is safe — e.g. the 1-rank inline fast
/// path of Runtime::run temporarily rebinding the caller's thread.
class ScopedHardwareBinding {
 public:
  explicit ScopedHardwareBinding(const HardwareContext* context)
      : previous_(thread_hardware()) {
    bind_thread_hardware(context);
  }
  ScopedHardwareBinding(const ScopedHardwareBinding&) = delete;
  ScopedHardwareBinding& operator=(const ScopedHardwareBinding&) = delete;
  ~ScopedHardwareBinding() { bind_thread_hardware(previous_); }

 private:
  const HardwareContext* previous_ = nullptr;
};

}  // namespace plin::trace
