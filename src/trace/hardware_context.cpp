#include "trace/hardware_context.hpp"

namespace plin::trace {
namespace {
thread_local const HardwareContext* t_context = nullptr;
}  // namespace

void bind_thread_hardware(const HardwareContext* context) {
  t_context = context;
}

const HardwareContext* thread_hardware() { return t_context; }

}  // namespace plin::trace
