#include "batch/campaign.hpp"

#include <fstream>

#include "support/error.hpp"
#include "support/logging.hpp"

namespace plin::batch {

CampaignResult run_campaign(const CampaignManifest& manifest,
                            const CampaignOptions& options) {
  const std::vector<JobSpec> specs = manifest.expand();
  ResultStore store(options.store_dir);
  if (store.recovered_torn_tail()) {
    PLIN_LOG_WARN << "campaign '" << manifest.name
                  << "': store recovered from a mid-write crash";
  }

  QueueOptions queue_options;
  queue_options.workers =
      options.workers > 0 ? options.workers : manifest.workers;
  queue_options.retries = manifest.retries;
  queue_options.timeout_s = manifest.timeout_s;
  queue_options.max_jobs = options.max_jobs;
  queue_options.job_hook = options.job_hook;
  queue_options.trace_dir = options.trace_dir;

  PLIN_LOG_INFO << "campaign '" << manifest.name << "': " << specs.size()
                << " jobs on " << queue_options.workers << " worker(s), store "
                << store.dir();

  CampaignResult result;
  result.outcome = run_queue(specs, store, queue_options);
  PLIN_LOG_INFO << "campaign '" << manifest.name << "': "
                << result.outcome.executed << " executed, "
                << result.outcome.cached << " cached, "
                << result.outcome.failures.size() << " failed, "
                << result.outcome.stopped << " stopped";

  result.records = collect_records(specs, store, &result.missing);
  result.store_stats = store.stats();

  if (options.write_reports) {
    result.csv_path = store.dir() + "/report.csv";
    std::ofstream csv(result.csv_path, std::ios::trunc);
    if (!csv) throw IoError("cannot write report: " + result.csv_path);
    write_report_csv(csv, result.records);

    result.markdown_path = store.dir() + "/report.md";
    std::ofstream md(result.markdown_path, std::ios::trunc);
    if (!md) throw IoError("cannot write report: " + result.markdown_path);
    write_report_markdown(md, result.records);
  }
  return result;
}

}  // namespace plin::batch
