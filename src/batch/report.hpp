// Report engine — deterministic aggregation from the result store alone.
//
// Rows follow the manifest's canonical expansion order, never journal
// (completion) order, and only virtual-time quantities are emitted — the
// two properties that make a report byte-identical across worker counts
// and across interrupted-and-resumed versus uninterrupted campaigns.
// Repetitions fold through support/stats (mean / stddev / 95% CI).
#pragma once

#include <cstddef>
#include <ostream>
#include <span>
#include <vector>

#include "batch/record.hpp"
#include "batch/store.hpp"

namespace plin::batch {

/// Records present in `store` for `specs`, in spec order. Absent jobs
/// (failed or not yet run) are counted into `missing` when non-null.
std::vector<JobRecord> collect_records(std::span<const JobSpec> specs,
                                       const ResultStore& store,
                                       std::size_t* missing = nullptr);

/// Aggregate CSV: one row per job with repetition statistics.
void write_report_csv(std::ostream& os, std::span<const JobRecord> records);

/// Markdown table (for docs / PR-style summaries).
void write_report_markdown(std::ostream& os,
                           std::span<const JobRecord> records);

/// Human-readable table mirroring monitor::print_campaign_table, plus
/// spread columns.
void print_report_table(std::ostream& os, std::span<const JobRecord> records);

}  // namespace plin::batch
