#include "batch/report.hpp"

#include <algorithm>

#include "support/csv.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace plin::batch {
namespace {

struct JobAggregate {
  SampleStats duration;
  SampleStats total_j;
  SampleStats pkg_j;
  SampleStats dram_j;
  double power_w = 0.0;     // mean total energy / mean duration
  double worst_residual = 0.0;
};

JobAggregate aggregate(const JobRecord& record) {
  std::vector<double> duration;
  std::vector<double> total;
  std::vector<double> pkg;
  std::vector<double> dram;
  duration.reserve(record.repetitions.size());
  for (const RepetitionRecord& rep : record.repetitions) {
    duration.push_back(rep.duration_s);
    total.push_back(rep.total_j());
    pkg.push_back(rep.total_pkg_j());
    dram.push_back(rep.total_dram_j());
  }
  JobAggregate agg;
  agg.duration = compute_stats(duration);
  agg.total_j = compute_stats(total);
  agg.pkg_j = compute_stats(pkg);
  agg.dram_j = compute_stats(dram);
  agg.power_w =
      agg.duration.mean > 0.0 ? agg.total_j.mean / agg.duration.mean : 0.0;
  for (const RepetitionRecord& rep : record.repetitions) {
    agg.worst_residual = std::max(agg.worst_residual, rep.residual);
  }
  return agg;
}

std::vector<std::string> spec_cells(const JobSpec& spec) {
  return {to_string(spec.tier),
          spec.machine,
          algorithm_token(spec.algorithm),
          std::to_string(spec.n),
          std::to_string(spec.ranks),
          layout_token(spec.layout),
          std::to_string(spec.nb),
          std::to_string(spec.seed),
          format_fixed(spec.power_cap_w, 1),
          std::to_string(spec.repetitions)};
}

// The precision column appears only when a mixed job is present, so the
// long-standing fp64-only report layouts stay byte-identical.
bool any_mixed(std::span<const JobRecord> records) {
  for (const JobRecord& record : records) {
    if (record.spec.precision != perfsim::Precision::kFp64) return true;
  }
  return false;
}

// Same contract for the sparse columns (matrix / cg_iters / nnz): they
// appear only when a cg job is present.
bool any_cg(std::span<const JobRecord> records) {
  for (const JobRecord& record : records) {
    if (record.spec.algorithm == perfsim::Algorithm::kCg) return true;
  }
  return false;
}

bool is_cg(const JobRecord& record) {
  return record.spec.algorithm == perfsim::Algorithm::kCg;
}

// And for the precond column: it appears only when a preconditioned job is
// present, so plain-cg reports keep their historical layout.
bool any_precond(std::span<const JobRecord> records) {
  for (const JobRecord& record : records) {
    if (record.spec.precond != solvers::CgPrecond::kNone) return true;
  }
  return false;
}

/// First-repetition iteration count — CG is deterministic, so every
/// repetition of a job reports the same value.
int record_cg_iters(const JobRecord& record) {
  return record.repetitions.empty() ? 0 : record.repetitions.front().cg_iters;
}

std::size_t record_nnz(const JobRecord& record) {
  return record.repetitions.empty() ? 0 : record.repetitions.front().nnz;
}

std::uint64_t record_halo_msgs(const JobRecord& record) {
  return record.repetitions.empty() ? 0
                                    : record.repetitions.front().halo_messages;
}

std::uint64_t record_halo_bytes(const JobRecord& record) {
  return record.repetitions.empty() ? 0
                                    : record.repetitions.front().halo_bytes;
}

}  // namespace

std::vector<JobRecord> collect_records(std::span<const JobSpec> specs,
                                       const ResultStore& store,
                                       std::size_t* missing) {
  std::vector<JobRecord> records;
  std::size_t absent = 0;
  for (const JobSpec& spec : specs) {
    const std::string key = spec.key();
    if (store.contains(key)) {
      records.push_back(store.lookup(key));
    } else {
      ++absent;
    }
  }
  if (missing != nullptr) *missing = absent;
  return records;
}

void write_report_csv(std::ostream& os, std::span<const JobRecord> records) {
  const bool mixed = any_mixed(records);
  const bool cg = any_cg(records);
  const bool precond = any_precond(records);
  CsvWriter csv(os);
  std::vector<std::string> header = {
      "tier", "machine", "algorithm", "n", "ranks", "layout",
      "nb", "seed", "power_cap_w", "reps",
      "duration_mean_s", "duration_stddev_s", "duration_ci95_s",
      "duration_min_s", "duration_max_s",
      "total_mean_j", "total_stddev_j", "total_ci95_j",
      "pkg_mean_j", "dram_mean_j", "power_mean_w",
      "residual_worst"};
  if (cg) {
    header.insert(header.begin() + 3, "matrix");
    if (precond) header.insert(header.begin() + 4, "precond");
    header.push_back("cg_iters");
    header.push_back("nnz");
    header.push_back("halo_msgs");
    header.push_back("halo_bytes");
  }
  if (mixed) header.insert(header.begin() + 3, "precision");
  csv.write_row(header);
  for (const JobRecord& record : records) {
    const JobAggregate agg = aggregate(record);
    std::vector<std::string> row = spec_cells(record.spec);
    if (cg) {
      row.insert(row.begin() + 3,
                 is_cg(record) ? sparse::kind_token(record.spec.matrix)
                               : "-");
      if (precond) {
        row.insert(row.begin() + 4,
                   is_cg(record)
                       ? solvers::precond_token(record.spec.precond)
                       : "-");
      }
    }
    if (mixed) {
      row.insert(row.begin() + 3, precision_token(record.spec.precision));
    }
    row.push_back(format_fixed(agg.duration.mean, 9));
    row.push_back(format_fixed(agg.duration.stddev, 9));
    row.push_back(format_fixed(agg.duration.ci95_half, 9));
    row.push_back(format_fixed(agg.duration.min, 9));
    row.push_back(format_fixed(agg.duration.max, 9));
    row.push_back(format_fixed(agg.total_j.mean, 6));
    row.push_back(format_fixed(agg.total_j.stddev, 6));
    row.push_back(format_fixed(agg.total_j.ci95_half, 6));
    row.push_back(format_fixed(agg.pkg_j.mean, 6));
    row.push_back(format_fixed(agg.dram_j.mean, 6));
    row.push_back(format_fixed(agg.power_w, 3));
    row.push_back(format_fixed(agg.worst_residual, 18));
    if (cg) {
      row.push_back(is_cg(record) ? std::to_string(record_cg_iters(record))
                                  : "0");
      row.push_back(is_cg(record) ? std::to_string(record_nnz(record))
                                  : "0");
      row.push_back(std::to_string(record_halo_msgs(record)));
      row.push_back(std::to_string(record_halo_bytes(record)));
    }
    csv.write_row(row);
  }
}

void write_report_markdown(std::ostream& os,
                           std::span<const JobRecord> records) {
  const bool mixed = any_mixed(records);
  const bool cg = any_cg(records);
  const bool precond = any_precond(records);
  os << "| tier | algorithm |" << (mixed ? " precision |" : "")
     << (cg ? " matrix |" : "") << (precond ? " precond |" : "")
     << " n | ranks | layout | reps | duration | "
        "energy | power | worst residual |"
     << (cg ? " iters | nnz | halo msgs | halo bytes |" : "") << "\n";
  os << "|---|---|" << (mixed ? "---|" : "") << (cg ? "---|" : "")
     << (precond ? "---|" : "") << "---|---|---|---|---|---|---|---|"
     << (cg ? "---|---|---|---|" : "") << "\n";
  for (const JobRecord& record : records) {
    const JobAggregate agg = aggregate(record);
    os << "| " << to_string(record.spec.tier) << " | "
       << algorithm_token(record.spec.algorithm) << " | ";
    if (mixed) os << precision_token(record.spec.precision) << " | ";
    if (cg) {
      os << (is_cg(record) ? sparse::kind_token(record.spec.matrix) : "-")
         << " | ";
    }
    if (precond) {
      os << (is_cg(record) ? solvers::precond_token(record.spec.precond)
                           : "-")
         << " | ";
    }
    os << record.spec.n
       << " | " << record.spec.ranks << " | "
       << layout_token(record.spec.layout) << " | "
       << record.spec.repetitions << " | "
       << format_duration(agg.duration.mean);
    if (agg.duration.ci95_half > 0.0) {
      os << " ± " << format_duration(agg.duration.ci95_half);
    }
    os << " | " << format_energy(agg.total_j.mean);
    if (agg.total_j.ci95_half > 0.0) {
      os << " ± " << format_energy(agg.total_j.ci95_half);
    }
    os << " | " << format_power(agg.power_w) << " | "
       << format_fixed(agg.worst_residual * 1e15, 2) << "e-15 |";
    if (cg) {
      if (is_cg(record)) {
        os << " " << record_cg_iters(record) << " | " << record_nnz(record)
           << " | " << record_halo_msgs(record) << " | "
           << record_halo_bytes(record) << " |";
      } else {
        os << " - | - | - | - |";
      }
    }
    os << "\n";
  }
}

void print_report_table(std::ostream& os,
                        std::span<const JobRecord> records) {
  const bool mixed = any_mixed(records);
  const bool cg = any_cg(records);
  const bool precond = any_precond(records);
  std::vector<std::string> header = {
      "tier", "algorithm", "n", "ranks", "layout", "reps",
      "duration", "ci95", "PKG energy", "DRAM energy", "total",
      "power", "residual"};
  if (cg) {
    header.insert(header.begin() + 2, "matrix");
    if (precond) header.insert(header.begin() + 3, "precond");
    header.push_back("iters");
    header.push_back("nnz");
    header.push_back("halo msgs");
    header.push_back("halo bytes");
  }
  if (mixed) header.insert(header.begin() + 2, "precision");
  TextTable table(header);
  for (const JobRecord& record : records) {
    const JobAggregate agg = aggregate(record);
    std::vector<std::string> row = {
        to_string(record.spec.tier),
        algorithm_token(record.spec.algorithm),
        std::to_string(record.spec.n),
        std::to_string(record.spec.ranks),
        layout_token(record.spec.layout),
        std::to_string(record.spec.repetitions),
        format_duration(agg.duration.mean),
        agg.duration.ci95_half > 0.0
            ? format_duration(agg.duration.ci95_half)
            : std::string("-"),
        format_energy(agg.pkg_j.mean),
        format_energy(agg.dram_j.mean),
        format_energy(agg.total_j.mean),
        format_power(agg.power_w),
        format_fixed(agg.worst_residual * 1e15, 2) + "e-15"};
    if (cg) {
      row.insert(row.begin() + 2,
                 is_cg(record) ? sparse::kind_token(record.spec.matrix)
                               : "-");
      if (precond) {
        row.insert(row.begin() + 3,
                   is_cg(record)
                       ? solvers::precond_token(record.spec.precond)
                       : "-");
      }
      row.push_back(is_cg(record) ? std::to_string(record_cg_iters(record))
                                  : "-");
      row.push_back(is_cg(record) ? std::to_string(record_nnz(record))
                                  : "-");
      row.push_back(is_cg(record) ? std::to_string(record_halo_msgs(record))
                                  : "-");
      row.push_back(is_cg(record) ? std::to_string(record_halo_bytes(record))
                                  : "-");
    }
    if (mixed) {
      row.insert(row.begin() + 2, precision_token(record.spec.precision));
    }
    table.add_row(row);
  }
  table.print(os);
}

}  // namespace plin::batch
