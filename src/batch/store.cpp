#include "batch/store.hpp"

#include <filesystem>
#include <sstream>

#include "support/error.hpp"
#include "support/logging.hpp"

namespace plin::batch {
namespace {

std::string journal_path(const std::string& dir) {
  return dir + "/journal.jsonl";
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  PLIN_CHECK_MSG(!dir_.empty(), "store: directory must not be empty");
  std::filesystem::create_directories(dir_);
  std::filesystem::create_directories(dir_ + "/records");
  replay_journal();
  journal_.open(journal_path(dir_), std::ios::app);
  if (!journal_) {
    throw IoError("store: cannot open journal for append: " +
                  journal_path(dir_));
  }
}

void ResultStore::replay_journal() {
  std::ifstream is(journal_path(dir_), std::ios::binary);
  if (!is) return;  // fresh store
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  std::size_t pos = 0;
  std::size_t valid_bytes = 0;  // prefix ending after the last good line
  while (pos < text.size()) {
    const std::size_t line_start = pos;
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      // No terminating newline: the writer died mid-append. Drop the tail.
      torn_tail_ = true;
      break;
    }
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      valid_bytes = pos;
      continue;
    }

    json::Value value;
    try {
      value = json::parse(line);
    } catch (const Error&) {
      if (pos >= text.size()) {
        // Newline present but the JSON itself is truncated — still the
        // final line, still a recoverable mid-write crash.
        torn_tail_ = true;
        pos = line_start;
        break;
      }
      throw IoError("store: corrupt journal line (not at end of file): " +
                    journal_path(dir_));
    }
    valid_bytes = pos;
    try {
      JobRecord record = record_from_json(value);
      const std::string key = record.key();
      if (records_.count(key) != 0) ++duplicate_keys_;
      ++replayed_;
      records_.insert_or_assign(key, std::move(record));
    } catch (const Error&) {
      // Semantically stale (format-version bump): a cache miss, not fatal.
      ++skipped_stale_;
    }
  }
  if (torn_tail_) {
    // Truncate the torn tail away so the next put() starts a fresh line
    // instead of appending onto the partial one.
    std::filesystem::resize_file(journal_path(dir_), valid_bytes);
    PLIN_LOG_WARN << "store: dropped torn trailing journal line in " << dir_;
  }
  if (skipped_stale_ > 0) {
    PLIN_LOG_WARN << "store: skipped " << skipped_stale_
                  << " stale-format record(s) in " << dir_;
  }
}

bool ResultStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.count(key) != 0;
}

JobRecord ResultStore::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  PLIN_CHECK_MSG(it != records_.end(), "store: no record for key " + key);
  return it->second;
}

std::optional<JobRecord> ResultStore::probe(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ResultStore::put(const JobRecord& record) {
  const std::string key = record.key();
  const std::string line = json::serialize(to_json(record));

  std::lock_guard<std::mutex> lock(mutex_);
  journal_ << line << '\n';
  journal_.flush();
  if (!journal_) throw IoError("store: journal append failed in " + dir_);

  // Human-readable mirror; the journal stays authoritative.
  const std::string path = dir_ + "/records/" + key + ".json";
  std::ofstream os(path, std::ios::trunc);
  os << line << '\n';

  records_.insert_or_assign(key, record);
  ++inserts_;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.inserts = inserts_;
  stats.replayed = replayed_;
  stats.duplicate_keys = duplicate_keys_;
  stats.skipped_stale = skipped_stale_;
  stats.torn_tail = torn_tail_;
  return stats;
}

std::vector<JobRecord> ResultStore::all_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [key, record] : records_) out.push_back(record);
  return out;
}

}  // namespace plin::batch
