// Campaign orchestrator — ties manifest, store, queue and report together:
// the top-level entry point behind `powerlin_run --campaign` and
// examples/energy_campaign.
//
//   manifest -> expand grid -> skip cache hits -> run misses on the worker
//   pool -> journal results -> regenerate reports from the store.
//
// Reports are rewritten on every invocation (including pure-cache resumes),
// so <store>/report.csv and <store>/report.md always reflect the full
// journal. See docs/campaign.md for the resume workflow.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "batch/manifest.hpp"
#include "batch/queue.hpp"
#include "batch/report.hpp"

namespace plin::batch {

struct CampaignOptions {
  std::string store_dir = "campaign_store";
  /// Overrides the manifest's worker count when > 0.
  int workers = 0;
  /// Deterministic interrupt: execute at most this many jobs (cache hits
  /// excluded) before stopping. Used by tests and the CI resume job.
  std::size_t max_jobs = static_cast<std::size_t>(-1);
  /// Write <store>/report.csv and <store>/report.md after the queue drains.
  bool write_reports = true;
  /// Test hook forwarded to the queue (fault injection).
  std::function<void(const JobSpec&)> job_hook;
  /// If non-empty, numeric-tier jobs archive their span-trace bundle under
  /// <trace_dir>/<spec.key()>/ — `powerlin_run --campaign ... --trace-dir`
  /// (docs/tracing.md).
  std::string trace_dir;
};

struct CampaignResult {
  QueueOutcome outcome;
  /// Records present after this invocation, in manifest order.
  std::vector<JobRecord> records;
  /// Jobs of the manifest still absent from the store (failed / stopped).
  std::size_t missing = 0;
  std::string csv_path;       // empty when write_reports is false
  std::string markdown_path;  // empty when write_reports is false
  /// Cache counters of this invocation (hits = jobs served from the
  /// journal, misses = jobs that had to execute, inserts = new records).
  StoreStats store_stats;
};

CampaignResult run_campaign(const CampaignManifest& manifest,
                            const CampaignOptions& options = {});

}  // namespace plin::batch
