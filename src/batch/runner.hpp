// Runner — executes one JobSpec on its tier and returns the JobRecord the
// store persists. Numeric-tier jobs spin up a whole xmpi world under the
// white-box monitor (monitor::run_job); replay-tier jobs evaluate the
// perfsim analytic model at paper scale. Both are safe to call from
// multiple host threads at once: worlds are self-contained and the shared
// papisim library is internally locked.
#pragma once

#include <string>

#include "batch/record.hpp"
#include "batch/spec.hpp"

namespace plin::batch {

/// Runs `spec` to completion and returns its record. Throws (solver
/// failure, bad residual, impossible placement, ...) rather than returning
/// partial data; the queue layer captures and retries.
///
/// If `trace_dir` is non-empty, a numeric-tier job archives the span-trace
/// bundle of its first repetition under `<trace_dir>/<spec.key()>/`
/// (docs/tracing.md); replay-tier jobs never trace (no xmpi world runs).
JobRecord execute_job(const JobSpec& spec, const std::string& trace_dir = {});

}  // namespace plin::batch
