// Batch job specification — one point of a campaign grid, on either
// execution tier, with a stable content-addressed key.
//
// The key is an FNV-1a 64-bit hash of the spec's canonical string, which
// covers every field that influences the job's *result* (tier, machine,
// algorithm, n, ranks, layout, nb, seed, repetitions, iterations, power
// cap) plus a format-version tag. Execution policy (timeout, retries,
// worker count) deliberately stays out: re-running the same science with a
// different schedule must hit the cache.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "perfsim/prediction.hpp"
#include "solvers/cg/precond.hpp"

namespace plin::batch {

/// Which execution substrate runs the job (DESIGN.md §2's two tiers).
enum class Tier {
  kNumeric,  // real solvers on xmpi under the white-box monitor
  kReplay,   // perfsim analytic replay at paper scale
};

const char* to_string(Tier tier);
Tier parse_tier(const std::string& token);

/// Short manifest tokens for the layouts ("full" | "half1" | "half2"),
/// shared by the CLI drivers and the manifest parser.
const char* layout_token(hw::LoadLayout layout);
hw::LoadLayout parse_layout_token(const std::string& token);

/// Manifest tokens for algorithms ("ime" | "scalapack" | "jacobi" | "cg").
const char* algorithm_token(perfsim::Algorithm algorithm);
perfsim::Algorithm parse_algorithm_token(const std::string& token);

/// Manifest tokens for precisions ("fp64" | "mixed").
const char* precision_token(perfsim::Precision precision);
perfsim::Precision parse_precision_token(const std::string& token);

/// One fully-specified job. Defaults describe a small numeric-tier run.
struct JobSpec {
  Tier tier = Tier::kNumeric;
  /// Machine name: "marconi" | "epyc" | "mini:<nodes>x<cores_per_socket>".
  std::string machine = "mini:16x4";
  perfsim::Algorithm algorithm = perfsim::Algorithm::kIme;
  std::size_t n = 256;
  int ranks = 4;
  hw::LoadLayout layout = hw::LoadLayout::kFullLoad;
  std::size_t nb = 32;          // ScaLAPACK block size
  std::uint64_t seed = 1;
  int repetitions = 1;
  int iterations = 100;         // Jacobi sweep count (replay tier)
  double power_cap_w = 0.0;     // per-package RAPL cap; 0 = uncapped
  /// fp64 (default) or mixed (fp32 factorization + fp64 refinement);
  /// numeric tier + scalapack only.
  perfsim::Precision precision = perfsim::Precision::kFp64;
  /// Sparse family for cg jobs (sparse/generate.hpp tokens); ignored — and
  /// kept out of the canonical string — for every other algorithm.
  sparse::SparseKind matrix = sparse::SparseKind::kStencil5;
  /// CG preconditioner axis; appended to the canonical string only when a
  /// cg job is preconditioned, so every pre-existing key stays valid.
  solvers::CgPrecond precond = solvers::CgPrecond::kNone;

  /// Canonical serialization: the hash pre-image, also usable as a fully
  /// qualified human-readable job id.
  std::string canonical() const;

  /// Content-addressed key: 16 lowercase hex digits of FNV-1a 64.
  std::string key() const;

  /// Short description for progress logs.
  std::string describe() const;
};

/// Resolves a machine name ("marconi" | "epyc" | "mini:<N>x<C>") to its
/// MachineSpec; throws InvalidArgument on anything else.
hw::MachineSpec machine_from_name(const std::string& name);

/// FNV-1a 64-bit (exposed for tests).
std::uint64_t fnv1a64(std::string_view text);

}  // namespace plin::batch
