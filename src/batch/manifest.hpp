// Campaign manifests — the declarative analogue of the paper's SLURM batch
// scripts. A manifest names the campaign, picks a tier and machine, sets
// execution policy (workers, retries, timeout) and spans a grid over
// algorithm / n / ranks / layout / nb / seed / power cap / precision /
// matrix / precond. Syntax is the
// support/kvfile line format; see docs/campaign.md for the reference.
//
//   campaign  ci-smoke
//   tier      numeric
//   machine   mini:8x4
//   reps      2
//   workers   4
//   retries   1
//   timeout_s 600
//   grid algorithm ime scalapack
//   grid n         192 256
//   grid ranks     4 8
//   grid layout    full half1 half2
//
// expand() walks the grid in declaration-independent canonical order
// (algorithm, n, ranks, layout, nb, seed, cap, precision, matrix, precond
// — outermost first), so job order, and therefore every report derived
// from it, is deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/spec.hpp"

namespace plin::batch {

struct CampaignManifest {
  std::string name = "campaign";
  Tier tier = Tier::kNumeric;
  std::string machine = "mini:16x4";
  int repetitions = 1;
  int workers = 1;
  int retries = 0;
  double timeout_s = 0.0;  // per job; 0 = unlimited
  int iterations = 100;    // Jacobi replay sweeps

  // Grid axes (each must be non-empty after parsing; defaults below).
  std::vector<perfsim::Algorithm> algorithms = {perfsim::Algorithm::kIme};
  std::vector<std::size_t> sizes = {256};
  std::vector<int> rank_counts = {4};
  std::vector<hw::LoadLayout> layouts = {hw::LoadLayout::kFullLoad};
  std::vector<std::size_t> blocks = {32};
  std::vector<std::uint64_t> seeds = {1};
  std::vector<double> power_caps_w = {0.0};
  /// Precision axis; "mixed" expands for scalapack points only (numeric
  /// tier), so fp64-only campaigns are unaffected by its presence.
  std::vector<perfsim::Precision> precisions = {perfsim::Precision::kFp64};
  /// Sparse-family axis; non-default kinds expand for cg points only, so
  /// dense campaigns are unaffected by its presence.
  std::vector<sparse::SparseKind> matrices = {sparse::SparseKind::kStencil5};
  /// Preconditioner axis; non-default values expand for cg points only.
  std::vector<solvers::CgPrecond> preconds = {solvers::CgPrecond::kNone};

  /// Expands the grid into one JobSpec per point, canonical order.
  std::vector<JobSpec> expand() const;

  /// Total grid size without materializing the specs.
  std::size_t job_count() const;
};

/// Parses manifest text; throws InvalidArgument naming the offending line
/// on unknown keys, bad values, or empty grids.
CampaignManifest parse_manifest(const std::string& text);

/// Reads and parses a manifest file (IoError if unreadable).
CampaignManifest load_manifest_file(const std::string& path);

}  // namespace plin::batch
