#include "batch/manifest.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/kvfile.hpp"

namespace plin::batch {
namespace {

[[noreturn]] void fail(const KvLine& line, const std::string& what) {
  throw InvalidArgument("manifest line " + std::to_string(line.line_no) +
                        ": " + what);
}

const std::string& single_value(const KvLine& line) {
  if (line.values.size() != 1) {
    fail(line, "key '" + line.key + "' takes exactly one value");
  }
  return line.values[0];
}

long parse_long(const KvLine& line, const std::string& token) {
  try {
    std::size_t used = 0;
    const long value = std::stol(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    fail(line, "not an integer: " + token);
  }
}

double parse_num(const KvLine& line, const std::string& token) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    fail(line, "not a number: " + token);
  }
}

void parse_grid(CampaignManifest& manifest, const KvLine& line) {
  if (line.values.size() < 2) {
    fail(line, "grid lines need an axis name and at least one value");
  }
  const std::string& axis = line.values[0];
  const auto tokens =
      std::vector<std::string>(line.values.begin() + 1, line.values.end());
  try {
    if (axis == "algorithm") {
      manifest.algorithms.clear();
      for (const auto& t : tokens) {
        manifest.algorithms.push_back(parse_algorithm_token(t));
      }
    } else if (axis == "n") {
      manifest.sizes.clear();
      for (const auto& t : tokens) {
        const long v = parse_long(line, t);
        if (v <= 0) fail(line, "n must be positive: " + t);
        manifest.sizes.push_back(static_cast<std::size_t>(v));
      }
    } else if (axis == "ranks") {
      manifest.rank_counts.clear();
      for (const auto& t : tokens) {
        const long v = parse_long(line, t);
        if (v <= 0) fail(line, "ranks must be positive: " + t);
        manifest.rank_counts.push_back(static_cast<int>(v));
      }
    } else if (axis == "layout") {
      manifest.layouts.clear();
      for (const auto& t : tokens) {
        manifest.layouts.push_back(parse_layout_token(t));
      }
    } else if (axis == "nb") {
      manifest.blocks.clear();
      for (const auto& t : tokens) {
        const long v = parse_long(line, t);
        if (v <= 0) fail(line, "nb must be positive: " + t);
        manifest.blocks.push_back(static_cast<std::size_t>(v));
      }
    } else if (axis == "seed") {
      manifest.seeds.clear();
      for (const auto& t : tokens) {
        manifest.seeds.push_back(
            static_cast<std::uint64_t>(parse_long(line, t)));
      }
    } else if (axis == "power_cap_w") {
      manifest.power_caps_w.clear();
      for (const auto& t : tokens) {
        const double v = parse_num(line, t);
        if (v < 0.0) fail(line, "power_cap_w must be >= 0: " + t);
        manifest.power_caps_w.push_back(v);
      }
    } else if (axis == "precision") {
      manifest.precisions.clear();
      for (const auto& t : tokens) {
        manifest.precisions.push_back(parse_precision_token(t));
      }
    } else if (axis == "matrix") {
      manifest.matrices.clear();
      for (const auto& t : tokens) {
        manifest.matrices.push_back(sparse::parse_kind_token(t));
      }
    } else if (axis == "precond") {
      manifest.preconds.clear();
      for (const auto& t : tokens) {
        manifest.preconds.push_back(solvers::parse_precond_token(t));
      }
    } else {
      fail(line, "unknown grid axis '" + axis +
                     "' (algorithm | n | ranks | layout | nb | seed | "
                     "power_cap_w | precision | matrix | precond)");
    }
  } catch (const InvalidArgument&) {
    throw;  // already carries line context or a precise token message
  }
}

}  // namespace

std::vector<JobSpec> CampaignManifest::expand() const {
  std::vector<JobSpec> specs;
  specs.reserve(job_count());
  for (const perfsim::Algorithm algorithm : algorithms) {
    for (const std::size_t n : sizes) {
      for (const int ranks : rank_counts) {
        for (const hw::LoadLayout layout : layouts) {
          for (const std::size_t nb : blocks) {
            for (const std::uint64_t seed : seeds) {
              for (const double cap_w : power_caps_w) {
                for (const perfsim::Precision precision : precisions) {
                  // Mixed precision is a GEPP variant; on a grid that also
                  // spans other algorithms, the mixed point only exists for
                  // scalapack (the cross product would otherwise demand an
                  // fp32 IMe/Jacobi that has no implementation or meaning).
                  if (precision != perfsim::Precision::kFp64 &&
                      algorithm != perfsim::Algorithm::kScalapack) {
                    continue;
                  }
                  for (const sparse::SparseKind matrix : matrices) {
                    // The matrix axis is a cg concept; on a mixed grid the
                    // other algorithms take exactly one point regardless of
                    // how many families the axis lists.
                    if (matrix != sparse::SparseKind::kStencil5 &&
                        algorithm != perfsim::Algorithm::kCg) {
                      continue;
                    }
                    for (const solvers::CgPrecond precond : preconds) {
                      // Same rule for the precond axis: preconditioned
                      // points exist for cg only.
                      if (precond != solvers::CgPrecond::kNone &&
                          algorithm != perfsim::Algorithm::kCg) {
                        continue;
                      }
                      JobSpec spec;
                      spec.tier = tier;
                      spec.machine = machine;
                      spec.algorithm = algorithm;
                      spec.n = n;
                      spec.ranks = ranks;
                      spec.layout = layout;
                      spec.nb = nb;
                      spec.seed = seed;
                      spec.repetitions = repetitions;
                      spec.iterations = iterations;
                      spec.power_cap_w = cap_w;
                      spec.precision = precision;
                      spec.matrix = matrix;
                      spec.precond = precond;
                      specs.push_back(std::move(spec));
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

std::size_t CampaignManifest::job_count() const {
  // Mirrors the skips in expand(): non-fp64 points exist for scalapack
  // only, non-default matrices for cg only.
  std::size_t fp64_points = 0;
  for (const perfsim::Precision precision : precisions) {
    if (precision == perfsim::Precision::kFp64) ++fp64_points;
  }
  std::size_t default_matrix_points = 0;
  for (const sparse::SparseKind matrix : matrices) {
    if (matrix == sparse::SparseKind::kStencil5) ++default_matrix_points;
  }
  std::size_t default_precond_points = 0;
  for (const solvers::CgPrecond precond : preconds) {
    if (precond == solvers::CgPrecond::kNone) ++default_precond_points;
  }
  std::size_t algorithm_points = 0;
  for (const perfsim::Algorithm algorithm : algorithms) {
    const std::size_t precision_points =
        algorithm == perfsim::Algorithm::kScalapack ? precisions.size()
                                                    : fp64_points;
    const bool is_cg = algorithm == perfsim::Algorithm::kCg;
    const std::size_t matrix_points =
        is_cg ? matrices.size() : default_matrix_points;
    const std::size_t precond_points =
        is_cg ? preconds.size() : default_precond_points;
    algorithm_points += precision_points * matrix_points * precond_points;
  }
  return algorithm_points * sizes.size() * rank_counts.size() *
         layouts.size() * blocks.size() * seeds.size() * power_caps_w.size();
}

CampaignManifest parse_manifest(const std::string& text) {
  CampaignManifest manifest;
  for (const KvLine& line : parse_kv_text(text)) {
    if (line.key == "campaign") {
      manifest.name = single_value(line);
    } else if (line.key == "tier") {
      manifest.tier = parse_tier(single_value(line));
    } else if (line.key == "machine") {
      // Resolve eagerly so typos fail at parse time, not mid-campaign.
      (void)machine_from_name(single_value(line));
      manifest.machine = single_value(line);
    } else if (line.key == "reps") {
      const long v = parse_long(line, single_value(line));
      if (v <= 0) fail(line, "reps must be positive");
      manifest.repetitions = static_cast<int>(v);
    } else if (line.key == "workers") {
      const long v = parse_long(line, single_value(line));
      if (v <= 0) fail(line, "workers must be positive");
      manifest.workers = static_cast<int>(v);
    } else if (line.key == "retries") {
      const long v = parse_long(line, single_value(line));
      if (v < 0) fail(line, "retries must be >= 0");
      manifest.retries = static_cast<int>(v);
    } else if (line.key == "timeout_s") {
      const double v = parse_num(line, single_value(line));
      if (v < 0.0) fail(line, "timeout_s must be >= 0");
      manifest.timeout_s = v;
    } else if (line.key == "iterations") {
      const long v = parse_long(line, single_value(line));
      if (v <= 0) fail(line, "iterations must be positive");
      manifest.iterations = static_cast<int>(v);
    } else if (line.key == "grid") {
      parse_grid(manifest, line);
    } else {
      fail(line, "unknown key '" + line.key +
                     "' (campaign | tier | machine | reps | workers | "
                     "retries | timeout_s | iterations | grid)");
    }
  }

  if (manifest.tier == Tier::kReplay) {
    for (const double cap : manifest.power_caps_w) {
      if (cap > 0.0) {
        throw InvalidArgument(
            "manifest: power caps are numeric-tier only (perfsim does not "
            "model capped frequency scaling)");
      }
    }
  }
  PLIN_CHECK_MSG(manifest.job_count() > 0, "manifest: empty grid");
  PLIN_CHECK_MSG(manifest.job_count() <= 100000,
                 "manifest: grid expands to more than 100000 jobs");
  return manifest;
}

CampaignManifest load_manifest_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot read manifest file: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_manifest(buffer.str());
}

}  // namespace plin::batch
