#include "batch/queue.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"
#include "support/units.hpp"

namespace plin::batch {

QueueOutcome run_queue(std::span<const JobSpec> specs, ResultStore& store,
                       const QueueOptions& options) {
  PLIN_CHECK_MSG(options.workers >= 1, "queue: need >= 1 worker");

  QueueOutcome outcome;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> execution_tickets{0};
  std::mutex outcome_mutex;

  auto worker_main = [&] {
    while (true) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= specs.size()) return;
      const JobSpec& spec = specs[index];
      const std::string key = spec.key();

      if (store.probe(key).has_value()) {
        PLIN_LOG_INFO << "queue: skip (cached " << key << ") "
                      << spec.describe();
        std::lock_guard<std::mutex> lock(outcome_mutex);
        ++outcome.cached;
        continue;
      }

      // Execution budget (max_jobs): tickets are claimed only for jobs
      // that actually need to run, so resumes make progress even when the
      // budget is smaller than the cached prefix.
      if (execution_tickets.fetch_add(1) >= options.max_jobs) {
        std::lock_guard<std::mutex> lock(outcome_mutex);
        ++outcome.stopped;
        continue;
      }

      const int attempts_allowed = 1 + options.retries;
      std::string last_error;
      int attempt = 0;
      bool stored = false;
      for (attempt = 1; attempt <= attempts_allowed; ++attempt) {
        try {
          if (options.job_hook) options.job_hook(spec);
          Stopwatch wall;
          JobRecord record = execute_job(spec, options.trace_dir);
          const double elapsed = wall.elapsed_s();
          if (options.timeout_s > 0.0 && elapsed > options.timeout_s) {
            throw Error("job exceeded its time budget (" +
                        format_duration(elapsed) + " > " +
                        format_duration(options.timeout_s) + ")");
          }
          store.put(record);
          stored = true;
          PLIN_LOG_INFO << "queue: done (" << key << ", attempt " << attempt
                        << ") " << spec.describe();
          break;
        } catch (const std::exception& e) {
          last_error = e.what();
          PLIN_LOG_WARN << "queue: attempt " << attempt << "/"
                        << attempts_allowed << " failed for "
                        << spec.describe() << ": " << last_error;
        }
      }

      std::lock_guard<std::mutex> lock(outcome_mutex);
      if (stored) {
        ++outcome.executed;
      } else {
        outcome.failures.push_back(
            JobFailure{spec, last_error, attempts_allowed});
      }
    }
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(options.workers),
          specs.empty() ? 1 : specs.size()));
  if (workers <= 1) {
    worker_main();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker_main);
    for (std::thread& t : pool) t.join();
  }
  return outcome;
}

}  // namespace plin::batch
