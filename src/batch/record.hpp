// JobRecord — the unit the result store persists: one completed job, its
// spec, and every repetition's measurement. Serialization is exact: all
// doubles survive a JSON round trip bit-for-bit, so reports generated from
// freshly-computed records and from journal-replayed records are
// byte-identical (the store's resumability contract).
#pragma once

#include <string>
#include <vector>

#include "batch/spec.hpp"
#include "support/json.hpp"

namespace plin::batch {

/// One repetition of one job. Virtual-time quantities are deterministic
/// (identical across host schedules); host_s is wall-clock diagnostics and
/// is excluded from every report for exactly that reason.
struct RepetitionRecord {
  double duration_s = 0.0;
  double pkg_j[2] = {0.0, 0.0};
  double dram_j[2] = {0.0, 0.0};
  double residual = 0.0;
  double host_s = 0.0;
  int cg_iters = 0;          // cg jobs only (serialized conditionally)
  std::size_t nnz = 0;       // cg jobs only: global pattern nonzeros
  /// cg jobs only: aggregate per-iteration halo traffic (send-side counts;
  /// zero when the partition has an empty halo or on the replay tier).
  std::uint64_t halo_messages = 0;
  std::uint64_t halo_bytes = 0;

  double total_j() const {
    return pkg_j[0] + pkg_j[1] + dram_j[0] + dram_j[1];
  }
  double total_pkg_j() const { return pkg_j[0] + pkg_j[1]; }
  double total_dram_j() const { return dram_j[0] + dram_j[1]; }
};

struct JobRecord {
  JobSpec spec;
  std::vector<RepetitionRecord> repetitions;

  std::string key() const { return spec.key(); }
};

/// Record <-> JSON. to_json emits a stable field order; from_json accepts
/// any order and throws plin::Error on missing fields or kind mismatches.
json::Value to_json(const JobRecord& record);
JobRecord record_from_json(const json::Value& value);

}  // namespace plin::batch
