#include "batch/runner.hpp"

#include "monitor/campaign.hpp"
#include "perfsim/simulator.hpp"
#include "sparse/generate.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace plin::batch {
namespace {

JobRecord run_numeric(const JobSpec& spec, const hw::MachineSpec& machine,
                      const std::string& trace_dir) {
  PLIN_CHECK_MSG(spec.algorithm != perfsim::Algorithm::kJacobi,
                 "batch: the numeric tier runs ime | scalapack (jacobi is "
                 "replay-tier only)");
  monitor::JobSpec mspec;
  mspec.algorithm = spec.algorithm;
  mspec.n = spec.n;
  mspec.ranks = spec.ranks;
  mspec.layout = spec.layout;
  mspec.seed = spec.seed;
  mspec.nb = spec.nb;
  mspec.repetitions = spec.repetitions;
  mspec.power_cap_w = spec.power_cap_w;
  mspec.precision = spec.precision;
  mspec.matrix = spec.matrix;
  mspec.precond = spec.precond;

  monitor::MonitorOptions moptions;
  if (!trace_dir.empty()) {
    // One bundle per job, addressed by the same key the result store uses.
    moptions.trace_dir = trace_dir + "/" + spec.key();
  }
  const monitor::JobResult result = monitor::run_job(machine, mspec, moptions);

  JobRecord record;
  record.spec = spec;
  record.repetitions.reserve(result.repetitions.size());
  for (const monitor::RepetitionResult& rep : result.repetitions) {
    RepetitionRecord r;
    r.duration_s = rep.measurement.duration_s;
    r.pkg_j[0] = rep.measurement.pkg_j[0];
    r.pkg_j[1] = rep.measurement.pkg_j[1];
    r.dram_j[0] = rep.measurement.dram_j[0];
    r.dram_j[1] = rep.measurement.dram_j[1];
    r.residual = rep.residual;
    r.host_s = rep.host_seconds;
    r.cg_iters = rep.cg_iters;
    r.nnz = rep.nnz;
    r.halo_messages = rep.halo_messages;
    r.halo_bytes = rep.halo_bytes;
    record.repetitions.push_back(r);
  }
  return record;
}

JobRecord run_replay(const JobSpec& spec, const hw::MachineSpec& machine) {
  Stopwatch wall;
  const perfsim::Simulator simulator(machine);
  const hw::Placement placement =
      hw::make_placement(spec.ranks, spec.layout, machine);
  perfsim::Workload workload;
  workload.algorithm = spec.algorithm;
  workload.n = spec.n;
  workload.nb = spec.nb;
  workload.iterations = spec.iterations;
  workload.precision = spec.precision;
  workload.matrix = spec.matrix;
  workload.precond = spec.precond;
  const perfsim::Prediction p = simulator.predict(workload, placement);
  const double host_s = wall.elapsed_s();

  // The model is deterministic, so every repetition is the same point; the
  // record still carries `reps` rows so downstream aggregation is uniform
  // across tiers.
  RepetitionRecord r;
  r.duration_s = p.duration_s;
  r.pkg_j[0] = p.pkg_j[0];
  r.pkg_j[1] = p.pkg_j[1];
  r.dram_j[0] = p.dram_j[0];
  r.dram_j[1] = p.dram_j[1];
  r.residual = 0.0;
  r.host_s = host_s;
  if (spec.algorithm == perfsim::Algorithm::kCg) {
    r.cg_iters = perfsim::cg_model_iters(workload.matrix, workload.tolerance);
    r.nnz = sparse::pattern_nnz(workload.matrix, spec.n);
  }

  JobRecord record;
  record.spec = spec;
  record.repetitions.assign(static_cast<std::size_t>(spec.repetitions), r);
  return record;
}

}  // namespace

JobRecord execute_job(const JobSpec& spec, const std::string& trace_dir) {
  PLIN_CHECK_MSG(spec.n > 0, "batch: job needs a matrix size");
  PLIN_CHECK_MSG(spec.repetitions > 0, "batch: need >= 1 repetition");
  const hw::MachineSpec machine = machine_from_name(spec.machine);
  return spec.tier == Tier::kNumeric ? run_numeric(spec, machine, trace_dir)
                                     : run_replay(spec, machine);
}

}  // namespace plin::batch
