#include "batch/record.hpp"

#include "support/error.hpp"

namespace plin::batch {

json::Value to_json(const JobRecord& record) {
  json::Value spec = json::make_object();
  spec.set("tier", to_string(record.spec.tier));
  spec.set("machine", record.spec.machine);
  spec.set("algorithm", algorithm_token(record.spec.algorithm));
  spec.set("n", static_cast<double>(record.spec.n));
  spec.set("ranks", record.spec.ranks);
  spec.set("layout", layout_token(record.spec.layout));
  spec.set("nb", static_cast<double>(record.spec.nb));
  spec.set("seed", static_cast<double>(record.spec.seed));
  spec.set("reps", record.spec.repetitions);
  spec.set("iterations", record.spec.iterations);
  spec.set("power_cap_w", record.spec.power_cap_w);
  // Written only for the non-default so records from fp64-only stores stay
  // byte-stable across versions (mirrors JobSpec::canonical()).
  if (record.spec.precision != perfsim::Precision::kFp64) {
    spec.set("precision", precision_token(record.spec.precision));
  }
  // Same conditional rule for the sparse fields: only cg jobs carry them,
  // so dense-only stores stay byte-stable across versions.
  const bool is_cg = record.spec.algorithm == perfsim::Algorithm::kCg;
  if (is_cg) {
    spec.set("matrix", sparse::kind_token(record.spec.matrix));
    // The precond axis only for preconditioned cg jobs — plain-cg stores
    // stay byte-stable (mirrors JobSpec::canonical()).
    if (record.spec.precond != solvers::CgPrecond::kNone) {
      spec.set("precond", solvers::precond_token(record.spec.precond));
    }
  }

  json::Array reps;
  reps.reserve(record.repetitions.size());
  for (const RepetitionRecord& rep : record.repetitions) {
    json::Value r = json::make_object();
    r.set("duration_s", rep.duration_s);
    r.set("pkg0_j", rep.pkg_j[0]);
    r.set("pkg1_j", rep.pkg_j[1]);
    r.set("dram0_j", rep.dram_j[0]);
    r.set("dram1_j", rep.dram_j[1]);
    r.set("residual", rep.residual);
    r.set("host_s", rep.host_s);
    if (is_cg) {
      r.set("cg_iters", rep.cg_iters);
      r.set("nnz", static_cast<double>(rep.nnz));
      r.set("halo_msgs", static_cast<double>(rep.halo_messages));
      r.set("halo_bytes", static_cast<double>(rep.halo_bytes));
    }
    reps.push_back(std::move(r));
  }

  json::Value root = json::make_object();
  root.set("key", record.key());
  root.set("spec", std::move(spec));
  root.set("reps", json::Value(std::move(reps)));
  return root;
}

JobRecord record_from_json(const json::Value& value) {
  JobRecord record;
  const json::Value& spec = value.at("spec");
  record.spec.tier = parse_tier(spec.at("tier").as_string());
  record.spec.machine = spec.at("machine").as_string();
  record.spec.algorithm =
      parse_algorithm_token(spec.at("algorithm").as_string());
  record.spec.n = static_cast<std::size_t>(spec.at("n").as_number());
  record.spec.ranks = static_cast<int>(spec.at("ranks").as_number());
  record.spec.layout = parse_layout_token(spec.at("layout").as_string());
  record.spec.nb = static_cast<std::size_t>(spec.at("nb").as_number());
  record.spec.seed = static_cast<std::uint64_t>(spec.at("seed").as_number());
  record.spec.repetitions = static_cast<int>(spec.at("reps").as_number());
  record.spec.iterations =
      static_cast<int>(spec.at("iterations").as_number());
  record.spec.power_cap_w = spec.at("power_cap_w").as_number();
  if (const json::Value* precision = spec.find("precision")) {
    record.spec.precision = parse_precision_token(precision->as_string());
  }
  if (const json::Value* matrix = spec.find("matrix")) {
    record.spec.matrix = sparse::parse_kind_token(matrix->as_string());
  }
  if (const json::Value* precond = spec.find("precond")) {
    record.spec.precond = solvers::parse_precond_token(precond->as_string());
  }

  for (const json::Value& r : value.at("reps").as_array()) {
    RepetitionRecord rep;
    rep.duration_s = r.at("duration_s").as_number();
    rep.pkg_j[0] = r.at("pkg0_j").as_number();
    rep.pkg_j[1] = r.at("pkg1_j").as_number();
    rep.dram_j[0] = r.at("dram0_j").as_number();
    rep.dram_j[1] = r.at("dram1_j").as_number();
    rep.residual = r.at("residual").as_number();
    rep.host_s = r.at("host_s").as_number();
    if (const json::Value* iters = r.find("cg_iters")) {
      rep.cg_iters = static_cast<int>(iters->as_number());
    }
    if (const json::Value* nnz = r.find("nnz")) {
      rep.nnz = static_cast<std::size_t>(nnz->as_number());
    }
    if (const json::Value* msgs = r.find("halo_msgs")) {
      rep.halo_messages = static_cast<std::uint64_t>(msgs->as_number());
    }
    if (const json::Value* bytes = r.find("halo_bytes")) {
      rep.halo_bytes = static_cast<std::uint64_t>(bytes->as_number());
    }
    record.repetitions.push_back(rep);
  }

  // The stored key column is advisory; the spec is authoritative. A
  // mismatch means the record was written by an incompatible version.
  const std::string stored_key = value.at("key").as_string();
  PLIN_CHECK_MSG(stored_key == record.key(),
                 "store record key does not match its spec (stale format?)");
  return record;
}

}  // namespace plin::batch
