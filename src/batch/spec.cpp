#include "batch/spec.hpp"

#include <cstdio>

#include "support/error.hpp"
#include "support/json.hpp"

namespace plin::batch {

const char* to_string(Tier tier) {
  return tier == Tier::kNumeric ? "numeric" : "replay";
}

Tier parse_tier(const std::string& token) {
  if (token == "numeric") return Tier::kNumeric;
  if (token == "replay") return Tier::kReplay;
  throw InvalidArgument("unknown tier (use numeric | replay): " + token);
}

const char* layout_token(hw::LoadLayout layout) {
  switch (layout) {
    case hw::LoadLayout::kFullLoad: return "full";
    case hw::LoadLayout::kHalfLoadOneSocket: return "half1";
    case hw::LoadLayout::kHalfLoadTwoSockets: return "half2";
  }
  return "full";
}

hw::LoadLayout parse_layout_token(const std::string& token) {
  if (token == "full") return hw::LoadLayout::kFullLoad;
  if (token == "half1") return hw::LoadLayout::kHalfLoadOneSocket;
  if (token == "half2") return hw::LoadLayout::kHalfLoadTwoSockets;
  throw InvalidArgument("unknown layout (use full | half1 | half2): " +
                        token);
}

const char* algorithm_token(perfsim::Algorithm algorithm) {
  switch (algorithm) {
    case perfsim::Algorithm::kIme: return "ime";
    case perfsim::Algorithm::kScalapack: return "scalapack";
    case perfsim::Algorithm::kJacobi: return "jacobi";
    case perfsim::Algorithm::kCg: return "cg";
  }
  return "ime";
}

perfsim::Algorithm parse_algorithm_token(const std::string& token) {
  if (token == "ime") return perfsim::Algorithm::kIme;
  if (token == "scalapack") return perfsim::Algorithm::kScalapack;
  if (token == "jacobi") return perfsim::Algorithm::kJacobi;
  if (token == "cg") return perfsim::Algorithm::kCg;
  throw InvalidArgument(
      "unknown algorithm (use ime | scalapack | jacobi | cg): " + token);
}

const char* precision_token(perfsim::Precision precision) {
  return precision == perfsim::Precision::kMixed ? "mixed" : "fp64";
}

perfsim::Precision parse_precision_token(const std::string& token) {
  if (token == "fp64") return perfsim::Precision::kFp64;
  if (token == "mixed") return perfsim::Precision::kMixed;
  throw InvalidArgument("unknown precision (use fp64 | mixed): " + token);
}

std::string JobSpec::canonical() const {
  // Version tag first: bump it whenever the meaning of any field changes,
  // so stale store entries turn into cache misses instead of wrong reuse.
  std::string out = "plin-batch-v1";
  out += "|tier=";
  out += to_string(tier);
  out += "|machine=" + machine;
  out += "|algorithm=";
  out += algorithm_token(algorithm);
  out += "|n=" + std::to_string(n);
  out += "|ranks=" + std::to_string(ranks);
  out += "|layout=";
  out += layout_token(layout);
  out += "|nb=" + std::to_string(nb);
  out += "|seed=" + std::to_string(seed);
  out += "|reps=" + std::to_string(repetitions);
  out += "|iterations=" + std::to_string(iterations);
  out += "|cap_w=" + json::format_number(power_cap_w);
  // Appended only for the non-default so every pre-existing fp64 store key
  // (and its journaled results) stays valid.
  if (precision != perfsim::Precision::kFp64) {
    out += "|precision=";
    out += precision_token(precision);
  }
  // Same append-only rule: only cg jobs carry a matrix, so every
  // pre-existing dense key stays valid.
  if (algorithm == perfsim::Algorithm::kCg) {
    out += "|matrix=";
    out += sparse::kind_token(matrix);
    // And once more: the precond axis appears only for preconditioned cg
    // jobs, so every unpreconditioned key (dense or sparse) is untouched.
    if (precond != solvers::CgPrecond::kNone) {
      out += "|precond=";
      out += solvers::precond_token(precond);
    }
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string JobSpec::key() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical())));
  return buf;
}

std::string JobSpec::describe() const {
  std::string out = std::string(algorithm_token(algorithm)) + " n=" +
                    std::to_string(n) + " ranks=" + std::to_string(ranks) +
                    " " + layout_token(layout) + " [" + to_string(tier) +
                    ", " + machine + "]";
  if (power_cap_w > 0.0) {
    out += " cap=" + json::format_number(power_cap_w) + "W";
  }
  if (precision != perfsim::Precision::kFp64) {
    out += " ";
    out += precision_token(precision);
  }
  if (algorithm == perfsim::Algorithm::kCg) {
    out += " ";
    out += sparse::kind_token(matrix);
    if (precond != solvers::CgPrecond::kNone) {
      out += " ";
      out += solvers::precond_token(precond);
    }
  }
  return out;
}

hw::MachineSpec machine_from_name(const std::string& name) {
  if (name == "marconi") return hw::marconi_a3();
  if (name == "epyc") return hw::epyc_cluster();
  if (name.rfind("mini:", 0) == 0) {
    const std::string body = name.substr(5);
    const std::size_t x = body.find('x');
    if (x != std::string::npos) {
      int nodes = 0;
      int cores = 0;
      try {
        nodes = std::stoi(body.substr(0, x));
        cores = std::stoi(body.substr(x + 1));
      } catch (const std::exception&) {
        nodes = 0;
      }
      if (nodes > 0 && cores > 0) return hw::mini_cluster(nodes, cores);
    }
  }
  throw InvalidArgument(
      "unknown machine (use marconi | epyc | mini:<nodes>x<cores>): " + name);
}

}  // namespace plin::batch
