// JobQueue — expands a campaign's job list across a bounded pool of host
// worker threads (the PR-2 worker-pool pattern one level up: there fibers
// over workers inside one world, here whole worlds over workers).
//
// Each worker claims jobs in index order from a shared cursor. Per job:
//   * store hit  -> skipped (logged), counted as cached;
//   * store miss -> executed with up to 1 + retries attempts; failures are
//     captured per job (spec, error, attempts) and never abort the
//     campaign; successes are journaled into the store immediately, so an
//     interrupt after any job loses nothing.
//
// The per-job timeout is cooperative: simulated jobs always terminate (the
// xmpi scheduler aborts deadlocked worlds), so the budget is checked when
// the job returns — an over-budget job is recorded as a failure and its
// result is discarded, keeping pathological grid points out of the store.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "batch/runner.hpp"
#include "batch/store.hpp"

namespace plin::batch {

struct QueueOptions {
  int workers = 1;
  int retries = 0;          // extra attempts after the first failure
  double timeout_s = 0.0;   // per-job host-seconds budget; 0 = unlimited
  /// Stop claiming new work after this many jobs have been *executed*
  /// (cache hits don't count). The deterministic interrupt used by tests
  /// and the CI kill-and-resume job.
  std::size_t max_jobs = static_cast<std::size_t>(-1);
  /// Test hook invoked before each execution attempt; a throw from here is
  /// indistinguishable from a job failure (fault injection).
  std::function<void(const JobSpec&)> job_hook;
  /// Forwarded to execute_job: numeric-tier jobs archive their span-trace
  /// bundle under <trace_dir>/<spec.key()>/ when non-empty.
  std::string trace_dir;
};

struct JobFailure {
  JobSpec spec;
  std::string error;   // message of the final attempt
  int attempts = 0;
};

struct QueueOutcome {
  std::size_t executed = 0;  // jobs run (and stored) this invocation
  std::size_t cached = 0;    // jobs skipped via store hits
  std::size_t stopped = 0;   // jobs left unprocessed by the max_jobs cutoff
  std::vector<JobFailure> failures;

  bool complete() const { return stopped == 0 && failures.empty(); }
};

/// Runs every spec not already in the store. Returns once all claimed jobs
/// finished; safe to call again (resume) with the same store.
QueueOutcome run_queue(std::span<const JobSpec> specs, ResultStore& store,
                       const QueueOptions& options);

}  // namespace plin::batch
