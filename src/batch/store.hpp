// ResultStore — persistent, resumable, content-addressed storage for
// campaign results.
//
// Layout under the store directory:
//   journal.jsonl    append-only journal, one JobRecord JSON per line; the
//                    single source of truth on open()
//   records/<key>.json   per-job mirror of the same JSON (for humans and
//                    external tooling; never read back)
//
// Crash safety: put() appends "record\n" and flushes before returning, so
// a killed campaign loses at most the line being written. open() replays
// the journal; a torn final line (no newline, or truncated JSON) is
// detected and dropped, anything torn *before* the final line is corruption
// and throws. Records whose stored key no longer matches their spec (a
// format-version bump) are skipped — they simply become cache misses.
//
// Thread safety: put() and lookups are mutex-guarded; the queue's workers
// write concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "batch/record.hpp"

namespace plin::batch {

/// Cache-effectiveness counters. The store *is* a cache (identical specs
/// dedupe against it); these counters are what makes that effectiveness
/// observable — the campaign summary, `powerlin_report --store` and the
/// serve daemon's /stats endpoint all render this struct.
///
/// hits/misses count probe() calls only (the cache-decision points: the
/// queue and the serve scheduler). contains()/lookup() stay count-free so
/// report generation does not pollute the counters.
struct StoreStats {
  std::uint64_t hits = 0;      // probe() found a completed record
  std::uint64_t misses = 0;    // probe() found nothing
  std::uint64_t inserts = 0;   // put() journaled a record this process
  std::uint64_t replayed = 0;  // records recovered from the journal on open
  /// Journal lines whose key overwrote an earlier line on replay. Always 0
  /// under the dedupe contract (a completed job is journaled exactly once);
  /// the serve kill-and-restart CI proof asserts exactly that.
  std::uint64_t duplicate_keys = 0;
  std::uint64_t skipped_stale = 0;
  bool torn_tail = false;

  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `dir` and replays the journal.
  explicit ResultStore(std::string dir);

  const std::string& dir() const { return dir_; }

  bool contains(const std::string& key) const;

  /// Copy of the record under `key`; throws if absent (check contains()).
  JobRecord lookup(const std::string& key) const;

  /// Cache-decision lookup: like contains()+lookup() in one call, but
  /// counted into stats().hits / stats().misses. The queue and the serve
  /// scheduler probe; the report layer uses the count-free accessors.
  std::optional<JobRecord> probe(const std::string& key);

  /// Journals and indexes one completed job. Re-putting a key overwrites
  /// (last write wins on replay, matching the in-memory index).
  void put(const JobRecord& record);

  std::size_t size() const;

  /// True when open() dropped a torn trailing journal line (i.e. this
  /// store survived a mid-write crash).
  bool recovered_torn_tail() const { return torn_tail_; }

  /// Number of records open() skipped because their key no longer matches
  /// their spec (stale format version).
  std::size_t skipped_stale() const { return skipped_stale_; }

  /// Snapshot of the cache counters (thread-safe).
  StoreStats stats() const;

  /// Copies of every record, key-ordered (the std::map iteration order) —
  /// the record inventory `powerlin_report --store` renders.
  std::vector<JobRecord> all_records() const;

 private:
  void replay_journal();

  std::string dir_;
  std::ofstream journal_;
  std::map<std::string, JobRecord> records_;
  bool torn_tail_ = false;
  std::size_t skipped_stale_ = 0;
  std::size_t replayed_ = 0;
  std::size_t duplicate_keys_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t inserts_ = 0;
  mutable std::mutex mutex_;
};

}  // namespace plin::batch
