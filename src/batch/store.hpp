// ResultStore — persistent, resumable, content-addressed storage for
// campaign results.
//
// Layout under the store directory:
//   journal.jsonl    append-only journal, one JobRecord JSON per line; the
//                    single source of truth on open()
//   records/<key>.json   per-job mirror of the same JSON (for humans and
//                    external tooling; never read back)
//
// Crash safety: put() appends "record\n" and flushes before returning, so
// a killed campaign loses at most the line being written. open() replays
// the journal; a torn final line (no newline, or truncated JSON) is
// detected and dropped, anything torn *before* the final line is corruption
// and throws. Records whose stored key no longer matches their spec (a
// format-version bump) are skipped — they simply become cache misses.
//
// Thread safety: put() and lookups are mutex-guarded; the queue's workers
// write concurrently.
#pragma once

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "batch/record.hpp"

namespace plin::batch {

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `dir` and replays the journal.
  explicit ResultStore(std::string dir);

  const std::string& dir() const { return dir_; }

  bool contains(const std::string& key) const;

  /// Copy of the record under `key`; throws if absent (check contains()).
  JobRecord lookup(const std::string& key) const;

  /// Journals and indexes one completed job. Re-putting a key overwrites
  /// (last write wins on replay, matching the in-memory index).
  void put(const JobRecord& record);

  std::size_t size() const;

  /// True when open() dropped a torn trailing journal line (i.e. this
  /// store survived a mid-write crash).
  bool recovered_torn_tail() const { return torn_tail_; }

  /// Number of records open() skipped because their key no longer matches
  /// their spec (stale format version).
  std::size_t skipped_stale() const { return skipped_stale_; }

 private:
  void replay_journal();

  std::string dir_;
  std::ofstream journal_;
  std::map<std::string, JobRecord> records_;
  bool torn_tail_ = false;
  std::size_t skipped_stale_ = 0;
  mutable std::mutex mutex_;
};

}  // namespace plin::batch
