// MsrDevice — the simulated /dev/cpu/*/msr endpoint for one RAPL package.
//
// Reading MSR_PKG_ENERGY_STATUS returns the package energy accumulated by
// the node's EnergyLedger up to the *reader's* current virtual time,
// quantized to the RAPL update period and truncated to a wrapping 32-bit
// counter in hardware units. Writes are accepted only for the power-limit
// registers.
#pragma once

#include <cstdint>

#include "msr/rapl_msr.hpp"
#include "trace/hardware_context.hpp"

namespace plin::msr {

class MsrDevice {
 public:
  /// `context` supplies the ledger and clock; `package` selects the RAPL
  /// domain pair (PKG / DRAM) this device fronts.
  MsrDevice(const trace::HardwareContext* context, int package);

  /// Reads a supported MSR; throws InvalidArgument for unknown registers.
  std::uint64_t read(std::uint32_t msr) const;

  /// Writes a power-limit MSR; throws InvalidArgument otherwise.
  void write(std::uint32_t msr, std::uint64_t value);

  int package() const { return package_; }
  const RaplUnits& units() const { return units_; }

 private:
  std::uint64_t energy_counter(bool dram) const;

  const trace::HardwareContext* context_;
  int package_;
  RaplUnits units_;
  std::uint64_t dram_limit_raw_ = 0;
};

/// Wrap-correcting accumulator over an energy-status counter, mirroring how
/// real RAPL tools (and PAPI) turn the 32-bit register into a monotonic
/// energy value.
class RaplEnergyReader {
 public:
  enum class Domain { kPackage, kDram };

  RaplEnergyReader(const MsrDevice* device, Domain domain);

  /// Monotonic accumulated energy in microjoules since construction.
  double energy_uj();

  Domain domain() const { return domain_; }

 private:
  double unit_j() const;
  std::uint32_t raw_counter() const;

  const MsrDevice* device_;
  Domain domain_;
  std::uint32_t last_raw_ = 0;
  double accumulated_j_ = 0.0;
};

}  // namespace plin::msr
