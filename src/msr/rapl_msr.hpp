// RAPL MSR layout constants and bitfield codecs, following the Intel SDM
// (vol. 4) definitions the paper describes in §2.3: the RAPL interface is a
// set of non-architectural MSRs; energy-status counters are 32-bit registers
// in hardware energy units, updated roughly once a millisecond; readers must
// first decode MSR_RAPL_POWER_UNIT.
#pragma once

#include <cstdint>

namespace plin::msr {

// Register addresses (real Intel values).
inline constexpr std::uint32_t kMsrRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kMsrPkgPowerLimit = 0x610;
inline constexpr std::uint32_t kMsrPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kMsrDramPowerLimit = 0x618;
inline constexpr std::uint32_t kMsrDramEnergyStatus = 0x619;

// MSR_RAPL_POWER_UNIT fields.
struct RaplUnits {
  int power_unit_bits = 3;    // power unit = 1 / 2^3 W
  int energy_unit_bits = 14;  // energy unit = 1 / 2^14 J (Skylake-SP pkg)
  int time_unit_bits = 10;    // time unit  = 1 / 2^10 s

  std::uint64_t encode() const {
    return (static_cast<std::uint64_t>(time_unit_bits) << 16) |
           (static_cast<std::uint64_t>(energy_unit_bits) << 8) |
           static_cast<std::uint64_t>(power_unit_bits);
  }
  static RaplUnits decode(std::uint64_t raw) {
    RaplUnits u;
    u.power_unit_bits = static_cast<int>(raw & 0xF);
    u.energy_unit_bits = static_cast<int>((raw >> 8) & 0x1F);
    u.time_unit_bits = static_cast<int>((raw >> 16) & 0xF);
    return u;
  }

  double power_unit_w() const { return 1.0 / (1u << power_unit_bits); }
  double energy_unit_j() const { return 1.0 / (1u << energy_unit_bits); }
};

/// Skylake-SP quirk: DRAM energy status uses a fixed 1/2^16 J (15.3 uJ)
/// unit regardless of MSR_RAPL_POWER_UNIT. Tools that ignore this read DRAM
/// energy 4x too high on this CPU; we reproduce the quirk faithfully.
inline constexpr int kSkylakeDramEnergyUnitBits = 16;

/// Counter update period ("approximately once a millisecond").
inline constexpr double kCounterUpdatePeriodS = 1e-3;

// MSR_PKG_POWER_LIMIT fields (we model limit #1 only).
struct PkgPowerLimit {
  double limit_w = 0.0;
  bool enabled = false;

  std::uint64_t encode(const RaplUnits& units) const {
    const auto raw_limit = static_cast<std::uint64_t>(
        limit_w / units.power_unit_w());
    return (raw_limit & 0x7FFF) |
           (enabled ? (std::uint64_t{1} << 15) : 0);
  }
  static PkgPowerLimit decode(std::uint64_t raw, const RaplUnits& units) {
    PkgPowerLimit limit;
    limit.limit_w = static_cast<double>(raw & 0x7FFF) * units.power_unit_w();
    limit.enabled = (raw >> 15) & 1;
    return limit;
  }
};

/// CPUID-style model identification; RAPL readers must detect the CPU model
/// before choosing unit interpretations (§2.3).
struct CpuModel {
  int family = 6;
  int model = 0x55;  // Skylake-SP (Xeon 8160)
  const char* name = "Intel Xeon Platinum 8160 (Skylake-SP)";

  bool is_skylake_sp() const { return family == 6 && model == 0x55; }
};

/// The simulated machine always reports Skylake-SP, matching Marconi A3.
CpuModel detect_cpu_model();

}  // namespace plin::msr
