#include "msr/device.hpp"

#include <cmath>

#include "support/error.hpp"

namespace plin::msr {

CpuModel detect_cpu_model() { return CpuModel{}; }

MsrDevice::MsrDevice(const trace::HardwareContext* context, int package)
    : context_(context), package_(package) {
  PLIN_CHECK_MSG(context != nullptr, "MSR device needs a hardware context");
  PLIN_CHECK_MSG(context->ledger != nullptr && context->clock != nullptr,
                 "hardware context is not fully bound");
  PLIN_CHECK_MSG(package >= 0 && package < context->ledger->packages(),
                 "package out of range for this node");
}

std::uint64_t MsrDevice::energy_counter(bool dram) const {
  // Counter updates "approximately once a millisecond": sample the ledger at
  // the last update boundary before the reader's current virtual time.
  const double now = context_->clock->now();
  const double sample_t =
      std::floor(now / kCounterUpdatePeriodS) * kCounterUpdatePeriodS;
  const double joules =
      dram ? context_->ledger->dram_energy_j(package_, sample_t)
           : context_->ledger->package_energy_j(package_, sample_t);
  const double unit =
      dram ? 1.0 / (1u << kSkylakeDramEnergyUnitBits) : units_.energy_unit_j();
  const auto units_count = static_cast<std::uint64_t>(joules / unit);
  return units_count & 0xFFFFFFFFu;  // 32-bit wrapping counter
}

std::uint64_t MsrDevice::read(std::uint32_t msr) const {
  switch (msr) {
    case kMsrRaplPowerUnit:
      return units_.encode();
    case kMsrPkgEnergyStatus:
      return energy_counter(/*dram=*/false);
    case kMsrDramEnergyStatus:
      return energy_counter(/*dram=*/true);
    case kMsrPkgPowerLimit: {
      // The active limit lives in the shared ledger, so every device (and
      // therefore every PAPI event set) observes the same cap.
      const double cap = context_->ledger->package_cap(package_);
      PkgPowerLimit limit;
      limit.limit_w = cap;
      limit.enabled = cap > 0.0;
      return limit.encode(units_);
    }
    case kMsrDramPowerLimit:
      return dram_limit_raw_;
    default:
      throw InvalidArgument("unsupported MSR read: " + std::to_string(msr));
  }
}

void MsrDevice::write(std::uint32_t msr, std::uint64_t value) {
  switch (msr) {
    case kMsrPkgPowerLimit: {
      const PkgPowerLimit limit = PkgPowerLimit::decode(value, units_);
      context_->ledger->set_package_cap(package_,
                                        limit.enabled ? limit.limit_w : 0.0);
      return;
    }
    case kMsrDramPowerLimit:
      dram_limit_raw_ = value;  // accepted, not modeled
      return;
    default:
      throw InvalidArgument("unsupported MSR write: " + std::to_string(msr));
  }
}

RaplEnergyReader::RaplEnergyReader(const MsrDevice* device, Domain domain)
    : device_(device), domain_(domain) {
  PLIN_CHECK(device != nullptr);
  last_raw_ = raw_counter();
}

double RaplEnergyReader::unit_j() const {
  if (domain_ == Domain::kDram) {
    return 1.0 / (1u << kSkylakeDramEnergyUnitBits);
  }
  return device_->units().energy_unit_j();
}

std::uint32_t RaplEnergyReader::raw_counter() const {
  const std::uint32_t reg = domain_ == Domain::kDram ? kMsrDramEnergyStatus
                                                     : kMsrPkgEnergyStatus;
  return static_cast<std::uint32_t>(device_->read(reg));
}

double RaplEnergyReader::energy_uj() {
  const std::uint32_t raw = raw_counter();
  // Unsigned subtraction handles the 32-bit wrap as long as fewer than
  // 2^32 energy units elapse between reads.
  const std::uint32_t delta = raw - last_raw_;
  last_raw_ = raw;
  accumulated_j_ += static_cast<double>(delta) * unit_j();
  return accumulated_j_ * 1e6;
}

}  // namespace plin::msr
