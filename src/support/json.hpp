// Minimal JSON value model for the batch result store. Supports the full
// JSON grammar; objects preserve insertion order so that
// serialize(parse(serialize(v))) is byte-identical — the property the
// store's resume path relies on for deterministic reports. Numbers are
// emitted with 17 significant digits, so doubles round-trip exactly.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plin::json {

class Value;

using Array = std::vector<Value>;
/// Ordered key/value list (no hashing: order is part of the byte format).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(runtime/explicit) - mirrors JSON null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), number_(d) {}
  Value(int i) : kind_(Kind::kNumber), number_(i) {}
  Value(long l) : kind_(Kind::kNumber), number_(static_cast<double>(l)) {}
  Value(unsigned long u)
      : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw plin::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; throws if not an object or the key is missing.
  const Value& at(std::string_view key) const;
  /// Object member lookup; returns nullptr when absent.
  const Value* find(std::string_view key) const;

  /// Sets a member on an object value (must be an object); replaces the
  /// existing member in place when the key is already present.
  void set(std::string key, Value value);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Makes an empty object (clearer than Value(Object{}) at call sites).
Value make_object();

/// Parses one JSON document; throws plin::Error with position context on
/// malformed input. Trailing whitespace is allowed, trailing garbage is not.
Value parse(std::string_view text);

/// Compact serialization (no whitespace). Integral doubles in the exactly-
/// representable range print without a decimal point; everything else uses
/// %.17g, which strtod round-trips exactly.
std::string serialize(const Value& value);

/// Formats one double the way serialize() does (for tests and key strings).
std::string format_number(double value);

}  // namespace plin::json
