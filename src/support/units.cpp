#include "support/units.hpp"

#include <array>
#include <cstdio>

namespace plin {
namespace {

std::string format_scaled(double value, double scale, const char* prefix,
                          const char* unit) {
  char buf[64];
  const double scaled = value / scale;
  const char* fmt = std::fabs(scaled) >= 100 ? "%.0f %s%s"
                    : std::fabs(scaled) >= 10 ? "%.1f %s%s"
                                              : "%.2f %s%s";
  std::snprintf(buf, sizeof(buf), fmt, scaled, prefix, unit);
  return buf;
}

}  // namespace

std::string format_si(double value, const char* unit) {
  const double mag = std::fabs(value);
  if (mag >= kTera) return format_scaled(value, kTera, "T", unit);
  if (mag >= kGiga) return format_scaled(value, kGiga, "G", unit);
  if (mag >= kMega) return format_scaled(value, kMega, "M", unit);
  if (mag >= kKilo) return format_scaled(value, kKilo, "k", unit);
  if (mag >= 1.0 || mag == 0.0) return format_scaled(value, 1.0, "", unit);
  if (mag >= 1e-3) return format_scaled(value, 1e-3, "m", unit);
  if (mag >= 1e-6) return format_scaled(value, 1e-6, "u", unit);
  return format_scaled(value, 1e-9, "n", unit);
}

std::string format_energy(double joules) { return format_si(joules, "J"); }
std::string format_power(double watts) { return format_si(watts, "W"); }

std::string format_duration(double seconds) {
  if (seconds >= 120.0) {
    const int minutes = static_cast<int>(seconds / 60.0);
    const double rest = seconds - 60.0 * minutes;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%dm %04.1fs", minutes, rest);
    return buf;
  }
  return format_si(seconds, "s");
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> kPrefix = {"", "Ki", "Mi", "Gi",
                                                         "Ti"};
  double v = bytes;
  std::size_t i = 0;
  while (std::fabs(v) >= 1024.0 && i + 1 < kPrefix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), i == 0 ? "%.0f %sB" : "%.2f %sB", v,
                kPrefix[i]);
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace plin
