// CSV emission for campaign results. The paper's framework "automatically
// collects and stores results in a human-readable format"; we emit both a
// TextTable (human) and CSV (machine) view of every result set.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace plin {

/// Streams rows as RFC-4180-ish CSV (quotes cells containing , " or \n).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: joins mixed string/double content prepared by the caller.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace plin
