// Minimal leveled logger. Thread-safe, writes to stderr; benches and the
// campaign harness use it for progress lines that must not interleave with
// result tables on stdout.
#pragma once

#include <sstream>
#include <string>

namespace plin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line ("[level] message\n") under a global mutex.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace plin

#define PLIN_LOG(level) ::plin::detail::LogMessage(level)
#define PLIN_LOG_DEBUG PLIN_LOG(::plin::LogLevel::kDebug)
#define PLIN_LOG_INFO PLIN_LOG(::plin::LogLevel::kInfo)
#define PLIN_LOG_WARN PLIN_LOG(::plin::LogLevel::kWarn)
#define PLIN_LOG_ERROR PLIN_LOG(::plin::LogLevel::kError)
