#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace plin {

SampleStats compute_stats(std::span<const double> samples) {
  SampleStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;

  double sum = 0.0;
  stats.min = samples[0];
  stats.max = samples[0];
  for (const double x : samples) {
    sum += x;
    stats.min = std::min(stats.min, x);
    stats.max = std::max(stats.max, x);
  }
  stats.mean = sum / static_cast<double>(samples.size());

  if (samples.size() >= 2) {
    double sq = 0.0;
    for (const double x : samples) {
      const double d = x - stats.mean;
      sq += d * d;
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
    stats.ci95_half =
        1.96 * stats.stddev / std::sqrt(static_cast<double>(samples.size()));
  }
  return stats;
}

}  // namespace plin
