#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "support/error.hpp"

namespace plin {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  // Allow trailing unit suffixes ("1.2 kJ") to stay right-aligned too.
  return end != cell.c_str();
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PLIN_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  PLIN_CHECK_MSG(row.size() == header_.size(), "row width != header width");
  rows_.push_back(Row{std::move(row), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto print_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+" : "+") << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = width[c] - cell.size();
      os << "| ";
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << ' ';
    }
    os << "|\n";
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.rule_before) print_rule();
    print_cells(row.cells);
  }
  print_rule();
}

}  // namespace plin
