// Line-oriented key/value-list text format, the syntax layer under batch
// campaign manifests (docs/campaign.md):
//
//   # comment
//   key value
//   key value1 value2 value3
//
// Blank lines and everything after '#' are ignored; tokens are separated
// by spaces or tabs. Semantics (which keys exist, how values parse) stay
// with the caller; this parser only reports keys, tokens and line numbers
// so callers can produce errors that point at the offending line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace plin {

struct KvLine {
  int line_no = 0;         // 1-based line in the source text
  std::string key;         // first token
  std::vector<std::string> values;  // remaining tokens (may be empty)
};

/// Parses manifest-style text into lines. Never throws: any non-blank,
/// non-comment line has at least a key token by construction.
std::vector<KvLine> parse_kv_text(std::string_view text);

/// Reads and parses a file; throws plin::IoError if unreadable.
std::vector<KvLine> parse_kv_file(const std::string& path);

}  // namespace plin
