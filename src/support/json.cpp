#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace plin::json {
namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw Error("json: " + what + " at offset " + std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(elements));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail(pos_, "bad \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are not needed by
          // any writer in this repository, so a lone unit is emitted as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) fail(start, "bad number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "bad number");
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_value(std::string& out, const Value& value) {
  switch (value.kind()) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Kind::kNumber: out += format_number(value.as_number()); break;
    case Kind::kString: append_escaped(out, value.as_string()); break;
    case Kind::kArray: {
      out.push_back('[');
      const Array& a = value.as_array();
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_value(out, a[i]);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      const Object& o = value.as_object();
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_escaped(out, o[i].first);
        out.push_back(':');
        append_value(out, o[i].second);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

bool Value::as_bool() const {
  PLIN_CHECK_MSG(kind_ == Kind::kBool, "json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  PLIN_CHECK_MSG(kind_ == Kind::kNumber, "json: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  PLIN_CHECK_MSG(kind_ == Kind::kString, "json: value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  PLIN_CHECK_MSG(kind_ == Kind::kArray, "json: value is not an array");
  return array_;
}

const Object& Value::as_object() const {
  PLIN_CHECK_MSG(kind_ == Kind::kObject, "json: value is not an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* found = find(key);
  PLIN_CHECK_MSG(found != nullptr,
                 "json: missing object key: " + std::string(key));
  return *found;
}

void Value::set(std::string key, Value value) {
  PLIN_CHECK_MSG(kind_ == Kind::kObject, "json: set() on a non-object");
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

Value make_object() { return Value(Object{}); }

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string format_number(double value) {
  PLIN_CHECK_MSG(std::isfinite(value), "json: non-finite number");
  // 2^53: largest range where every integer is exactly representable.
  if (value == std::floor(value) && std::fabs(value) < 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string serialize(const Value& value) {
  std::string out;
  append_value(out, value);
  return out;
}

}  // namespace plin::json
