#include "support/kvfile.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace plin {

std::vector<KvLine> parse_kv_text(std::string_view text) {
  std::vector<KvLine> lines;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);

    KvLine parsed;
    parsed.line_no = line_no;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                 line[i] == '\r')) {
        ++i;
      }
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r') {
        ++i;
      }
      if (i > start) {
        std::string token(line.substr(start, i - start));
        if (parsed.key.empty()) {
          parsed.key = std::move(token);
        } else {
          parsed.values.push_back(std::move(token));
        }
      }
    }
    if (!parsed.key.empty()) lines.push_back(std::move(parsed));
  }
  return lines;
}

std::vector<KvLine> parse_kv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot read manifest file: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_kv_text(buffer.str());
}

}  // namespace plin
