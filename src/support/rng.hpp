// Deterministic, fast random number generation (xoshiro256**). Header-only
// so generators can be inlined into matrix-fill loops.
//
// Determinism matters here: the paper loads its input system from a file so
// that repeated measurements see identical data; we get the same effect by
// seeding every generator explicitly and never touching global entropy.
#pragma once

#include <array>
#include <cstdint>

namespace plin {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) without modulo bias for small bounds
  /// relative to 2^64 (bias is negligible for our uses; documents intent).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next_u64() % bound;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace plin
