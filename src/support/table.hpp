// ASCII table writer used by every bench binary to print paper-style rows.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace plin {

/// Collects rows of strings and prints them column-aligned. Right-aligns
/// cells that parse as numbers, left-aligns everything else.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with a header rule and optional group rules.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace plin
