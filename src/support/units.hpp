// Unit helpers. Durations, energies and data volumes flow through the whole
// stack; keeping them as plain doubles with explicit *_s / *_j / *_bytes
// naming (Core Guidelines I.23 spirit) plus formatting helpers for reports.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace plin {

/// Joules → pretty string ("1.23 kJ", "456 J", "7.8 MJ").
std::string format_energy(double joules);

/// Seconds → pretty string ("12.3 ms", "4.56 s", "2m 03s").
std::string format_duration(double seconds);

/// Watts → pretty string.
std::string format_power(double watts);

/// Bytes → pretty string with binary prefixes.
std::string format_bytes(double bytes);

/// Generic engineering-notation formatter with the given unit suffix.
std::string format_si(double value, const char* unit);

/// Round-trip-safe "fixed with n decimals" used by CSV writers.
std::string format_fixed(double value, int decimals);

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Relative difference |a-b| / max(|a|,|b|, tiny); symmetric, safe at 0.
inline double rel_diff(double a, double b) {
  const double denom = std::fmax(std::fmax(std::fabs(a), std::fabs(b)), 1e-300);
  return std::fabs(a - b) / denom;
}

}  // namespace plin
