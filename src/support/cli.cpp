#include "support/cli.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace plin {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  PLIN_CHECK_MSG(end != it->second.c_str(), "flag --" + name + " not an int");
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  PLIN_CHECK_MSG(end != it->second.c_str(),
                 "flag --" + name + " not a number");
  return value;
}

void CliArgs::require_known(
    std::initializer_list<std::string_view> known) const {
  std::string unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string_view candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (!unknown.empty()) {
    throw InvalidArgument("unknown flag(s): " + unknown + " (see --help)");
  }
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace plin
