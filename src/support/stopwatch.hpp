// Wall-clock stopwatch (host time, not simulated time). Used only by the
// overhead bench and the campaign harness to report real runtimes; all
// paper-facing durations come from the virtual clock in xmpi/perfsim.
#pragma once

#include <chrono>

namespace plin {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace plin
