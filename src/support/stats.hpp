// Repetition statistics shared by the campaign table and the batch report
// engine. The paper runs every job 10 times and reports aggregate numbers;
// this is the one place that aggregation math lives.
#pragma once

#include <cstddef>
#include <span>

namespace plin {

/// Summary statistics of one sample set (e.g. the repetitions of a job).
struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 for count < 2.
  double stddev = 0.0;
  /// Half-width of the 95% confidence interval of the mean, using the
  /// normal approximation (1.96 * stddev / sqrt(n)); 0 for count < 2.
  double ci95_half = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes SampleStats over `samples`. An empty span yields all zeros; a
/// single sample yields mean = min = max = value with zero spread. The
/// mean accumulates in index order, so callers that previously summed by
/// hand get bit-identical results.
SampleStats compute_stats(std::span<const double> samples);

}  // namespace plin
