// Single source of the release version string reported by the command-line
// tools (`powerlin_run --version`, `powerlin_report --version`).
#pragma once

namespace plin {

/// Bumped whenever a release changes tool behaviour or output formats.
inline constexpr const char* kVersion = "0.4.0";

}  // namespace plin
