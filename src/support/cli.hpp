// Tiny command-line flag parser for examples and bench binaries.
// Supports --name=value, --name value, and boolean --name forms.
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace plin {

class CliArgs {
 public:
  /// Parses argv. Unknown flags are kept (benches forward the rest to
  /// google-benchmark); positional arguments are collected in order.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Rejects flags outside `known` with an InvalidArgument that lists every
  /// offender and suggests --help. Tools call this so a mistyped flag fails
  /// loudly; benches skip it and keep forwarding unknown flags to
  /// google-benchmark.
  void require_known(std::initializer_list<std::string_view> known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace plin
