#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace plin::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::string what = "PLIN_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw Error(what);
}

void assert_failure(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "PLIN_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace plin::detail
