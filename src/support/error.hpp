// Error handling primitives shared by every powerlin module.
//
// powerlin uses exceptions for unrecoverable misuse (per the C++ Core
// Guidelines E.2): precondition violations throw plin::Error with enough
// context to locate the failing call site. Hot paths use PLIN_ASSERT, which
// compiles to nothing in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace plin {

/// Base exception for all powerlin errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(std::string what) : Error(std::move(what)) {}
};

/// Thrown on I/O failures (matrix files, report files, ...).
class IoError : public Error {
 public:
  explicit IoError(std::string what) : Error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
[[noreturn]] void assert_failure(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace plin

/// Always-on invariant check; throws plin::Error on failure.
#define PLIN_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::plin::detail::throw_check_failure(#expr, __FILE__, __LINE__, {});  \
    }                                                                      \
  } while (false)

/// Always-on invariant check with an extra message (anything streamable to
/// std::string via operator+ is not required: pass a std::string).
#define PLIN_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::plin::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)

/// Debug-only assertion for hot paths; aborts (never throws) so it can be
/// used inside noexcept code.
#ifdef NDEBUG
#define PLIN_ASSERT(expr) ((void)0)
#else
#define PLIN_ASSERT(expr)                                         \
  do {                                                            \
    if (!(expr)) {                                                \
      ::plin::detail::assert_failure(#expr, __FILE__, __LINE__);  \
    }                                                             \
  } while (false)
#endif
