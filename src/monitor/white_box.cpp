#include "monitor/white_box.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace plin::monitor {
namespace {

constexpr int kTagReport = 40;

/// Cumulative per-domain counter snapshot at a phase boundary.
struct Cut {
  double time = 0.0;
  double pkg_j[2] = {0.0, 0.0};
  double dram_j[2] = {0.0, 0.0};
};

Cut cut_from_session(const MonitoringSession& session, double time) {
  Cut cut;
  cut.time = time;
  for (int p = 0; p < session.packages() && p < 2; ++p) {
    cut.pkg_j[p] = session.package_j(p);
    cut.dram_j[p] = session.dram_j(p);
  }
  return cut;
}

NodeReport report_between(const Cut& from, const Cut& to, int node,
                          int world_rank) {
  NodeReport report;
  report.node = node;
  report.monitoring_world_rank = world_rank;
  report.start_s = from.time;
  report.stop_s = to.time;
  for (int p = 0; p < 2; ++p) {
    report.pkg_j[p] = to.pkg_j[p] - from.pkg_j[p];
    report.dram_j[p] = to.dram_j[p] - from.dram_j[p];
  }
  return report;
}

/// Aggregates a set of per-node reports into a run summary.
void aggregate(RunMeasurement& measurement) {
  measurement.duration_s = 0.0;
  for (int p = 0; p < 2; ++p) {
    measurement.pkg_j[p] = 0.0;
    measurement.dram_j[p] = 0.0;
  }
  for (const NodeReport& report : measurement.nodes) {
    measurement.duration_s =
        std::max(measurement.duration_s, report.duration_s());
    for (int p = 0; p < 2; ++p) {
      measurement.pkg_j[p] += report.pkg_j[p];
      measurement.dram_j[p] += report.dram_j[p];
    }
  }
}

PhasedMeasurement run_phases_protocol(xmpi::Comm& world,
                                      const MonitorOptions& options,
                                      std::vector<Phase>& phases,
                                      bool align_world) {
  PLIN_CHECK_MSG(!phases.empty(), "monitored run needs at least one phase");
  for (const Phase& phase : phases) {
    PLIN_CHECK_MSG(static_cast<bool>(phase.workload),
                   "phase workload must be callable");
  }
  const std::size_t nphases = phases.size();

  // Group ranks per node and elect the highest rank as monitoring rank.
  xmpi::Comm node_comm = world.split_shared_node();
  const bool monitoring = node_comm.rank() == node_comm.size() - 1;

  MonitoringSession session;
  std::vector<Cut> cuts;  // [0] = start, then one per phase boundary

  // Node synchronization, then the monitoring ranks start collecting.
  node_comm.barrier();
  if (monitoring) {
    session.start(world, options.component);
    world.prof_instant("papi:start");
    cuts.push_back(Cut{session.start_time_s(), {0.0, 0.0}, {0.0, 0.0}});
  }

  // General execution synchronization aligning all ranks for the solver
  // phase (white-box only; the black-box variant skips it).
  if (align_world) world.barrier();

  // Every rank brackets its measured region (and each phase) for the span
  // tracer, mirroring the monitoring ranks' counter windows.
  world.prof_phase_begin("monitor:measured");
  for (std::size_t p = 0; p < nphases; ++p) {
    world.prof_phase_begin(phases[p].name);
    phases[p].workload(world);
    world.prof_phase_end();
    // Phase boundaries are node-aligned so the mid-flight PAPI read covers
    // every rank's share of the phase; the final boundary is the ordinary
    // end-of-monitoring node barrier.
    if (p + 1 < nphases) {
      node_comm.barrier();
      if (monitoring) {
        const double t = session.sample(world);
        world.prof_instant("papi:sample");
        cuts.push_back(cut_from_session(session, t));
      }
    }
  }
  world.prof_phase_end();

  // Node synchronization so the monitoring rank stops only after every
  // rank of its node finished its part.
  node_comm.barrier();
  if (monitoring) {
    session.stop(world);
    world.prof_instant("papi:stop");
    cuts.push_back(cut_from_session(session, session.stop_time_s()));
    if (!options.output_dir.empty()) {
      write_processor_file(options.output_dir, world.my_node(), session);
    }
  }
  if (align_world) world.barrier();

  // ---- gather per-node reports on world rank 0 ----------------------------
  const int monitor_count =
      world.allreduce_value(monitoring ? 1 : 0, xmpi::ReduceOp::kSum);

  // Each monitoring rank ships 1 total report + one per phase.
  std::vector<NodeReport> mine(1 + nphases);
  if (monitoring) {
    mine[0] = report_between(cuts.front(), cuts.back(), world.my_node(),
                             world.rank());
    for (std::size_t p = 0; p < nphases; ++p) {
      mine[1 + p] = report_between(cuts[p], cuts[p + 1], world.my_node(),
                                   world.rank());
    }
    session.terminate();
  }

  PhasedMeasurement result;
  result.phases.reserve(nphases);
  for (std::size_t p = 0; p < nphases; ++p) {
    result.phases.emplace_back(phases[p].name, RunMeasurement{});
  }

  if (world.rank() == 0) {
    std::vector<std::vector<NodeReport>> all;
    all.reserve(static_cast<std::size_t>(monitor_count));
    if (monitoring) all.push_back(mine);
    const int remote = monitor_count - (monitoring ? 1 : 0);
    std::vector<NodeReport> incoming(1 + nphases);
    for (int i = 0; i < remote; ++i) {
      world.recv(std::span<NodeReport>(incoming), xmpi::kAnySource,
                 kTagReport);
      all.push_back(incoming);
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) {
                return a[0].node < b[0].node;
              });
    for (const auto& reports : all) {
      result.total.nodes.push_back(reports[0]);
      for (std::size_t p = 0; p < nphases; ++p) {
        result.phases[p].second.nodes.push_back(reports[1 + p]);
      }
    }
    aggregate(result.total);
    for (auto& [name, measurement] : result.phases) aggregate(measurement);
  } else if (monitoring) {
    world.send(std::span<const NodeReport>(mine), 0, kTagReport);
  }

  // Replicate the summaries on every rank.
  std::vector<Cut> summaries(1 + nphases);
  if (world.rank() == 0) {
    summaries[0] = Cut{result.total.duration_s,
                       {result.total.pkg_j[0], result.total.pkg_j[1]},
                       {result.total.dram_j[0], result.total.dram_j[1]}};
    for (std::size_t p = 0; p < nphases; ++p) {
      const RunMeasurement& m = result.phases[p].second;
      summaries[1 + p] =
          Cut{m.duration_s, {m.pkg_j[0], m.pkg_j[1]},
              {m.dram_j[0], m.dram_j[1]}};
    }
  }
  world.bcast(std::span<Cut>(summaries), 0);
  const auto apply = [](RunMeasurement& m, const Cut& cut) {
    m.duration_s = cut.time;
    for (int p = 0; p < 2; ++p) {
      m.pkg_j[p] = cut.pkg_j[p];
      m.dram_j[p] = cut.dram_j[p];
    }
  };
  apply(result.total, summaries[0]);
  for (std::size_t p = 0; p < nphases; ++p) {
    apply(result.phases[p].second, summaries[1 + p]);
  }
  return result;
}

}  // namespace

RunMeasurement monitored_run(
    xmpi::Comm& world, const MonitorOptions& options,
    const std::function<void(xmpi::Comm&)>& workload) {
  std::vector<Phase> phases;
  phases.push_back(Phase{"all", workload});
  return run_phases_protocol(world, options, phases, /*align_world=*/true)
      .total;
}

PhasedMeasurement monitored_run_phases(xmpi::Comm& world,
                                       const MonitorOptions& options,
                                       std::vector<Phase> phases) {
  return run_phases_protocol(world, options, phases, /*align_world=*/true);
}

RunMeasurement blackbox_run(
    xmpi::Comm& world, const MonitorOptions& options,
    const std::function<void(xmpi::Comm&)>& workload) {
  std::vector<Phase> phases;
  phases.push_back(Phase{"all", workload});
  return run_phases_protocol(world, options, phases, /*align_world=*/false)
      .total;
}

}  // namespace plin::monitor
