#include "monitor/monitoring.hpp"

#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "papisim/papi.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace plin::monitor {
namespace {

unsigned long thread_id() {
  return static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void check_papi(int status, const char* what) {
  if (status != papisim::PAPI_OK) {
    throw Error(std::string("PAPI failure in ") + what + ": " +
                papisim::strerror(status));
  }
}

/// Energy value (J) for the event matching prefix+index, or 0.
double energy_for(const std::vector<MonitoringSession::Sample>& samples,
                  const std::string& name) {
  for (const auto& sample : samples) {
    if (sample.event == name) {
      return static_cast<double>(sample.value) * 1e-6;  // uJ -> J
    }
  }
  return 0.0;
}

}  // namespace

MonitoringSession::~MonitoringSession() { terminate(); }

void MonitoringSession::start(xmpi::Comm& comm, const std::string& component) {
  PLIN_CHECK_MSG(!active_, "monitoring session already active");

  // PWCAP_plot_init(): library initialization, thread initialization,
  // event-set creation, and the addition of all the desired events.
  const int version = papisim::library_init(papisim::PAPI_VER_CURRENT);
  if (version != papisim::PAPI_VER_CURRENT) {
    throw Error("PAPI library_init version mismatch");
  }
  check_papi(papisim::thread_init(&thread_id), "thread_init");
  check_papi(papisim::create_eventset(&eventset_), "create_eventset");

  event_names_ = papisim::enum_component_events(component);
  PLIN_CHECK_MSG(!event_names_.empty(),
                 "component has no events: " + component);
  for (const std::string& name : event_names_) {
    // papi_event_name_to_code + add_event, as in the paper's description.
    int code = 0;
    check_papi(papisim::event_name_to_code(name, &code),
               "event_name_to_code");
    check_papi(papisim::add_event(eventset_, code), "add_event");
  }

  // PAPI_start_AND_time().
  check_papi(papisim::start(eventset_), "start");
  start_time_s_ = comm.now();
  active_ = true;
}

double MonitoringSession::sample(xmpi::Comm& comm) {
  PLIN_CHECK_MSG(active_, "monitoring session is not active");
  std::vector<long long> values(event_names_.size(), 0);
  check_papi(papisim::read(eventset_, values.data()), "read");
  samples_.clear();
  for (std::size_t i = 0; i < event_names_.size(); ++i) {
    samples_.push_back(Sample{event_names_[i], values[i]});
  }
  return comm.now();
}

void MonitoringSession::stop(xmpi::Comm& comm) {
  PLIN_CHECK_MSG(active_, "monitoring session is not active");
  std::vector<long long> values(event_names_.size(), 0);
  // PAPI_stop_AND_time().
  check_papi(papisim::stop(eventset_, values.data()), "stop");
  stop_time_s_ = comm.now();
  samples_.clear();
  for (std::size_t i = 0; i < event_names_.size(); ++i) {
    samples_.push_back(Sample{event_names_[i], values[i]});
  }
  active_ = false;
}

void MonitoringSession::terminate() {
  if (eventset_ != papisim::PAPI_NULL) {
    if (active_) {
      papisim::stop(eventset_, nullptr);
      active_ = false;
    }
    papisim::cleanup_eventset(eventset_);
    papisim::destroy_eventset(&eventset_);
  }
}

double MonitoringSession::package_j(int package) const {
  return energy_for(samples_, "powercap:::ENERGY_UJ:ZONE" +
                                  std::to_string(package));
}

double MonitoringSession::dram_j(int package) const {
  return energy_for(samples_, "powercap:::ENERGY_UJ:ZONE" +
                                  std::to_string(package) + "_SUBZONE0");
}

int MonitoringSession::packages() const {
  int count = 0;
  for (const auto& sample : samples_) {
    if (sample.event.rfind("powercap:::ENERGY_UJ:ZONE", 0) == 0 &&
        sample.event.find("_SUBZONE") == std::string::npos) {
      ++count;
    }
  }
  return count;
}

double MonitoringSession::total_pkg_j() const {
  double total = 0.0;
  for (int p = 0; p < packages(); ++p) total += package_j(p);
  return total;
}

double MonitoringSession::total_dram_j() const {
  double total = 0.0;
  for (int p = 0; p < packages(); ++p) total += dram_j(p);
  return total;
}

void write_processor_file(const std::string& dir, int node,
                          const MonitoringSession& session) {
  std::filesystem::create_directories(dir);
  const std::string path =
      dir + "/processor_" + std::to_string(node) + ".txt";
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw IoError("cannot open for writing: " + path);
  os << "# powerlin monitoring report, processor (node) " << node << "\n";
  os << "monitored_duration_s " << session.duration_s() << "\n";
  for (const auto& sample : session.samples()) {
    os << sample.event << " " << sample.value << "\n";
  }
  os << "# derived\n";
  for (int p = 0; p < session.packages(); ++p) {
    os << "package_" << p << "_J " << session.package_j(p) << "\n";
    os << "dram_" << p << "_J " << session.dram_j(p) << "\n";
  }
  if (!os) throw IoError("write failed: " + path);
}

}  // namespace plin::monitor
