#include "monitor/campaign.hpp"

#include <algorithm>

#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "papisim/papi.hpp"
#include "solvers/cg/cg.hpp"
#include "solvers/gepp/mixed.hpp"
#include "solvers/gepp/pdgesv.hpp"
#include "solvers/ime/imep.hpp"
#include "sparse/csr.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "xmpi/runtime.hpp"

namespace plin::monitor {
namespace {

/// Folds one per-repetition quantity through the shared statistics helper.
template <typename Get>
SampleStats repetition_stats(const std::vector<RepetitionResult>& reps,
                             Get&& get) {
  std::vector<double> samples;
  samples.reserve(reps.size());
  for (const RepetitionResult& rep : reps) samples.push_back(get(rep));
  return compute_stats(samples);
}

}  // namespace

std::string JobSpec::describe() const {
  std::string out = std::string(perfsim::to_string(algorithm)) + " n=" +
                    std::to_string(n) + " ranks=" + std::to_string(ranks) +
                    " " + hw::to_string(layout);
  if (precision == perfsim::Precision::kMixed) out += " mixed";
  if (algorithm == perfsim::Algorithm::kCg) {
    out += std::string(" ") + sparse::kind_token(matrix);
    if (precond != solvers::CgPrecond::kNone) {
      out += std::string(" ") + solvers::precond_token(precond);
    }
  }
  return out;
}

SampleStats JobResult::duration_stats() const {
  return repetition_stats(
      repetitions, [](const RepetitionResult& r) {
        return r.measurement.duration_s;
      });
}

SampleStats JobResult::total_j_stats() const {
  return repetition_stats(repetitions, [](const RepetitionResult& r) {
    return r.measurement.total_j();
  });
}

double JobResult::mean_duration_s() const { return duration_stats().mean; }

double JobResult::mean_total_j() const { return total_j_stats().mean; }

double JobResult::mean_pkg_j() const {
  return repetition_stats(repetitions, [](const RepetitionResult& r) {
           return r.measurement.total_pkg_j();
         })
      .mean;
}

double JobResult::mean_dram_j() const {
  return repetition_stats(repetitions, [](const RepetitionResult& r) {
           return r.measurement.total_dram_j();
         })
      .mean;
}

double JobResult::mean_power_w() const {
  const double t = mean_duration_s();
  return t > 0.0 ? mean_total_j() / t : 0.0;
}

double JobResult::worst_residual() const {
  double worst = 0.0;
  for (const auto& rep : repetitions) worst = std::max(worst, rep.residual);
  return worst;
}

JobResult run_job(const hw::MachineSpec& machine, const JobSpec& spec,
                  const MonitorOptions& options) {
  PLIN_CHECK_MSG(spec.n > 0, "campaign: job needs a matrix size");
  PLIN_CHECK_MSG(spec.repetitions > 0, "campaign: need >= 1 repetition");
  PLIN_CHECK_MSG(spec.precision == perfsim::Precision::kFp64 ||
                     spec.algorithm == perfsim::Algorithm::kScalapack,
                 "campaign: mixed precision is a GEPP (scalapack) variant");

  xmpi::RunConfig config;
  config.machine = machine;
  config.placement = hw::make_placement(spec.ranks, spec.layout, machine);

  // Reference data for the residual check (numeric-tier sizes only): the
  // dense generated system for the dense solvers, the sparse family for CG.
  const bool is_cg = spec.algorithm == perfsim::Algorithm::kCg;
  const linalg::Matrix a =
      is_cg ? linalg::Matrix(1, 1)
            : linalg::generate_system_matrix(spec.seed, spec.n);
  const sparse::CsrMatrix sa =
      is_cg ? sparse::generate_matrix(spec.matrix, spec.seed, spec.n)
            : sparse::CsrMatrix{};
  const std::vector<double> b = linalg::generate_rhs(spec.seed, spec.n);

  JobResult result;
  result.spec = spec;
  for (int rep = 0; rep < spec.repetitions; ++rep) {
    // The trace is canonical (independent of host scheduling), so archiving
    // the first repetition captures the job exactly once.
    config.trace_dir = rep == 0 ? options.trace_dir : std::string();
    Stopwatch wall;
    RepetitionResult rr;
    const xmpi::RunResult run = xmpi::Runtime::run(config, [&](xmpi::Comm& world) {
      std::vector<double> x;
      const RunMeasurement measurement = monitored_run(
          world, options, [&](xmpi::Comm& comm) {
            if (spec.power_cap_w > 0.0) {
              // One rank per node programs both package limits, then the
              // world synchronizes before the solve (the powercap_explorer
              // protocol, now reachable from batch manifests).
              if (comm.my_location().socket == 0 &&
                  comm.my_location().core == 0) {
                (void)papisim::set_powercap_limit(
                    "powercap:::POWER_LIMIT_A_UW:ZONE0",
                    static_cast<long long>(spec.power_cap_w * 1e6));
                (void)papisim::set_powercap_limit(
                    "powercap:::POWER_LIMIT_A_UW:ZONE1",
                    static_cast<long long>(spec.power_cap_w * 1e6));
              }
              comm.barrier();
            }
            if (spec.algorithm == perfsim::Algorithm::kCg) {
              solvers::CgOptions opt;
              opt.kind = spec.matrix;
              opt.n = spec.n;
              opt.seed = spec.seed;
              opt.tolerance = spec.tolerance;
              opt.precond = spec.precond;
              const solvers::CgResult r = solve_pcg(comm, opt);
              x = r.x;
              if (comm.rank() == 0) {
                PLIN_CHECK_MSG(r.converged, "campaign: cg did not converge");
                rr.cg_iters = r.iterations;
                rr.nnz = r.nnz;
              }
            } else if (spec.algorithm == perfsim::Algorithm::kIme) {
              solvers::ImepOptions opt;
              opt.n = spec.n;
              opt.seed = spec.seed;
              x = solve_imep(comm, opt).x;
            } else if (spec.precision == perfsim::Precision::kMixed) {
              solvers::GeppMixedOptions opt;
              opt.n = spec.n;
              opt.seed = spec.seed;
              opt.nb = spec.nb;
              const solvers::GeppMixedResult r = solve_gepp_mixed(comm, opt);
              x = r.x;
              if (comm.rank() == 0) {
                rr.refine_iters = r.iters;
                rr.fell_back = r.fell_back;
              }
            } else {
              solvers::PdgesvOptions opt;
              opt.n = spec.n;
              opt.seed = spec.seed;
              opt.nb = spec.nb;
              x = solve_pdgesv(comm, opt).x;
            }
          });
      if (world.rank() == 0) {
        rr.measurement = measurement;
        rr.residual = is_cg ? sparse::scaled_residual(sa, x, b)
                            : linalg::scaled_residual(a.view(), x, b);
      }
    });
    rr.halo_messages = run.traffic.halo_messages;
    rr.halo_bytes = run.traffic.halo_bytes;
    rr.host_seconds = wall.elapsed_s();
    // Refinement targets n*eps backward error — up to an order looser than
    // the fp64 direct solve's gate, still fp64-grade accuracy.
    PLIN_CHECK_MSG(rr.residual < (spec.precision == perfsim::Precision::kMixed
                                      ? 1e-9
                                      : 1e-10),
                   "campaign: solver produced a bad residual");
    result.repetitions.push_back(std::move(rr));
  }
  return result;
}

namespace {

/// Pure-fp64 campaigns print exactly the historical columns (the golden
/// outputs pin those bytes); the precision column appears only once a
/// mixed job is in the report.
bool any_mixed(std::span<const JobResult> jobs) {
  for (const JobResult& job : jobs) {
    if (job.spec.precision != perfsim::Precision::kFp64) return true;
  }
  return false;
}

/// Same byte-stability contract for the sparse columns: matrix / iters /
/// nnz appear only once a CG job is in the report.
bool any_cg(std::span<const JobResult> jobs) {
  for (const JobResult& job : jobs) {
    if (job.spec.algorithm == perfsim::Algorithm::kCg) return true;
  }
  return false;
}

/// The precond column appears only once a preconditioned job is present —
/// plain-CG campaigns keep printing their historical bytes.
bool any_precond(std::span<const JobResult> jobs) {
  for (const JobResult& job : jobs) {
    if (job.spec.precond != solvers::CgPrecond::kNone) return true;
  }
  return false;
}

}  // namespace

void print_campaign_table(std::ostream& os, std::span<const JobResult> jobs) {
  const bool mixed = any_mixed(jobs);
  const bool cg = any_cg(jobs);
  const bool precond = any_precond(jobs);
  std::vector<std::string> header = {"algorithm", "n", "ranks", "layout",
                                     "reps", "duration", "PKG energy",
                                     "DRAM energy", "total", "power",
                                     "residual"};
  if (cg) {
    header.insert(header.begin() + 1, "matrix");
    if (precond) header.insert(header.begin() + 2, "precond");
    header.push_back("iters");
    header.push_back("nnz");
    header.push_back("halo msgs");
    header.push_back("halo bytes");
  }
  if (mixed) header.insert(header.begin() + 1, "precision");
  TextTable table(header);
  for (const JobResult& job : jobs) {
    const bool job_cg = job.spec.algorithm == perfsim::Algorithm::kCg;
    std::vector<std::string> row = {
        std::string(perfsim::to_string(job.spec.algorithm)),
        std::to_string(job.spec.n),
        std::to_string(job.spec.ranks),
        hw::to_string(job.spec.layout),
        std::to_string(job.spec.repetitions),
        format_duration(job.mean_duration_s()),
        format_energy(job.mean_pkg_j()),
        format_energy(job.mean_dram_j()),
        format_energy(job.mean_total_j()),
        format_power(job.mean_power_w()),
        format_fixed(job.worst_residual() * 1e15, 2) + "e-15"};
    if (cg) {
      row.insert(row.begin() + 1,
                 job_cg ? sparse::kind_token(job.spec.matrix) : "-");
      if (precond) {
        row.insert(row.begin() + 2,
                   job_cg ? solvers::precond_token(job.spec.precond) : "-");
      }
      const RepetitionResult& first = job.repetitions.front();
      row.push_back(job_cg ? std::to_string(first.cg_iters) : "-");
      row.push_back(job_cg ? std::to_string(first.nnz) : "-");
      row.push_back(job_cg ? std::to_string(first.halo_messages) : "-");
      row.push_back(job_cg ? std::to_string(first.halo_bytes) : "-");
    }
    if (mixed) {
      row.insert(row.begin() + 1, perfsim::to_string(job.spec.precision));
    }
    table.add_row(row);
  }
  table.print(os);
}

void write_campaign_csv(std::ostream& os, std::span<const JobResult> jobs) {
  const bool mixed = any_mixed(jobs);
  const bool cg = any_cg(jobs);
  const bool precond = any_precond(jobs);
  CsvWriter csv(os);
  std::vector<std::string> header = {"algorithm", "n", "ranks", "layout",
                                     "repetition", "duration_s", "pkg0_j",
                                     "pkg1_j", "dram0_j", "dram1_j",
                                     "total_j", "power_w", "residual",
                                     "host_s"};
  if (cg) {
    header.insert(header.begin() + 1, "matrix");
    if (precond) header.insert(header.begin() + 2, "precond");
    header.push_back("cg_iters");
    header.push_back("nnz");
    header.push_back("halo_msgs");
    header.push_back("halo_bytes");
  }
  if (mixed) {
    header.insert(header.begin() + 1, "precision");
    header.push_back("refine_iters");
    header.push_back("fell_back");
  }
  csv.write_row(header);
  for (const JobResult& job : jobs) {
    const bool job_cg = job.spec.algorithm == perfsim::Algorithm::kCg;
    for (std::size_t i = 0; i < job.repetitions.size(); ++i) {
      const RepetitionResult& rep = job.repetitions[i];
      const RunMeasurement& m = rep.measurement;
      std::vector<std::string> row = {
          std::string(perfsim::to_string(job.spec.algorithm)),
          std::to_string(job.spec.n),
          std::to_string(job.spec.ranks),
          hw::to_string(job.spec.layout),
          std::to_string(i),
          format_fixed(m.duration_s, 9),
          format_fixed(m.pkg_j[0], 6),
          format_fixed(m.pkg_j[1], 6),
          format_fixed(m.dram_j[0], 6),
          format_fixed(m.dram_j[1], 6),
          format_fixed(m.total_j(), 6),
          format_fixed(m.avg_power_w(), 3),
          format_fixed(rep.residual, 18),
          format_fixed(rep.host_seconds, 4)};
      if (cg) {
        row.insert(row.begin() + 1,
                   job_cg ? sparse::kind_token(job.spec.matrix) : "-");
        if (precond) {
          row.insert(row.begin() + 2,
                     job_cg ? solvers::precond_token(job.spec.precond) : "-");
        }
        row.push_back(job_cg ? std::to_string(rep.cg_iters) : "0");
        row.push_back(job_cg ? std::to_string(rep.nnz) : "0");
        row.push_back(std::to_string(rep.halo_messages));
        row.push_back(std::to_string(rep.halo_bytes));
      }
      if (mixed) {
        row.insert(row.begin() + 1, perfsim::to_string(job.spec.precision));
        row.push_back(std::to_string(rep.refine_iters));
        row.push_back(rep.fell_back ? "1" : "0");
      }
      csv.write_row(row);
    }
  }
}

}  // namespace plin::monitor
