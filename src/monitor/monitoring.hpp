// papi_monitoring — a faithful port of the paper's papi_monitoring.h (§4)
// onto the papisim substrate.
//
// The paper's flow for a designated monitoring rank:
//   start_monitoring()  -> PWCAP_plot_init(): library init, thread init,
//                          event-set creation, add every powercap event;
//                          then PAPI_start_AND_time();
//   ... the node runs its share of the solver ...
//   end_monitoring()    -> PAPI_stop_AND_time(), file_management() writes
//                          one result file per processor, PAPI_term()
//                          cleans up and destroys the event set.
#pragma once

#include <string>
#include <vector>

#include "xmpi/comm.hpp"

namespace plin::monitor {

/// One node's measurement session, owned by that node's monitoring rank.
class MonitoringSession {
 public:
  struct Sample {
    std::string event;
    long long value = 0;  // microjoules for powercap energy events
  };

  MonitoringSession() = default;
  MonitoringSession(const MonitoringSession&) = delete;
  MonitoringSession& operator=(const MonitoringSession&) = delete;
  ~MonitoringSession();

  /// start_monitoring(): initializes PAPI on this thread, builds the event
  /// set from every event of `component` (default: the powercap set, as in
  /// the paper), starts the counters and records the virtual start time.
  /// Throws Error on any PAPI failure.
  void start(xmpi::Comm& comm, const std::string& component = "powercap");

  /// end_monitoring(): stops the counters, records the stop time and fills
  /// samples().
  void stop(xmpi::Comm& comm);

  /// Mid-flight PAPI read: fills samples() with the counters accumulated
  /// since start without stopping them (used for per-phase measurements).
  /// Returns the sample's virtual timestamp.
  double sample(xmpi::Comm& comm);

  /// PAPI_term(): cleans up and destroys the event set. Idempotent; also
  /// run by the destructor.
  void terminate();

  bool active() const { return active_; }
  double start_time_s() const { return start_time_s_; }
  double stop_time_s() const { return stop_time_s_; }
  double duration_s() const { return stop_time_s_ - start_time_s_; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Derived RAPL-domain energies in joules (powercap counts microjoules).
  double package_j(int package) const;
  double dram_j(int package) const;
  double total_pkg_j() const;
  double total_dram_j() const;
  int packages() const;

 private:
  int eventset_ = -1;  // papisim::PAPI_NULL
  bool active_ = false;
  double start_time_s_ = 0.0;
  double stop_time_s_ = 0.0;
  std::vector<std::string> event_names_;
  std::vector<Sample> samples_;
};

/// file_management(): writes the session's counters for `node` as a
/// human-readable per-processor file ("processor_<node>.txt") in `dir`.
/// Creates the directory if needed; throws IoError on failure.
void write_processor_file(const std::string& dir, int node,
                          const MonitoringSession& session);

}  // namespace plin::monitor
