// The white-box monitored run — the paper's Figure 2 protocol.
//
//   MPI_Init
//     -> MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one communicator per
//        node;
//     -> the highest rank of each node communicator becomes the monitoring
//        rank;
//     -> node barrier; monitoring ranks start collecting energy values;
//     -> world barrier; every rank runs its part of the linear system
//        solver;
//     -> node barrier; monitoring ranks stop collecting;
//     -> world barrier; MPI_Finalize.
//
// The deliberate compromise the paper discusses — synchronization overhead
// in exchange for measurement accuracy — is visible here as the extra
// barriers; bench_overhead quantifies it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "monitor/monitoring.hpp"
#include "xmpi/comm.hpp"

namespace plin::monitor {

struct MonitorOptions {
  /// PAPI component whose full event set is monitored.
  std::string component = "powercap";
  /// If non-empty, monitoring ranks write per-processor result files here.
  std::string output_dir;
  /// If non-empty, the first repetition of a campaign job archives its span
  /// trace bundle (docs/tracing.md) into this directory. Later repetitions
  /// run untraced — the trace is canonical, so one copy is enough.
  std::string trace_dir;
};

/// Per-node measurement, as gathered from that node's monitoring rank.
struct NodeReport {
  int node = 0;
  int monitoring_world_rank = 0;
  double start_s = 0.0;
  double stop_s = 0.0;
  double pkg_j[2] = {0.0, 0.0};
  double dram_j[2] = {0.0, 0.0};

  double duration_s() const { return stop_s - start_s; }
  double total_j() const {
    return pkg_j[0] + pkg_j[1] + dram_j[0] + dram_j[1];
  }
};

/// Aggregated measurement of one monitored run. The summary fields are
/// valid on every rank; the per-node reports are gathered on world rank 0.
struct RunMeasurement {
  double duration_s = 0.0;  // longest monitored window across nodes
  double pkg_j[2] = {0.0, 0.0};
  double dram_j[2] = {0.0, 0.0};
  std::vector<NodeReport> nodes;  // world rank 0 only

  double total_pkg_j() const { return pkg_j[0] + pkg_j[1]; }
  double total_dram_j() const { return dram_j[0] + dram_j[1]; }
  double total_j() const { return total_pkg_j() + total_dram_j(); }
  double avg_power_w() const {
    return duration_s > 0.0 ? total_j() / duration_s : 0.0;
  }
};

/// Runs `workload` on the world communicator under the white-box protocol
/// and returns the aggregated energy measurement. Call from every rank.
RunMeasurement monitored_run(
    xmpi::Comm& world, const MonitorOptions& options,
    const std::function<void(xmpi::Comm&)>& workload);

/// A named workload phase for monitored_run_phases.
struct Phase {
  std::string name;
  std::function<void(xmpi::Comm&)> workload;
};

struct PhasedMeasurement {
  RunMeasurement total;
  std::vector<std::pair<std::string, RunMeasurement>> phases;
};

/// Phase-separated monitored run (§5.1: the paper monitors the matrix
/// allocation and the execution phase separately). Phases execute in
/// order; the monitoring ranks take a mid-flight PAPI read at each
/// node-barrier-aligned phase boundary, so every phase gets its own
/// energy/duration window on top of the overall measurement. Summaries
/// are replicated on every rank; per-node detail is rank-0 only.
PhasedMeasurement monitored_run_phases(xmpi::Comm& world,
                                       const MonitorOptions& options,
                                       std::vector<Phase> phases);

/// Black-box variant (extension, DESIGN.md §6): identical measurement
/// machinery, but no cooperation from the workload is required and no
/// world-wide alignment barriers are inserted around it — the trade-off is
/// that per-node windows are not aligned, exactly the accuracy issue the
/// paper's white-box design removes.
RunMeasurement blackbox_run(
    xmpi::Comm& world, const MonitorOptions& options,
    const std::function<void(xmpi::Comm&)>& workload);

}  // namespace plin::monitor
