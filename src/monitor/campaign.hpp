// Campaign harness — the paper's testing framework (§4, §5.1): runs a
// configured job (algorithm, matrix size, ranks, layout) a number of times
// under the white-box monitor, collects per-repetition measurements and
// stores results both human-readable and as CSV.
//
// The input system is generated from a fixed seed — the equivalent of the
// paper loading the system from a file "to ensure consistent input data
// for repetitive measurements".
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "monitor/white_box.hpp"
#include "perfsim/prediction.hpp"
#include "solvers/cg/precond.hpp"
#include "solvers/efficiency.hpp"
#include "sparse/generate.hpp"
#include "support/stats.hpp"

namespace plin::monitor {

struct JobSpec {
  perfsim::Algorithm algorithm = perfsim::Algorithm::kScalapack;
  std::size_t n = 0;
  int ranks = 1;
  hw::LoadLayout layout = hw::LoadLayout::kFullLoad;
  std::uint64_t seed = 1;
  std::size_t nb = solvers::kDefaultBlock;  // ScaLAPACK block size
  int repetitions = 3;  // the paper uses 10 on the real machine
  /// Per-package RAPL power cap programmed before the solve (0 = uncapped)
  /// — the paper's §6 "application of power caps" extension, reachable
  /// from batch campaign manifests.
  double power_cap_w = 0.0;
  /// kMixed runs the fp32-factorize + fp64-refine GEPP variant instead of
  /// full fp64 (scalapack only; IMe and Jacobi have no mixed path).
  perfsim::Precision precision = perfsim::Precision::kFp64;
  /// CG only: the sparse family the job solves (ignored by the dense
  /// solvers) and the relative-residual convergence target.
  sparse::SparseKind matrix = sparse::SparseKind::kStencil5;
  double tolerance = 1e-11;
  /// CG only: the preconditioner axis (none | jacobi).
  solvers::CgPrecond precond = solvers::CgPrecond::kNone;

  std::string describe() const;
};

struct RepetitionResult {
  RunMeasurement measurement;
  double residual = 0.0;     // scaled residual of the computed solution
  double host_seconds = 0.0; // wall time of this repetition (diagnostics)
  int refine_iters = 0;      // mixed precision: fp64 refinement sweeps
  bool fell_back = false;    // mixed precision: fp32 abandoned for fp64
  int cg_iters = 0;          // CG: iterations to convergence
  std::size_t nnz = 0;       // CG: global pattern nonzeros streamed
  /// CG: aggregate per-iteration halo traffic of the run (send-side counts
  /// from TrafficCounters — zero for the dense solvers and for CG systems
  /// whose partition has an empty halo, e.g. block-diagonal families).
  std::uint64_t halo_messages = 0;
  std::uint64_t halo_bytes = 0;
};

struct JobResult {
  JobSpec spec;
  std::vector<RepetitionResult> repetitions;

  /// Full repetition statistics (support/stats.hpp) for the two headline
  /// quantities; mean_* below are the means of the same distributions.
  SampleStats duration_stats() const;
  SampleStats total_j_stats() const;

  double mean_duration_s() const;
  double mean_total_j() const;
  double mean_pkg_j() const;
  double mean_dram_j() const;
  double mean_power_w() const;
  double worst_residual() const;
};

/// Runs one job on the numeric tier (xmpi execution under the white-box
/// monitor). Throws on solver failure.
JobResult run_job(const hw::MachineSpec& machine, const JobSpec& spec,
                  const MonitorOptions& options = {});

/// Human-readable results table (the framework's "human-readable format").
void print_campaign_table(std::ostream& os, std::span<const JobResult> jobs);

/// Machine-readable CSV with one row per repetition.
void write_campaign_csv(std::ostream& os, std::span<const JobResult> jobs);

}  // namespace plin::monitor
