// StackPool — process-global slab allocator for fiber stacks.
//
// The fiber scheduler used to mmap one guard-paged mapping per rank, which
// has two walls at 100k ranks: every mapping plus its PROT_NONE guard is
// two kernel VMAs (vm.max_map_count defaults to 65530), and 100k mmap /
// munmap pairs dominate spawn time. The pool instead carves stacks out of
// slabs of kSlotsPerSlab stacks per mmap and recycles freed stacks through
// a free list, so a wave of short-lived ranks reuses a handful of stacks
// and spawn throughput is bounded by context setup, not the kernel.
//
// Two slab geometries (see Scheduler's PLIN_XMPI_STACK_GUARD knob):
//   - guarded: every stack gets its own PROT_NONE guard page below it
//     (overflow faults immediately). ~2 VMAs per *live* stack — the right
//     default up to a few thousand concurrent stacks.
//   - unguarded: one guard page below the whole slab; interior stacks are
//     contiguous, so an overflow from slot i scribbles into slot i-1
//     instead of faulting. ~1 VMA per 64 stacks — required above the
//     max_map_count wall, acceptable because ranks at that scale run
//     shallow harness workloads.
//
// Slabs are MAP_NORESERVE and released stacks are madvise(MADV_DONTNEED),
// so committed memory tracks the deepest concurrently-live stacks, not the
// total rank count. Slabs themselves are never unmapped: the pool is a
// process-wide cache shared by successive runs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace plin::xmpi {

class StackPool {
 public:
  /// One leased stack: `sp` is the lowest usable byte (ucontext ss_sp),
  /// `bytes` the usable size.
  struct Allocation {
    unsigned char* sp = nullptr;
    std::size_t bytes = 0;
    bool guarded = false;
    bool valid() const { return sp != nullptr; }
  };

  /// Cumulative counters since process start (host diagnostics only).
  struct Stats {
    std::uint64_t slabs = 0;         // slabs ever mapped
    std::uint64_t mapped_bytes = 0;  // virtual bytes under slabs
    std::uint64_t served = 0;        // acquire() calls
    std::uint64_t reuse_hits = 0;    // served from the free list
    std::uint64_t live = 0;          // currently leased
    std::uint64_t peak_live = 0;     // high-water mark of live
  };

  static StackPool& instance();

  /// Leases a stack of at least `stack_bytes` usable bytes (rounded up to
  /// the page size). Same-geometry (size, guardedness) frees are reused
  /// first; otherwise a slot is carved from the current slab, mapping a
  /// new slab when full.
  Allocation acquire(std::size_t stack_bytes, bool guarded);

  /// Returns a leased stack to the free list and drops its committed
  /// pages. `alloc` is reset to empty.
  void release(Allocation& alloc);

  Stats stats() const;

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

 private:
  StackPool();
  ~StackPool();

  struct Impl;
  Impl* impl_;
};

}  // namespace plin::xmpi
