#include "xmpi/comm.hpp"

#include <algorithm>

namespace plin::xmpi {

Comm::Comm(World* world, int world_rank)
    : world_(world), rank_(world_rank), context_(World::kWorldContext) {
  PLIN_CHECK(world != nullptr);
  PLIN_CHECK(world_rank >= 0 && world_rank < world->size());
  // group_ stays empty: the world communicator uses the implicit identity
  // mapping. An explicit table here would be 4·P bytes per rank — 40 GB of
  // pure rank metadata at the 100k-rank campaign point.
}

Comm::Comm(World* world, std::vector<int> group, int rank,
           std::uint64_t context)
    : world_(world), group_(std::move(group)), rank_(rank),
      context_(context) {}

int Comm::world_rank_of(int comm_rank) const {
  PLIN_CHECK_MSG(comm_rank >= 0 && comm_rank < size(),
                 "comm rank out of range");
  return group_.empty() ? comm_rank : group_[static_cast<std::size_t>(comm_rank)];
}

hw::RankLocation Comm::my_location() const {
  return world_->layout().location_of(world_rank());
}

RankState& Comm::me() const { return world_->rank_state(world_rank()); }

double Comm::now() const { return me().clock.now(); }

prof::SpanRecorder* Comm::recorder() const {
  if constexpr (prof::kCompiledIn) {
    return me().prof.get();
  } else {
    return nullptr;
  }
}

void Comm::prof_phase_begin(std::string_view name) {
  if (prof::SpanRecorder* rec = recorder()) rec->begin_phase(name, now());
}

void Comm::prof_phase_end() {
  if (prof::SpanRecorder* rec = recorder()) rec->end_phase(now());
}

void Comm::prof_instant(std::string_view name) {
  if (prof::SpanRecorder* rec = recorder()) rec->instant(name, now());
}

void Comm::prof_collective_begin(const char* name) {
  if (prof::SpanRecorder* rec = recorder()) rec->begin_collective(name, now());
}

void Comm::prof_collective_end() {
  if (prof::SpanRecorder* rec = recorder()) rec->end_collective(now());
}

void Comm::log_segment(hw::ActivityKind kind, double dt, double dram_bytes) {
  PLIN_ASSERT(dt >= 0.0);
  RankState& state = me();
  const double t0 = state.clock.now();
  state.clock.advance(dt);
  // Lane = core index: unique per rank within the package, so each lane is
  // appended in this rank's program order and ledger sums stay
  // bit-identical under any host scheduling (see EnergyLedger::record).
  world_->node_ledger(my_location().node)
      .record(my_location().socket,
              trace::ActivitySegment{t0, t0 + dt, kind, dram_bytes},
              my_location().core);
  // Span mirror of the ledger segment (same t0/t1/kind/bytes), so the
  // tracer can re-derive and attribute this segment's joules exactly.
  if (prof::SpanRecorder* rec = recorder()) {
    rec->activity(kind, t0, t0 + dt, dram_bytes);
  }
}

void Comm::compute(const ComputeCost& cost) {
  PLIN_CHECK_MSG(cost.flops >= 0.0 && cost.dram_bytes >= 0.0,
                 "compute cost must be non-negative");
  PLIN_CHECK_MSG(cost.efficiency > 0.0 && cost.efficiency <= 1.0,
                 "efficiency must be in (0, 1]");
  const hw::RankLocation& loc = my_location();
  const hw::MachineSpec& machine = world_->layout().machine();

  double speed = 1.0;
  trace::EnergyLedger& ledger = world_->node_ledger(loc.node);
  const double cap = ledger.package_cap(loc.socket);
  if (cap > 0.0) {
    const int active = world_->layout().ranks_on_socket(loc.node, loc.socket);
    speed = world_->power().cap_effect(cap, active).speed_factor;
  }

  // Precision picks the core peak the flops are rated against; the fp64
  // expression is untouched so every existing charge stays bit-identical.
  const double core_peak = cost.precision == Precision::kFp32
                               ? machine.node.socket.core.peak_fp32_flops()
                               : machine.node.socket.core.peak_flops();
  const double peak = core_peak * cost.efficiency * speed;
  const double t_flop = cost.flops > 0.0 ? cost.flops / peak : 0.0;

  const int sharers =
      std::max(1, world_->layout().ranks_on_socket(loc.node, loc.socket));
  const double bw_share = machine.node.socket.dram_bandwidth_bs / sharers;
  const double t_mem = cost.dram_bytes / bw_share;

  const double dt = std::max(t_flop, t_mem);
  if (dt <= 0.0) return;
  const hw::ActivityKind kind = t_flop >= t_mem ? hw::ActivityKind::kCompute
                                                : hw::ActivityKind::kMemBound;
  log_segment(kind, dt, cost.dram_bytes);
}

bool Request::test() {
  PLIN_CHECK_MSG(comm_ != nullptr, "test on an empty request");
  if (!pending_recv_) return true;
  if (!comm_->iprobe(peer_, tag_)) return false;
  comm_->recv_impl(buffer_, peer_, tag_);
  pending_recv_ = false;
  return true;
}

void Request::wait() {
  PLIN_CHECK_MSG(comm_ != nullptr, "wait on an empty request");
  if (!pending_recv_) return;
  comm_->recv_impl(buffer_, peer_, tag_);
  pending_recv_ = false;
}

void wait_all(std::span<Request> requests) {
  for (Request& request : requests) {
    if (request.valid()) request.wait();
  }
}

bool Comm::iprobe(int src, int tag) {
  PLIN_CHECK_MSG(src == kAnySource || (src >= 0 && src < size()),
                 "iprobe source out of range");
  if (world_->aborted()) throw Aborted();
  return me().mailbox.probe(src, tag, context_);
}

void Comm::idle_wait(double dt) {
  PLIN_CHECK_MSG(dt >= 0.0, "idle_wait duration must be non-negative");
  if (dt <= 0.0) return;
  log_segment(hw::ActivityKind::kCommWait, dt);
}

void Comm::memory_touch(double bytes) {
  PLIN_CHECK_MSG(bytes >= 0.0, "bytes must be non-negative");
  if (bytes <= 0.0) return;
  const hw::RankLocation& loc = my_location();
  const hw::MachineSpec& machine = world_->layout().machine();
  const int sharers =
      std::max(1, world_->layout().ranks_on_socket(loc.node, loc.socket));
  const double bw_share = machine.node.socket.dram_bandwidth_bs / sharers;
  log_segment(hw::ActivityKind::kMemBound, bytes / bw_share, bytes);
}

void Comm::send_impl(std::span<const std::byte> data, int dst, int tag,
                     bool control, bool halo) {
  PLIN_CHECK_MSG(dst >= 0 && dst < size(), "send destination out of range");
  PLIN_CHECK_MSG(dst != rank_, "send to self is not supported");
  if (world_->aborted()) throw Aborted();

  const double t_start = now();
  const double overhead = world_->network().per_message_overhead();
  log_segment(hw::ActivityKind::kCommActive, overhead,
              static_cast<double>(data.size()));

  const int dst_world = world_rank_of(dst);
  const hw::LinkClass link =
      world_->layout().link_between(world_rank(), dst_world);
  const double arrival =
      now() + world_->network().transfer_time(
                  link, static_cast<double>(data.size()));

  Envelope envelope;
  envelope.src = rank_;
  envelope.src_world = world_rank();
  envelope.tag = tag;
  envelope.context = context_;
  envelope.arrival_time = arrival;
  if (prof::SpanRecorder* rec = recorder()) {
    envelope.send_seq = rec->next_send_seq();
    rec->send(t_start, now(), dst_world,
              static_cast<std::int64_t>(data.size()), tag,
              envelope.send_seq);
  }
  // The transport attaches the payload: straight into the receiver's
  // registered buffer when the rendezvous conditions hold, else into a
  // pooled eager buffer (docs/xmpi.md).
  world_->deliver(dst_world, std::move(envelope), data);

  RankState& state = me();
  TrafficCounters& traffic = state.traffic;
  if (control) {
    traffic.control_messages += 1;
    traffic.control_bytes += data.size();
  } else {
    traffic.data_messages += 1;
    traffic.data_bytes += data.size();
    if (halo) {
      traffic.halo_messages += 1;
      traffic.halo_bytes += data.size();
    }
  }
  state.peers.record_send(dst_world, data.size());
}

RecvInfo Comm::recv_impl(std::span<std::byte> data, int src, int tag) {
  PLIN_CHECK_MSG(src == kAnySource || (src >= 0 && src < size()),
                 "recv source out of range");
  Envelope envelope =
      me().mailbox.match(src, tag, context_, data, world_->abort_flag());
  PLIN_CHECK_MSG(envelope.bytes == data.size(),
                 "recv buffer size does not match message size");

  const double overhead = world_->network().per_message_overhead();
  const double arrival = envelope.arrival_time;
  const double current = now();
  if (arrival > current) {
    log_segment(hw::ActivityKind::kCommWait, arrival - current);
  }
  log_segment(hw::ActivityKind::kCommActive, overhead,
              static_cast<double>(data.size()));
  if (prof::SpanRecorder* rec = recorder()) {
    rec->recv(current, now(), arrival, envelope.src_world,
              static_cast<std::int64_t>(data.size()), envelope.tag,
              envelope.send_seq);
  }

  // Rendezvous deliveries already sit in `data`; eager payloads are copied
  // out here and their buffer returns to the pool when `envelope` dies
  // (the original transport dropped it on the allocator instead).
  if (!envelope.inplace && !envelope.payload.empty()) {
    std::memcpy(data.data(), envelope.payload.data(), envelope.bytes);
  }
  RankState& state = me();
  state.traffic.recv_messages += 1;
  state.traffic.recv_bytes += envelope.bytes;
  state.peers.record_recv(envelope.src_world, envelope.bytes);
  return RecvInfo{envelope.src, envelope.tag, envelope.bytes};
}

void Comm::barrier() {
  // Dissemination barrier: after ceil(log2 P) rounds every rank has
  // (transitively) heard from every other, so each clock ends at or beyond
  // the latest entry time.
  prof_collective_begin("barrier");
  for (int mask = 1; mask < size(); mask <<= 1) {
    const int dst = (rank_ + mask) % size();
    const int src = (rank_ - mask + size()) % size();
    send_impl({}, dst, internal_tag::kBarrier, /*control=*/true);
    recv_impl({}, src, internal_tag::kBarrier);
  }
  prof_collective_end();
}

void Comm::bcast_impl(std::span<std::byte> data, int root, int stream) {
  PLIN_CHECK_MSG(root >= 0 && root < size(), "bcast root out of range");
  PLIN_CHECK_MSG(stream >= 0 && stream < 16, "bcast stream out of range");
  if (size() == 1) return;
  prof_collective_begin("bcast");
  const int tag =
      stream == 0 ? internal_tag::kBcast
                  : internal_tag::kBcastStreamBase - stream;
  const int vrank = (rank_ - root + size()) % size();

  int mask = 1;
  while (mask < size()) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % size();
      recv_impl(data, src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size()) {
      const int dst = ((vrank + mask) + root) % size();
      send_impl(data, dst, tag, /*control=*/false);
    }
    mask >>= 1;
  }
  prof_collective_end();
}

Comm::MaxLoc Comm::allreduce_maxloc(double value, long long index) {
  return maxloc_impl<double>(value, index);
}

Comm::MaxLocT<float> Comm::allreduce_maxloc(float value, long long index) {
  return maxloc_impl<float>(value, index);
}

Comm Comm::split(int color, int key) {
  struct Entry {
    int color;
    int key;
    int parent_rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  prof_collective_begin("split");

  // Allgather of (color, key): gather to rank 0, then broadcast. Counted as
  // control traffic — communicator management, not application data.
  if (rank_ != 0) {
    send_impl(std::as_bytes(std::span<const Entry>(&mine, 1)), 0,
              internal_tag::kSplit, /*control=*/true);
  } else {
    all[0] = mine;
    for (int src = 1; src < size(); ++src) {
      recv_impl(std::as_writable_bytes(std::span<Entry>(
                    &all[static_cast<std::size_t>(src)], 1)),
                src, internal_tag::kSplit);
    }
  }
  // Broadcast the table (binomial tree on control tag).
  {
    std::span<std::byte> bytes = std::as_writable_bytes(std::span<Entry>(all));
    if (size() > 1) {
      const int vrank = rank_;
      int mask = 1;
      while (mask < size()) {
        if (vrank & mask) {
          recv_impl(bytes, vrank - mask, internal_tag::kSplit);
          break;
        }
        mask <<= 1;
      }
      mask >>= 1;
      while (mask > 0) {
        if (vrank + mask < size()) {
          send_impl(bytes, vrank + mask, internal_tag::kSplit,
                    /*control=*/true);
        }
        mask >>= 1;
      }
    }
  }

  std::vector<Entry> members;
  for (const Entry& entry : all) {
    if (entry.color == color) members.push_back(entry);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.parent_rank < b.parent_rank;
  });

  std::vector<int> group;
  group.reserve(members.size());
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(world_rank_of(members[i].parent_rank));
    if (members[i].parent_rank == rank_) new_rank = static_cast<int>(i);
  }
  PLIN_CHECK(new_rank >= 0);
  prof_collective_end();

  const std::uint64_t context = world_->intern_context(context_, split_seq_++);
  return Comm(world_, std::move(group), new_rank, context);
}

}  // namespace plin::xmpi
