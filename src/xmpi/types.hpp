// Shared xmpi types: wildcard constants, reduce operations, compute cost
// descriptors and traffic counters.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace plin::xmpi {

/// MPI_ANY_SOURCE / MPI_ANY_TAG analogues. User tags must be >= 0; negative
/// tags are reserved for collective-internal traffic.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

namespace internal_tag {
inline constexpr int kBarrier = -2;
inline constexpr int kBcast = -3;
inline constexpr int kReduce = -4;
inline constexpr int kGather = -5;
inline constexpr int kSplit = -6;
inline constexpr int kAllgather = -7;
/// Pairwise-exchange traffic of the scalable allreduce schedules
/// (reduce-scatter/allgather halves and recursive doubling).
inline constexpr int kAllreduce = -8;
/// Pre/post-fold traffic that folds non-power-of-two rank counts onto the
/// power-of-two core of the scalable allreduce schedules.
inline constexpr int kFold = -9;
/// Base for user-selected broadcast streams (Comm::bcast stream parameter):
/// stream s uses tag kBcastStreamBase - s. Distinct streams have
/// independent FIFO channels, so two logically concurrent broadcast
/// sequences (e.g. IMeP's pivot-column and auxiliary-vector streams) may be
/// issued in different per-rank orders without cross-matching.
inline constexpr int kBcastStreamBase = -16;
}  // namespace internal_tag

enum class ReduceOp { kSum, kMax, kMin };

// -- transport / collective tuning knobs -------------------------------------
//
// Resolved by World::configure_transport: explicit kOn/kOff/kTree/kScalable
// win; kAuto falls back to the PLIN_XMPI_POOL / PLIN_XMPI_RENDEZVOUS /
// PLIN_XMPI_COLL environment variables, then to the defaults noted below.
// Pool and rendezvous are host-side only and never perturb simulated
// outputs; the collective mode changes the simulated schedule itself (see
// docs/xmpi.md for the determinism contract).

/// Payload buffer pool (default on).
enum class PoolMode { kAuto, kOn, kOff };

/// Zero-copy rendezvous delivery into an already-registered receive
/// (default on).
enum class RendezvousMode { kAuto, kOn, kOff };

/// Collective schedule family. kTree is the seed root/tree schedule set —
/// canonical outputs depend on its virtual timing, so it stays the
/// default. kScalable replaces the root-funneled allreduce/allgather/
/// maxloc with reduce-scatter+allgather / recursive-doubling / ring
/// schedules that move O(log P) or O(1) of the root-funnel volume through
/// any single rank.
enum class CollectiveMode { kAuto, kTree, kScalable };

struct TransportConfig {
  PoolMode pool = PoolMode::kAuto;
  RendezvousMode rendezvous = RendezvousMode::kAuto;
  CollectiveMode collectives = CollectiveMode::kAuto;
  /// Buffers cached per pool size class; 0 → PLIN_XMPI_POOL_CAP env, else
  /// PayloadPool::kDefaultMaxCachedPerClass.
  std::size_t pool_max_cached_per_class = 0;
};

/// Scalar width of the arithmetic behind a ComputeCost. fp32 runs against
/// the core's single-precision peak (twice the SIMD lanes through the same
/// FMA units — hw::CoreSpec::peak_fp32_flops); callers charging fp32 work
/// also halve their DRAM/link byte terms themselves (the payloads are
/// 4-byte floats). The default keeps every existing fp64 charge formula
/// bit-identical.
enum class Precision { kFp64, kFp32 };

/// Cost descriptor for Comm::compute. `efficiency` is the fraction of the
/// core's peak throughput at `precision` this kernel sustains; the rank's
/// virtual time advances by max(flop time, memory time) and `dram_bytes`
/// is charged to the socket's DRAM domain.
struct ComputeCost {
  double flops = 0.0;
  double dram_bytes = 0.0;
  double efficiency = 1.0;
  Precision precision = Precision::kFp64;
};

/// Global message/volume counters, split into the application data traffic
/// that the paper's M/V formulas count and control traffic (barriers,
/// communicator management).
struct TrafficCounters {
  std::uint64_t data_messages = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  /// Receive-side mirror (all classes combined). Per rank, send + recv
  /// counters together give the total volume that flows *through* the rank
  /// — the quantity the root-funnel collectives concentrate on rank 0 and
  /// the scalable schedules spread out (bench_collectives).
  std::uint64_t recv_messages = 0;
  std::uint64_t recv_bytes = 0;
  /// Halo-exchange payloads (Comm::send_halo / isend_halo) — a subset of
  /// the data_* counters above, tracked separately so campaign reports can
  /// surface the per-iteration ghost traffic a CG job actually shipped
  /// (docs/sparse.md).
  std::uint64_t halo_messages = 0;
  std::uint64_t halo_bytes = 0;

  /// The paper measures volume in "number of floating points".
  double data_floats() const { return static_cast<double>(data_bytes) / 8.0; }

  /// Send-side plus receive-side bytes of one rank (its root-funnel load).
  std::uint64_t through_bytes() const {
    return data_bytes + control_bytes + recv_bytes;
  }

  TrafficCounters operator-(const TrafficCounters& other) const {
    return TrafficCounters{data_messages - other.data_messages,
                           data_bytes - other.data_bytes,
                           control_messages - other.control_messages,
                           control_bytes - other.control_bytes,
                           recv_messages - other.recv_messages,
                           recv_bytes - other.recv_bytes,
                           halo_messages - other.halo_messages,
                           halo_bytes - other.halo_bytes};
  }
};

/// Per-peer message/volume totals of one rank (peer = world rank).
struct PeerTraffic {
  int peer = 0;
  std::uint64_t sent_messages = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_messages = 0;
  std::uint64_t recv_bytes = 0;
};

/// Sparse per-peer traffic map: a vector sorted by peer world rank, grown
/// only on first contact. Under the scalable collective schedules a rank
/// talks to O(log P) peers, so at 100k ranks this stays a handful of cache
/// lines where a dense P-wide row would be 3+ MB per rank. The entries sum
/// to the rank's TrafficCounters by construction (pinned by
/// xmpi_scale_test's dense-mirror check).
class PeerCounters {
 public:
  void record_send(int peer, std::uint64_t bytes) {
    PeerTraffic& entry = slot(peer);
    entry.sent_messages += 1;
    entry.sent_bytes += bytes;
  }

  void record_recv(int peer, std::uint64_t bytes) {
    PeerTraffic& entry = slot(peer);
    entry.recv_messages += 1;
    entry.recv_bytes += bytes;
  }

  /// Entries in increasing peer order.
  const std::vector<PeerTraffic>& entries() const { return entries_; }
  std::size_t peer_count() const { return entries_.size(); }

 private:
  PeerTraffic& slot(int peer) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), peer,
        [](const PeerTraffic& entry, int key) { return entry.peer < key; });
    if (it != entries_.end() && it->peer == peer) return *it;
    return *entries_.insert(it, PeerTraffic{peer, 0, 0, 0, 0});
  }

  std::vector<PeerTraffic> entries_;
};

}  // namespace plin::xmpi
