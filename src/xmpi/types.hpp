// Shared xmpi types: wildcard constants, reduce operations, compute cost
// descriptors and traffic counters.
#pragma once

#include <cstddef>
#include <cstdint>

namespace plin::xmpi {

/// MPI_ANY_SOURCE / MPI_ANY_TAG analogues. User tags must be >= 0; negative
/// tags are reserved for collective-internal traffic.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

namespace internal_tag {
inline constexpr int kBarrier = -2;
inline constexpr int kBcast = -3;
inline constexpr int kReduce = -4;
inline constexpr int kGather = -5;
inline constexpr int kSplit = -6;
inline constexpr int kAllgather = -7;
/// Base for user-selected broadcast streams (Comm::bcast stream parameter):
/// stream s uses tag kBcastStreamBase - s. Distinct streams have
/// independent FIFO channels, so two logically concurrent broadcast
/// sequences (e.g. IMeP's pivot-column and auxiliary-vector streams) may be
/// issued in different per-rank orders without cross-matching.
inline constexpr int kBcastStreamBase = -16;
}  // namespace internal_tag

enum class ReduceOp { kSum, kMax, kMin };

/// Cost descriptor for Comm::compute. `efficiency` is the fraction of the
/// core's peak double-precision throughput this kernel sustains; the rank's
/// virtual time advances by max(flop time, memory time) and `dram_bytes`
/// is charged to the socket's DRAM domain.
struct ComputeCost {
  double flops = 0.0;
  double dram_bytes = 0.0;
  double efficiency = 1.0;
};

/// Global message/volume counters, split into the application data traffic
/// that the paper's M/V formulas count and control traffic (barriers,
/// communicator management).
struct TrafficCounters {
  std::uint64_t data_messages = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;

  /// The paper measures volume in "number of floating points".
  double data_floats() const { return static_cast<double>(data_bytes) / 8.0; }

  TrafficCounters operator-(const TrafficCounters& other) const {
    return TrafficCounters{data_messages - other.data_messages,
                           data_bytes - other.data_bytes,
                           control_messages - other.control_messages,
                           control_bytes - other.control_bytes};
  }
};

}  // namespace plin::xmpi
