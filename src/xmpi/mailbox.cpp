#include "xmpi/mailbox.hpp"

#include <cstring>
#include <limits>
#include <utility>

namespace plin::xmpi {

Mailbox::ChannelKey Mailbox::channel_floor(std::uint64_t context) {
  return {context, std::numeric_limits<int>::min(),
          std::numeric_limits<int>::min()};
}

bool Mailbox::satisfies(const Envelope& envelope, const PendingRecv& pending) {
  if (envelope.context != pending.context) return false;
  if (pending.src != kAnySource && envelope.src != pending.src) return false;
  if (pending.tag != kAnyTag && envelope.tag != pending.tag) return false;
  return true;
}

void Mailbox::post(Envelope&& envelope) {
  Parker* to_wake = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const ChannelKey key{envelope.context, envelope.src, envelope.tag};
    const bool wake = pending_.active && satisfies(envelope, pending_);
    channels_[key].push_back(Item{std::move(envelope), next_seq_++});
    if (wake) {
      // Deactivate so later posts stop re-waking until the receiver
      // re-registers; the receiver re-arms on every retry.
      pending_.active = false;
      if (parker_ != nullptr) {
        to_wake = parker_;
      } else {
        cv_.notify_one();  // the owner is the only possible waiter
      }
    }
  }
  // Parker::wake outside the mailbox lock: it takes scheduler locks and
  // may be called from a rank that the woken rank immediately posts back
  // to.
  if (to_wake != nullptr) to_wake->wake();
}

bool Mailbox::deliver(Envelope&& envelope, std::span<const std::byte> data,
                      PayloadPool& pool, bool rendezvous) {
  envelope.bytes = data.size();
  if (!rendezvous) {
    // No in-place option: prepare the pooled payload outside the mailbox
    // lock so concurrent senders to the same receiver don't serialize on
    // the copy.
    if (!data.empty()) {
      envelope.payload = pool.acquire(data.size());
      std::memcpy(envelope.payload.data(), data.data(), data.size());
    }
    post(std::move(envelope));
    return false;
  }
  Parker* to_wake = nullptr;
  bool taken = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const ChannelKey key{envelope.context, envelope.src, envelope.tag};
    const bool wake = pending_.active && satisfies(envelope, pending_);
    // Rendezvous only when FIFO order proves the registered receive will
    // consume *this* message: the pending receive is exact (no wildcard
    // re-pick can intervene), sizes agree, and its channel has no earlier
    // message queued ahead of us.
    if (wake && pending_.has_dest &&
        pending_.src != kAnySource && pending_.tag != kAnyTag &&
        pending_.dest.size() == data.size() &&
        channels_.find(key) == channels_.end()) {
      if (!data.empty()) {
        std::memcpy(pending_.dest.data(), data.data(), data.size());
      }
      envelope.inplace = true;
      taken = true;
    } else if (!data.empty()) {
      envelope.payload = pool.acquire(data.size());
      std::memcpy(envelope.payload.data(), data.data(), data.size());
    }
    channels_[key].push_back(Item{std::move(envelope), next_seq_++});
    if (wake) {
      pending_.active = false;
      if (parker_ != nullptr) {
        to_wake = parker_;
      } else {
        cv_.notify_one();
      }
    }
  }
  if (to_wake != nullptr) to_wake->wake();
  return taken;
}

std::optional<Envelope> Mailbox::try_match_locked(int src, int tag,
                                                  std::uint64_t context) {
  if (src != kAnySource && tag != kAnyTag) {
    // Exact receive — the hot path for all solver traffic: one map lookup,
    // pop the channel FIFO front.
    const auto it = channels_.find(ChannelKey{context, src, tag});
    if (it == channels_.end()) return std::nullopt;
    Envelope envelope = std::move(it->second.front().envelope);
    it->second.pop_front();
    if (it->second.empty()) channels_.erase(it);
    return envelope;
  }

  // Wildcard receive: scan every queued message in the matching channels
  // and take the one with the earliest virtual arrival, ties broken by
  // lowest source then earliest post. Scanning whole channels (not just
  // fronts) keeps the pick exact even when a sender's later message
  // carries an equal arrival stamp.
  auto best_channel = channels_.end();
  std::size_t best_index = 0;
  const Item* best = nullptr;
  const auto begin = channels_.lower_bound(channel_floor(context));
  for (auto it = begin; it != channels_.end() && it->first.context == context;
       ++it) {
    if (src != kAnySource && it->first.src != src) continue;
    if (tag != kAnyTag && it->first.tag != tag) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const Item& item = it->second[i];
      const bool better =
          best == nullptr ||
          item.envelope.arrival_time < best->envelope.arrival_time ||
          (item.envelope.arrival_time == best->envelope.arrival_time &&
           (item.envelope.src < best->envelope.src ||
            (item.envelope.src == best->envelope.src &&
             item.seq < best->seq)));
      if (better) {
        best_channel = it;
        best_index = i;
        best = &item;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  Envelope envelope = std::move(best_channel->second[best_index].envelope);
  best_channel->second.erase_at(best_index);
  if (best_channel->second.empty()) channels_.erase(best_channel);
  return envelope;
}

Envelope Mailbox::match_impl(int src, int tag, std::uint64_t context,
                             bool has_dest, std::span<std::byte> dest,
                             const std::atomic<bool>& abort_flag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (abort_flag.load(std::memory_order_acquire)) throw Aborted();
    if (auto envelope = try_match_locked(src, tag, context)) {
      return std::move(*envelope);
    }
    // Register what we are waiting for so post() can do a targeted wakeup
    // (and deliver() an in-place write), then block. Registration happens
    // under the lock, before blocking, so a post that lands in between
    // still sees the pending receive.
    pending_ = PendingRecv{src, tag, context, true, has_dest, dest};
    if (parker_ != nullptr) {
      Parker* parker = parker_;
      lock.unlock();  // never hold a mutex across a fiber switch
      parker->park();
      lock.lock();
    } else {
      cv_.wait(lock);
    }
    pending_.active = false;
    pending_.has_dest = false;
  }
}

Envelope Mailbox::match(int src, int tag, std::uint64_t context,
                        std::span<std::byte> dest,
                        const std::atomic<bool>& abort_flag) {
  return match_impl(src, tag, context, /*has_dest=*/true, dest, abort_flag);
}

Envelope Mailbox::match(int src, int tag, std::uint64_t context,
                        const std::atomic<bool>& abort_flag) {
  return match_impl(src, tag, context, /*has_dest=*/false, {}, abort_flag);
}

bool Mailbox::probe(int src, int tag, std::uint64_t context) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (src != kAnySource && tag != kAnyTag) {
    return channels_.find(ChannelKey{context, src, tag}) != channels_.end();
  }
  const auto begin = channels_.lower_bound(channel_floor(context));
  for (auto it = begin; it != channels_.end() && it->first.context == context;
       ++it) {
    if (src != kAnySource && it->first.src != src) continue;
    if (tag != kAnyTag && it->first.tag != tag) continue;
    return true;  // channels are non-empty by invariant
  }
  return false;
}

void Mailbox::interrupt() {
  Parker* to_wake = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Wake regardless of pending state: the owner must observe the abort
    // flag even if it blocked without a registration we can match.
    pending_.active = false;
    to_wake = parker_;
    cv_.notify_all();
  }
  if (to_wake != nullptr) to_wake->wake();
}

}  // namespace plin::xmpi
