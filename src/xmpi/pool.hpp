// PayloadPool — size-classed recycling allocator for message payload
// buffers.
//
// Every eager message needs a host-side buffer that lives from the send
// until the matching receive consumes it. The original transport
// heap-allocated a fresh std::vector per message and dropped it on the
// allocator after the receive-side copy, so a 1296-rank campaign paid a
// malloc/free round trip (and the attendant allocator-lock traffic) for
// every one of its millions of messages. The pool recycles those buffers
// instead: freed payload storage parks on a per-size-class free list and
// the next send of a similar size reuses it.
//
// Size classes are powers of two from 64 B to 4 MiB; larger payloads fall
// back to plain heap allocation (counted as misses). Each class keeps at
// most `max_cached_per_class` buffers — beyond that, returned storage is
// freed, so a burst of huge broadcasts cannot pin memory forever.
//
// Buffers are handed out as RAII PayloadBuffer handles that return their
// storage on destruction, which is what makes the receive path leak-free
// by construction: consuming an envelope recycles its buffer.
//
// All host-side only: the pool never touches virtual clocks, the energy
// ledger or message ordering, so simulated outputs are bit-identical with
// the pool on or off (asserted by xmpi_collectives_test).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace plin::xmpi {

/// Snapshot of pool counters (all monotonic, relaxed atomics — exact once
/// the run has quiesced, e.g. when read from RunResult).
struct PoolStats {
  std::uint64_t hits = 0;    ///< acquisitions served from a free list
  std::uint64_t misses = 0;  ///< heap allocations (pool off, cold, oversize)
  std::uint64_t recycled_buffers = 0;  ///< returns parked for reuse
  std::uint64_t recycled_bytes = 0;    ///< capacity bytes of those returns
  /// High-water mark of simultaneously live payload bytes across the run
  /// (pooled and heap buffers alike) — the transport's memory footprint.
  std::uint64_t peak_payload_bytes = 0;

  std::uint64_t acquires() const { return hits + misses; }
};

class PayloadPool;

/// RAII handle to one message payload buffer. Move-only; empty (data() ==
/// nullptr) for zero-byte messages. Destruction returns the storage to the
/// owning pool's free list (or the heap when the buffer is oversize or the
/// pool is disabled).
class PayloadBuffer {
 public:
  PayloadBuffer() = default;
  PayloadBuffer(PayloadBuffer&& other) noexcept { steal(other); }
  PayloadBuffer& operator=(PayloadBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  PayloadBuffer(const PayloadBuffer&) = delete;
  PayloadBuffer& operator=(const PayloadBuffer&) = delete;
  ~PayloadBuffer() { reset(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }

  /// Releases the storage back to the pool (or heap) and empties the
  /// handle.
  void reset();

 private:
  friend class PayloadPool;

  void steal(PayloadBuffer& other) {
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    size_class_ = other.size_class_;
    pool_ = other.pool_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.size_class_ = -1;
    other.pool_ = nullptr;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  int size_class_ = -1;  // -1 → not poolable, free with delete[]
  PayloadPool* pool_ = nullptr;
};

class PayloadPool {
 public:
  struct Config {
    /// Disabled pools still hand out working buffers — every acquire is a
    /// heap allocation counted as a miss (the ablation baseline).
    bool enabled = true;
    /// Buffers parked per size class before returns fall through to free.
    std::size_t max_cached_per_class = kDefaultMaxCachedPerClass;
  };

  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr int kClassCount = 17;  // 64 B, 128 B, ..., 4 MiB
  static constexpr std::size_t kDefaultMaxCachedPerClass = 256;

  PayloadPool() = default;
  ~PayloadPool();
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Replaces the configuration and drops all cached buffers. Outstanding
  /// PayloadBuffers are unaffected (they still return here).
  void configure(const Config& config);
  const Config& config() const { return config_; }

  /// Returns a buffer of logical size `bytes` (capacity is the size
  /// class). Contents are uninitialized. Thread-safe.
  PayloadBuffer acquire(std::size_t bytes);

  PoolStats stats() const;

  /// Size class index for a payload, or -1 when it exceeds the largest
  /// class (exposed for tests).
  static int class_of(std::size_t bytes);
  static std::size_t class_capacity(int size_class);

 private:
  friend class PayloadBuffer;

  void recycle(std::byte* data, std::size_t capacity, int size_class);
  void note_release(std::size_t payload_bytes);
  void note_live(std::size_t payload_bytes);

  struct SizeClass {
    std::mutex mutex;
    std::vector<std::byte*> free_list;
  };

  Config config_;
  SizeClass classes_[kClassCount];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_buffers_{0};
  std::atomic<std::uint64_t> recycled_bytes_{0};
  std::atomic<std::uint64_t> live_payload_bytes_{0};
  std::atomic<std::uint64_t> peak_payload_bytes_{0};
};

}  // namespace plin::xmpi
