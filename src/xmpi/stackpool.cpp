#include "xmpi/stackpool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace plin::xmpi {

namespace {

std::size_t page_size() {
  const long page = ::sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<std::size_t>(page) : 4096;
}

/// Stacks carved per mmap. Large enough that slab count (and thus VMA
/// count in unguarded mode) stays trivial at 100k ranks, small enough
/// that the virtual reservation of a mostly-idle bucket stays modest.
constexpr std::size_t kSlotsPerSlab = 64;

}  // namespace

struct StackPool::Impl {
  /// Free-listed stacks of one (usable size, guardedness) geometry.
  struct Bucket {
    std::vector<unsigned char*> free;  // sp of released stacks
    /// Carving cursor into the newest slab: sp of the next fresh slot,
    /// and how many slots remain after it.
    unsigned char* next_sp = nullptr;
    std::size_t slots_left = 0;
  };

  mutable std::mutex mutex;
  std::map<std::pair<std::size_t, bool>, Bucket> buckets;
  Stats stats;
  std::size_t page = page_size();

  void map_slab(Bucket& bucket, std::size_t stack, bool guarded) {
    // Guarded slab: [guard | stack] per slot. Unguarded: one guard page
    // below the slab, then kSlotsPerSlab contiguous stacks.
    const std::size_t slot = guarded ? stack + page : stack;
    const std::size_t bytes = (guarded ? 0 : page) + kSlotsPerSlab * slot;
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    PLIN_CHECK_MSG(base != MAP_FAILED, "fiber stack slab mmap failed");
    unsigned char* slab = static_cast<unsigned char*>(base);
    if (guarded) {
      for (std::size_t i = 0; i < kSlotsPerSlab; ++i) {
        PLIN_CHECK_MSG(::mprotect(slab + i * slot, page, PROT_NONE) == 0,
                       "fiber guard page mprotect failed");
      }
      bucket.next_sp = slab + page;
    } else {
      PLIN_CHECK_MSG(::mprotect(slab, page, PROT_NONE) == 0,
                     "fiber slab guard page mprotect failed");
      bucket.next_sp = slab + page;
    }
    bucket.slots_left = kSlotsPerSlab;
    stats.slabs += 1;
    stats.mapped_bytes += bytes;
  }
};

StackPool::StackPool() : impl_(new Impl()) {}
StackPool::~StackPool() { delete impl_; }

StackPool& StackPool::instance() {
  // Leaked on purpose: worker threads of a scheduler destroyed during
  // process teardown must never race a dying pool.
  static StackPool* pool = new StackPool();
  return *pool;
}

StackPool::Allocation StackPool::acquire(std::size_t stack_bytes,
                                         bool guarded) {
  Impl& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.mutex);
  const std::size_t stack =
      (stack_bytes + impl.page - 1) / impl.page * impl.page;
  Impl::Bucket& bucket = impl.buckets[{stack, guarded}];

  Allocation alloc;
  alloc.bytes = stack;
  alloc.guarded = guarded;
  if (!bucket.free.empty()) {
    alloc.sp = bucket.free.back();
    bucket.free.pop_back();
    impl.stats.reuse_hits += 1;
  } else {
    if (bucket.slots_left == 0) impl.map_slab(bucket, stack, guarded);
    alloc.sp = bucket.next_sp;
    const std::size_t slot = guarded ? stack + impl.page : stack;
    bucket.next_sp += slot;
    bucket.slots_left -= 1;
  }
  impl.stats.served += 1;
  impl.stats.live += 1;
  if (impl.stats.live > impl.stats.peak_live) {
    impl.stats.peak_live = impl.stats.live;
  }
  return alloc;
}

void StackPool::release(Allocation& alloc) {
  if (!alloc.valid()) return;
  Impl& impl = *impl_;
  // Drop the committed pages before free-listing: a rank that recursed
  // deep must not pin its peak footprint for the lifetime of the pool.
  ::madvise(alloc.sp, alloc.bytes, MADV_DONTNEED);
  std::lock_guard<std::mutex> lock(impl.mutex);
  impl.buckets[{alloc.bytes, alloc.guarded}].free.push_back(alloc.sp);
  impl.stats.live -= 1;
  alloc = Allocation{};
}

StackPool::Stats StackPool::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace plin::xmpi
