// World — the shared state of one xmpi run: topology, cost models, per-rank
// clocks and mailboxes, per-node energy ledgers, communicator-context
// allocation and traffic counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "hwmodel/layout.hpp"
#include "hwmodel/network.hpp"
#include "hwmodel/power.hpp"
#include "prof/recorder.hpp"
#include "trace/clock.hpp"
#include "trace/hardware_context.hpp"
#include "trace/ledger.hpp"
#include "xmpi/mailbox.hpp"
#include "xmpi/pool.hpp"
#include "xmpi/types.hpp"

namespace plin::xmpi {

/// Resolved transport state plus its counters, surfaced through
/// RunResult::transport. Host-side diagnostics only — none of it feeds
/// back into virtual time or energy.
struct TransportStats {
  bool pool_enabled = false;
  bool rendezvous_enabled = false;
  PoolStats pool;
  std::uint64_t eager_messages = 0;
  std::uint64_t rendezvous_messages = 0;
  std::uint64_t rendezvous_bytes = 0;
};

/// Per-rank mutable state. Owned by World in one contiguous slab (see
/// World::ranks_), touched only by the rank's thread (mailbox is
/// internally synchronized for senders).
struct RankState {
  trace::VirtualClock clock;
  Mailbox mailbox;
  trace::HardwareContext hw_context;
  TrafficCounters traffic;  // this rank's share of send-side counters
  /// Sparse per-peer traffic map, grown on first contact — O(log P)
  /// entries per rank under the scalable schedules.
  PeerCounters peers;
  /// Span recorder (src/prof); allocated by World::set_tracing, null when
  /// tracing is off.
  std::unique_ptr<prof::SpanRecorder> prof;
};

class World {
 public:
  World(hw::MachineSpec machine, hw::Placement placement);

  int size() const { return layout_.ranks(); }
  const hw::ClusterLayout& layout() const { return layout_; }
  const hw::NetworkModel& network() const { return network_; }
  const hw::PowerModel& power() const { return power_; }

  RankState& rank_state(int world_rank);
  trace::EnergyLedger& node_ledger(int node);
  int node_count() const { return static_cast<int>(ledgers_.size()); }

  /// Context id for the world communicator.
  static constexpr std::uint64_t kWorldContext = 1;

  /// Deterministically allocates/returns the context id for the `seq`-th
  /// split performed on communicator `parent_context`. All members calling
  /// with the same pair receive the same id (MPI's ordering requirement).
  std::uint64_t intern_context(std::uint64_t parent_context, int seq);

  /// Delivers an envelope to `dst_world`'s mailbox.
  void post(int dst_world, Envelope&& envelope);

  /// Sender entry point of the transport: attaches `data` to `envelope`
  /// (zero-copy into the registered receive when eligible, pooled eager
  /// buffer otherwise) and delivers it to `dst_world`.
  void deliver(int dst_world, Envelope&& envelope,
               std::span<const std::byte> data);

  /// Resolves the transport knobs (explicit settings win, then the
  /// PLIN_XMPI_POOL / PLIN_XMPI_RENDEZVOUS / PLIN_XMPI_COLL /
  /// PLIN_XMPI_POOL_CAP environment, then defaults: pool and rendezvous
  /// on, tree collectives). The World constructor applies the all-kAuto
  /// configuration; Runtime::run re-applies RunConfig::transport.
  void configure_transport(const TransportConfig& config);
  PayloadPool& payload_pool() { return pool_; }
  bool rendezvous_enabled() const { return rendezvous_enabled_; }
  CollectiveMode collective_mode() const { return collective_mode_; }
  TransportStats transport_stats() const;

  /// Aggregated traffic across ranks (sum of send-side counters).
  TrafficCounters total_traffic() const;

  void abort() noexcept;
  bool aborted() const { return abort_flag_.load(); }
  const std::atomic<bool>& abort_flag() const { return abort_flag_; }

  /// Enables span tracing: allocates one prof::SpanRecorder per rank with
  /// the given ring capacity (0 → prof::kDefaultRingSpans). Disabling
  /// drops the recorders. No-op when the prof subsystem is compiled out
  /// (-DPLIN_PROF=OFF). See docs/tracing.md.
  void set_tracing(bool enabled, std::size_t ring_spans = 0);
  bool tracing() const { return tracing_; }

 private:
  hw::ClusterLayout layout_;
  hw::NetworkModel network_;
  hw::PowerModel power_;
  /// Declared before ranks_: mailboxes may still hold pooled envelopes at
  /// destruction, and their buffers return to the pool.
  PayloadPool pool_;
  bool rendezvous_enabled_ = true;
  CollectiveMode collective_mode_ = CollectiveMode::kTree;
  std::atomic<std::uint64_t> eager_messages_{0};
  std::atomic<std::uint64_t> rendezvous_messages_{0};
  std::atomic<std::uint64_t> rendezvous_bytes_{0};
  std::vector<std::unique_ptr<trace::EnergyLedger>> ledgers_;
  /// One contiguous slab of rank state instead of P scattered heap nodes:
  /// a RankState is a few cache lines, and at 100k ranks allocator
  /// headers, pointer indirection and fragmentation were a measurable
  /// share of the footprint (bench_scale tracks bytes/rank). A plain
  /// vector cannot hold RankState because Mailbox is neither movable nor
  /// copyable.
  std::unique_ptr<RankState[]> ranks_;
  int rank_count_ = 0;

  std::mutex context_mutex_;
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> contexts_;
  std::uint64_t next_context_ = 2;

  std::atomic<bool> abort_flag_{false};
  bool tracing_ = false;
};

}  // namespace plin::xmpi
