#include "xmpi/pool.hpp"

#include <utility>

namespace plin::xmpi {

void PayloadBuffer::reset() {
  if (data_ != nullptr) {
    if (pool_ != nullptr) pool_->note_release(size_);
    if (pool_ != nullptr && size_class_ >= 0) {
      pool_->recycle(data_, capacity_, size_class_);
    } else {
      delete[] data_;
    }
  }
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
  size_class_ = -1;
  pool_ = nullptr;
}

PayloadPool::~PayloadPool() {
  for (SizeClass& size_class : classes_) {
    for (std::byte* buffer : size_class.free_list) delete[] buffer;
  }
}

void PayloadPool::configure(const Config& config) {
  config_ = config;
  if (config_.max_cached_per_class == 0) {
    config_.max_cached_per_class = kDefaultMaxCachedPerClass;
  }
  for (SizeClass& size_class : classes_) {
    std::lock_guard<std::mutex> lock(size_class.mutex);
    for (std::byte* buffer : size_class.free_list) delete[] buffer;
    size_class.free_list.clear();
  }
}

int PayloadPool::class_of(std::size_t bytes) {
  std::size_t capacity = kMinClassBytes;
  for (int c = 0; c < kClassCount; ++c) {
    if (bytes <= capacity) return c;
    capacity <<= 1;
  }
  return -1;
}

std::size_t PayloadPool::class_capacity(int size_class) {
  return kMinClassBytes << size_class;
}

PayloadBuffer PayloadPool::acquire(std::size_t bytes) {
  PayloadBuffer buffer;
  if (bytes == 0) return buffer;
  buffer.pool_ = this;
  buffer.size_ = bytes;
  note_live(bytes);

  const int size_class = config_.enabled ? class_of(bytes) : -1;
  if (size_class >= 0) {
    buffer.size_class_ = size_class;
    buffer.capacity_ = class_capacity(size_class);
    SizeClass& entry = classes_[size_class];
    {
      std::lock_guard<std::mutex> lock(entry.mutex);
      if (!entry.free_list.empty()) {
        buffer.data_ = entry.free_list.back();
        entry.free_list.pop_back();
      }
    }
    if (buffer.data_ != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return buffer;
    }
    buffer.data_ = new std::byte[buffer.capacity_];
  } else {
    // Pool off or oversize: plain heap buffer, still tracked for the peak
    // footprint counter.
    buffer.capacity_ = bytes;
    buffer.data_ = new std::byte[bytes];
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return buffer;
}

void PayloadPool::recycle(std::byte* data, std::size_t capacity,
                          int size_class) {
  SizeClass& entry = classes_[size_class];
  {
    std::lock_guard<std::mutex> lock(entry.mutex);
    if (entry.free_list.size() < config_.max_cached_per_class) {
      entry.free_list.push_back(data);
      recycled_buffers_.fetch_add(1, std::memory_order_relaxed);
      recycled_bytes_.fetch_add(capacity, std::memory_order_relaxed);
      return;
    }
  }
  delete[] data;
}

void PayloadPool::note_live(std::size_t payload_bytes) {
  const std::uint64_t live =
      live_payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed) +
      payload_bytes;
  std::uint64_t peak = peak_payload_bytes_.load(std::memory_order_relaxed);
  while (live > peak && !peak_payload_bytes_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void PayloadPool::note_release(std::size_t payload_bytes) {
  live_payload_bytes_.fetch_sub(payload_bytes, std::memory_order_relaxed);
}

PoolStats PayloadPool::stats() const {
  PoolStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.recycled_buffers = recycled_buffers_.load(std::memory_order_relaxed);
  stats.recycled_bytes = recycled_bytes_.load(std::memory_order_relaxed);
  stats.peak_payload_bytes =
      peak_payload_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace plin::xmpi
