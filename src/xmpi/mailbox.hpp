// Mailbox — per-rank message queue with blocking matched receive.
//
// Matching follows MPI semantics: (source, tag, communicator-context)
// triples, with wildcards, FIFO per (source, tag) channel. Host threads
// block on a condition variable; virtual timing is carried by the
// `arrival_time` stamp computed by the sender.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "support/error.hpp"
#include "xmpi/types.hpp"

namespace plin::xmpi {

/// Raised in every blocked rank when World::abort fires (a peer threw).
class Aborted : public Error {
 public:
  Aborted() : Error("xmpi run aborted by a peer rank") {}
};

struct Envelope {
  int src = 0;  // sender's rank within the message's communicator
  int tag = 0;
  std::uint64_t context = 0;  // communicator context id
  double arrival_time = 0.0;  // virtual time the payload is available
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  void post(Envelope&& envelope) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(envelope));
    }
    cv_.notify_all();
  }

  /// Blocks until a message matching (src, tag, context) is present and
  /// removes it. With kAnySource/kAnyTag, picks the present message with
  /// the earliest virtual arrival (ties: lowest source) to keep runs
  /// deterministic. Throws Aborted if the abort flag fires.
  Envelope match(int src, int tag, std::uint64_t context,
                 const std::atomic<bool>& abort_flag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (abort_flag.load()) throw Aborted();
      std::size_t best = queue_.size();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const Envelope& env = queue_[i];
        if (env.context != context) continue;
        if (src != kAnySource && env.src != src) continue;
        if (tag != kAnyTag && env.tag != tag) continue;
        if (src != kAnySource && tag != kAnyTag) {
          best = i;  // exact match: FIFO order is the MPI order
          break;
        }
        if (best == queue_.size() ||
            env.arrival_time < queue_[best].arrival_time ||
            (env.arrival_time == queue_[best].arrival_time &&
             env.src < queue_[best].src)) {
          best = i;
        }
      }
      if (best != queue_.size()) {
        Envelope out = std::move(queue_[best]);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
        return out;
      }
      cv_.wait(lock);
    }
  }

  /// Non-blocking probe: true if a message matching (src, tag, context) is
  /// currently queued (MPI_Iprobe semantics).
  bool probe(int src, int tag, std::uint64_t context) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Envelope& env : queue_) {
      if (env.context != context) continue;
      if (src != kAnySource && env.src != src) continue;
      if (tag != kAnyTag && env.tag != tag) continue;
      return true;
    }
    return false;
  }

  /// Wakes all blocked matchers (used by World::abort).
  void interrupt() { cv_.notify_all(); }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

}  // namespace plin::xmpi
