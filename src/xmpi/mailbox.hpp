// Mailbox — per-rank message store with blocking matched receive.
//
// Matching follows MPI semantics: (source, tag, communicator-context)
// triples, with wildcards, FIFO per (source, tag) channel. Messages are
// indexed by channel — a sorted map from (context, src, tag) to a FIFO —
// so the exact-match fast path (all solver traffic) is a single map lookup
// instead of the flat-deque scan the first implementation used.
//
// Blocking is pluggable. A receiver first registers its pending match
// under the mailbox lock, then either
//   - parks through the installed Mailbox::Parker (worker-pool executor:
//     the rank's fiber yields its host worker and is resumed by the
//     scheduler when a matching message arrives), or
//   - waits on the mailbox condition variable (thread-per-rank executor).
// Either way `post` performs a *targeted* single-waiter wakeup — it wakes
// the owner only when the new envelope actually satisfies the registered
// pending receive (a mailbox has exactly one legal waiter: its owner).
//
// The transport has two delivery paths (docs/xmpi.md):
//   - eager: the sender copies the payload into a buffer acquired from the
//     world's PayloadPool and enqueues the envelope;
//   - rendezvous (zero-copy): when the owner is already blocked in an
//     *exact* receive whose destination buffer is registered, the payload
//     matches the registered size, and the target (context, src, tag)
//     channel is empty — i.e. FIFO order proves this message is the one
//     that receive will consume — the sender writes straight into the
//     receiver's destination span and enqueues only the envelope metadata.
//     Wildcard receives never take the rendezvous path: a later post with
//     an earlier virtual arrival could still win the deterministic
//     wildcard pick, which an in-place delivery could not be unwound from.
//
// Virtual timing is carried by the `arrival_time` stamp computed by the
// sender; the deterministic wildcard order is part of the public contract
// (see match()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "xmpi/pool.hpp"
#include "xmpi/types.hpp"

namespace plin::xmpi {

/// Raised in every blocked rank when World::abort fires (a peer threw).
class Aborted : public Error {
 public:
  Aborted() : Error("xmpi run aborted by a peer rank") {}
};

struct Envelope {
  int src = 0;  // sender's rank within the message's communicator
  int tag = 0;
  std::uint64_t context = 0;  // communicator context id
  double arrival_time = 0.0;  // virtual time the payload is available
  /// Sender identity for the span tracer (src/prof): world rank plus the
  /// sender-local message sequence number, which names the matching send
  /// span in the critical-path dependency graph. send_seq is 0 when
  /// tracing is off.
  int src_world = 0;
  std::uint64_t send_seq = 0;
  /// Payload size in bytes — authoritative even when `payload` is empty
  /// because the bytes were rendezvous-delivered in place.
  std::size_t bytes = 0;
  /// True when the sender already wrote the payload into the matched
  /// receiver's destination buffer (zero-copy rendezvous path).
  bool inplace = false;
  PayloadBuffer payload;
};

class Mailbox {
 public:
  /// Scheduler hook for the worker-pool executor: how the owning rank
  /// blocks and how senders resume it. wake() may race with a park() that
  /// is still switching out; implementations must tolerate that (two-phase
  /// parking) as well as spurious wake() calls on a non-parked rank.
  class Parker {
   public:
    virtual ~Parker() = default;
    /// Blocks the calling rank. Called with no mailbox lock held.
    virtual void park() = 0;
    /// Makes the parked rank runnable again. Called by senders (with no
    /// mailbox lock held) and by interrupt().
    virtual void wake() = 0;
  };

  /// Installs (or clears, with nullptr) the parking strategy of the owning
  /// rank. Must not be called while a receive is in flight.
  void set_parker(Parker* parker) {
    std::lock_guard<std::mutex> lock(mutex_);
    parker_ = parker;
  }

  /// Enqueues a pre-built envelope (eager path; also the raw hook tests
  /// drive directly). The payload, if any, must already be attached.
  void post(Envelope&& envelope);

  /// Transport entry point for senders: attaches `data` to `envelope` and
  /// enqueues it. Takes the zero-copy rendezvous path when `rendezvous` is
  /// true and the registered pending receive provably matches this message
  /// (see the header comment); otherwise copies into a buffer from `pool`.
  /// Returns true when the rendezvous path was taken.
  bool deliver(Envelope&& envelope, std::span<const std::byte> data,
               PayloadPool& pool, bool rendezvous);

  /// Blocks until a message matching (src, tag, context) is present and
  /// removes it. With kAnySource/kAnyTag, picks the present message with
  /// the earliest virtual arrival (ties: lowest source, then earliest
  /// post) to keep runs deterministic. Throws Aborted if the abort flag
  /// fires.
  ///
  /// `dest` is the receive buffer registered for rendezvous delivery; when
  /// the returned envelope has `inplace` set the payload is already there.
  /// The dest-less overload never offers rendezvous.
  Envelope match(int src, int tag, std::uint64_t context,
                 std::span<std::byte> dest,
                 const std::atomic<bool>& abort_flag);
  Envelope match(int src, int tag, std::uint64_t context,
                 const std::atomic<bool>& abort_flag);

  /// Non-blocking probe: true if a message matching (src, tag, context) is
  /// currently queued (MPI_Iprobe semantics).
  bool probe(int src, int tag, std::uint64_t context);

  /// Wakes the blocked matcher, if any (used by World::abort).
  void interrupt();

 private:
  /// Channels order by (context, src, tag) so a wildcard receive walks a
  /// contiguous, deterministically ordered range of its context.
  struct ChannelKey {
    std::uint64_t context = 0;
    int src = 0;
    int tag = 0;

    bool operator<(const ChannelKey& other) const {
      if (context != other.context) return context < other.context;
      if (src != other.src) return src < other.src;
      return tag < other.tag;
    }
  };

  /// `seq` is the mailbox-global post order, the final wildcard tie-break
  /// (equal arrival and source ⇒ earliest posted wins, which for a single
  /// sender is its program order).
  struct Item {
    Envelope envelope;
    std::uint64_t seq = 0;
  };

  /// Vector-backed FIFO with a head cursor. A std::deque here cost ~0.5
  /// KiB of chunk map per channel even when holding a single item; with
  /// one channel per active peer/tag pair across 100k mailboxes that
  /// overhead dominated rank state. Channels rarely hold more than a
  /// couple of in-flight messages, so a vector plus lazy head compaction
  /// is both smaller and faster.
  class ItemFifo {
   public:
    bool empty() const { return head_ == items_.size(); }
    std::size_t size() const { return items_.size() - head_; }
    Item& front() { return items_[head_]; }
    const Item& operator[](std::size_t i) const { return items_[head_ + i]; }
    Item& operator[](std::size_t i) { return items_[head_ + i]; }

    void push_back(Item&& item) { items_.push_back(std::move(item)); }

    void pop_front() {
      ++head_;
      compact();
    }

    /// Removes the i-th queued item (wildcard pick at arbitrary depth).
    void erase_at(std::size_t i) {
      items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(head_ + i));
      compact();
    }

   private:
    void compact() {
      if (head_ == items_.size()) {
        items_.clear();
        head_ = 0;
      } else if (head_ >= 16 && head_ * 2 >= items_.size()) {
        items_.erase(items_.begin(),
                     items_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }

    std::vector<Item> items_;
    std::size_t head_ = 0;
  };

  /// The receive the owner is currently blocked on (at most one). `dest`
  /// is registered only by the dest-aware match overload; senders may
  /// write through it solely under the mailbox lock while `active` (the
  /// owner is parked for the whole time, so the store is ordered before
  /// the owner's wakeup re-acquires the lock).
  struct PendingRecv {
    int src = 0;
    int tag = 0;
    std::uint64_t context = 0;
    bool active = false;
    bool has_dest = false;
    std::span<std::byte> dest{};
  };

  Envelope match_impl(int src, int tag, std::uint64_t context, bool has_dest,
                      std::span<std::byte> dest,
                      const std::atomic<bool>& abort_flag);
  std::optional<Envelope> try_match_locked(int src, int tag,
                                           std::uint64_t context);
  static bool satisfies(const Envelope& envelope, const PendingRecv& pending);
  /// Smallest ChannelKey of a context — internal tags are negative, so the
  /// floor must sit below every representable (src, tag).
  static ChannelKey channel_floor(std::uint64_t context);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<ChannelKey, ItemFifo> channels_;  // non-empty FIFOs only
  std::uint64_t next_seq_ = 0;
  PendingRecv pending_;
  Parker* parker_ = nullptr;
};

}  // namespace plin::xmpi
