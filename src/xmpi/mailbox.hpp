// Mailbox — per-rank message store with blocking matched receive.
//
// Matching follows MPI semantics: (source, tag, communicator-context)
// triples, with wildcards, FIFO per (source, tag) channel. Messages are
// indexed by channel — a sorted map from (context, src, tag) to a FIFO —
// so the exact-match fast path (all solver traffic) is a single map lookup
// instead of the flat-deque scan the first implementation used.
//
// Blocking is pluggable. A receiver first registers its pending match
// under the mailbox lock, then either
//   - parks through the installed Mailbox::Parker (worker-pool executor:
//     the rank's fiber yields its host worker and is resumed by the
//     scheduler when a matching message arrives), or
//   - waits on the mailbox condition variable (thread-per-rank executor).
// Either way `post` performs a *targeted* single-waiter wakeup — it wakes
// the owner only when the new envelope actually satisfies the registered
// pending receive (a mailbox has exactly one legal waiter: its owner).
//
// Virtual timing is carried by the `arrival_time` stamp computed by the
// sender; the deterministic wildcard order is part of the public contract
// (see match()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "support/error.hpp"
#include "xmpi/types.hpp"

namespace plin::xmpi {

/// Raised in every blocked rank when World::abort fires (a peer threw).
class Aborted : public Error {
 public:
  Aborted() : Error("xmpi run aborted by a peer rank") {}
};

struct Envelope {
  int src = 0;  // sender's rank within the message's communicator
  int tag = 0;
  std::uint64_t context = 0;  // communicator context id
  double arrival_time = 0.0;  // virtual time the payload is available
  /// Sender identity for the span tracer (src/prof): world rank plus the
  /// sender-local message sequence number, which names the matching send
  /// span in the critical-path dependency graph. send_seq is 0 when
  /// tracing is off.
  int src_world = 0;
  std::uint64_t send_seq = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  /// Scheduler hook for the worker-pool executor: how the owning rank
  /// blocks and how senders resume it. wake() may race with a park() that
  /// is still switching out; implementations must tolerate that (two-phase
  /// parking) as well as spurious wake() calls on a non-parked rank.
  class Parker {
   public:
    virtual ~Parker() = default;
    /// Blocks the calling rank. Called with no mailbox lock held.
    virtual void park() = 0;
    /// Makes the parked rank runnable again. Called by senders (with no
    /// mailbox lock held) and by interrupt().
    virtual void wake() = 0;
  };

  /// Installs (or clears, with nullptr) the parking strategy of the owning
  /// rank. Must not be called while a receive is in flight.
  void set_parker(Parker* parker) {
    std::lock_guard<std::mutex> lock(mutex_);
    parker_ = parker;
  }

  void post(Envelope&& envelope);

  /// Blocks until a message matching (src, tag, context) is present and
  /// removes it. With kAnySource/kAnyTag, picks the present message with
  /// the earliest virtual arrival (ties: lowest source, then earliest
  /// post) to keep runs deterministic. Throws Aborted if the abort flag
  /// fires.
  Envelope match(int src, int tag, std::uint64_t context,
                 const std::atomic<bool>& abort_flag);

  /// Non-blocking probe: true if a message matching (src, tag, context) is
  /// currently queued (MPI_Iprobe semantics).
  bool probe(int src, int tag, std::uint64_t context);

  /// Wakes the blocked matcher, if any (used by World::abort).
  void interrupt();

 private:
  /// Channels order by (context, src, tag) so a wildcard receive walks a
  /// contiguous, deterministically ordered range of its context.
  struct ChannelKey {
    std::uint64_t context = 0;
    int src = 0;
    int tag = 0;

    bool operator<(const ChannelKey& other) const {
      if (context != other.context) return context < other.context;
      if (src != other.src) return src < other.src;
      return tag < other.tag;
    }
  };

  /// `seq` is the mailbox-global post order, the final wildcard tie-break
  /// (equal arrival and source ⇒ earliest posted wins, which for a single
  /// sender is its program order).
  struct Item {
    Envelope envelope;
    std::uint64_t seq = 0;
  };

  /// The receive the owner is currently blocked on (at most one).
  struct PendingRecv {
    int src = 0;
    int tag = 0;
    std::uint64_t context = 0;
    bool active = false;
  };

  std::optional<Envelope> try_match_locked(int src, int tag,
                                           std::uint64_t context);
  static bool satisfies(const Envelope& envelope, const PendingRecv& pending);
  /// Smallest ChannelKey of a context — internal tags are negative, so the
  /// floor must sit below every representable (src, tag).
  static ChannelKey channel_floor(std::uint64_t context);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<ChannelKey, std::deque<Item>> channels_;  // non-empty FIFOs only
  std::uint64_t next_seq_ = 0;
  PendingRecv pending_;
  Parker* parker_ = nullptr;
};

}  // namespace plin::xmpi
