// Comm — the communicator handle ranks program against. Mirrors the MPI
// surface the paper's framework uses: point-to-point send/recv, barrier,
// broadcast, reductions, gather, comm_split and comm_split_type(SHARED),
// plus the compute() hook that advances the rank's virtual clock and feeds
// the energy ledger.
//
// Collectives are implemented on top of point-to-point messages (binomial
// trees, dissemination barrier), so their virtual-time cost and message
// counts emerge from the same Hockney model as user traffic.
#pragma once

#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "xmpi/world.hpp"

namespace plin::xmpi {

struct RecvInfo {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

class Comm {
 public:
  /// The world communicator for `world_rank`. Runtime::run constructs one
  /// per rank thread; user code obtains sub-communicators via split.
  Comm(World* world, int world_rank);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  World& world() const { return *world_; }

  int world_rank() const { return group_[static_cast<std::size_t>(rank_)]; }
  int world_rank_of(int comm_rank) const;
  const hw::RankLocation& my_location() const;
  int my_node() const { return my_location().node; }

  /// This rank's virtual clock value.
  double now() const;

  // -- local work -----------------------------------------------------------

  /// Advances virtual time by the cost of `cost` (max of flop time and
  /// memory time, honoring any active package power cap) and records the
  /// energy segment.
  void compute(const ComputeCost& cost);

  /// Pure memory phase (allocation, deallocation, touch): time = bytes over
  /// this rank's share of socket bandwidth.
  void memory_touch(double bytes);

  /// Advances this rank's virtual clock by `dt` seconds of idle waiting
  /// (kCommWait power) — the building block for polling/sampling loops.
  void idle_wait(double dt);

  // -- span tracing (src/prof) ------------------------------------------------

  /// Opens / closes a named phase bracket on this rank's span recorder.
  /// Brackets nest; solver and monitor code mark their algorithmic phases
  /// with these so the tracer can attribute time and energy
  /// (docs/tracing.md). No-ops when tracing is disabled; never advance
  /// virtual time or touch the energy ledger.
  void prof_phase_begin(std::string_view name);
  void prof_phase_end();

  /// Records a zero-length marker (PAPI read points and the like).
  void prof_instant(std::string_view name);

  // -- point-to-point ---------------------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_impl(std::as_bytes(data), dst, tag, /*control=*/false);
  }

  template <typename T>
  void send_value(const T& value, int dst, int tag) {
    send(std::span<const T>(&value, 1), dst, tag);
  }

  template <typename T>
  RecvInfo recv(std::span<T> data, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_impl(std::as_writable_bytes(data), src, tag);
  }

  template <typename T>
  T recv_value(int src, int tag) {
    T value{};
    recv(std::span<T>(&value, 1), src, tag);
    return value;
  }

  /// MPI_Sendrecv: pairwise exchange with `peer` — the send is buffered,
  /// so symmetric calls cannot deadlock. Buffers must not alias.
  template <typename T>
  void sendrecv(std::span<const T> send_data, std::span<T> recv_data,
                int peer, int tag) {
    send(send_data, peer, tag);
    recv(recv_data, peer, tag);
  }

  /// MPI_Iprobe: true if a matching message is already queued. Does not
  /// advance virtual time (a real iprobe's cost is well under the model's
  /// resolution); combine with a clock-advancing activity in polling loops.
  bool iprobe(int src, int tag);

  // -- nonblocking point-to-point ---------------------------------------------

  /// Buffered nonblocking send: the payload is copied and on the wire when
  /// this returns, so the request is complete immediately (MPI_Ibsend
  /// semantics — our transport is buffered by construction).
  template <typename T>
  class Request isend(std::span<const T> data, int dst, int tag);

  /// Nonblocking receive: registers the buffer; completion (and the
  /// virtual-time accounting of the receive) happens at test()/wait().
  /// The buffer and this Comm must outlive the request.
  template <typename T>
  class Request irecv(std::span<T> data, int src, int tag);

  // -- collectives -------------------------------------------------------------

  /// Dissemination barrier; aligns host threads and (approximately) virtual
  /// clocks of all members.
  void barrier();

  /// Binomial-tree broadcast. `stream` selects an independent FIFO channel
  /// (see internal_tag::kBcastStreamBase); broadcasts within one stream
  /// must be issued in the same order by every rank, but different streams
  /// are unordered relative to each other.
  template <typename T>
  void bcast(std::span<T> data, int root, int stream = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_impl(std::as_writable_bytes(data), root, stream);
  }

  template <typename T>
  void bcast_value(T& value, int root, int stream = 0) {
    bcast(std::span<T>(&value, 1), root, stream);
  }

  /// Element-wise tree reduction of `data` into `out` at `root` (out is
  /// ignored on other ranks; may alias data on the root).
  template <typename T>
  void reduce(std::span<const T> data, std::span<T> out, ReduceOp op,
              int root);

  template <typename T>
  void allreduce(std::span<const T> data, std::span<T> out, ReduceOp op) {
    reduce(data, out, op, 0);
    bcast(out, 0);
  }

  template <typename T>
  T allreduce_value(T value, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// MPI_MAXLOC equivalent for distributed pivot search: returns the
  /// globally largest |value| with the owning index (ties: lowest index).
  struct MaxLoc {
    double value = 0.0;
    long long index = 0;
  };
  MaxLoc allreduce_maxloc(double value, long long index);

  /// Gathers `data` (same length on every rank) to `root`; `out` must hold
  /// size()*data.size() elements on the root.
  template <typename T>
  void gather(std::span<const T> data, std::span<T> out, int root);

  template <typename T>
  void allgather(std::span<const T> data, std::span<T> out) {
    gather(data, out, 0);
    bcast(out, 0);
  }

  // -- communicator management -------------------------------------------------

  /// MPI_Comm_split: members with the same color form a new communicator,
  /// ordered by (key, parent rank). Must be called by all members in the
  /// same order.
  Comm split(int color, int key);

  /// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one communicator per node,
  /// keyed by parent rank — the grouping the paper's framework uses to
  /// elect monitoring ranks.
  Comm split_shared_node() { return split(my_node(), rank_); }

 private:
  friend class Request;

  Comm(World* world, std::vector<int> group, int rank, std::uint64_t context);

  RankState& me() const;
  void log_segment(hw::ActivityKind kind, double dt, double dram_bytes = 0.0);

  /// This rank's span recorder; nullptr when tracing is off (and constant
  /// nullptr when the prof subsystem is compiled out, which folds every
  /// hook away).
  prof::SpanRecorder* recorder() const;
  /// Collective bracket around one collective call (ring-buffered span).
  void prof_collective_begin(const char* name);
  void prof_collective_end();

  void send_impl(std::span<const std::byte> data, int dst, int tag,
                 bool control);
  RecvInfo recv_impl(std::span<std::byte> data, int src, int tag);
  void bcast_impl(std::span<std::byte> data, int root, int stream);

  World* world_;
  std::vector<int> group_;  // comm rank -> world rank
  int rank_;
  std::uint64_t context_;
  int split_seq_ = 0;
};

/// Handle for a nonblocking operation. Move-only; complete with test() or
/// wait() (or wait_all over a batch).
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { *this = std::move(other); }
  Request& operator=(Request&& other) noexcept {
    comm_ = other.comm_;
    buffer_ = other.buffer_;
    peer_ = other.peer_;
    tag_ = other.tag_;
    pending_recv_ = other.pending_recv_;
    other.pending_recv_ = false;
    other.comm_ = nullptr;
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  bool valid() const { return comm_ != nullptr; }

  /// True once the operation is complete; for a pending receive, completes
  /// it if the matching message has arrived (MPI_Test).
  bool test();

  /// Blocks until complete (MPI_Wait).
  void wait();

 private:
  friend class Comm;
  Request(Comm* comm, std::span<std::byte> buffer, int peer, int tag,
          bool pending_recv)
      : comm_(comm), buffer_(buffer), peer_(peer), tag_(tag),
        pending_recv_(pending_recv) {}

  Comm* comm_ = nullptr;
  std::span<std::byte> buffer_{};
  int peer_ = 0;
  int tag_ = 0;
  bool pending_recv_ = false;
};

/// Completes every request in the batch (MPI_Waitall).
void wait_all(std::span<Request> requests);

template <typename T>
Request Comm::isend(std::span<const T> data, int dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  send_impl(std::as_bytes(data), dst, tag, /*control=*/false);
  return Request(this, {}, dst, tag, /*pending_recv=*/false);
}

template <typename T>
Request Comm::irecv(std::span<T> data, int src, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  return Request(this, std::as_writable_bytes(data), src, tag,
                 /*pending_recv=*/true);
}

// -- template implementations ---------------------------------------------

template <typename T>
void Comm::reduce(std::span<const T> data, std::span<T> out, ReduceOp op,
                  int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  PLIN_CHECK_MSG(rank() != root || out.size() == data.size(),
                 "reduce output span has wrong size on root");
  prof_collective_begin("reduce");
  std::vector<T> acc(data.begin(), data.end());
  const int vrank = (rank_ - root + size()) % size();
  int mask = 1;
  while (mask < size()) {
    if ((vrank & mask) == 0) {
      const int peer_v = vrank | mask;
      if (peer_v < size()) {
        const int peer = (peer_v + root) % size();
        std::vector<T> incoming(acc.size());
        recv(std::span<T>(incoming), peer, internal_tag::kReduce);
        for (std::size_t i = 0; i < acc.size(); ++i) {
          switch (op) {
            case ReduceOp::kSum: acc[i] = acc[i] + incoming[i]; break;
            case ReduceOp::kMax: acc[i] = acc[i] < incoming[i] ? incoming[i] : acc[i]; break;
            case ReduceOp::kMin: acc[i] = incoming[i] < acc[i] ? incoming[i] : acc[i]; break;
          }
        }
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % size();
      send(std::span<const T>(acc), peer, internal_tag::kReduce);
      break;
    }
    mask <<= 1;
  }
  if (rank_ == root) {
    std::memcpy(out.data(), acc.data(), acc.size() * sizeof(T));
  }
  prof_collective_end();
}

template <typename T>
void Comm::gather(std::span<const T> data, std::span<T> out, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  prof_collective_begin("gather");
  if (rank_ != root) {
    send(data, root, internal_tag::kGather);
    prof_collective_end();
    return;
  }
  PLIN_CHECK_MSG(out.size() >= data.size() * static_cast<std::size_t>(size()),
                 "gather output span too small");
  for (int src = 0; src < size(); ++src) {
    std::span<T> slot = out.subspan(
        static_cast<std::size_t>(src) * data.size(), data.size());
    if (src == rank_) {
      std::memcpy(slot.data(), data.data(), data.size() * sizeof(T));
    } else {
      recv(slot, src, internal_tag::kGather);
    }
  }
  prof_collective_end();
}

}  // namespace plin::xmpi
