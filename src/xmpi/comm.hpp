// Comm — the communicator handle ranks program against. Mirrors the MPI
// surface the paper's framework uses: point-to-point send/recv, barrier,
// broadcast, reductions, gather, comm_split and comm_split_type(SHARED),
// plus the compute() hook that advances the rank's virtual clock and feeds
// the energy ledger.
//
// Collectives are implemented on top of point-to-point messages (binomial
// trees, dissemination barrier), so their virtual-time cost and message
// counts emerge from the same Hockney model as user traffic.
#pragma once

#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "xmpi/world.hpp"

namespace plin::xmpi {

struct RecvInfo {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

namespace detail {

/// One reduction step with a fixed operand order: `lower` is the
/// contribution of the lower-ranked subtree. Every schedule (seed binomial
/// tree, reduce-scatter+allgather, recursive doubling) funnels its
/// combines through this helper with rank-ordered operands, which is what
/// keeps floating-point results bit-identical across schedules on
/// power-of-two communicators (docs/xmpi.md).
template <typename T>
inline T combine_one(ReduceOp op, const T& lower, const T& upper) {
  switch (op) {
    case ReduceOp::kSum: return lower + upper;
    case ReduceOp::kMax: return lower < upper ? upper : lower;
    case ReduceOp::kMin: return upper < lower ? upper : lower;
  }
  return lower;
}

/// Largest power of two <= size (size >= 1).
inline int floor_pof2(int size) {
  int pof2 = 1;
  while (pof2 * 2 <= size) pof2 *= 2;
  return pof2;
}

/// Comm rank of a core rank after the non-power-of-two pre-fold: the first
/// 2*rem ranks fold pairwise onto their even member, the rest map 1:1.
inline int core_to_comm_rank(int core_rank, int rem) {
  return core_rank < rem ? 2 * core_rank : core_rank + rem;
}

}  // namespace detail

class Comm {
 public:
  /// The world communicator for `world_rank`. Runtime::run constructs one
  /// per rank thread; user code obtains sub-communicators via split.
  Comm(World* world, int world_rank);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  World& world() const { return *world_; }

  int world_rank() const { return group_[static_cast<std::size_t>(rank_)]; }
  int world_rank_of(int comm_rank) const;
  const hw::RankLocation& my_location() const;
  int my_node() const { return my_location().node; }

  /// This rank's virtual clock value.
  double now() const;

  // -- local work -----------------------------------------------------------

  /// Advances virtual time by the cost of `cost` (max of flop time and
  /// memory time, honoring any active package power cap) and records the
  /// energy segment.
  void compute(const ComputeCost& cost);

  /// Pure memory phase (allocation, deallocation, touch): time = bytes over
  /// this rank's share of socket bandwidth.
  void memory_touch(double bytes);

  /// Advances this rank's virtual clock by `dt` seconds of idle waiting
  /// (kCommWait power) — the building block for polling/sampling loops.
  void idle_wait(double dt);

  // -- span tracing (src/prof) ------------------------------------------------

  /// Opens / closes a named phase bracket on this rank's span recorder.
  /// Brackets nest; solver and monitor code mark their algorithmic phases
  /// with these so the tracer can attribute time and energy
  /// (docs/tracing.md). No-ops when tracing is disabled; never advance
  /// virtual time or touch the energy ledger.
  void prof_phase_begin(std::string_view name);
  void prof_phase_end();

  /// Records a zero-length marker (PAPI read points and the like).
  void prof_instant(std::string_view name);

  // -- point-to-point ---------------------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_impl(std::as_bytes(data), dst, tag, /*control=*/false);
  }

  template <typename T>
  void send_value(const T& value, int dst, int tag) {
    send(std::span<const T>(&value, 1), dst, tag);
  }

  template <typename T>
  RecvInfo recv(std::span<T> data, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_impl(std::as_writable_bytes(data), src, tag);
  }

  template <typename T>
  T recv_value(int src, int tag) {
    T value{};
    recv(std::span<T>(&value, 1), src, tag);
    return value;
  }

  /// MPI_Sendrecv: pairwise exchange with `peer` — the send is buffered,
  /// so symmetric calls cannot deadlock. Buffers must not alias.
  template <typename T>
  void sendrecv(std::span<const T> send_data, std::span<T> recv_data,
                int peer, int tag) {
    send(send_data, peer, tag);
    recv(recv_data, peer, tag);
  }

  /// MPI_Iprobe: true if a matching message is already queued. Does not
  /// advance virtual time (a real iprobe's cost is well under the model's
  /// resolution); combine with a clock-advancing activity in polling loops.
  bool iprobe(int src, int tag);

  // -- nonblocking point-to-point ---------------------------------------------

  /// Buffered nonblocking send: the payload is copied and on the wire when
  /// this returns, so the request is complete immediately (MPI_Ibsend
  /// semantics — our transport is buffered by construction).
  template <typename T>
  class Request isend(std::span<const T> data, int dst, int tag);

  /// Nonblocking receive: registers the buffer; completion (and the
  /// virtual-time accounting of the receive) happens at test()/wait().
  /// The buffer and this Comm must outlive the request.
  template <typename T>
  class Request irecv(std::span<T> data, int src, int tag);

  // -- collectives -------------------------------------------------------------

  /// Dissemination barrier; aligns host threads and (approximately) virtual
  /// clocks of all members.
  void barrier();

  /// Binomial-tree broadcast. `stream` selects an independent FIFO channel
  /// (see internal_tag::kBcastStreamBase); broadcasts within one stream
  /// must be issued in the same order by every rank, but different streams
  /// are unordered relative to each other.
  template <typename T>
  void bcast(std::span<T> data, int root, int stream = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_impl(std::as_writable_bytes(data), root, stream);
  }

  template <typename T>
  void bcast_value(T& value, int root, int stream = 0) {
    bcast(std::span<T>(&value, 1), root, stream);
  }

  /// Element-wise tree reduction of `data` into `out` at `root` (out is
  /// ignored on other ranks; may alias data on the root).
  template <typename T>
  void reduce(std::span<const T> data, std::span<T> out, ReduceOp op,
              int root);

  /// Every rank ends with the element-wise reduction of all
  /// contributions. Two schedules (CollectiveMode, docs/xmpi.md):
  ///   - kTree (default): reduce to rank 0 + broadcast — the seed
  ///     schedule; canonical outputs depend on its virtual timing.
  ///   - kScalable: reduce-scatter + allgather (vector halving) for
  ///     vectors with at least one element per power-of-two core rank,
  ///     recursive doubling for shorter ones. No rank moves more than
  ///     ~2x the vector, instead of the root's 2·(P-1)·n funnel. On
  ///     power-of-two communicators the combine bracketing equals the
  ///     tree's, so results are bit-identical; otherwise a pre-fold pass
  ///     makes the schedule deterministic but (for kSum) not bit-equal to
  ///     the tree.
  template <typename T>
  void allreduce(std::span<const T> data, std::span<T> out, ReduceOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    PLIN_CHECK_MSG(out.size() == data.size(),
                   "allreduce output span has wrong size");
    if (world_->collective_mode() == CollectiveMode::kScalable) {
      allreduce_scalable(data, out, op);
      return;
    }
    reduce(data, out, op, 0);
    bcast(out, 0);
  }

  template <typename T>
  T allreduce_value(T value, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// MPI_MAXLOC equivalent for distributed pivot search: returns the
  /// globally largest |value| with the owning index (ties: lowest index).
  struct MaxLoc {
    double value = 0.0;
    long long index = 0;
  };
  MaxLoc allreduce_maxloc(double value, long long index);

  /// Gathers `data` (same length on every rank) to `root`; `out` must hold
  /// size()*data.size() elements on the root.
  template <typename T>
  void gather(std::span<const T> data, std::span<T> out, int root);

  /// Concatenation of every rank's equal-length `data` on every rank.
  /// kTree: gather to rank 0 + broadcast (root moves ~(P + log P)·n);
  /// kScalable: ring — each rank forwards one block per step to its right
  /// neighbor, moving exactly 2·(P-1)·n/P through every rank. Pure data
  /// movement, so the two schedules are bit-identical at any size.
  template <typename T>
  void allgather(std::span<const T> data, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (world_->collective_mode() == CollectiveMode::kScalable &&
        size() > 1) {
      allgather_ring(data, out);
      return;
    }
    gather(data, out, 0);
    bcast(out, 0);
  }

  // -- communicator management -------------------------------------------------

  /// MPI_Comm_split: members with the same color form a new communicator,
  /// ordered by (key, parent rank). Must be called by all members in the
  /// same order.
  Comm split(int color, int key);

  /// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one communicator per node,
  /// keyed by parent rank — the grouping the paper's framework uses to
  /// elect monitoring ranks.
  Comm split_shared_node() { return split(my_node(), rank_); }

 private:
  friend class Request;

  Comm(World* world, std::vector<int> group, int rank, std::uint64_t context);

  RankState& me() const;
  void log_segment(hw::ActivityKind kind, double dt, double dram_bytes = 0.0);

  /// This rank's span recorder; nullptr when tracing is off (and constant
  /// nullptr when the prof subsystem is compiled out, which folds every
  /// hook away).
  prof::SpanRecorder* recorder() const;
  /// Collective bracket around one collective call (ring-buffered span).
  void prof_collective_begin(const char* name);
  void prof_collective_end();

  void send_impl(std::span<const std::byte> data, int dst, int tag,
                 bool control);
  RecvInfo recv_impl(std::span<std::byte> data, int src, int tag);
  void bcast_impl(std::span<std::byte> data, int root, int stream);

  template <typename T>
  void allreduce_scalable(std::span<const T> data, std::span<T> out,
                          ReduceOp op);
  template <typename T>
  void allgather_ring(std::span<const T> data, std::span<T> out);

  World* world_;
  std::vector<int> group_;  // comm rank -> world rank
  int rank_;
  std::uint64_t context_;
  int split_seq_ = 0;
};

/// Handle for a nonblocking operation. Move-only; complete with test() or
/// wait() (or wait_all over a batch).
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { *this = std::move(other); }
  Request& operator=(Request&& other) noexcept {
    comm_ = other.comm_;
    buffer_ = other.buffer_;
    peer_ = other.peer_;
    tag_ = other.tag_;
    pending_recv_ = other.pending_recv_;
    other.pending_recv_ = false;
    other.comm_ = nullptr;
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  bool valid() const { return comm_ != nullptr; }

  /// True once the operation is complete; for a pending receive, completes
  /// it if the matching message has arrived (MPI_Test).
  bool test();

  /// Blocks until complete (MPI_Wait).
  void wait();

 private:
  friend class Comm;
  Request(Comm* comm, std::span<std::byte> buffer, int peer, int tag,
          bool pending_recv)
      : comm_(comm), buffer_(buffer), peer_(peer), tag_(tag),
        pending_recv_(pending_recv) {}

  Comm* comm_ = nullptr;
  std::span<std::byte> buffer_{};
  int peer_ = 0;
  int tag_ = 0;
  bool pending_recv_ = false;
};

/// Completes every request in the batch (MPI_Waitall).
void wait_all(std::span<Request> requests);

template <typename T>
Request Comm::isend(std::span<const T> data, int dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  send_impl(std::as_bytes(data), dst, tag, /*control=*/false);
  return Request(this, {}, dst, tag, /*pending_recv=*/false);
}

template <typename T>
Request Comm::irecv(std::span<T> data, int src, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  return Request(this, std::as_writable_bytes(data), src, tag,
                 /*pending_recv=*/true);
}

// -- template implementations ---------------------------------------------

template <typename T>
void Comm::reduce(std::span<const T> data, std::span<T> out, ReduceOp op,
                  int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  PLIN_CHECK_MSG(rank() != root || out.size() == data.size(),
                 "reduce output span has wrong size on root");
  prof_collective_begin("reduce");
  std::vector<T> acc(data.begin(), data.end());
  std::vector<T> incoming;  // hoisted: one allocation across all rounds
  const int vrank = (rank_ - root + size()) % size();
  int mask = 1;
  while (mask < size()) {
    if ((vrank & mask) == 0) {
      const int peer_v = vrank | mask;
      if (peer_v < size()) {
        const int peer = (peer_v + root) % size();
        incoming.resize(acc.size());
        recv(std::span<T>(incoming), peer, internal_tag::kReduce);
        // The receiver always sits on the lower-ranked subtree, so the
        // accumulator is the `lower` operand (NaN note for kMax/kMin: the
        // comparison-based combine keeps the lower operand when either
        // side is NaN, so a NaN contribution survives only from the side
        // the bracketing puts first — xmpi_collectives_test pins this).
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] = detail::combine_one(op, acc[i], incoming[i]);
        }
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % size();
      send(std::span<const T>(acc), peer, internal_tag::kReduce);
      break;
    }
    mask <<= 1;
  }
  if (rank_ == root) {
    std::memcpy(out.data(), acc.data(), acc.size() * sizeof(T));
  }
  prof_collective_end();
}

template <typename T>
void Comm::gather(std::span<const T> data, std::span<T> out, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  prof_collective_begin("gather");
  if (rank_ != root) {
    send(data, root, internal_tag::kGather);
    prof_collective_end();
    return;
  }
  PLIN_CHECK_MSG(out.size() >= data.size() * static_cast<std::size_t>(size()),
                 "gather output span too small");
  for (int src = 0; src < size(); ++src) {
    std::span<T> slot = out.subspan(
        static_cast<std::size_t>(src) * data.size(), data.size());
    if (src == rank_) {
      std::memcpy(slot.data(), data.data(), data.size() * sizeof(T));
    } else {
      recv(slot, src, internal_tag::kGather);
    }
  }
  prof_collective_end();
}

template <typename T>
void Comm::allreduce_scalable(std::span<const T> data, std::span<T> out,
                              ReduceOp op) {
  const std::size_t count = data.size();
  if (count != 0) {
    std::memcpy(out.data(), data.data(), count * sizeof(T));
  }
  if (size() == 1 || count == 0) return;

  const int pof2 = detail::floor_pof2(size());
  const int rem = size() - pof2;
  // Vector halving needs at least one element per core rank; shorter
  // vectors (scalars, norms) use latency-optimal recursive doubling.
  const bool rsag = pof2 > 1 && count >= static_cast<std::size_t>(pof2);
  prof_collective_begin(rsag ? "allreduce:rsag" : "allreduce:rd");
  std::vector<T> scratch;

  // Pre-fold: the first 2*rem ranks combine pairwise onto their even
  // member so the main exchange runs on a power-of-two core. Odd members
  // sit out and receive the finished vector in the post-fold.
  if (rank_ < 2 * rem) {
    if ((rank_ & 1) != 0) {
      send(std::span<const T>(out.data(), count), rank_ - 1,
           internal_tag::kFold);
      recv(std::span<T>(out.data(), count), rank_ - 1, internal_tag::kFold);
      prof_collective_end();
      return;
    }
    scratch.resize(count);
    recv(std::span<T>(scratch), rank_ + 1, internal_tag::kFold);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = detail::combine_one(op, out[i], scratch[i]);
    }
  }
  const int cr = rank_ < 2 * rem ? rank_ / 2 : rank_ - rem;

  if (rsag) {
    // Reduce-scatter by distance doubling / vector halving, then the
    // mirrored allgather. The halving recursion reproduces the binomial
    // tree's combine bracketing element by element (rank-ordered operands
    // at every level), which is what makes this bit-identical to kTree on
    // power-of-two communicators.
    struct Range {
      std::size_t lo = 0;
      std::size_t hi = 0;
    };
    std::vector<Range> rounds;
    std::size_t lo = 0;
    std::size_t hi = count;
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int peer = detail::core_to_comm_rank(cr ^ mask, rem);
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      const bool lower = (cr & mask) == 0;
      const std::size_t keep_lo = lower ? lo : mid;
      const std::size_t keep_hi = lower ? mid : hi;
      const std::size_t give_lo = lower ? mid : lo;
      send(std::span<const T>(out.data() + give_lo,
                              (lower ? hi : mid) - give_lo),
           peer, internal_tag::kAllreduce);
      scratch.resize(keep_hi - keep_lo);
      recv(std::span<T>(scratch.data(), keep_hi - keep_lo), peer,
           internal_tag::kAllreduce);
      for (std::size_t i = 0; i < keep_hi - keep_lo; ++i) {
        T& mine = out[keep_lo + i];
        mine = lower ? detail::combine_one(op, mine, scratch[i])
                     : detail::combine_one(op, scratch[i], mine);
      }
      rounds.push_back(Range{lo, hi});
      lo = keep_lo;
      hi = keep_hi;
    }
    // Allgather mirror: replay the halving in reverse; at reversed round
    // r this rank has rebuilt its half of rounds[r] and the same peer has
    // the other half.
    for (std::size_t r = rounds.size(); r-- > 0;) {
      const int mask = 1 << r;
      const int peer = detail::core_to_comm_rank(cr ^ mask, rem);
      const Range range = rounds[r];
      const std::size_t mid = range.lo + (range.hi - range.lo + 1) / 2;
      const bool lower = (cr & mask) == 0;
      const std::size_t other_lo = lower ? mid : range.lo;
      const std::size_t other_hi = lower ? range.hi : mid;
      send(std::span<const T>(out.data() + lo, hi - lo), peer,
           internal_tag::kAllreduce);
      recv(std::span<T>(out.data() + other_lo, other_hi - other_lo), peer,
           internal_tag::kAllreduce);
      lo = range.lo;
      hi = range.hi;
    }
  } else {
    // Recursive doubling: log2(pof2) full-vector pairwise exchanges.
    scratch.resize(count);
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int peer = detail::core_to_comm_rank(cr ^ mask, rem);
      send(std::span<const T>(out.data(), count), peer,
           internal_tag::kAllreduce);
      recv(std::span<T>(scratch), peer, internal_tag::kAllreduce);
      const bool lower = (cr & mask) == 0;
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = lower ? detail::combine_one(op, out[i], scratch[i])
                       : detail::combine_one(op, scratch[i], out[i]);
      }
    }
  }

  // Post-fold: hand the finished vector back to the folded odd partner.
  if (rank_ < 2 * rem) {
    send(std::span<const T>(out.data(), count), rank_ + 1,
         internal_tag::kFold);
  }
  prof_collective_end();
}

template <typename T>
void Comm::allgather_ring(std::span<const T> data, std::span<T> out) {
  PLIN_CHECK_MSG(out.size() >= data.size() * static_cast<std::size_t>(size()),
                 "allgather output span too small");
  const std::size_t chunk = data.size();
  if (chunk != 0) {
    std::memcpy(out.data() + static_cast<std::size_t>(rank_) * chunk,
                data.data(), chunk * sizeof(T));
  }
  if (size() == 1 || chunk == 0) return;
  prof_collective_begin("allgather:ring");
  const int right = (rank_ + 1) % size();
  const int left = (rank_ + size() - 1) % size();
  for (int step = 0; step < size() - 1; ++step) {
    // Forward the block received last step (initially our own) to the
    // right; receive the next-older block from the left.
    const int send_block = (rank_ - step + size()) % size();
    const int recv_block = (rank_ - step + size() - 1) % size();
    send(std::span<const T>(
             out.data() + static_cast<std::size_t>(send_block) * chunk,
             chunk),
         right, internal_tag::kAllgather);
    recv(std::span<T>(out.data() +
                          static_cast<std::size_t>(recv_block) * chunk,
                      chunk),
         left, internal_tag::kAllgather);
  }
  prof_collective_end();
}

}  // namespace plin::xmpi
