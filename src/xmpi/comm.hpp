// Comm — the communicator handle ranks program against. Mirrors the MPI
// surface the paper's framework uses: point-to-point send/recv, barrier,
// broadcast, reductions, gather, comm_split and comm_split_type(SHARED),
// plus the compute() hook that advances the rank's virtual clock and feeds
// the energy ledger.
//
// Collectives are implemented on top of point-to-point messages (binomial
// trees, dissemination barrier), so their virtual-time cost and message
// counts emerge from the same Hockney model as user traffic.
#pragma once

#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "xmpi/world.hpp"

namespace plin::xmpi {

struct RecvInfo {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

namespace detail {

/// One reduction step with a fixed operand order: `lower` is the
/// contribution of the lower-ranked subtree. Every schedule (seed binomial
/// tree, reduce-scatter+allgather, recursive doubling) funnels its
/// combines through this helper with rank-ordered operands, which is what
/// keeps floating-point results bit-identical across schedules on
/// power-of-two communicators (docs/xmpi.md).
template <typename T>
inline T combine_one(ReduceOp op, const T& lower, const T& upper) {
  switch (op) {
    case ReduceOp::kSum: return lower + upper;
    case ReduceOp::kMax: return lower < upper ? upper : lower;
    case ReduceOp::kMin: return upper < lower ? upper : lower;
  }
  return lower;
}

/// Largest member count for which the scalable allgather uses the ring
/// schedule; above it the P-1 latency terms dominate and Bruck's
/// log-round schedule takes over (same per-rank volume).
inline constexpr int kRingAllgatherMaxRanks = 128;

/// Largest power of two <= size (size >= 1).
inline int floor_pof2(int size) {
  int pof2 = 1;
  while (pof2 * 2 <= size) pof2 *= 2;
  return pof2;
}

/// One block of the binary-blocks decomposition: comm ranks
/// [base, base + size) with `size` a power of two.
struct Block {
  int base = 0;
  int size = 0;
};

/// Decomposes P into blocks of strictly decreasing power-of-two sizes (the
/// binary digits of P), assigned in rank order. The seed binomial tree
/// clipped to P ranks combines exactly block-by-block: with B_b the full
/// binomial bracketing over block b's members and F_b = B_b op F_{b+1}
/// (block b always the lower operand), the tree's root value is F_0. The
/// scalable schedules reproduce that decomposition distributedly, which is
/// what makes them bit-identical to the tree at *every* P, not just powers
/// of two (docs/xmpi.md).
inline std::vector<Block> binary_blocks(int size) {
  std::vector<Block> blocks;
  int base = 0;
  int remaining = size;
  while (remaining > 0) {
    const int m = floor_pof2(remaining);
    blocks.push_back(Block{base, m});
    base += m;
    remaining -= m;
  }
  return blocks;
}

/// Element range [lo, hi) that block-local rank `c` owns after the full
/// vector-halving recursion over a block of `m` ranks: bit k of c picks the
/// upper/lower half of split k, with the odd element (if any) going to the
/// lower half — the same `mid = lo + (hi - lo + 1) / 2` rule the
/// reduce-scatter rounds apply. Because block sizes divide each other, a
/// finer block's range refines the coarser owner's range for the local
/// rank c mod m_coarse — the property the cross-block fold routes by.
inline void halving_range(int c, int m, std::size_t count, std::size_t& lo,
                          std::size_t& hi) {
  lo = 0;
  hi = count;
  for (int mask = 1; mask < m; mask <<= 1) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if ((c & mask) == 0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
}

}  // namespace detail

class Comm {
 public:
  /// The world communicator for `world_rank`. Runtime::run constructs one
  /// per rank thread; user code obtains sub-communicators via split.
  Comm(World* world, int world_rank);

  int rank() const { return rank_; }
  int size() const {
    return group_.empty() ? world_->size() : static_cast<int>(group_.size());
  }
  World& world() const { return *world_; }

  int world_rank() const {
    return group_.empty() ? rank_ : group_[static_cast<std::size_t>(rank_)];
  }
  int world_rank_of(int comm_rank) const;
  hw::RankLocation my_location() const;
  int my_node() const { return my_location().node; }

  /// This rank's virtual clock value.
  double now() const;

  // -- local work -----------------------------------------------------------

  /// Advances virtual time by the cost of `cost` (max of flop time and
  /// memory time, honoring any active package power cap) and records the
  /// energy segment.
  void compute(const ComputeCost& cost);

  /// Pure memory phase (allocation, deallocation, touch): time = bytes over
  /// this rank's share of socket bandwidth.
  void memory_touch(double bytes);

  /// Advances this rank's virtual clock by `dt` seconds of idle waiting
  /// (kCommWait power) — the building block for polling/sampling loops.
  void idle_wait(double dt);

  // -- span tracing (src/prof) ------------------------------------------------

  /// Opens / closes a named phase bracket on this rank's span recorder.
  /// Brackets nest; solver and monitor code mark their algorithmic phases
  /// with these so the tracer can attribute time and energy
  /// (docs/tracing.md). No-ops when tracing is disabled; never advance
  /// virtual time or touch the energy ledger.
  void prof_phase_begin(std::string_view name);
  void prof_phase_end();

  /// Records a zero-length marker (PAPI read points and the like).
  void prof_instant(std::string_view name);

  // -- point-to-point ---------------------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_impl(std::as_bytes(data), dst, tag, /*control=*/false);
  }

  /// send(), but the message is also counted as halo-exchange traffic
  /// (TrafficCounters::halo_*) — the per-iteration ghost payloads the CG
  /// solver ships. Identical timing/energy accounting to send().
  template <typename T>
  void send_halo(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_impl(std::as_bytes(data), dst, tag, /*control=*/false,
              /*halo=*/true);
  }

  template <typename T>
  void send_value(const T& value, int dst, int tag) {
    send(std::span<const T>(&value, 1), dst, tag);
  }

  template <typename T>
  RecvInfo recv(std::span<T> data, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_impl(std::as_writable_bytes(data), src, tag);
  }

  template <typename T>
  T recv_value(int src, int tag) {
    T value{};
    recv(std::span<T>(&value, 1), src, tag);
    return value;
  }

  /// MPI_Sendrecv: pairwise exchange with `peer` — the send is buffered,
  /// so symmetric calls cannot deadlock. Buffers must not alias.
  template <typename T>
  void sendrecv(std::span<const T> send_data, std::span<T> recv_data,
                int peer, int tag) {
    send(send_data, peer, tag);
    recv(recv_data, peer, tag);
  }

  /// MPI_Iprobe: true if a matching message is already queued. Does not
  /// advance virtual time (a real iprobe's cost is well under the model's
  /// resolution); combine with a clock-advancing activity in polling loops.
  bool iprobe(int src, int tag);

  // -- nonblocking point-to-point ---------------------------------------------

  /// Buffered nonblocking send: the payload is copied and on the wire when
  /// this returns, so the request is complete immediately (MPI_Ibsend
  /// semantics — our transport is buffered by construction).
  template <typename T>
  class Request isend(std::span<const T> data, int dst, int tag);

  /// isend(), counted as halo-exchange traffic like send_halo().
  template <typename T>
  class Request isend_halo(std::span<const T> data, int dst, int tag);

  /// Nonblocking receive: registers the buffer; completion (and the
  /// virtual-time accounting of the receive) happens at test()/wait().
  /// The buffer and this Comm must outlive the request.
  template <typename T>
  class Request irecv(std::span<T> data, int src, int tag);

  // -- collectives -------------------------------------------------------------

  /// Dissemination barrier; aligns host threads and (approximately) virtual
  /// clocks of all members.
  void barrier();

  /// Binomial-tree broadcast. `stream` selects an independent FIFO channel
  /// (see internal_tag::kBcastStreamBase); broadcasts within one stream
  /// must be issued in the same order by every rank, but different streams
  /// are unordered relative to each other.
  template <typename T>
  void bcast(std::span<T> data, int root, int stream = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_impl(std::as_writable_bytes(data), root, stream);
  }

  template <typename T>
  void bcast_value(T& value, int root, int stream = 0) {
    bcast(std::span<T>(&value, 1), root, stream);
  }

  /// Element-wise tree reduction of `data` into `out` at `root` (out is
  /// ignored on other ranks; may alias data on the root).
  template <typename T>
  void reduce(std::span<const T> data, std::span<T> out, ReduceOp op,
              int root);

  /// Every rank ends with the element-wise reduction of all
  /// contributions. Two schedules (CollectiveMode, docs/xmpi.md):
  ///   - kTree (default): reduce to rank 0 + broadcast — the seed
  ///     schedule; canonical outputs depend on its virtual timing.
  ///   - kScalable: binary-blocks reduce-scatter + allgather (vector
  ///     halving) for vectors with at least one element per rank of the
  ///     largest block, binary-blocks recursive doubling for shorter
  ///     ones. No rank moves more than ~2x the vector, instead of the
  ///     root's 2·(P-1)·n funnel. Both schedules reproduce the seed
  ///     tree's rank-ordered combine bracketing block by block, so the
  ///     result is bit-identical to kTree at *every* communicator size,
  ///     power of two or not (docs/xmpi.md, xmpi_scale_test).
  template <typename T>
  void allreduce(std::span<const T> data, std::span<T> out, ReduceOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    PLIN_CHECK_MSG(out.size() == data.size(),
                   "allreduce output span has wrong size");
    if (world_->collective_mode() == CollectiveMode::kScalable) {
      allreduce_scalable(data, out, op);
      return;
    }
    reduce(data, out, op, 0);
    bcast(out, 0);
  }

  template <typename T>
  T allreduce_value(T value, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// MPI_MAXLOC equivalent for distributed pivot search: returns the
  /// globally largest |value| with the owning index (ties: lowest index).
  /// Templated over the scalar so the fp32 pivot search of the mixed
  /// solver shares the strict-total-order and NaN contracts with fp64
  /// (xmpi_collectives_test pins both payload widths); MaxLoc keeps the
  /// historical double spelling.
  template <typename T>
  struct MaxLocT {
    T value = T(0);
    long long index = 0;
  };
  using MaxLoc = MaxLocT<double>;
  MaxLoc allreduce_maxloc(double value, long long index);
  MaxLocT<float> allreduce_maxloc(float value, long long index);

  /// Gathers `data` (same length on every rank) to `root`; `out` must hold
  /// size()*data.size() elements on the root.
  template <typename T>
  void gather(std::span<const T> data, std::span<T> out, int root);

  /// Concatenation of every rank's equal-length `data` on every rank.
  /// kTree: gather to rank 0 + broadcast (root moves ~(P + log P)·n);
  /// kScalable: ring (each rank forwards one block per step to its right
  /// neighbor, moving exactly 2·(P-1)·n/P through every rank) up to
  /// detail::kRingAllgatherMaxRanks members, then Bruck's algorithm
  /// (ceil(log2 P) rounds of doubling exchanges — the ring's P-1 latency
  /// terms would dominate at 100k ranks while per-rank volume stays the
  /// same ~2·(P-1)·n/P). Pure data movement, so all schedules are
  /// bit-identical at any size.
  template <typename T>
  void allgather(std::span<const T> data, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (world_->collective_mode() == CollectiveMode::kScalable &&
        size() > 1) {
      if (size() > detail::kRingAllgatherMaxRanks) {
        allgather_bruck(data, out);
      } else {
        allgather_ring(data, out);
      }
      return;
    }
    gather(data, out, 0);
    bcast(out, 0);
  }

  // -- communicator management -------------------------------------------------

  /// MPI_Comm_split: members with the same color form a new communicator,
  /// ordered by (key, parent rank). Must be called by all members in the
  /// same order.
  Comm split(int color, int key);

  /// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one communicator per node,
  /// keyed by parent rank — the grouping the paper's framework uses to
  /// elect monitoring ranks.
  Comm split_shared_node() { return split(my_node(), rank_); }

 private:
  friend class Request;

  Comm(World* world, std::vector<int> group, int rank, std::uint64_t context);

  RankState& me() const;
  void log_segment(hw::ActivityKind kind, double dt, double dram_bytes = 0.0);

  /// This rank's span recorder; nullptr when tracing is off (and constant
  /// nullptr when the prof subsystem is compiled out, which folds every
  /// hook away).
  prof::SpanRecorder* recorder() const;
  /// Collective bracket around one collective call (ring-buffered span).
  void prof_collective_begin(const char* name);
  void prof_collective_end();

  void send_impl(std::span<const std::byte> data, int dst, int tag,
                 bool control, bool halo = false);
  RecvInfo recv_impl(std::span<std::byte> data, int src, int tag);
  void bcast_impl(std::span<std::byte> data, int root, int stream);

  template <typename T>
  MaxLocT<T> maxloc_impl(T value, long long index);
  template <typename T>
  void allreduce_scalable(std::span<const T> data, std::span<T> out,
                          ReduceOp op);
  template <typename T>
  void allgather_ring(std::span<const T> data, std::span<T> out);
  template <typename T>
  void allgather_bruck(std::span<const T> data, std::span<T> out);

  World* world_;
  /// comm rank -> world rank. Empty means the identity mapping (the world
  /// communicator): materializing an explicit P-entry table per rank would
  /// cost O(P^2) memory across the world, which is what capped the old
  /// implementation near 10k ranks. split() still builds explicit groups.
  std::vector<int> group_;
  int rank_;
  std::uint64_t context_;
  int split_seq_ = 0;
};

/// Handle for a nonblocking operation. Move-only; complete with test() or
/// wait() (or wait_all over a batch).
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { *this = std::move(other); }
  Request& operator=(Request&& other) noexcept {
    comm_ = other.comm_;
    buffer_ = other.buffer_;
    peer_ = other.peer_;
    tag_ = other.tag_;
    pending_recv_ = other.pending_recv_;
    other.pending_recv_ = false;
    other.comm_ = nullptr;
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  bool valid() const { return comm_ != nullptr; }

  /// True once the operation is complete; for a pending receive, completes
  /// it if the matching message has arrived (MPI_Test).
  bool test();

  /// Blocks until complete (MPI_Wait).
  void wait();

 private:
  friend class Comm;
  Request(Comm* comm, std::span<std::byte> buffer, int peer, int tag,
          bool pending_recv)
      : comm_(comm), buffer_(buffer), peer_(peer), tag_(tag),
        pending_recv_(pending_recv) {}

  Comm* comm_ = nullptr;
  std::span<std::byte> buffer_{};
  int peer_ = 0;
  int tag_ = 0;
  bool pending_recv_ = false;
};

/// Completes every request in the batch (MPI_Waitall).
void wait_all(std::span<Request> requests);

template <typename T>
Request Comm::isend(std::span<const T> data, int dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  send_impl(std::as_bytes(data), dst, tag, /*control=*/false);
  return Request(this, {}, dst, tag, /*pending_recv=*/false);
}

template <typename T>
Request Comm::isend_halo(std::span<const T> data, int dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  send_impl(std::as_bytes(data), dst, tag, /*control=*/false, /*halo=*/true);
  return Request(this, {}, dst, tag, /*pending_recv=*/false);
}

template <typename T>
Request Comm::irecv(std::span<T> data, int src, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  return Request(this, std::as_writable_bytes(data), src, tag,
                 /*pending_recv=*/true);
}

// -- template implementations ---------------------------------------------

template <typename T>
Comm::MaxLocT<T> Comm::maxloc_impl(T value, long long index) {
  struct Entry {
    T value;
    long long index;
  };
  Entry acc{value, index};
  // Strict total order, so the winner is the same under every combine
  // order (tree and scalable schedules agree bitwise). NaN contract,
  // documented like the PR-1 idamax contract: a NaN candidate never beats
  // a numeric one, and among NaNs the lowest index wins. Canonical runs
  // never feed NaN here (pdgesv pivots on |a_ij| of finite matrices).
  const auto better = [](const Entry& a, const Entry& b) {
    const bool a_nan = a.value != a.value;
    const bool b_nan = b.value != b.value;
    if (a_nan != b_nan) return b_nan;
    if (!a_nan && a.value != b.value) return a.value > b.value;
    return a.index < b.index;
  };

  if (world_->collective_mode() == CollectiveMode::kScalable && size() > 1) {
    // Recursive doubling with a non-power-of-two pre/post fold: every rank
    // holds the winner after log2 rounds — no root funnel, no broadcast.
    prof_collective_begin("maxloc:rd");
    const int pof2 = detail::floor_pof2(size());
    const int rem = size() - pof2;
    bool core = true;
    if (rank_ < 2 * rem) {
      if ((rank_ & 1) != 0) {
        send_value(acc, rank_ - 1, internal_tag::kFold);
        acc = recv_value<Entry>(rank_ - 1, internal_tag::kFold);
        core = false;
      } else {
        const Entry incoming =
            recv_value<Entry>(rank_ + 1, internal_tag::kFold);
        if (better(incoming, acc)) acc = incoming;
      }
    }
    if (core) {
      const int cr = rank_ < 2 * rem ? rank_ / 2 : rank_ - rem;
      for (int mask = 1; mask < pof2; mask <<= 1) {
        const int peer_cr = cr ^ mask;
        const int peer = peer_cr < rem ? 2 * peer_cr : peer_cr + rem;
        send_value(acc, peer, internal_tag::kAllreduce);
        const Entry incoming =
            recv_value<Entry>(peer, internal_tag::kAllreduce);
        if (better(incoming, acc)) acc = incoming;
      }
      if (rank_ < 2 * rem) {
        send_value(acc, rank_ + 1, internal_tag::kFold);
      }
    }
    prof_collective_end();
    return MaxLocT<T>{acc.value, acc.index};
  }

  prof_collective_begin("maxloc");
  int mask = 1;
  while (mask < size()) {
    if ((rank_ & mask) == 0) {
      const int peer = rank_ | mask;
      if (peer < size()) {
        const Entry incoming = recv_value<Entry>(peer, internal_tag::kReduce);
        if (better(incoming, acc)) acc = incoming;
      }
    } else {
      send_value(acc, rank_ & ~mask, internal_tag::kReduce);
      break;
    }
    mask <<= 1;
  }
  bcast_value(acc, 0);
  prof_collective_end();
  return MaxLocT<T>{acc.value, acc.index};
}

template <typename T>
void Comm::reduce(std::span<const T> data, std::span<T> out, ReduceOp op,
                  int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  PLIN_CHECK_MSG(rank() != root || out.size() == data.size(),
                 "reduce output span has wrong size on root");
  prof_collective_begin("reduce");
  std::vector<T> acc(data.begin(), data.end());
  std::vector<T> incoming;  // hoisted: one allocation across all rounds
  const int vrank = (rank_ - root + size()) % size();
  int mask = 1;
  while (mask < size()) {
    if ((vrank & mask) == 0) {
      const int peer_v = vrank | mask;
      if (peer_v < size()) {
        const int peer = (peer_v + root) % size();
        incoming.resize(acc.size());
        recv(std::span<T>(incoming), peer, internal_tag::kReduce);
        // The receiver always sits on the lower-ranked subtree, so the
        // accumulator is the `lower` operand (NaN note for kMax/kMin: the
        // comparison-based combine keeps the lower operand when either
        // side is NaN, so a NaN contribution survives only from the side
        // the bracketing puts first — xmpi_collectives_test pins this).
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] = detail::combine_one(op, acc[i], incoming[i]);
        }
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % size();
      send(std::span<const T>(acc), peer, internal_tag::kReduce);
      break;
    }
    mask <<= 1;
  }
  if (rank_ == root) {
    std::memcpy(out.data(), acc.data(), acc.size() * sizeof(T));
  }
  prof_collective_end();
}

template <typename T>
void Comm::gather(std::span<const T> data, std::span<T> out, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  prof_collective_begin("gather");
  if (rank_ != root) {
    send(data, root, internal_tag::kGather);
    prof_collective_end();
    return;
  }
  PLIN_CHECK_MSG(out.size() >= data.size() * static_cast<std::size_t>(size()),
                 "gather output span too small");
  for (int src = 0; src < size(); ++src) {
    std::span<T> slot = out.subspan(
        static_cast<std::size_t>(src) * data.size(), data.size());
    if (src == rank_) {
      std::memcpy(slot.data(), data.data(), data.size() * sizeof(T));
    } else {
      recv(slot, src, internal_tag::kGather);
    }
  }
  prof_collective_end();
}

template <typename T>
void Comm::allreduce_scalable(std::span<const T> data, std::span<T> out,
                              ReduceOp op) {
  const std::size_t count = data.size();
  if (count != 0) {
    std::memcpy(out.data(), data.data(), count * sizeof(T));
  }
  if (size() == 1 || count == 0) return;

  // Binary-blocks decomposition: the seed tree's value is
  // F_0 = B_0 op (B_1 op (... op B_{L-1})), where B_b is the full binomial
  // reduction over block b's members (detail::binary_blocks). Both
  // schedules compute each B_b with the standard power-of-two exchange
  // inside its block, then fold the blocks together right-to-left with
  // block b as the lower operand — reproducing the tree's bracketing
  // exactly, so the result is bit-identical to kTree at every P. On a
  // power-of-two communicator there is one block and the fold phases
  // vanish, leaving the classic schedules untouched.
  const std::vector<detail::Block> blocks = detail::binary_blocks(size());
  const int nblocks = static_cast<int>(blocks.size());
  int b = nblocks - 1;
  while (rank_ < blocks[static_cast<std::size_t>(b)].base) --b;
  const int base = blocks[static_cast<std::size_t>(b)].base;
  const int m = blocks[static_cast<std::size_t>(b)].size;
  const int c = rank_ - base;  // block-local rank
  const int m0 = blocks[0].size;

  // Vector halving needs at least one element per rank of the largest
  // block; shorter vectors (scalars, norms) use latency-optimal recursive
  // doubling.
  const bool rsag = m0 > 1 && count >= static_cast<std::size_t>(m0);
  prof_collective_begin(rsag ? "allreduce:rsag" : "allreduce:rd");
  std::vector<T> scratch;

  if (rsag) {
    // Phase 1 — intra-block reduce-scatter by distance doubling / vector
    // halving: after it, this rank holds B_b restricted to its owned range
    // halving_range(c, m, count). The halving recursion reproduces the
    // binomial tree's combine bracketing element by element (rank-ordered
    // operands at every level).
    struct Range {
      std::size_t lo = 0;
      std::size_t hi = 0;
    };
    std::vector<Range> rounds;
    std::size_t lo = 0;
    std::size_t hi = count;
    for (int mask = 1; mask < m; mask <<= 1) {
      const int peer = base + (c ^ mask);
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      const bool lower = (c & mask) == 0;
      const std::size_t keep_lo = lower ? lo : mid;
      const std::size_t keep_hi = lower ? mid : hi;
      const std::size_t give_lo = lower ? mid : lo;
      send(std::span<const T>(out.data() + give_lo,
                              (lower ? hi : mid) - give_lo),
           peer, internal_tag::kAllreduce);
      scratch.resize(keep_hi - keep_lo);
      recv(std::span<T>(scratch.data(), keep_hi - keep_lo), peer,
           internal_tag::kAllreduce);
      for (std::size_t i = 0; i < keep_hi - keep_lo; ++i) {
        T& mine = out[keep_lo + i];
        mine = lower ? detail::combine_one(op, mine, scratch[i])
                     : detail::combine_one(op, scratch[i], mine);
      }
      rounds.push_back(Range{lo, hi});
      lo = keep_lo;
      hi = keep_hi;
    }

    // Phase 2 — cross-block fold, right to left. Block sizes divide each
    // other, so halving_range nests: this rank's range is contained in the
    // range that block b+1's local rank (c mod m_{b+1}) owns. That rank
    // holds F_{b+1} on its range once its own fold is done, and scatters
    // the pieces to the finer owners of block b. Combining with the
    // incoming F_{b+1} as the upper operand turns B_b into F_b on this
    // rank's range.
    if (b + 1 < nblocks) {
      const detail::Block& next = blocks[static_cast<std::size_t>(b + 1)];
      scratch.resize(hi - lo);
      recv(std::span<T>(scratch.data(), hi - lo),
           next.base + c % next.size, internal_tag::kFold);
      for (std::size_t i = 0; i < hi - lo; ++i) {
        out[lo + i] = detail::combine_one(op, out[lo + i], scratch[i]);
      }
    }
    if (b > 0) {
      const int mprev = blocks[static_cast<std::size_t>(b - 1)].size;
      for (int dst = c; dst < mprev; dst += m) {
        std::size_t dlo = 0;
        std::size_t dhi = 0;
        detail::halving_range(dst, mprev, count, dlo, dhi);
        send(std::span<const T>(out.data() + dlo, dhi - dlo),
             blocks[static_cast<std::size_t>(b - 1)].base + dst,
             internal_tag::kFold);
      }
      // Non-leading blocks are done reducing; they receive the finished
      // vector in phase 4.
      recv(std::span<T>(out.data(), count), rank_ - m0, internal_tag::kFold);
      prof_collective_end();
      return;
    }

    // Phase 3 — block-0 allgather mirror: replay the halving in reverse;
    // at reversed round r this rank has rebuilt its half of rounds[r] and
    // the same peer has the other half. Every block-0 rank ends with the
    // full F_0 vector.
    for (std::size_t r = rounds.size(); r-- > 0;) {
      const int mask = 1 << r;
      const int peer = base + (c ^ mask);
      const Range range = rounds[r];
      const std::size_t mid = range.lo + (range.hi - range.lo + 1) / 2;
      const bool lower = (c & mask) == 0;
      const std::size_t other_lo = lower ? mid : range.lo;
      const std::size_t other_hi = lower ? range.hi : mid;
      send(std::span<const T>(out.data() + lo, hi - lo), peer,
           internal_tag::kAllreduce);
      recv(std::span<T>(out.data() + other_lo, other_hi - other_lo), peer,
           internal_tag::kAllreduce);
      lo = range.lo;
      hi = range.hi;
    }

    // Phase 4 — distribution: block 0 spans at least half the
    // communicator, so one hop covers every remaining rank.
    if (rank_ + m0 < size()) {
      send(std::span<const T>(out.data(), count), rank_ + m0,
           internal_tag::kFold);
    }
  } else {
    // Phase 1 — intra-block recursive doubling: log2(m) full-vector
    // pairwise exchanges; every member of block b ends with B_b.
    scratch.resize(count);
    for (int mask = 1; mask < m; mask <<= 1) {
      const int peer = base + (c ^ mask);
      send(std::span<const T>(out.data(), count), peer,
           internal_tag::kAllreduce);
      recv(std::span<T>(scratch), peer, internal_tag::kAllreduce);
      const bool lower = (c & mask) == 0;
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = lower ? detail::combine_one(op, out[i], scratch[i])
                       : detail::combine_one(op, scratch[i], out[i]);
      }
    }
    if (nblocks > 1) {
      // Phase 2 — leader chain: block leaders fold right to left
      // (F_b = B_b op F_{b+1}, own block lower), so rank 0 ends with F_0.
      // Chain messages travel high rank -> low rank while the phase-3
      // broadcast travels low -> high, so sharing kFold is unambiguous.
      if (c == 0) {
        if (b + 1 < nblocks) {
          recv(std::span<T>(scratch), blocks[static_cast<std::size_t>(b + 1)].base,
               internal_tag::kFold);
          for (std::size_t i = 0; i < count; ++i) {
            out[i] = detail::combine_one(op, out[i], scratch[i]);
          }
        }
        if (b > 0) {
          send(std::span<const T>(out.data(), count),
               blocks[static_cast<std::size_t>(b - 1)].base,
               internal_tag::kFold);
        }
      }
      // Phase 3 — binomial broadcast of F_0 from rank 0 over the whole
      // communicator (the same tree bcast_impl walks).
      for (int mask = detail::floor_pof2(size()); mask >= 1; mask >>= 1) {
        if ((rank_ & (mask - 1)) != 0) continue;
        if ((rank_ & mask) != 0) {
          recv(std::span<T>(out.data(), count), rank_ - mask,
               internal_tag::kFold);
        } else if (rank_ + mask < size()) {
          send(std::span<const T>(out.data(), count), rank_ + mask,
               internal_tag::kFold);
        }
      }
    }
  }
  prof_collective_end();
}

template <typename T>
void Comm::allgather_ring(std::span<const T> data, std::span<T> out) {
  PLIN_CHECK_MSG(out.size() >= data.size() * static_cast<std::size_t>(size()),
                 "allgather output span too small");
  const std::size_t chunk = data.size();
  if (chunk != 0) {
    std::memcpy(out.data() + static_cast<std::size_t>(rank_) * chunk,
                data.data(), chunk * sizeof(T));
  }
  if (size() == 1 || chunk == 0) return;
  prof_collective_begin("allgather:ring");
  const int right = (rank_ + 1) % size();
  const int left = (rank_ + size() - 1) % size();
  for (int step = 0; step < size() - 1; ++step) {
    // Forward the block received last step (initially our own) to the
    // right; receive the next-older block from the left.
    const int send_block = (rank_ - step + size()) % size();
    const int recv_block = (rank_ - step + size() - 1) % size();
    send(std::span<const T>(
             out.data() + static_cast<std::size_t>(send_block) * chunk,
             chunk),
         right, internal_tag::kAllgather);
    recv(std::span<T>(out.data() +
                          static_cast<std::size_t>(recv_block) * chunk,
                      chunk),
         left, internal_tag::kAllgather);
  }
  prof_collective_end();
}

template <typename T>
void Comm::allgather_bruck(std::span<const T> data, std::span<T> out) {
  PLIN_CHECK_MSG(out.size() >= data.size() * static_cast<std::size_t>(size()),
                 "allgather output span too small");
  const std::size_t chunk = data.size();
  const int p = size();
  if (chunk == 0) return;
  if (p == 1) {
    std::memcpy(out.data(), data.data(), chunk * sizeof(T));
    return;
  }
  prof_collective_begin("allgather:bruck");
  // tmp slot i holds the block of rank (rank_ + i) % p; starting from our
  // own block, each round ships the first `quota` known blocks `have`
  // ranks to the left and receives the next `quota` from the right,
  // doubling coverage until all p blocks are known, then a local rotation
  // puts them in rank order. ceil(log2 p) rounds at any p; total bytes
  // through a rank match the ring's ~2·(p-1)·chunk.
  std::vector<T> tmp(static_cast<std::size_t>(p) * chunk);
  std::memcpy(tmp.data(), data.data(), chunk * sizeof(T));
  int have = 1;
  while (have < p) {
    const int quota = have < p - have ? have : p - have;
    const int dst = (rank_ - have + p) % p;
    const int src = (rank_ + have) % p;
    send(std::span<const T>(tmp.data(),
                            static_cast<std::size_t>(quota) * chunk),
         dst, internal_tag::kAllgather);
    recv(std::span<T>(tmp.data() + static_cast<std::size_t>(have) * chunk,
                      static_cast<std::size_t>(quota) * chunk),
         src, internal_tag::kAllgather);
    have += quota;
  }
  for (int i = 0; i < p; ++i) {
    const int block = (rank_ + i) % p;
    std::memcpy(out.data() + static_cast<std::size_t>(block) * chunk,
                tmp.data() + static_cast<std::size_t>(i) * chunk,
                chunk * sizeof(T));
  }
  prof_collective_end();
}

}  // namespace plin::xmpi
