#include "xmpi/world.hpp"

#include <cstdlib>
#include <string_view>

#include "support/error.hpp"

namespace plin::xmpi {

namespace {

/// On/off environment switch: unset or empty → `fallback`; "0"/"off" →
/// false; anything else → true.
bool env_switch(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string_view text(value);
  return text != "0" && text != "off";
}

CollectiveMode env_collective_mode() {
  const char* value = std::getenv("PLIN_XMPI_COLL");
  if (value == nullptr || *value == '\0') return CollectiveMode::kTree;
  const std::string_view text(value);
  if (text == "tree") return CollectiveMode::kTree;
  if (text == "scalable") return CollectiveMode::kScalable;
  PLIN_CHECK_MSG(false, "PLIN_XMPI_COLL must be tree or scalable");
  return CollectiveMode::kTree;
}

std::size_t env_pool_cap() {
  const char* value = std::getenv("PLIN_XMPI_POOL_CAP");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

World::World(hw::MachineSpec machine, hw::Placement placement)
    : layout_(machine, placement),
      network_(machine.network),
      power_(machine.power) {
  configure_transport(TransportConfig{});
  const int packages = machine.node.sockets;
  ledgers_.reserve(static_cast<std::size_t>(layout_.nodes()));
  for (int node = 0; node < layout_.nodes(); ++node) {
    std::vector<int> cores(static_cast<std::size_t>(packages),
                           machine.node.socket.cores);
    std::vector<int> ranked(static_cast<std::size_t>(packages), 0);
    for (int socket = 0; socket < packages; ++socket) {
      ranked[static_cast<std::size_t>(socket)] =
          layout_.ranks_on_socket(node, socket);
    }
    ledgers_.push_back(std::make_unique<trace::EnergyLedger>(
        power_, std::move(cores), std::move(ranked)));
  }

  rank_count_ = layout_.ranks();
  ranks_ = std::make_unique<RankState[]>(static_cast<std::size_t>(rank_count_));
  for (int rank = 0; rank < rank_count_; ++rank) {
    RankState& state = ranks_[static_cast<std::size_t>(rank)];
    const int node = layout_.node_of(rank);
    state.hw_context.ledger = ledgers_[static_cast<std::size_t>(node)].get();
    state.hw_context.clock = &state.clock;
    state.hw_context.node = node;
  }
}

RankState& World::rank_state(int world_rank) {
  PLIN_CHECK_MSG(world_rank >= 0 && world_rank < size(),
                 "world rank out of range");
  return ranks_[static_cast<std::size_t>(world_rank)];
}

trace::EnergyLedger& World::node_ledger(int node) {
  PLIN_CHECK_MSG(node >= 0 && node < node_count(), "node out of range");
  return *ledgers_[static_cast<std::size_t>(node)];
}

std::uint64_t World::intern_context(std::uint64_t parent_context, int seq) {
  std::lock_guard<std::mutex> lock(context_mutex_);
  const auto key = std::make_pair(parent_context, seq);
  const auto it = contexts_.find(key);
  if (it != contexts_.end()) return it->second;
  const std::uint64_t id = next_context_++;
  contexts_.emplace(key, id);
  return id;
}

void World::post(int dst_world, Envelope&& envelope) {
  rank_state(dst_world).mailbox.post(std::move(envelope));
}

void World::deliver(int dst_world, Envelope&& envelope,
                    std::span<const std::byte> data) {
  const std::size_t bytes = data.size();
  if (rank_state(dst_world).mailbox.deliver(std::move(envelope), data, pool_,
                                            rendezvous_enabled_)) {
    rendezvous_messages_.fetch_add(1, std::memory_order_relaxed);
    rendezvous_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    eager_messages_.fetch_add(1, std::memory_order_relaxed);
  }
}

void World::configure_transport(const TransportConfig& config) {
  const bool pool_on =
      config.pool == PoolMode::kAuto
          ? env_switch("PLIN_XMPI_POOL", true)
          : config.pool == PoolMode::kOn;
  rendezvous_enabled_ =
      config.rendezvous == RendezvousMode::kAuto
          ? env_switch("PLIN_XMPI_RENDEZVOUS", true)
          : config.rendezvous == RendezvousMode::kOn;
  collective_mode_ = config.collectives == CollectiveMode::kAuto
                         ? env_collective_mode()
                         : config.collectives;
  const std::size_t cap = config.pool_max_cached_per_class != 0
                              ? config.pool_max_cached_per_class
                              : env_pool_cap();
  pool_.configure(PayloadPool::Config{pool_on, cap});
}

TransportStats World::transport_stats() const {
  TransportStats stats;
  stats.pool_enabled = pool_.config().enabled;
  stats.rendezvous_enabled = rendezvous_enabled_;
  stats.pool = pool_.stats();
  stats.eager_messages = eager_messages_.load(std::memory_order_relaxed);
  stats.rendezvous_messages =
      rendezvous_messages_.load(std::memory_order_relaxed);
  stats.rendezvous_bytes = rendezvous_bytes_.load(std::memory_order_relaxed);
  return stats;
}

TrafficCounters World::total_traffic() const {
  TrafficCounters total;
  for (int r = 0; r < rank_count_; ++r) {
    const RankState& rank = ranks_[static_cast<std::size_t>(r)];
    total.data_messages += rank.traffic.data_messages;
    total.data_bytes += rank.traffic.data_bytes;
    total.control_messages += rank.traffic.control_messages;
    total.control_bytes += rank.traffic.control_bytes;
    total.recv_messages += rank.traffic.recv_messages;
    total.recv_bytes += rank.traffic.recv_bytes;
    total.halo_messages += rank.traffic.halo_messages;
    total.halo_bytes += rank.traffic.halo_bytes;
  }
  return total;
}

void World::set_tracing(bool enabled, std::size_t ring_spans) {
  tracing_ = enabled && prof::kCompiledIn;
  const std::size_t capacity =
      ring_spans != 0 ? ring_spans : prof::kDefaultRingSpans;
  for (int r = 0; r < rank_count_; ++r) {
    ranks_[static_cast<std::size_t>(r)].prof =
        tracing_ ? std::make_unique<prof::SpanRecorder>(capacity) : nullptr;
  }
}

void World::abort() noexcept {
  abort_flag_.store(true);
  for (int r = 0; r < rank_count_; ++r) {
    ranks_[static_cast<std::size_t>(r)].mailbox.interrupt();
  }
}

}  // namespace plin::xmpi
