// Runtime — spawns one host thread per simulated rank and runs a rank-main
// function against the world communicator, then aggregates virtual duration,
// traffic and per-domain energy.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "xmpi/comm.hpp"

namespace plin::xmpi {

/// Energy of one RAPL package pair (PKG + its DRAM domain), in joules.
struct PackageEnergy {
  double pkg_j = 0.0;
  double dram_j = 0.0;
};

struct NodeEnergy {
  std::vector<PackageEnergy> packages;
};

struct EnergyReport {
  std::vector<NodeEnergy> nodes;

  double total_pkg_j() const;
  double total_dram_j() const;
  double total_j() const { return total_pkg_j() + total_dram_j(); }
};

struct RunConfig {
  hw::MachineSpec machine;
  hw::Placement placement;
  /// If non-empty, every rank's activity segments are written to this path
  /// as a chrome://tracing / Perfetto JSON file after the run: one lane per
  /// rank (grouped by node), one slice per compute / memory / comm-active /
  /// comm-wait interval in virtual time. Numeric-tier scale only.
  std::string chrome_trace_path;
  /// If > 0, RunResult.timeline holds a per-node power time series sampled
  /// at this virtual-time period — the simulated *external wattmeter* view
  /// (the "ground truth" instrument the paper's §6 plans to add next to
  /// PAPI). Unlike RAPL it sees every domain of the node continuously and
  /// is not quantized to millisecond counter updates.
  double timeline_period_s = 0.0;
};

/// One wattmeter sample: average power over (t - period, t].
struct TimelineSample {
  double t = 0.0;
  double pkg_w[2] = {0.0, 0.0};
  double dram_w[2] = {0.0, 0.0};

  double node_w() const {
    return pkg_w[0] + pkg_w[1] + dram_w[0] + dram_w[1];
  }
};

struct NodeTimeline {
  int node = 0;
  std::vector<TimelineSample> samples;
};

struct RunResult {
  /// Virtual time at which the last rank finished.
  double duration_s = 0.0;
  /// Per-rank completion times (virtual).
  std::vector<double> rank_times;
  /// Aggregated send-side traffic counters.
  TrafficCounters traffic;
  /// Per-node, per-package energy integrated over [0, duration_s].
  EnergyReport energy;
  /// Core-seconds by activity, summed over every core of the run — the
  /// utilization breakdown behind the power figures.
  double compute_s = 0.0;
  double membound_s = 0.0;
  double commactive_s = 0.0;
  double commwait_s = 0.0;

  /// External-wattmeter time series (one per node); filled only when
  /// RunConfig::timeline_period_s > 0.
  std::vector<NodeTimeline> timeline;

  double busy_s() const {
    return compute_s + membound_s + commactive_s + commwait_s;
  }
};

class Runtime {
 public:
  using RankMain = std::function<void(Comm&)>;

  /// Runs `rank_main` on every rank of the placement. Exceptions thrown by
  /// any rank abort the run and are rethrown here (first one wins).
  static RunResult run(const RunConfig& config, const RankMain& rank_main);
};

}  // namespace plin::xmpi
