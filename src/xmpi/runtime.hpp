// Runtime — executes a rank-main function on every simulated rank of a
// placement, then aggregates virtual duration, traffic and per-domain
// energy.
//
// Rank execution is multiplexed over a bounded worker pool by default
// (FiberScheduler: N host workers ≈ cores running all ranks on user-level
// stacks), with an inline fast path for 1-rank worlds and a legacy
// thread-per-rank executor retained as a fallback/baseline. The executor
// choice changes host wall-clock only: all simulated outputs are
// bit-identical across executors and worker counts (see docs/xmpi.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "prof/span.hpp"
#include "xmpi/comm.hpp"

namespace plin::xmpi {

/// Energy of one RAPL package pair (PKG + its DRAM domain), in joules.
struct PackageEnergy {
  double pkg_j = 0.0;
  double dram_j = 0.0;
};

struct NodeEnergy {
  std::vector<PackageEnergy> packages;
};

struct EnergyReport {
  std::vector<NodeEnergy> nodes;

  double total_pkg_j() const;
  double total_dram_j() const;
  double total_j() const { return total_pkg_j() + total_dram_j(); }
};

/// How simulated ranks map onto host threads.
enum class ExecutorKind {
  /// Resolve from PLIN_XMPI_EXECUTOR ("pool" | "threads"), defaulting to
  /// the worker pool.
  kAuto,
  /// Bounded worker pool over per-rank fibers (the default).
  kWorkerPool,
  /// One OS thread per rank — the original executor, kept as the perf
  /// baseline and as a fallback for platforms without ucontext.
  kThreadPerRank,
};

struct RunConfig {
  hw::MachineSpec machine;
  hw::Placement placement;
  /// Host execution engine; simulated results do not depend on it.
  ExecutorKind executor = ExecutorKind::kAuto;
  /// Worker-pool size; 0 → PLIN_XMPI_WORKERS env, else
  /// hardware_concurrency. Ignored by kThreadPerRank.
  std::size_t workers = 0;
  /// Usable bytes per rank fiber stack; 0 → PLIN_XMPI_STACK_KB env, else
  /// 512 KiB (lazily committed). Ignored by kThreadPerRank.
  std::size_t fiber_stack_bytes = 0;
  /// Message-transport knobs: payload buffer pool, zero-copy rendezvous
  /// delivery and the collective schedule family. kAuto fields resolve
  /// from PLIN_XMPI_POOL / PLIN_XMPI_RENDEZVOUS / PLIN_XMPI_COLL /
  /// PLIN_XMPI_POOL_CAP (docs/xmpi.md). Pool and rendezvous are host-side
  /// only; the collective mode changes simulated schedules (default: the
  /// seed tree schedules).
  TransportConfig transport;
  /// Enables span tracing for this run even when no output path is set;
  /// the collected prof::TraceData is returned in RunResult::trace.
  /// Tracing is also switched on by chrome_trace_path / trace_dir below or
  /// by a truthy PLIN_TRACE environment variable (docs/tracing.md).
  bool trace = false;
  /// Per-rank span ring capacity; 0 → PLIN_TRACE_SPANS env, else
  /// prof::kDefaultRingSpans. Phase brackets and per-peer counters are
  /// exact regardless; only fine-grained spans are ring-bounded.
  std::size_t trace_ring_spans = 0;
  /// If non-empty, the run's spans are written to this path as a
  /// chrome://tracing / Perfetto JSON file: one track per rank (grouped by
  /// node), slices for phases / collectives / activities / messages, and a
  /// per-node dynamic-power counter track. Numeric-tier scale only.
  std::string chrome_trace_path;
  /// If non-empty, the full canonical trace bundle (trace.json,
  /// summary.json and the analysis CSVs) is written into this directory.
  /// The bundle bytes are identical across executors and worker counts.
  std::string trace_dir;
  /// If > 0, RunResult.timeline holds a per-node power time series sampled
  /// at this virtual-time period — the simulated *external wattmeter* view
  /// (the "ground truth" instrument the paper's §6 plans to add next to
  /// PAPI). Unlike RAPL it sees every domain of the node continuously and
  /// is not quantized to millisecond counter updates.
  double timeline_period_s = 0.0;
  /// Copies every rank's sparse per-peer traffic map into
  /// RunResult::rank_peers. Off by default: the copy is O(total peer
  /// entries), which matters at 100k ranks (the cheap aggregate
  /// peer_entries_* fields are always filled).
  bool peer_traffic = false;
};

/// One wattmeter sample: average power over (t - period, t].
struct TimelineSample {
  double t = 0.0;
  double pkg_w[2] = {0.0, 0.0};
  double dram_w[2] = {0.0, 0.0};

  double node_w() const {
    return pkg_w[0] + pkg_w[1] + dram_w[0] + dram_w[1];
  }
};

struct NodeTimeline {
  int node = 0;
  std::vector<TimelineSample> samples;
};

struct RunResult {
  /// Virtual time at which the last rank finished.
  double duration_s = 0.0;
  /// Per-rank completion times (virtual).
  std::vector<double> rank_times;
  /// Aggregated traffic counters (send-side classes + receive mirror).
  TrafficCounters traffic;
  /// Per-world-rank traffic — through_bytes() of rank 0 is the root-funnel
  /// load the scalable collectives eliminate (bench_collectives).
  std::vector<TrafficCounters> rank_traffic;
  /// Per-world-rank sparse peer traffic (sorted by peer); filled only when
  /// RunConfig::peer_traffic is set.
  std::vector<std::vector<PeerTraffic>> rank_peers;
  /// Always-on aggregates of the sparse peer maps: total entries across
  /// all ranks and the largest per-rank peer count — the O(log P)-peers
  /// property bench_scale gates on.
  std::uint64_t peer_entries_total = 0;
  std::uint64_t peer_entries_max = 0;
  /// Per-node, per-package energy integrated over [0, duration_s].
  EnergyReport energy;
  /// Core-seconds by activity, summed over every core of the run — the
  /// utilization breakdown behind the power figures.
  double compute_s = 0.0;
  double membound_s = 0.0;
  double commactive_s = 0.0;
  double commwait_s = 0.0;

  /// External-wattmeter time series (one per node); filled only when
  /// RunConfig::timeline_period_s > 0.
  std::vector<NodeTimeline> timeline;

  /// Collected span trace; non-null only when tracing was enabled (and the
  /// prof subsystem is compiled in). Shared so callers can hold it past
  /// further runs cheaply.
  std::shared_ptr<const prof::TraceData> trace;

  /// Host-side diagnostics (never feed back into simulated numbers):
  /// which executor actually ran ("inline", "pool" or "threads"), how many
  /// host workers it used, and the pool's fiber park/wake counts (0 for
  /// the inline and thread-per-rank executors).
  std::string host_executor;
  std::size_t host_workers = 0;
  std::uint64_t host_parks = 0;
  std::uint64_t host_wakes = 0;
  /// Transport counters for this run (pool hits/misses/peak bytes, eager
  /// vs rendezvous deliveries). Host-side diagnostics like the fields
  /// above: the values depend on host scheduling (whether a receiver was
  /// already parked when its sender posted), so they are deliberately
  /// excluded from the canonical trace bundle.
  TransportStats transport;

  double busy_s() const {
    return compute_s + membound_s + commactive_s + commwait_s;
  }
};

class Runtime {
 public:
  using RankMain = std::function<void(Comm&)>;

  /// Runs `rank_main` on every rank of the placement. Exceptions thrown by
  /// any rank abort the run and are rethrown here (first one wins).
  static RunResult run(const RunConfig& config, const RankMain& rank_main);
};

}  // namespace plin::xmpi
