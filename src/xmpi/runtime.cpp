#include "xmpi/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "support/error.hpp"
#include "xmpi/scheduler.hpp"

namespace plin::xmpi {

double EnergyReport::total_pkg_j() const {
  double total = 0.0;
  for (const NodeEnergy& node : nodes) {
    for (const PackageEnergy& pkg : node.packages) total += pkg.pkg_j;
  }
  return total;
}

double EnergyReport::total_dram_j() const {
  double total = 0.0;
  for (const NodeEnergy& node : nodes) {
    for (const PackageEnergy& pkg : node.packages) total += pkg.dram_j;
  }
  return total;
}

namespace {

/// Writes the collected per-rank activity events as a Chrome trace-event
/// JSON file (timestamps in microseconds of virtual time).
void write_chrome_trace(const std::string& path, World& world) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw IoError("cannot open trace file: " + path);
  os << "[\n";
  bool first = true;
  for (int rank = 0; rank < world.size(); ++rank) {
    const RankState& state = world.rank_state(rank);
    const int node = state.hw_context.node;
    // Lane metadata: group ranks under their node.
    os << (first ? "" : ",\n")
       << R"({"ph":"M","name":"thread_name","pid":)" << node << ",\"tid\":"
       << rank << R"(,"args":{"name":"rank )" << rank << "\"}}";
    first = false;
    for (const TraceEvent& event : state.trace_events) {
      os << ",\n{\"ph\":\"X\",\"name\":\"" << hw::to_string(event.kind)
         << "\",\"cat\":\"" << hw::to_string(event.kind)
         << "\",\"pid\":" << node << ",\"tid\":" << rank
         << ",\"ts\":" << event.t0 * 1e6 << ",\"dur\":" << event.dt * 1e6
         << "}";
    }
  }
  os << "\n]\n";
  if (!os) throw IoError("trace write failed: " + path);
}

/// Reads a non-negative integer environment variable; `fallback` when
/// unset or unparsable.
std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Resolves the executor: explicit config wins, then PLIN_XMPI_EXECUTOR
/// ("pool" | "threads"), then the worker pool.
ExecutorKind resolve_executor(ExecutorKind requested) {
  if (requested != ExecutorKind::kAuto) return requested;
  const char* value = std::getenv("PLIN_XMPI_EXECUTOR");
  if (value != nullptr) {
    const std::string name(value);
    if (name == "threads") return ExecutorKind::kThreadPerRank;
    if (name == "pool") return ExecutorKind::kWorkerPool;
    PLIN_CHECK_MSG(name.empty() || name == "auto",
                   "PLIN_XMPI_EXECUTOR must be auto, pool or threads");
  }
  return ExecutorKind::kWorkerPool;
}

}  // namespace

RunResult Runtime::run(const RunConfig& config, const RankMain& rank_main) {
  PLIN_CHECK_MSG(static_cast<bool>(rank_main), "rank_main must be callable");
  World world(config.machine, config.placement);
  world.set_tracing(!config.chrome_trace_path.empty());

  RunResult result;

  if (world.size() == 1) {
    // 1-rank fast path: no pool, no fibers, no thread spawn — rank_main
    // runs inline on the calling thread (whose previous hardware binding,
    // if any, is restored afterwards). Exceptions propagate directly.
    RankState& state = world.rank_state(0);
    trace::ScopedHardwareBinding binding(&state.hw_context);
    Comm comm(&world, 0);
    rank_main(comm);
    result.host_executor = "inline";
    result.host_workers = 1;
  } else {
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const auto rank_body = [&world, &rank_main, &error_mutex,
                            &first_error](int rank) {
      try {
        Comm comm(&world, rank);
        rank_main(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world.abort();
      }
    };

    const ExecutorKind executor = resolve_executor(config.executor);
    bool deadlocked = false;
    if (executor == ExecutorKind::kWorkerPool) {
      FiberScheduler::Options options;
      options.workers =
          config.workers != 0 ? config.workers
                              : env_size_t("PLIN_XMPI_WORKERS", 0);
      options.stack_bytes =
          config.fiber_stack_bytes != 0
              ? config.fiber_stack_bytes
              : env_size_t("PLIN_XMPI_STACK_KB", 0) * 1024;
      options.on_deadlock = [&world] { world.abort(); };

      std::vector<FiberScheduler::Task> tasks;
      tasks.reserve(static_cast<std::size_t>(world.size()));
      for (int rank = 0; rank < world.size(); ++rank) {
        FiberScheduler::Task task;
        task.body = [&rank_body, rank] { rank_body(rank); };
        task.hw = &world.rank_state(rank).hw_context;
        tasks.push_back(std::move(task));
      }
      FiberScheduler scheduler(std::move(tasks), std::move(options));
      for (int rank = 0; rank < world.size(); ++rank) {
        world.rank_state(rank).mailbox.set_parker(
            scheduler.parker(static_cast<std::size_t>(rank)));
      }
      scheduler.run();
      for (int rank = 0; rank < world.size(); ++rank) {
        world.rank_state(rank).mailbox.set_parker(nullptr);
      }
      deadlocked = scheduler.deadlocked();
      result.host_executor = "pool";
      result.host_workers = scheduler.worker_count();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(world.size()));
      for (int rank = 0; rank < world.size(); ++rank) {
        threads.emplace_back([&world, &rank_body, rank] {
          RankState& state = world.rank_state(rank);
          trace::ScopedHardwareBinding binding(&state.hw_context);
          rank_body(rank);
        });
      }
      for (std::thread& thread : threads) thread.join();
      result.host_executor = "threads";
      result.host_workers = threads.size();
    }

    if (deadlocked) {
      // Every surviving rank was woken with Aborted, so first_error holds
      // an Aborted — replace it with the actual diagnosis.
      throw Error(
          "xmpi deadlock detected: every unfinished rank is blocked in a "
          "receive or collective with no message in flight");
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  if (!config.chrome_trace_path.empty()) {
    write_chrome_trace(config.chrome_trace_path, world);
  }

  result.rank_times.reserve(static_cast<std::size_t>(world.size()));
  for (int rank = 0; rank < world.size(); ++rank) {
    const double t = world.rank_state(rank).clock.now();
    result.rank_times.push_back(t);
    result.duration_s = std::max(result.duration_s, t);
  }
  result.traffic = world.total_traffic();

  const int packages = config.machine.node.sockets;
  result.energy.nodes.resize(static_cast<std::size_t>(world.node_count()));
  for (int node = 0; node < world.node_count(); ++node) {
    trace::EnergyLedger& ledger = world.node_ledger(node);
    NodeEnergy& node_energy =
        result.energy.nodes[static_cast<std::size_t>(node)];
    node_energy.packages.resize(static_cast<std::size_t>(packages));
    for (int p = 0; p < packages; ++p) {
      PackageEnergy& pkg =
          node_energy.packages[static_cast<std::size_t>(p)];
      pkg.pkg_j = ledger.package_energy_j(p, result.duration_s);
      pkg.dram_j = ledger.dram_energy_j(p, result.duration_s);
      result.compute_s += ledger.activity_seconds(
          p, hw::ActivityKind::kCompute, result.duration_s);
      result.membound_s += ledger.activity_seconds(
          p, hw::ActivityKind::kMemBound, result.duration_s);
      result.commactive_s += ledger.activity_seconds(
          p, hw::ActivityKind::kCommActive, result.duration_s);
      result.commwait_s += ledger.activity_seconds(
          p, hw::ActivityKind::kCommWait, result.duration_s);
    }
  }

  // Simulated external wattmeter: sample every node's ledger on a fixed
  // virtual-time grid. Differencing cumulative energies gives the average
  // power of each window, free of RAPL's counter quantization.
  if (config.timeline_period_s > 0.0) {
    const double period = config.timeline_period_s;
    result.timeline.resize(static_cast<std::size_t>(world.node_count()));
    for (int node = 0; node < world.node_count(); ++node) {
      trace::EnergyLedger& ledger = world.node_ledger(node);
      NodeTimeline& series =
          result.timeline[static_cast<std::size_t>(node)];
      series.node = node;
      double prev_pkg[2] = {0.0, 0.0};
      double prev_dram[2] = {0.0, 0.0};
      for (double t = period; t < result.duration_s + period; t += period) {
        const double clipped = std::min(t, result.duration_s);
        const double window = clipped - (t - period);
        if (window <= 0.0) break;
        TimelineSample sample;
        sample.t = clipped;
        for (int p = 0; p < packages && p < 2; ++p) {
          const double pkg = ledger.package_energy_j(p, clipped);
          const double dram = ledger.dram_energy_j(p, clipped);
          sample.pkg_w[p] = (pkg - prev_pkg[p]) / window;
          sample.dram_w[p] = (dram - prev_dram[p]) / window;
          prev_pkg[p] = pkg;
          prev_dram[p] = dram;
        }
        series.samples.push_back(sample);
      }
    }
  }
  return result;
}

}  // namespace plin::xmpi
