#include "xmpi/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "prof/export.hpp"
#include "prof/recorder.hpp"
#include "support/error.hpp"
#include "xmpi/scheduler.hpp"

namespace plin::xmpi {

double EnergyReport::total_pkg_j() const {
  double total = 0.0;
  for (const NodeEnergy& node : nodes) {
    for (const PackageEnergy& pkg : node.packages) total += pkg.pkg_j;
  }
  return total;
}

double EnergyReport::total_dram_j() const {
  double total = 0.0;
  for (const NodeEnergy& node : nodes) {
    for (const PackageEnergy& pkg : node.packages) total += pkg.dram_j;
  }
  return total;
}

namespace {

/// Truthy environment flag: set and neither empty nor "0".
bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' &&
         std::string_view(value) != "0";
}

/// Reads a non-negative integer environment variable; `fallback` when
/// unset or unparsable.
std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Resolves the executor: explicit config wins, then PLIN_XMPI_EXECUTOR
/// ("pool" | "threads"), then the worker pool.
ExecutorKind resolve_executor(ExecutorKind requested) {
  if (requested != ExecutorKind::kAuto) return requested;
  const char* value = std::getenv("PLIN_XMPI_EXECUTOR");
  if (value != nullptr) {
    const std::string name(value);
    if (name == "threads") return ExecutorKind::kThreadPerRank;
    if (name == "pool") return ExecutorKind::kWorkerPool;
    PLIN_CHECK_MSG(name.empty() || name == "auto",
                   "PLIN_XMPI_EXECUTOR must be auto, pool or threads");
  }
  return ExecutorKind::kWorkerPool;
}

}  // namespace

RunResult Runtime::run(const RunConfig& config, const RankMain& rank_main) {
  PLIN_CHECK_MSG(static_cast<bool>(rank_main), "rank_main must be callable");
  World world(config.machine, config.placement);
  world.configure_transport(config.transport);

  // Tracing is requested explicitly, implied by an output path, or forced
  // from the environment (PLIN_TRACE=1). set_tracing additionally requires
  // prof::kCompiledIn; world.tracing() reports what actually happened.
  const bool want_trace = config.trace || !config.chrome_trace_path.empty() ||
                          !config.trace_dir.empty() || env_flag("PLIN_TRACE");
  const std::size_t ring_spans =
      config.trace_ring_spans != 0
          ? config.trace_ring_spans
          : env_size_t("PLIN_TRACE_SPANS", prof::kDefaultRingSpans);
  world.set_tracing(want_trace, ring_spans);

  RunResult result;

  if (world.size() == 1) {
    // 1-rank fast path: no pool, no fibers, no thread spawn — rank_main
    // runs inline on the calling thread (whose previous hardware binding,
    // if any, is restored afterwards). Exceptions propagate directly.
    RankState& state = world.rank_state(0);
    trace::ScopedHardwareBinding binding(&state.hw_context);
    Comm comm(&world, 0);
    rank_main(comm);
    result.host_executor = "inline";
    result.host_workers = 1;
  } else {
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const auto rank_body = [&world, &rank_main, &error_mutex,
                            &first_error](int rank) {
      try {
        Comm comm(&world, rank);
        rank_main(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world.abort();
      }
    };

    const ExecutorKind executor = resolve_executor(config.executor);
    bool deadlocked = false;
    if (executor == ExecutorKind::kWorkerPool) {
      FiberScheduler::Options options;
      options.workers =
          config.workers != 0 ? config.workers
                              : env_size_t("PLIN_XMPI_WORKERS", 0);
      options.stack_bytes =
          config.fiber_stack_bytes != 0
              ? config.fiber_stack_bytes
              : env_size_t("PLIN_XMPI_STACK_KB", 0) * 1024;
      options.on_deadlock = [&world] { world.abort(); };

      std::vector<FiberScheduler::Task> tasks;
      tasks.reserve(static_cast<std::size_t>(world.size()));
      for (int rank = 0; rank < world.size(); ++rank) {
        FiberScheduler::Task task;
        task.body = [&rank_body, rank] { rank_body(rank); };
        task.hw = &world.rank_state(rank).hw_context;
        tasks.push_back(std::move(task));
      }
      FiberScheduler scheduler(std::move(tasks), std::move(options));
      for (int rank = 0; rank < world.size(); ++rank) {
        world.rank_state(rank).mailbox.set_parker(
            scheduler.parker(static_cast<std::size_t>(rank)));
      }
      scheduler.run();
      for (int rank = 0; rank < world.size(); ++rank) {
        world.rank_state(rank).mailbox.set_parker(nullptr);
      }
      deadlocked = scheduler.deadlocked();
      result.host_executor = "pool";
      result.host_workers = scheduler.worker_count();
      result.host_parks = scheduler.park_count();
      result.host_wakes = scheduler.wake_count();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(world.size()));
      for (int rank = 0; rank < world.size(); ++rank) {
        threads.emplace_back([&world, &rank_body, rank] {
          RankState& state = world.rank_state(rank);
          trace::ScopedHardwareBinding binding(&state.hw_context);
          rank_body(rank);
        });
      }
      for (std::thread& thread : threads) thread.join();
      result.host_executor = "threads";
      result.host_workers = threads.size();
    }

    if (deadlocked) {
      // Every surviving rank was woken with Aborted, so first_error holds
      // an Aborted — replace it with the actual diagnosis.
      throw Error(
          "xmpi deadlock detected: every unfinished rank is blocked in a "
          "receive or collective with no message in flight");
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  result.rank_times.reserve(static_cast<std::size_t>(world.size()));
  for (int rank = 0; rank < world.size(); ++rank) {
    const double t = world.rank_state(rank).clock.now();
    result.rank_times.push_back(t);
    result.duration_s = std::max(result.duration_s, t);
  }
  result.traffic = world.total_traffic();
  result.rank_traffic.reserve(static_cast<std::size_t>(world.size()));
  if (config.peer_traffic) {
    result.rank_peers.reserve(static_cast<std::size_t>(world.size()));
  }
  for (int rank = 0; rank < world.size(); ++rank) {
    RankState& state = world.rank_state(rank);
    result.rank_traffic.push_back(state.traffic);
    const std::uint64_t entries = state.peers.peer_count();
    result.peer_entries_total += entries;
    result.peer_entries_max = std::max(result.peer_entries_max, entries);
    if (config.peer_traffic) {
      result.rank_peers.push_back(state.peers.entries());
    }
  }
  result.transport = world.transport_stats();

  const int packages = config.machine.node.sockets;
  result.energy.nodes.resize(static_cast<std::size_t>(world.node_count()));
  for (int node = 0; node < world.node_count(); ++node) {
    trace::EnergyLedger& ledger = world.node_ledger(node);
    NodeEnergy& node_energy =
        result.energy.nodes[static_cast<std::size_t>(node)];
    node_energy.packages.resize(static_cast<std::size_t>(packages));
    for (int p = 0; p < packages; ++p) {
      PackageEnergy& pkg =
          node_energy.packages[static_cast<std::size_t>(p)];
      pkg.pkg_j = ledger.package_energy_j(p, result.duration_s);
      pkg.dram_j = ledger.dram_energy_j(p, result.duration_s);
      result.compute_s += ledger.activity_seconds(
          p, hw::ActivityKind::kCompute, result.duration_s);
      result.membound_s += ledger.activity_seconds(
          p, hw::ActivityKind::kMemBound, result.duration_s);
      result.commactive_s += ledger.activity_seconds(
          p, hw::ActivityKind::kCommActive, result.duration_s);
      result.commwait_s += ledger.activity_seconds(
          p, hw::ActivityKind::kCommWait, result.duration_s);
    }
  }

  // Extract the span trace while World is still alive, reusing the exact
  // RunResult energy values so attribution reconciles bit-identically.
  if (world.tracing()) {
    auto trace = std::make_shared<prof::TraceData>();
    trace->duration_s = result.duration_s;
    trace->ring_capacity = ring_spans;
    trace->power = world.power().spec();
    trace->ranks.reserve(static_cast<std::size_t>(world.size()));
    for (int rank = 0; rank < world.size(); ++rank) {
      RankState& state = world.rank_state(rank);
      const hw::RankLocation& loc = world.layout().location_of(rank);
      trace->ranks.push_back(state.prof->take(rank, loc.node, loc.socket,
                                              loc.core, state.clock.now()));
    }
    trace->packages.reserve(
        static_cast<std::size_t>(world.node_count() * packages));
    for (int node = 0; node < world.node_count(); ++node) {
      trace::EnergyLedger& ledger = world.node_ledger(node);
      for (int p = 0; p < packages; ++p) {
        prof::PackagePower pkg;
        pkg.node = node;
        pkg.package = p;
        const PackageEnergy& energy =
            result.energy.nodes[static_cast<std::size_t>(node)]
                .packages[static_cast<std::size_t>(p)];
        pkg.pkg_j = energy.pkg_j;
        pkg.dram_j = energy.dram_j;
        pkg.dram_traffic_bytes =
            ledger.dram_traffic_bytes(p, result.duration_s);
        pkg.cap_w = ledger.package_cap(p);
        pkg.ranked_cores = world.layout().ranks_on_socket(node, p);
        if (pkg.cap_w > 0.0 && pkg.ranked_cores > 0) {
          pkg.dynamic_scale =
              world.power().cap_effect(pkg.cap_w, pkg.ranked_cores)
                  .dynamic_scale;
        }
        trace->packages.push_back(pkg);
      }
    }
    result.trace = trace;
    if (!config.chrome_trace_path.empty()) {
      prof::write_perfetto(config.chrome_trace_path, *trace);
    }
    if (!config.trace_dir.empty()) {
      prof::write_trace_bundle(config.trace_dir, *trace);
    }
  }

  // Simulated external wattmeter: sample every node's ledger on a fixed
  // virtual-time grid. Differencing cumulative energies gives the average
  // power of each window, free of RAPL's counter quantization.
  if (config.timeline_period_s > 0.0) {
    const double period = config.timeline_period_s;
    result.timeline.resize(static_cast<std::size_t>(world.node_count()));
    for (int node = 0; node < world.node_count(); ++node) {
      trace::EnergyLedger& ledger = world.node_ledger(node);
      NodeTimeline& series =
          result.timeline[static_cast<std::size_t>(node)];
      series.node = node;
      double prev_pkg[2] = {0.0, 0.0};
      double prev_dram[2] = {0.0, 0.0};
      for (double t = period; t < result.duration_s + period; t += period) {
        const double clipped = std::min(t, result.duration_s);
        const double window = clipped - (t - period);
        if (window <= 0.0) break;
        TimelineSample sample;
        sample.t = clipped;
        for (int p = 0; p < packages && p < 2; ++p) {
          const double pkg = ledger.package_energy_j(p, clipped);
          const double dram = ledger.dram_energy_j(p, clipped);
          sample.pkg_w[p] = (pkg - prev_pkg[p]) / window;
          sample.dram_w[p] = (dram - prev_dram[p]) / window;
          prev_pkg[p] = pkg;
          prev_dram[p] = dram;
        }
        series.samples.push_back(sample);
      }
    }
  }
  return result;
}

}  // namespace plin::xmpi
