#include "xmpi/scheduler.hpp"

#include <ucontext.h>

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "support/error.hpp"
#include "xmpi/stackpool.hpp"

// ThreadSanitizer must be told about user-level context switches, or it
// attributes one fiber's stack reads to another fiber's writes and reports
// phantom races. GCC and Clang expose the same extern "C" fiber API.
#if defined(__SANITIZE_THREAD__)
#define PLIN_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PLIN_TSAN_FIBERS 1
#endif
#endif

#if defined(PLIN_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace plin::xmpi {

namespace {

void* tsan_current_fiber() {
#if defined(PLIN_TSAN_FIBERS)
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

void* tsan_create_fiber() {
#if defined(PLIN_TSAN_FIBERS)
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

void tsan_destroy_fiber(void* fiber) {
#if defined(PLIN_TSAN_FIBERS)
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

void tsan_switch_to_fiber(void* fiber) {
#if defined(PLIN_TSAN_FIBERS)
  if (fiber != nullptr) __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

constexpr std::size_t kDefaultStackBytes = 512 * 1024;
constexpr std::size_t kMinStackBytes = 64 * 1024;

/// Above this many tasks, "auto" guard mode switches to one guard page per
/// slab: per-stack guards cost ~2 kernel VMAs each, and vm.max_map_count
/// commonly defaults to 65530.
constexpr std::size_t kGuardAutoMaxTasks = 8192;

/// PLIN_XMPI_STACK_GUARD: unset/"auto" → guard iff the run is small
/// enough; "0"/"off" → never; anything else → always.
bool resolve_stack_guard(std::size_t tasks) {
  const char* value = std::getenv("PLIN_XMPI_STACK_GUARD");
  if (value == nullptr || *value == '\0' ||
      std::string_view(value) == "auto") {
    return tasks <= kGuardAutoMaxTasks;
  }
  const std::string_view text(value);
  return text != "0" && text != "off";
}

}  // namespace

/// One simulated rank: its fiber context, leased stack and park/wake
/// endpoint. `state`/`wake_pending` are guarded by the scheduler queue
/// mutex; the context/stack fields are touched only by whichever worker
/// currently owns the fiber (ownership is handed over through that mutex).
struct FiberScheduler::RankFiber final : Mailbox::Parker {
  enum class State { kReady, kRunning, kParked, kFinished };

  FiberScheduler* sched = nullptr;
  std::size_t index = 0;
  Task task;

  ucontext_t context{};
  /// Scheduler context of the worker currently running this fiber; set at
  /// every dispatch (a parked fiber may resume on a different worker).
  ucontext_t* return_context = nullptr;
  void* tsan_fiber = nullptr;
  void* return_tsan_fiber = nullptr;
  /// Stack leased from the StackPool at first dispatch, returned when the
  /// body finishes — unstarted and finished ranks hold no stack at all.
  StackPool::Allocation stack;
  bool started = false;
  /// Set by the trampoline just before its final switch-out, so the worker
  /// can tell "finished" from "parked".
  bool body_done = false;

  State state = State::kReady;
  bool wake_pending = false;

  void park() override;
  void wake() override;

  /// Transfers control back to the owning worker's scheduler context.
  void switch_to_worker() {
    tsan_switch_to_fiber(return_tsan_fiber);
    ::swapcontext(&context, return_context);
  }
};

struct FiberScheduler::QueueState {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::size_t> ready;
  std::size_t running = 0;
  std::size_t finished = 0;
  std::uint64_t parks = 0;  // fibers returning to the worker unfinished
  std::uint64_t wakes = 0;  // wake() calls on unfinished fibers
  bool stop = false;
};

namespace {
/// Carries the RankFiber pointer into its trampoline: makecontext cannot
/// portably pass pointers, so the dispatching worker stores it here right
/// before the first switch into a fresh fiber, and the trampoline copies
/// it to a stack local at entry (the thread_local itself would go stale
/// once the fiber migrates to another worker).
thread_local FiberScheduler::RankFiber* t_launching_fiber = nullptr;

extern "C" void plin_fiber_trampoline() {
  FiberScheduler::RankFiber* self = t_launching_fiber;
  self->task.body();
  self->body_done = true;
  self->switch_to_worker();
  // A finished fiber is never resumed; reaching here means scheduler
  // corruption, and returning from a makecontext entry with no uc_link
  // would be undefined.
  std::abort();
}
}  // namespace

void FiberScheduler::RankFiber::park() { switch_to_worker(); }

void FiberScheduler::RankFiber::wake() {
  QueueState& queue = *sched->queue_;
  std::lock_guard<std::mutex> lock(queue.mutex);
  if (state != State::kFinished) ++queue.wakes;
  if (state == State::kParked) {
    state = State::kReady;
    queue.ready.push_back(index);
    queue.cv.notify_one();
  } else if (state != State::kFinished) {
    // Ready or Running (possibly mid-switch-out): remember the wake so the
    // worker re-queues instead of parking, or the next park returns
    // immediately. The mailbox retry loop absorbs the spurious resume.
    wake_pending = true;
  }
}

FiberScheduler::FiberScheduler(std::vector<Task> tasks, Options options)
    : fibers_(tasks.size()), on_deadlock_(std::move(options.on_deadlock)) {
  PLIN_CHECK_MSG(!tasks.empty(), "FiberScheduler needs at least one task");

  std::size_t workers = options.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_ = std::min(workers, tasks.size());

  stack_bytes_ = std::max(options.stack_bytes == 0 ? kDefaultStackBytes
                                                   : options.stack_bytes,
                          kMinStackBytes);
  guard_stacks_ = resolve_stack_guard(tasks.size());

  // No stacks or contexts yet: construction is O(tasks) pointer setup, and
  // a fiber leases its stack only when it is first dispatched. 100k ranks
  // cost ~100k queue entries here, not 100k mmaps.
  queue_ = new QueueState();
  for (std::size_t i = 0; i < fibers_.size(); ++i) {
    RankFiber& fiber = fibers_[i];
    fiber.sched = this;
    fiber.index = i;
    fiber.task = std::move(tasks[i]);
    queue_->ready.push_back(i);
  }
}

FiberScheduler::~FiberScheduler() {
  // Normal completion released everything in worker_loop; this sweep
  // covers runs that never finished (exceptions, never-run schedulers).
  for (RankFiber& fiber : fibers_) {
    tsan_destroy_fiber(fiber.tsan_fiber);
    StackPool::instance().release(fiber.stack);
  }
  delete queue_;
}

Mailbox::Parker* FiberScheduler::parker(std::size_t index) {
  PLIN_CHECK(index < fibers_.size());
  return &fibers_[index];
}

std::uint64_t FiberScheduler::park_count() const {
  std::lock_guard<std::mutex> lock(queue_->mutex);
  return queue_->parks;
}

std::uint64_t FiberScheduler::wake_count() const {
  std::lock_guard<std::mutex> lock(queue_->mutex);
  return queue_->wakes;
}

void FiberScheduler::dispatch(RankFiber& fiber, void* worker_tsan) {
  if (!fiber.started) {
    // First dispatch: lease a stack and build the context now. Ranks that
    // never run (abort before first dispatch) never pay for one.
    fiber.stack = StackPool::instance().acquire(stack_bytes_, guard_stacks_);
    PLIN_CHECK_MSG(::getcontext(&fiber.context) == 0, "getcontext failed");
    fiber.context.uc_stack.ss_sp = fiber.stack.sp;
    fiber.context.uc_stack.ss_size = fiber.stack.bytes;
    fiber.context.uc_link = nullptr;  // fibers exit via switch_to_worker
    ::makecontext(&fiber.context, plin_fiber_trampoline, 0);
    fiber.tsan_fiber = tsan_create_fiber();
    fiber.started = true;
  }
  ucontext_t worker_context;
  fiber.return_context = &worker_context;
  fiber.return_tsan_fiber = worker_tsan;
  // Measurement reads (simulated RAPL/PAPI) resolve through the host
  // thread's binding, so it must follow the rank onto whichever worker
  // dispatches it.
  trace::ScopedHardwareBinding binding(fiber.task.hw);
  t_launching_fiber = &fiber;
  tsan_switch_to_fiber(fiber.tsan_fiber);
  ::swapcontext(&worker_context, &fiber.context);
  // Control returns here when the fiber parks or finishes.
}

void FiberScheduler::worker_loop() {
  void* worker_tsan = tsan_current_fiber();
  QueueState& queue = *queue_;
  std::unique_lock<std::mutex> lock(queue.mutex);
  for (;;) {
    queue.cv.wait(lock, [&] { return queue.stop || !queue.ready.empty(); });
    if (queue.ready.empty()) {
      if (queue.stop) return;
      continue;
    }
    const std::size_t index = queue.ready.front();
    queue.ready.pop_front();
    RankFiber& fiber = fibers_[index];
    fiber.state = RankFiber::State::kRunning;
    ++queue.running;
    lock.unlock();

    dispatch(fiber, worker_tsan);
    if (fiber.body_done) {
      // Recycle the stack immediately (outside the queue lock): the next
      // wave of ranks leases it back from the pool's free list instead of
      // mapping fresh memory.
      tsan_destroy_fiber(fiber.tsan_fiber);
      fiber.tsan_fiber = nullptr;
      StackPool::instance().release(fiber.stack);
    }

    lock.lock();
    --queue.running;
    if (!fiber.body_done) ++queue.parks;
    if (fiber.body_done) {
      fiber.state = RankFiber::State::kFinished;
      if (++queue.finished == fibers_.size()) {
        queue.stop = true;
        queue.cv.notify_all();
      }
    } else if (fiber.wake_pending) {
      // A wake raced with the switch-out: skip Parked entirely.
      fiber.wake_pending = false;
      fiber.state = RankFiber::State::kReady;
      queue.ready.push_back(index);
      queue.cv.notify_one();
    } else {
      fiber.state = RankFiber::State::kParked;
    }
    if (!queue.stop && queue.running == 0 && queue.ready.empty() &&
        queue.finished < fibers_.size() && !deadlock_) {
      // Every unfinished rank is parked and nothing can wake them: a
      // simulated-communication deadlock. Checked after *any* transition
      // that can idle the pool (a park, or the last running rank
      // finishing while a peer stays parked). Fire the callback outside
      // the queue lock — it typically calls World::abort, whose interrupt
      // path re-enters wake() and therefore this mutex.
      deadlock_ = true;
      lock.unlock();
      if (on_deadlock_) on_deadlock_();
      lock.lock();
    }
  }
}

void FiberScheduler::run() {
  if (workers_ == 1) {
    // Degenerate pool: run the scheduler loop on the calling thread and
    // skip the spawn entirely (also the single-CPU default).
    worker_loop();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    pool.emplace_back([this] { worker_loop(); });
  }
  for (std::thread& worker : pool) worker.join();
}

}  // namespace plin::xmpi
