// FiberScheduler — bounded worker pool multiplexing simulated ranks over
// user-level stacks.
//
// Each rank runs on its own ucontext fiber, and N host workers (N ≈ cores,
// not ranks) pull runnable fibers from a FIFO ready queue. Fiber stacks
// are leased from the process-wide StackPool *lazily at first dispatch*
// and returned the moment the rank's body finishes, so a 100k-rank run
// whose ranks mostly wait holds stacks only for the ranks actually
// in flight, and successive rank waves recycle the same few mappings
// (see stackpool.hpp; PLIN_XMPI_STACK_GUARD picks the guard-page
// geometry — per-stack guards by default up to 8192 ranks, one guard per
// slab above that to stay under vm.max_map_count). When a rank blocks in
// Mailbox::match / a collective, its fiber *parks*: it switches back to
// the worker's scheduler context, freeing the worker to run another rank.
// A matching post (or World::abort) *wakes* it — re-queues the fiber so
// any worker can resume it where it left off. This keeps host thread
// count bounded at paper-scale rank counts (1296 ranks ⇒ N threads, not
// 1296) and removes per-message thundering-herd wakeups.
//
// Park/wake uses a two-phase handshake so the two may race freely:
// park() switches to the worker *without* taking the scheduler lock; the
// worker then completes the Running→Parked transition under the lock, and
// a wake() that arrived in the gap is recorded as `wake_pending` and
// converted into an immediate re-queue. A wake() on an already-runnable
// fiber is a no-op beyond that flag, and the mailbox retry loop absorbs
// spurious resumes.
//
// Determinism note: the scheduler decides only *host* interleaving. All
// simulated time/energy outputs derive from per-rank virtual clocks and
// message arrival stamps, so results are bit-identical for any worker
// count — see docs/xmpi.md for the full contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "trace/hardware_context.hpp"
#include "xmpi/mailbox.hpp"

namespace plin::xmpi {

class FiberScheduler {
 public:
  struct Task {
    /// Runs on the rank's fiber. Must not let exceptions escape (the
    /// runtime wraps rank_main in its own catch-all).
    std::function<void()> body;
    /// Hardware context bound to the host worker for the duration of every
    /// dispatch of this task, so measurement reads follow the rank across
    /// workers.
    const trace::HardwareContext* hw = nullptr;
  };

  struct Options {
    /// Host worker threads; 0 → std::thread::hardware_concurrency().
    /// Always clamped to the task count.
    std::size_t workers = 0;
    /// Usable fiber stack bytes; 0 → 512 KiB. Clamped to ≥ 64 KiB and
    /// rounded up to the page size. Stacks come from the slab-backed
    /// StackPool (lazily committed, leased at first dispatch, recycled
    /// when the rank finishes).
    std::size_t stack_bytes = 0;
    /// Invoked (without scheduler locks) when every unfinished rank is
    /// parked — a simulated-communication deadlock. Expected to unwedge
    /// the ranks, e.g. World::abort, which wakes every parked receiver
    /// with Aborted.
    std::function<void()> on_deadlock;
  };

  FiberScheduler(std::vector<Task> tasks, Options options);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// The parking strategy of task `index`, for Mailbox::set_parker.
  /// Pointers stay valid for the scheduler's lifetime.
  Mailbox::Parker* parker(std::size_t index);

  /// Runs every task to completion (blocking). Callable once.
  void run();

  /// True if run() hit the all-parked condition and fired on_deadlock.
  bool deadlocked() const { return deadlock_; }

  /// Worker threads run() will use.
  std::size_t worker_count() const { return workers_; }

  /// Host-side scheduler counters over the whole run: fiber park
  /// transitions (a rank yielding its worker) and wake() calls. Purely
  /// host diagnostics — the values depend on worker count and host timing,
  /// so they are surfaced in RunResult but never enter a canonical trace.
  std::uint64_t park_count() const;
  std::uint64_t wake_count() const;

  struct RankFiber;  // opaque in the header; defined in scheduler.cpp

 private:
  void worker_loop();
  void dispatch(RankFiber& fiber, void* worker_tsan);

  std::vector<RankFiber> fibers_;
  std::size_t workers_ = 1;
  /// Resolved stack geometry every fiber leases from the StackPool.
  std::size_t stack_bytes_ = 0;
  bool guard_stacks_ = true;
  std::function<void()> on_deadlock_;

  // Ready-queue state; every field below is guarded by the queue mutex in
  // scheduler.cpp (kept out of the header with the fiber internals).
  struct QueueState;
  QueueState* queue_ = nullptr;
  bool deadlock_ = false;
};

}  // namespace plin::xmpi
