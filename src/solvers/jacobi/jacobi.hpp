// Jacobi iteration — an iterative baseline beyond the paper's two direct
// solvers (DESIGN.md §6 extensions). It demonstrates that the monitoring
// framework is solver-agnostic: any code that runs on an xmpi communicator
// can be profiled, and an iterative method has a very different
// energy/accuracy trade-off curve than a direct factorization.
//
// The parallel version distributes matrix rows in contiguous blocks and
// keeps the iterate replicated: each sweep computes the owned entries,
// allgathers the new iterate and allreduces the update norm for the
// convergence test. Convergence is guaranteed for the strictly diagonally
// dominant systems the evaluation uses.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "xmpi/comm.hpp"

namespace plin::solvers {

struct JacobiOptions {
  std::size_t n = 0;
  std::uint64_t seed = 1;
  double tolerance = 1e-12;   // max |x_new - x| termination threshold
  int max_iterations = 1000;
  /// 0 = the standard strongly-dominant generator; > 1 = the
  /// tunable-dominance generator (linalg::weak_system_entry) — values near
  /// 1 slow convergence, the knob for energy-vs-accuracy studies.
  double dominance = 0.0;
};

struct JacobiResult {
  std::vector<double> x;
  int iterations = 0;
  bool converged = false;
  double last_update_norm = 0.0;
};

/// Sequential reference.
JacobiResult solve_jacobi(const linalg::Matrix& a,
                          const std::vector<double>& b, double tolerance,
                          int max_iterations);

/// Distributed Jacobi on `comm`; the system is generated from (seed, n)
/// like the other solvers. Call from every rank.
JacobiResult solve_pjacobi(xmpi::Comm& comm, const JacobiOptions& options);

}  // namespace plin::solvers
