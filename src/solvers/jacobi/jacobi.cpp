#include "solvers/jacobi/jacobi.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/generate.hpp"
#include "solvers/efficiency.hpp"
#include "support/error.hpp"

namespace plin::solvers {

JacobiResult solve_jacobi(const linalg::Matrix& a,
                          const std::vector<double>& b, double tolerance,
                          int max_iterations) {
  PLIN_CHECK_MSG(a.rows() == a.cols(), "jacobi: A must be square");
  const std::size_t n = a.rows();
  PLIN_CHECK_MSG(b.size() == n, "jacobi: rhs size mismatch");
  PLIN_CHECK_MSG(tolerance > 0.0 && max_iterations > 0,
                 "jacobi: bad iteration controls");

  JacobiResult result;
  result.x.assign(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 1; iter <= max_iterations; ++iter) {
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = a.row(i).data();
      double sum = b[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) sum -= row[j] * result.x[j];
      }
      PLIN_CHECK_MSG(row[i] != 0.0, "jacobi: zero diagonal");
      next[i] = sum / row[i];
      norm = std::max(norm, std::fabs(next[i] - result.x[i]));
    }
    result.x.swap(next);
    result.iterations = iter;
    result.last_update_norm = norm;
    if (norm < tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

JacobiResult solve_pjacobi(xmpi::Comm& comm, const JacobiOptions& options) {
  const std::size_t n = options.n;
  PLIN_CHECK_MSG(n > 0, "jacobi: system dimension must be positive");
  PLIN_CHECK_MSG(options.tolerance > 0.0 && options.max_iterations > 0,
                 "jacobi: bad iteration controls");
  const int ranks = comm.size();
  const int rank = comm.rank();

  // Contiguous row blocks, padded to a uniform chunk so the replicated
  // iterate can be rebuilt with a fixed-size allgather.
  const std::size_t chunk =
      (n + static_cast<std::size_t>(ranks) - 1) / ranks;
  const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(rank));
  const std::size_t hi = std::min(n, lo + chunk);
  const std::size_t local_rows = hi - lo;

  // Local slice of the system (the usual distributed generation).
  linalg::Matrix local(std::max<std::size_t>(local_rows, 1), n);
  std::vector<double> local_b(local_rows, 0.0);
  for (std::size_t li = 0; li < local_rows; ++li) {
    for (std::size_t j = 0; j < n; ++j) {
      local(li, j) =
          options.dominance > 0.0
              ? linalg::weak_system_entry(options.seed, n, lo + li, j,
                                          options.dominance)
              : linalg::system_entry(options.seed, n, lo + li, j);
    }
    local_b[li] = linalg::rhs_entry(options.seed, n, lo + li);
  }
  comm.memory_touch(static_cast<double>(local.size_bytes()));

  JacobiResult result;
  result.x.assign(n, 0.0);
  std::vector<double> mine(chunk, 0.0);
  std::vector<double> gathered(chunk * static_cast<std::size_t>(ranks), 0.0);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double norm = 0.0;
    for (std::size_t li = 0; li < local_rows; ++li) {
      const std::size_t i = lo + li;
      const double* row = local.row(li).data();
      double sum = local_b[li];
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) sum -= row[j] * result.x[j];
      }
      PLIN_CHECK_MSG(row[i] != 0.0, "jacobi: zero diagonal");
      mine[li] = sum / row[i];
      norm = std::max(norm, std::fabs(mine[li] - result.x[i]));
    }
    // One sweep streams the whole local slice: 2*n flops per owned row.
    comm.compute(xmpi::ComputeCost{
        2.0 * static_cast<double>(n) * static_cast<double>(local_rows),
        8.0 * static_cast<double>(n) * static_cast<double>(local_rows),
        kSubstitution.efficiency});

    if (ranks > 1) {
      comm.allgather(std::span<const double>(mine),
                     std::span<double>(gathered));
      for (std::size_t i = 0; i < n; ++i) {
        result.x[i] = gathered[i];  // padding tails are never read
      }
      norm = comm.allreduce_value(norm, xmpi::ReduceOp::kMax);
    } else {
      std::copy(mine.begin(), mine.begin() + static_cast<std::ptrdiff_t>(n),
                result.x.begin());
    }

    result.iterations = iter;
    result.last_update_norm = norm;
    if (norm < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace plin::solvers
