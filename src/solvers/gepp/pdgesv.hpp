// pdgesv — ScaLAPACK-style parallel Gaussian elimination with partial
// pivoting on a 2-D block-cyclic distribution, plus the distributed
// triangular solves, implemented over xmpi.
//
// Structure mirrors ScaLAPACK's pdgetrf/pdgetrs:
//   * the matrix lives in nb x nb blocks dealt onto a prows x pcols grid;
//   * panel factorization runs inside one process column: per column, a
//     MAXLOC allreduce finds the pivot, the owners of the two rows exchange
//     segments, and the pivot row is broadcast down the process column;
//   * after each panel the pivot array travels along the process row, all
//     process columns apply the row interchanges to their leading/trailing
//     columns, the L panel is broadcast row-wise, the U12 row block is
//     solved in the pivot process row and broadcast column-wise, and every
//     rank runs its local trailing GEMM;
//   * the solve phase keeps the right-hand side replicated: per diagonal
//     block, partial dot products reduce along the process row, the block
//     owner solves the small triangle and broadcasts the solution piece.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/blockcyclic.hpp"
#include "linalg/matrix.hpp"
#include "solvers/efficiency.hpp"
#include "xmpi/comm.hpp"

namespace plin::solvers {

struct PdgesvOptions {
  std::size_t n = 0;       // system dimension
  std::uint64_t seed = 1;  // generator seed (same system on every rank)
  std::size_t nb = kDefaultBlock;
  bool broadcast_solution = true;  // kept for interface symmetry; the solve
                                   // phase already replicates x everywhere
};

struct PdgesvResult {
  std::vector<double> x;  // replicated solution
  linalg::ProcessGrid grid;
  std::vector<std::size_t> pivots;  // global pivot rows, one per column
};

/// Runs the distributed LU solve on `comm` for the system generated from
/// (seed, n). Call from every rank of the communicator.
PdgesvResult solve_pdgesv(xmpi::Comm& comm, const PdgesvOptions& options);

class PdluFactorization;
struct PdgetrfFtOptions;
struct PdgetrfFtResult;
PdgetrfFtResult pdgetrf_checkpointed(xmpi::Comm& comm,
                                     const PdgetrfFtOptions& options);

/// A completed distributed factorization (this rank's share of PA = LU
/// plus the communicators and descriptor needed to solve against it).
/// Factor once with pdgetrf, then solve any number of right-hand sides —
/// the 2/3 n^3 factorization cost is paid once, each solve is O(n^2 / P)
/// plus collectives (the standard LAPACK-style amortization).
class PdluFactorization {
 public:
  std::size_t n() const { return n_; }
  std::size_t nb() const { return nb_; }
  const linalg::ProcessGrid& grid() const { return desc_.grid; }
  const std::vector<std::size_t>& pivots() const { return pivots_; }

  /// pdgetrs: solves A x = rhs using this factorization. `rhs` must be the
  /// full-length right-hand side, replicated on every rank (all ranks pass
  /// the same values); the returned solution is replicated too. Must be
  /// called collectively, in the same order, by every rank that factored.
  std::vector<double> solve(std::vector<double> rhs) const;

 private:
  friend PdluFactorization pdgetrf(xmpi::Comm& comm,
                                   const PdgesvOptions& options);
  friend struct PdgetrfFtResult;
  friend PdgetrfFtResult pdgetrf_checkpointed(xmpi::Comm& comm,
                                              const PdgetrfFtOptions& options);

  PdluFactorization(xmpi::Comm world, xmpi::Comm row_comm,
                    xmpi::Comm col_comm)
      : world_(std::move(world)),
        row_comm_(std::move(row_comm)),
        col_comm_(std::move(col_comm)) {}

  std::size_t n_ = 0;
  std::size_t nb_ = 0;
  linalg::BlockCyclicDesc desc_;
  int myrow_ = 0;
  int mycol_ = 0;
  std::vector<std::size_t> pivots_;
  linalg::Matrix local_;  // factored local tiles (L below, U on/above)
  // Communicators captured at factorization time; valid for the lifetime
  // of the xmpi run that produced them.
  mutable xmpi::Comm world_;
  mutable xmpi::Comm row_comm_;
  mutable xmpi::Comm col_comm_;
};

/// Distributed LU factorization with partial pivoting of the system matrix
/// generated from (seed, n). Call collectively from every rank.
PdluFactorization pdgetrf(xmpi::Comm& comm, const PdgesvOptions& options);

// ---- checkpoint/restart fault tolerance -----------------------------------
//
// The paper motivates IMe by noting its "integrated low-cost multiple
// fault tolerance, which is more efficient than the checkpoint/restart
// technique usually applied in Gaussian Elimination" (§2, citing Artioli
// et al. 2019). This is that baseline: coordinated in-memory checkpoints
// of the factorization state every k panels, with rollback + recompute on
// a fault. bench_ft_comparison puts the two techniques side by side.

struct PdgetrfFtOptions {
  PdgesvOptions base;
  /// Take a coordinated checkpoint every this many panels.
  std::size_t checkpoint_every_panels = 8;
  /// Diskless partner checkpointing: additionally ship each snapshot to a
  /// partner rank (rank ^ 1), paying the network cost a real in-memory
  /// checkpoint scheme pays to survive a node loss. Off = local snapshots
  /// only (survives process state corruption, as injected by the hook).
  bool partner_copy = false;
  /// Test hook: lose the in-flight factorization state just before this
  /// panel (0-based), forcing a rollback to the last checkpoint.
  std::optional<std::size_t> inject_fault_at_panel;
};

struct PdgetrfFtResult {
  PdluFactorization factorization;
  int checkpoints_taken = 0;
  int restarts = 0;
  std::size_t panels_recomputed = 0;
};

/// pdgetrf_checkpointed (declared above PdluFactorization): checkpointed
/// distributed LU. Every rank snapshots its local tiles and the pivot
/// array at each checkpoint (the memory traffic is charged to the energy
/// ledger); a fault rolls every rank back and recomputes the lost panels.
/// Call collectively.

}  // namespace plin::solvers
