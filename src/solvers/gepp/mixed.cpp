#include "solvers/gepp/mixed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace plin::solvers {
namespace {

constexpr int kTagSwap = 20;

/// Per-precision constants: prof phase names and the precision tag each
/// ComputeCost carries so the hardware model prices flops against the right
/// peak and DRAM traffic at the right element width.
template <typename T>
struct Prec;

template <>
struct Prec<float> {
  static constexpr xmpi::Precision kCost = xmpi::Precision::kFp32;
  static constexpr const char* kSetup = "gepp32:setup";
  static constexpr const char* kFactorPanel = "gepp32:factor_panel";
  static constexpr const char* kPivotBcast = "gepp32:pivot_bcast";
  static constexpr const char* kRowSwap = "gepp32:row_swap";
  static constexpr const char* kLpanelBcast = "gepp32:lpanel_bcast";
  static constexpr const char* kU12 = "gepp32:u12";
  static constexpr const char* kGemm = "gepp32:gemm";
  static constexpr const char* kSolve = "gepp32:solve";
};

template <>
struct Prec<double> {
  static constexpr xmpi::Precision kCost = xmpi::Precision::kFp64;
  static constexpr const char* kSetup = "gepp64:setup";
  static constexpr const char* kFactorPanel = "gepp64:factor_panel";
  static constexpr const char* kPivotBcast = "gepp64:pivot_bcast";
  static constexpr const char* kRowSwap = "gepp64:row_swap";
  static constexpr const char* kLpanelBcast = "gepp64:lpanel_bcast";
  static constexpr const char* kU12 = "gepp64:u12";
  static constexpr const char* kGemm = "gepp64:gemm";
  static constexpr const char* kSolve = "gepp64:solve";
};

/// The efficiency profiles are calibrated for fp64; an fp32 kernel does the
/// same flops but streams half the bytes per flop.
template <typename T>
xmpi::ComputeCost cost_of(const KernelProfile& profile, double flops) {
  return xmpi::ComputeCost{flops,
                           flops * profile.bytes_per_flop *
                               (sizeof(T) / sizeof(double)),
                           profile.efficiency, Prec<T>::kCost};
}

template <typename T>
xmpi::ComputeCost movement(double bytes) {
  return xmpi::ComputeCost{0.0, bytes, 1.0, Prec<T>::kCost};
}

/// Everything the factorization needs to know about "me" (the precision-T
/// twin of pdgesv's GridContext).
template <typename T>
struct GridCtx {
  xmpi::Comm* world;
  xmpi::Comm* row_comm;
  xmpi::Comm* col_comm;
  linalg::BlockCyclicDesc desc;
  int myrow = 0;
  int mycol = 0;
  std::vector<T> swap_outgoing;
  std::vector<T> swap_incoming;

  std::size_t local_rows_below(std::size_t g) const {
    return linalg::numroc(g, desc.mb, myrow, desc.grid.prows);
  }
  std::size_t local_cols_below(std::size_t g) const {
    return linalg::numroc(g, desc.nb, mycol, desc.grid.pcols);
  }
};

/// This rank's share of the completed PA = LU plus what the solve needs.
/// ok == false means a pivot came out zero (or NaN) — in fp32 that is the
/// cue to fall back, not an error.
template <typename T>
struct FactorState {
  linalg::BlockCyclicDesc desc;
  int myrow = 0;
  int mycol = 0;
  std::vector<std::size_t> pivots;
  linalg::BasicMatrix<T> local;
  bool ok = false;
};

template <typename T>
void swap_row_segments(GridCtx<T>& ctx, linalg::BasicMatrix<T>& local,
                       std::size_t ga, std::size_t gb, std::size_t c0,
                       std::size_t c1) {
  if (ga == gb || c1 <= c0) return;
  const int prow_a = ctx.desc.owner_prow(ga);
  const int prow_b = ctx.desc.owner_prow(gb);
  const std::size_t width = c1 - c0;
  if (prow_a == prow_b) {
    if (ctx.myrow == prow_a) {
      const std::size_t la = ctx.desc.local_row(ga);
      const std::size_t lb = ctx.desc.local_row(gb);
      linalg::swap_rows<T>(local.row(la).subspan(c0, width),
                           local.row(lb).subspan(c0, width));
      ctx.world->compute(movement<T>(2.0 * sizeof(T) *
                                     static_cast<double>(width)));
    }
    return;
  }
  if (ctx.myrow != prow_a && ctx.myrow != prow_b) return;
  const std::size_t lmine = ctx.desc.local_row(ctx.myrow == prow_a ? ga : gb);
  const int peer = ctx.myrow == prow_a ? prow_b : prow_a;
  ctx.swap_outgoing.assign(local.row(lmine).begin() + c0,
                           local.row(lmine).begin() + c1);
  ctx.swap_incoming.resize(width);
  ctx.col_comm->sendrecv(std::span<const T>(ctx.swap_outgoing),
                         std::span<T>(ctx.swap_incoming), peer, kTagSwap);
  std::copy(ctx.swap_incoming.begin(), ctx.swap_incoming.end(),
            local.row(lmine).begin() + c0);
  ctx.world->compute(movement<T>(2.0 * sizeof(T) *
                                 static_cast<double>(width)));
}

/// Factors the panel [k0, k0+w) inside its process column. Returns false as
/// soon as a pivot fails the > 0 test (zero column in T precision, or NaN —
/// the maxloc contract never lets NaN beat a numeric candidate, so a NaN
/// result means nothing numeric was left). All ranks of the process column
/// see the same allreduce value and bail at the same column.
template <typename T>
bool factor_panel(GridCtx<T>& ctx, linalg::BasicMatrix<T>& local,
                  std::size_t k0, std::size_t w,
                  std::vector<std::size_t>& pivots) {
  const std::size_t lrows = local.rows();
  std::vector<T> pivot_row;
  std::vector<T> multipliers;
  double panel_flops = 0.0;
  bool ok = true;

  for (std::size_t j = k0; j < k0 + w; ++j) {
    const std::size_t lj = ctx.desc.local_col(j);

    T best = T(-1);
    long long best_row = static_cast<long long>(j);
    for (std::size_t li = ctx.local_rows_below(j); li < lrows; ++li) {
      const T v = std::fabs(local(li, lj));
      if (v > best) {
        best = v;
        best_row =
            static_cast<long long>(ctx.desc.global_row(li, ctx.myrow));
      }
    }
    const xmpi::Comm::MaxLocT<T> piv =
        ctx.col_comm->allreduce_maxloc(best, best_row);
    if (!(piv.value > T(0))) {
      ok = false;
      break;
    }
    const std::size_t piv_row = static_cast<std::size_t>(piv.index);
    pivots[j] = piv_row;

    swap_row_segments(ctx, local, j, piv_row, ctx.local_cols_below(k0),
                      ctx.local_cols_below(k0) + w);

    const std::size_t seg = k0 + w - j;
    pivot_row.resize(seg);
    const int prow_j = ctx.desc.owner_prow(j);
    if (ctx.myrow == prow_j) {
      const std::size_t ljr = ctx.desc.local_row(j);
      for (std::size_t c = 0; c < seg; ++c) {
        pivot_row[c] = local(ljr, lj + c);
      }
    }
    ctx.col_comm->bcast(std::span<T>(pivot_row), prow_j);

    const T inv = T(1) / pivot_row[0];
    const std::size_t lo = ctx.local_rows_below(j + 1);
    multipliers.resize(lrows - lo);
    for (std::size_t li = lo; li < lrows; ++li) {
      local(li, lj) *= inv;
      multipliers[li - lo] = local(li, lj);
    }
    if (lrows > lo && seg > 1) {
      linalg::ger<T>(T(-1), multipliers,
                     std::span<const T>(pivot_row.data() + 1, seg - 1),
                     local.view().sub(lo, lj + 1, lrows - lo, seg - 1));
    }
    panel_flops += static_cast<double>((lrows - lo) * (2 * seg - 1)) +
                   static_cast<double>(lrows - ctx.local_rows_below(j));
  }
  ctx.world->compute(cost_of<T>(kPanel, panel_flops));
  return ok;
}

template <typename T>
struct FactorWorkspace {
  linalg::BasicMatrix<T> panel_slab;
  linalg::BasicMatrix<T> u12;
};

/// One right-looking step. Returns false (collectively — the panel column's
/// verdict is broadcast along the process rows before any dependent work)
/// when the panel hit a dead pivot.
template <typename T>
bool factor_one_panel(GridCtx<T>& ctx, xmpi::Comm& comm,
                      linalg::BasicMatrix<T>& local,
                      std::vector<std::size_t>& pivots, std::size_t n,
                      std::size_t nb, std::size_t k0,
                      FactorWorkspace<T>& ws) {
  const std::size_t lrows = ctx.desc.local_rows(ctx.myrow);
  const std::size_t lcols = ctx.desc.local_cols(ctx.mycol);
  const std::size_t w = std::min(nb, n - k0);
  const int panel_pcol = ctx.desc.owner_pcol(k0);
  const int prow_k = ctx.desc.owner_prow(k0);

  bool panel_ok = true;
  if (ctx.mycol == panel_pcol) {
    comm.prof_phase_begin(Prec<T>::kFactorPanel);
    panel_ok = factor_panel(ctx, local, k0, w, pivots);
    comm.prof_phase_end();
  }

  comm.prof_phase_begin(Prec<T>::kPivotBcast);
  int ok_flag = panel_ok ? 1 : 0;
  ctx.row_comm->bcast_value(ok_flag, panel_pcol);
  if (ok_flag == 0) {
    comm.prof_phase_end();
    return false;
  }
  ctx.row_comm->bcast(std::span<std::size_t>(pivots.data() + k0, w),
                      panel_pcol);
  comm.prof_phase_end();

  comm.prof_phase_begin(Prec<T>::kRowSwap);
  const std::size_t c_panel_lo = ctx.local_cols_below(k0);
  const std::size_t c_panel_hi = ctx.local_cols_below(k0 + w);
  for (std::size_t j = k0; j < k0 + w; ++j) {
    swap_row_segments(ctx, local, j, pivots[j], 0, c_panel_lo);
    swap_row_segments(ctx, local, j, pivots[j], c_panel_hi, lcols);
  }
  comm.prof_phase_end();

  const std::size_t r_k0 = ctx.local_rows_below(k0);
  const std::size_t slab_rows = lrows - r_k0;

  if (slab_rows > 0) {
    comm.prof_phase_begin(Prec<T>::kLpanelBcast);
    ws.panel_slab = linalg::BasicMatrix<T>(slab_rows, w);
    if (ctx.mycol == panel_pcol) {
      for (std::size_t r = 0; r < slab_rows; ++r) {
        for (std::size_t c = 0; c < w; ++c) {
          ws.panel_slab(r, c) = local(r_k0 + r, c_panel_lo + c);
        }
      }
    }
    ctx.row_comm->bcast(std::span<T>(ws.panel_slab.flat()), panel_pcol);
    comm.prof_phase_end();
  }

  if (k0 + w >= n) return true;

  comm.prof_phase_begin(Prec<T>::kU12);
  const std::size_t c_trail = ctx.local_cols_below(k0 + w);
  const std::size_t trail_cols = lcols - c_trail;
  ws.u12 = linalg::BasicMatrix<T>(w, std::max<std::size_t>(trail_cols, 1));
  if (ctx.myrow == prow_k) {
    if (trail_cols > 0) {
      linalg::BasicView<const T> l11 = ws.panel_slab.view().sub(0, 0, w, w);
      linalg::BasicView<T> a12 =
          local.view().sub(r_k0, c_trail, w, trail_cols);
      linalg::trsm_lower_unit<T>(l11, a12);
      comm.compute(cost_of<T>(kTrsm, static_cast<double>(w) *
                                         static_cast<double>(w) *
                                         static_cast<double>(trail_cols)));
      for (std::size_t r = 0; r < w; ++r) {
        for (std::size_t c = 0; c < trail_cols; ++c) {
          ws.u12(r, c) = local(r_k0 + r, c_trail + c);
        }
      }
    }
  }
  if (trail_cols > 0) {
    ctx.col_comm->bcast(std::span<T>(ws.u12.flat()), prow_k);
  }
  comm.prof_phase_end();

  comm.prof_phase_begin(Prec<T>::kGemm);
  const std::size_t r_lo2 = ctx.local_rows_below(k0 + w);
  const std::size_t gemm_rows = lrows - r_lo2;
  if (gemm_rows > 0 && trail_cols > 0) {
    linalg::BasicView<const T> l21 =
        ws.panel_slab.view().sub(r_lo2 - r_k0, 0, gemm_rows, w);
    linalg::BasicView<const T> u12v = ws.u12.view().sub(0, 0, w, trail_cols);
    linalg::BasicView<T> a22 =
        local.view().sub(r_lo2, c_trail, gemm_rows, trail_cols);
    linalg::gemm<T>(T(-1), l21, u12v, T(1), a22);
    comm.compute(cost_of<T>(kGemm, 2.0 * static_cast<double>(gemm_rows) *
                                       static_cast<double>(w) *
                                       static_cast<double>(trail_cols)));
  }
  comm.prof_phase_end();
  return true;
}

/// Distributed LU of the (entry_scale-scaled) generated system in precision
/// T. On a dead pivot, returns with ok == false on every rank; the partial
/// factors are meaningless and only the flag may be consulted.
template <typename T>
FactorState<T> factorize(xmpi::Comm& comm, xmpi::Comm& row_comm,
                         xmpi::Comm& col_comm,
                         const GeppMixedOptions& options) {
  const std::size_t n = options.n;
  FactorState<T> state;
  state.desc = linalg::BlockCyclicDesc{
      n, n, options.nb, options.nb,
      linalg::ProcessGrid::squarest(comm.size())};
  state.myrow = state.desc.grid.row_of(comm.rank());
  state.mycol = state.desc.grid.col_of(comm.rank());

  GridCtx<T> ctx{&comm,       &row_comm,   &col_comm, state.desc,
                 state.myrow, state.mycol, {},        {}};

  comm.prof_phase_begin(Prec<T>::kSetup);
  const std::size_t lrows = state.desc.local_rows(state.myrow);
  const std::size_t lcols = state.desc.local_cols(state.mycol);
  state.local = linalg::BasicMatrix<T>(std::max<std::size_t>(lrows, 1),
                                       std::max<std::size_t>(lcols, 1));
  for (std::size_t li = 0; li < lrows; ++li) {
    const std::size_t gi = state.desc.global_row(li, state.myrow);
    for (std::size_t lj = 0; lj < lcols; ++lj) {
      const std::size_t gj = state.desc.global_col(lj, state.mycol);
      state.local(li, lj) = static_cast<T>(
          options.entry_scale * linalg::system_entry(options.seed, n, gi, gj));
    }
  }
  comm.memory_touch(static_cast<double>(state.local.size_bytes()));
  comm.prof_phase_end();

  state.pivots.assign(n, 0);
  state.ok = true;
  FactorWorkspace<T> workspace;
  for (std::size_t k0 = 0; k0 < n; k0 += options.nb) {
    if (!factor_one_panel(ctx, comm, state.local, state.pivots, n, options.nb,
                          k0, workspace)) {
      state.ok = false;
      break;
    }
  }
  return state;
}

/// pdgetrs in precision T against an fp64 right-hand side: the rhs is
/// narrowed once, both substitutions run in T (reusing the retained
/// factors), and the result is widened back. This is the correction solve
/// of the refinement loop — its O(n^2) error is exactly what the next
/// residual sweep measures and absorbs.
template <typename T>
std::vector<double> solve_with(const FactorState<T>& f, xmpi::Comm& world,
                               xmpi::Comm& row_comm,
                               std::vector<double> rhs) {
  const std::size_t n = rhs.size();
  world.prof_phase_begin(Prec<T>::kSolve);
  const std::size_t nb = f.desc.nb;
  const std::size_t lcols = f.desc.local_cols(f.mycol);
  const auto local_rows_below = [&f](std::size_t g) {
    return linalg::numroc(g, f.desc.mb, f.myrow, f.desc.grid.prows);
  };
  const auto local_cols_below = [&f](std::size_t g) {
    return linalg::numroc(g, f.desc.nb, f.mycol, f.desc.grid.pcols);
  };

  for (std::size_t j = 0; j < n; ++j) {
    if (f.pivots[j] != j) std::swap(rhs[j], rhs[f.pivots[j]]);
  }
  std::vector<T> y(rhs.begin(), rhs.end());

  std::vector<T> partial;
  std::vector<T> reduced;
  std::vector<T> block_y;

  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t w = std::min(nb, n - k0);
    const int prow_k = f.desc.owner_prow(k0);
    const int pcol_k = f.desc.owner_pcol(k0);
    partial.assign(w, T(0));
    if (f.myrow == prow_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_hi = local_cols_below(k0);
      for (std::size_t r = 0; r < w; ++r) {
        T sum = T(0);
        for (std::size_t c = 0; c < c_hi; ++c) {
          sum += f.local(r_k0 + r, c) * y[f.desc.global_col(c, f.mycol)];
        }
        partial[r] = sum;
      }
      world.compute(cost_of<T>(kSubstitution, 2.0 * static_cast<double>(w) *
                                                  static_cast<double>(c_hi)));
      reduced.assign(w, T(0));
      row_comm.reduce(std::span<const T>(partial), std::span<T>(reduced),
                      xmpi::ReduceOp::kSum, pcol_k);
    }
    block_y.assign(w, T(0));
    if (f.myrow == prow_k && f.mycol == pcol_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_k0 = local_cols_below(k0);
      for (std::size_t i = 0; i < w; ++i) {
        T v = y[k0 + i] - reduced[i];
        for (std::size_t p = 0; p < i; ++p) {
          v -= f.local(r_k0 + i, c_k0 + p) * block_y[p];
        }
        block_y[i] = v;
      }
      world.compute(cost_of<T>(kSubstitution, static_cast<double>(w * w)));
    }
    world.bcast(std::span<T>(block_y), f.desc.grid.rank_of(prow_k, pcol_k));
    for (std::size_t i = 0; i < w; ++i) y[k0 + i] = block_y[i];
  }

  const std::size_t nblocks = (n + nb - 1) / nb;
  for (std::size_t bk = nblocks; bk-- > 0;) {
    const std::size_t k0 = bk * nb;
    const std::size_t w = std::min(nb, n - k0);
    const int prow_k = f.desc.owner_prow(k0);
    const int pcol_k = f.desc.owner_pcol(k0);
    partial.assign(w, T(0));
    if (f.myrow == prow_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_lo = local_cols_below(k0 + w);
      for (std::size_t r = 0; r < w; ++r) {
        T sum = T(0);
        for (std::size_t c = c_lo; c < lcols; ++c) {
          sum += f.local(r_k0 + r, c) * y[f.desc.global_col(c, f.mycol)];
        }
        partial[r] = sum;
      }
      world.compute(
          cost_of<T>(kSubstitution, 2.0 * static_cast<double>(w) *
                                        static_cast<double>(lcols - c_lo)));
      reduced.assign(w, T(0));
      row_comm.reduce(std::span<const T>(partial), std::span<T>(reduced),
                      xmpi::ReduceOp::kSum, pcol_k);
    }
    block_y.assign(w, T(0));
    if (f.myrow == prow_k && f.mycol == pcol_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_k0 = local_cols_below(k0);
      for (std::size_t ii = w; ii-- > 0;) {
        T v = y[k0 + ii] - reduced[ii];
        for (std::size_t p = ii + 1; p < w; ++p) {
          v -= f.local(r_k0 + ii, c_k0 + p) * block_y[p];
        }
        block_y[ii] = v / f.local(r_k0 + ii, c_k0 + ii);
      }
      world.compute(cost_of<T>(kSubstitution, static_cast<double>(w * w)));
    }
    world.bcast(std::span<T>(block_y), f.desc.grid.rank_of(prow_k, pcol_k));
    for (std::size_t i = 0; i < w; ++i) y[k0 + i] = block_y[i];
  }

  world.prof_phase_end();
  return std::vector<double>(y.begin(), y.end());
}

/// The contiguous row block [r0, r1) this rank owns in the O(n^2) fp64
/// sweeps (independent of the block-cyclic factor layout — the sweeps
/// regenerate their matrix rows, so any balanced partition works and the
/// contiguous one makes the allgather trivial).
struct RowChunk {
  std::size_t chunk;
  std::size_t r0;
  std::size_t r1;
};

RowChunk my_rows(const xmpi::Comm& comm, std::size_t n) {
  const std::size_t p = static_cast<std::size_t>(comm.size());
  const std::size_t chunk = (n + p - 1) / p;
  const std::size_t r0 =
      std::min(n, static_cast<std::size_t>(comm.rank()) * chunk);
  return RowChunk{chunk, r0, std::min(n, r0 + chunk)};
}

/// r := b - A x in fp64, replicated on every rank. Each rank regenerates
/// its row block of A entry by entry and the chunks are allgathered.
std::vector<double> residual(xmpi::Comm& comm, const GeppMixedOptions& options,
                             const std::vector<double>& x,
                             const std::vector<double>& b) {
  const std::size_t n = options.n;
  comm.prof_phase_begin("refine:residual");
  const RowChunk rows = my_rows(comm, n);
  std::vector<double> r_local(rows.chunk, 0.0);
  for (std::size_t i = rows.r0; i < rows.r1; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      sum += options.entry_scale *
             linalg::system_entry(options.seed, n, i, j) * x[j];
    }
    r_local[i - rows.r0] = b[i] - sum;
  }
  comm.compute(cost_of<double>(
      kGemv, 2.0 * static_cast<double>(n) *
                 static_cast<double>(rows.r1 - rows.r0)));
  std::vector<double> r_all(rows.chunk *
                            static_cast<std::size_t>(comm.size()));
  comm.allgather(std::span<const double>(r_local), std::span<double>(r_all));
  r_all.resize(n);
  comm.prof_phase_end();
  return r_all;
}

/// ||A||_inf of the scaled generated system, replicated (local row sums +
/// a max-allreduce).
double matrix_norm(xmpi::Comm& comm, const GeppMixedOptions& options) {
  const std::size_t n = options.n;
  comm.prof_phase_begin("refine:norms");
  const RowChunk rows = my_rows(comm, n);
  double local_max = 0.0;
  for (std::size_t i = rows.r0; i < rows.r1; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row_sum += std::fabs(options.entry_scale *
                           linalg::system_entry(options.seed, n, i, j));
    }
    local_max = std::max(local_max, row_sum);
  }
  comm.compute(cost_of<double>(
      kGemv, static_cast<double>(n) *
                 static_cast<double>(rows.r1 - rows.r0)));
  const double norm = comm.allreduce_value(local_max, xmpi::ReduceOp::kMax);
  comm.prof_phase_end();
  return norm;
}

double inf_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (const double e : v) m = std::max(m, std::fabs(e));
  return m;
}

}  // namespace

GeppMixedResult solve_gepp_mixed(xmpi::Comm& comm,
                                 const GeppMixedOptions& options) {
  const std::size_t n = options.n;
  PLIN_CHECK_MSG(n > 0, "gepp_mixed: system dimension must be positive");
  PLIN_CHECK_MSG(options.nb > 0, "gepp_mixed: block size must be positive");
  PLIN_CHECK_MSG(options.max_iters > 0,
                 "gepp_mixed: max_iters must be positive");

  const linalg::ProcessGrid grid =
      linalg::ProcessGrid::squarest(comm.size());
  xmpi::Comm row_comm = comm.split(comm.rank() / grid.pcols, comm.rank());
  xmpi::Comm col_comm = comm.split(comm.rank() % grid.pcols, comm.rank());

  GeppMixedResult result;
  result.grid = grid;

  std::vector<double> b = linalg::generate_rhs(options.seed, n);
  comm.memory_touch(static_cast<double>(n * sizeof(double)));

  FactorState<float> f32 =
      factorize<float>(comm, row_comm, col_comm, options);

  bool converged = false;
  if (f32.ok) {
    result.x = solve_with(f32, comm, row_comm, b);

    // Backward-stable target: ||r|| <= ||A|| ||x|| n eps64. With the fp32
    // factors carrying ~7 digits, each sweep multiplies the error by
    // O(eps32 * cond(A)); well-conditioned systems land in 1-3 sweeps.
    const double anorm = matrix_norm(comm, options);
    const double eps = std::numeric_limits<double>::epsilon();
    const auto tolerance = [&](const std::vector<double>& x) {
      return anorm * inf_norm(x) * static_cast<double>(n) * eps;
    };

    std::vector<double> r = residual(comm, options, result.x, b);
    double rnorm = inf_norm(r);
    result.residual_norm = rnorm;
    converged = rnorm <= tolerance(result.x);

    // Sweeps continue past the tolerance while each one still halves the
    // residual: the first converged iterate can sit just under the
    // n*eps64 target while one more O(n^2) sweep reaches the fp64
    // direct-solve floor. Each extra sweep is noise next to the O(n^3)
    // factorization, and the exit point stays a pure function of the
    // replicated norms, so every rank (and every host configuration)
    // leaves the loop at the same iterate.
    for (int iter = 1; iter <= options.max_iters; ++iter) {
      std::vector<double> d = solve_with(f32, comm, row_comm, std::move(r));
      comm.prof_phase_begin("refine:correct");
      for (std::size_t i = 0; i < n; ++i) result.x[i] += d[i];
      comm.compute(cost_of<double>(kGemv, static_cast<double>(n)));
      comm.prof_phase_end();

      r = residual(comm, options, result.x, b);
      const double new_norm = inf_norm(r);
      result.iters = iter;

      if (converged && new_norm > rnorm) {
        // The polish sweep overshot the fp32 floor; undo it and keep the
        // strictly better converged iterate.
        comm.prof_phase_begin("refine:correct");
        for (std::size_t i = 0; i < n; ++i) result.x[i] -= d[i];
        comm.compute(cost_of<double>(kGemv, static_cast<double>(n)));
        comm.prof_phase_end();
        break;
      }
      result.residual_norm = new_norm;
      if (new_norm <= tolerance(result.x)) converged = true;
      // Stagnation: short of the target the residual must keep halving or
      // fp32 has hit its floor — fall back. Past the target a sweep must
      // still pay for itself with an order of magnitude (near the fp64
      // floor sweeps only jitter by ~2x, and polishing those would erode
      // the time-to-solution win). The inverted comparison also trips on
      // NaN (an overflowed fp32 factorization), which never improves.
      const bool improving = new_norm < (converged ? 0.1 : 0.5) * rnorm;
      rnorm = new_norm;
      if (!improving) break;
    }
  }

  if (!converged) {
    // Every rank reaches this branch together: f32.ok and the refinement
    // norms are replicated values.
    result.fell_back = true;
    FactorState<double> f64 =
        factorize<double>(comm, row_comm, col_comm, options);
    PLIN_CHECK_MSG(f64.ok, "gepp_mixed: matrix is singular");
    result.x = solve_with(f64, comm, row_comm, b);
    result.residual_norm = inf_norm(residual(comm, options, result.x, b));
  }

  result.grid = f32.desc.grid;
  return result;
}

}  // namespace plin::solvers
