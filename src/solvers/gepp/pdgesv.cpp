#include "solvers/gepp/pdgesv.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace plin::solvers {
namespace {

constexpr int kTagSwap = 20;

xmpi::ComputeCost cost_of(const KernelProfile& profile, double flops) {
  return xmpi::ComputeCost{flops, flops * profile.bytes_per_flop,
                           profile.efficiency};
}

/// Pure data movement (row swaps): flops-free memory traffic.
xmpi::ComputeCost movement(double bytes) {
  return xmpi::ComputeCost{0.0, bytes, 1.0};
}

/// Everything the factorization needs to know about "me".
struct GridContext {
  xmpi::Comm* world;
  xmpi::Comm row_comm;  // my process row, ranked by pcol
  xmpi::Comm col_comm;  // my process column, ranked by prow
  linalg::BlockCyclicDesc desc;
  int myrow;
  int mycol;
  /// Reused row-swap exchange buffers: swap_row_segments runs O(n) times
  /// per factorization, and per-call vectors made every pivot swap pay two
  /// heap allocations on top of the message itself.
  std::vector<double> swap_outgoing;
  std::vector<double> swap_incoming;

  std::size_t local_rows_below(std::size_t g) const {
    return linalg::numroc(g, desc.mb, myrow, desc.grid.prows);
  }
  std::size_t local_cols_below(std::size_t g) const {
    return linalg::numroc(g, desc.nb, mycol, desc.grid.pcols);
  }
};

/// Exchanges (or locally swaps) the pieces of global rows ga and gb that
/// fall in the local column range [c0, c1). Runs inside the process column.
void swap_row_segments(GridContext& ctx, linalg::Matrix& local,
                       std::size_t ga, std::size_t gb, std::size_t c0,
                       std::size_t c1) {
  if (ga == gb || c1 <= c0) return;
  const int prow_a = ctx.desc.owner_prow(ga);
  const int prow_b = ctx.desc.owner_prow(gb);
  const std::size_t width = c1 - c0;
  if (prow_a == prow_b) {
    if (ctx.myrow == prow_a) {
      const std::size_t la = ctx.desc.local_row(ga);
      const std::size_t lb = ctx.desc.local_row(gb);
      linalg::dswap(local.row(la).subspan(c0, width),
                    local.row(lb).subspan(c0, width));
      ctx.world->compute(movement(2.0 * 8.0 * static_cast<double>(width)));
    }
    return;
  }
  if (ctx.myrow != prow_a && ctx.myrow != prow_b) return;
  const std::size_t lmine =
      ctx.desc.local_row(ctx.myrow == prow_a ? ga : gb);
  const int peer = ctx.myrow == prow_a ? prow_b : prow_a;
  ctx.swap_outgoing.assign(local.row(lmine).begin() + c0,
                           local.row(lmine).begin() + c1);
  ctx.swap_incoming.resize(width);
  ctx.col_comm.sendrecv(std::span<const double>(ctx.swap_outgoing),
                        std::span<double>(ctx.swap_incoming), peer, kTagSwap);
  std::copy(ctx.swap_incoming.begin(), ctx.swap_incoming.end(),
            local.row(lmine).begin() + c0);
  ctx.world->compute(movement(2.0 * 8.0 * static_cast<double>(width)));
}

/// Factors the panel [k0, k0+w) inside its process column, filling
/// pivots[k0..k0+w). Only ranks with mycol == panel pcol call this.
void factor_panel(GridContext& ctx, linalg::Matrix& local, std::size_t k0,
                  std::size_t w, std::vector<std::size_t>& pivots) {
  const std::size_t lrows = local.rows();
  std::vector<double> pivot_row;
  std::vector<double> multipliers;
  double panel_flops = 0.0;

  for (std::size_t j = k0; j < k0 + w; ++j) {
    const std::size_t lj = ctx.desc.local_col(j);

    // Distributed pivot search over rows >= j.
    double best = -1.0;
    long long best_row = static_cast<long long>(j);
    for (std::size_t li = ctx.local_rows_below(j); li < lrows; ++li) {
      const double v = std::fabs(local(li, lj));
      if (v > best) {
        best = v;
        best_row = static_cast<long long>(ctx.desc.global_row(li, ctx.myrow));
      }
    }
    const xmpi::Comm::MaxLoc piv = ctx.col_comm.allreduce_maxloc(best, best_row);
    PLIN_CHECK_MSG(piv.value > 0.0, "pdgesv: matrix is singular");
    const std::size_t piv_row = static_cast<std::size_t>(piv.index);
    pivots[j] = piv_row;

    // Swap rows j <-> piv_row within the panel columns.
    swap_row_segments(ctx, local, j, piv_row, ctx.local_cols_below(k0),
                      ctx.local_cols_below(k0) + w);

    // Broadcast the (post-swap) pivot row segment [j, k0+w) down the
    // process column; its first element is the pivot value.
    const std::size_t seg = k0 + w - j;
    pivot_row.resize(seg);
    const int prow_j = ctx.desc.owner_prow(j);
    if (ctx.myrow == prow_j) {
      const std::size_t ljr = ctx.desc.local_row(j);
      for (std::size_t c = 0; c < seg; ++c) {
        pivot_row[c] = local(ljr, lj + c);
      }
    }
    ctx.col_comm.bcast(std::span<double>(pivot_row), prow_j);

    // Scale column j below the diagonal (gathering the strided multiplier
    // column once), then rank-1-update the panel through the engine's dger.
    // The charged flop formula below is unchanged: virtual time and energy
    // do not depend on the host kernel path.
    const double inv = 1.0 / pivot_row[0];
    const std::size_t lo = ctx.local_rows_below(j + 1);
    multipliers.resize(lrows - lo);
    for (std::size_t li = lo; li < lrows; ++li) {
      local(li, lj) *= inv;
      multipliers[li - lo] = local(li, lj);
    }
    if (lrows > lo && seg > 1) {
      linalg::dger(-1.0, multipliers,
                   std::span<const double>(pivot_row.data() + 1, seg - 1),
                   local.view().sub(lo, lj + 1, lrows - lo, seg - 1));
    }
    panel_flops += static_cast<double>((lrows - lo) * (2 * seg - 1)) +
                   static_cast<double>(lrows - ctx.local_rows_below(j));
  }
  ctx.world->compute(cost_of(kPanel, panel_flops));
}

/// Workspace reused across panels (receive buffers).
struct FactorWorkspace {
  linalg::Matrix panel_slab;  // received L panel (my local rows >= k0, w)
  linalg::Matrix u12;         // received U12 block (w x my trailing cols)
};

/// One right-looking factorization step: panel, pivot exchange, row
/// interchanges, slab/U12 broadcasts and the trailing GEMM.
void factor_one_panel(GridContext& ctx, xmpi::Comm& comm,
                      linalg::Matrix& local,
                      std::vector<std::size_t>& pivots, std::size_t n,
                      std::size_t nb, std::size_t k0, FactorWorkspace& ws) {
  const std::size_t lrows = ctx.desc.local_rows(ctx.myrow);
  const std::size_t lcols = ctx.desc.local_cols(ctx.mycol);
  const std::size_t w = std::min(nb, n - k0);
  const int panel_pcol = ctx.desc.owner_pcol(k0);
  const int prow_k = ctx.desc.owner_prow(k0);

  if (ctx.mycol == panel_pcol) {
    comm.prof_phase_begin("gepp:factor_panel");
    factor_panel(ctx, local, k0, w, pivots);
    comm.prof_phase_end();
  }

  // Pivot indices travel along the process row so every process column
  // can apply the interchanges (and every rank learns the permutation
  // for the solve phase).
  comm.prof_phase_begin("gepp:pivot_bcast");
  ctx.row_comm.bcast(std::span<std::size_t>(pivots.data() + k0, w),
                     panel_pcol);
  comm.prof_phase_end();

  // Apply this panel's interchanges to the leading and trailing columns.
  comm.prof_phase_begin("gepp:row_swap");
  const std::size_t c_panel_lo = ctx.local_cols_below(k0);
  const std::size_t c_panel_hi = ctx.local_cols_below(k0 + w);
  for (std::size_t j = k0; j < k0 + w; ++j) {
    swap_row_segments(ctx, local, j, pivots[j], 0, c_panel_lo);
    swap_row_segments(ctx, local, j, pivots[j], c_panel_hi, lcols);
  }
  comm.prof_phase_end();

  const std::size_t r_k0 = ctx.local_rows_below(k0);
  const std::size_t slab_rows = lrows - r_k0;

  // L panel travels along the process row.
  if (slab_rows > 0) {
    comm.prof_phase_begin("gepp:lpanel_bcast");
    ws.panel_slab = linalg::Matrix(slab_rows, w);
    if (ctx.mycol == panel_pcol) {
      for (std::size_t r = 0; r < slab_rows; ++r) {
        for (std::size_t c = 0; c < w; ++c) {
          ws.panel_slab(r, c) = local(r_k0 + r, c_panel_lo + c);
        }
      }
    }
    ctx.row_comm.bcast(std::span<double>(ws.panel_slab.flat()), panel_pcol);
    comm.prof_phase_end();
  }

  if (k0 + w >= n) return;

  // U12 := L11^{-1} A12 inside the pivot process row, then down the
  // process columns.
  comm.prof_phase_begin("gepp:u12");
  const std::size_t c_trail = ctx.local_cols_below(k0 + w);
  const std::size_t trail_cols = lcols - c_trail;
  ws.u12 = linalg::Matrix(w, std::max<std::size_t>(trail_cols, 1));
  if (ctx.myrow == prow_k) {
    if (trail_cols > 0) {
      linalg::ConstMatrixView l11 = ws.panel_slab.view().sub(0, 0, w, w);
      linalg::MatrixView a12 = local.view().sub(r_k0, c_trail, w, trail_cols);
      linalg::dtrsm_lower_unit(l11, a12);
      comm.compute(cost_of(kTrsm,
                           static_cast<double>(w) * static_cast<double>(w) *
                               static_cast<double>(trail_cols)));
      for (std::size_t r = 0; r < w; ++r) {
        for (std::size_t c = 0; c < trail_cols; ++c) {
          ws.u12(r, c) = local(r_k0 + r, c_trail + c);
        }
      }
    }
  }
  if (trail_cols > 0) {
    ctx.col_comm.bcast(std::span<double>(ws.u12.flat()), prow_k);
  }
  comm.prof_phase_end();

  // Trailing update: A22 -= L21 * U12 with my local pieces.
  comm.prof_phase_begin("gepp:gemm");
  const std::size_t r_lo2 = ctx.local_rows_below(k0 + w);
  const std::size_t gemm_rows = lrows - r_lo2;
  if (gemm_rows > 0 && trail_cols > 0) {
    linalg::ConstMatrixView l21 =
        ws.panel_slab.view().sub(r_lo2 - r_k0, 0, gemm_rows, w);
    linalg::ConstMatrixView u12v = ws.u12.view().sub(0, 0, w, trail_cols);
    linalg::MatrixView a22 =
        local.view().sub(r_lo2, c_trail, gemm_rows, trail_cols);
    linalg::dgemm(-1.0, l21, u12v, 1.0, a22);
    comm.compute(cost_of(kGemm, 2.0 * static_cast<double>(gemm_rows) *
                                    static_cast<double>(w) *
                                    static_cast<double>(trail_cols)));
  }
  comm.prof_phase_end();
}

}  // namespace

PdluFactorization pdgetrf(xmpi::Comm& comm, const PdgesvOptions& options) {
  const std::size_t n = options.n;
  PLIN_CHECK_MSG(n > 0, "pdgesv: system dimension must be positive");
  PLIN_CHECK_MSG(options.nb > 0, "pdgesv: block size must be positive");

  GridContext ctx{
      &comm,
      comm.split(comm.rank() / linalg::ProcessGrid::squarest(comm.size()).pcols,
                 comm.rank()),
      comm.split(comm.rank() % linalg::ProcessGrid::squarest(comm.size()).pcols,
                 comm.rank()),
      linalg::BlockCyclicDesc{n, n, options.nb, options.nb,
                              linalg::ProcessGrid::squarest(comm.size())},
      0,
      0,
      {},
      {}};
  ctx.myrow = ctx.desc.grid.row_of(comm.rank());
  ctx.mycol = ctx.desc.grid.col_of(comm.rank());

  // ---- allocation + generation ("matrix allocation" phase) -----------------
  comm.prof_phase_begin("gepp:setup");
  const std::size_t lrows = ctx.desc.local_rows(ctx.myrow);
  const std::size_t lcols = ctx.desc.local_cols(ctx.mycol);
  linalg::Matrix local(std::max<std::size_t>(lrows, 1),
                       std::max<std::size_t>(lcols, 1));
  for (std::size_t li = 0; li < lrows; ++li) {
    const std::size_t gi = ctx.desc.global_row(li, ctx.myrow);
    for (std::size_t lj = 0; lj < lcols; ++lj) {
      const std::size_t gj = ctx.desc.global_col(lj, ctx.mycol);
      local(li, lj) = linalg::system_entry(options.seed, n, gi, gj);
    }
  }
  comm.memory_touch(static_cast<double>(local.size_bytes()));
  comm.prof_phase_end();

  std::vector<std::size_t> pivots(n, 0);
  FactorWorkspace workspace;
  for (std::size_t k0 = 0; k0 < n; k0 += options.nb) {
    factor_one_panel(ctx, comm, local, pivots, n, options.nb, k0, workspace);
  }

  PdluFactorization factorization(comm, ctx.row_comm, ctx.col_comm);
  factorization.n_ = n;
  factorization.nb_ = options.nb;
  factorization.desc_ = ctx.desc;
  factorization.myrow_ = ctx.myrow;
  factorization.mycol_ = ctx.mycol;
  factorization.pivots_ = std::move(pivots);
  factorization.local_ = std::move(local);
  return factorization;
}

PdgetrfFtResult pdgetrf_checkpointed(xmpi::Comm& comm,
                                     const PdgetrfFtOptions& options) {
  const std::size_t n = options.base.n;
  PLIN_CHECK_MSG(n > 0, "pdgesv: system dimension must be positive");
  PLIN_CHECK_MSG(options.base.nb > 0, "pdgesv: block size must be positive");
  PLIN_CHECK_MSG(options.checkpoint_every_panels > 0,
                 "pdgetrf_checkpointed: checkpoint interval must be > 0");

  GridContext ctx{
      &comm,
      comm.split(comm.rank() / linalg::ProcessGrid::squarest(comm.size()).pcols,
                 comm.rank()),
      comm.split(comm.rank() % linalg::ProcessGrid::squarest(comm.size()).pcols,
                 comm.rank()),
      linalg::BlockCyclicDesc{n, n, options.base.nb, options.base.nb,
                              linalg::ProcessGrid::squarest(comm.size())},
      0,
      0,
      {},
      {}};
  ctx.myrow = ctx.desc.grid.row_of(comm.rank());
  ctx.mycol = ctx.desc.grid.col_of(comm.rank());

  comm.prof_phase_begin("gepp:setup");
  const std::size_t lrows = ctx.desc.local_rows(ctx.myrow);
  const std::size_t lcols = ctx.desc.local_cols(ctx.mycol);
  linalg::Matrix local(std::max<std::size_t>(lrows, 1),
                       std::max<std::size_t>(lcols, 1));
  for (std::size_t li = 0; li < lrows; ++li) {
    const std::size_t gi = ctx.desc.global_row(li, ctx.myrow);
    for (std::size_t lj = 0; lj < lcols; ++lj) {
      const std::size_t gj = ctx.desc.global_col(lj, ctx.mycol);
      local(li, lj) = linalg::system_entry(options.base.seed, n, gi, gj);
    }
  }
  comm.memory_touch(static_cast<double>(local.size_bytes()));
  comm.prof_phase_end();

  std::vector<std::size_t> pivots(n, 0);
  FactorWorkspace workspace;

  // Coordinated in-memory checkpoint: this rank's tiles + the pivot array.
  linalg::Matrix ckpt_local = local;
  std::vector<std::size_t> ckpt_pivots = pivots;
  std::size_t ckpt_panel = 0;
  linalg::Matrix partner_snapshot;  // partner's tiles (partner_copy mode)
  constexpr int kTagCheckpoint = 21;

  PdgetrfFtResult result{PdluFactorization(comm, ctx.row_comm, ctx.col_comm),
                         0, 0, 0};

  const std::size_t nb = options.base.nb;
  const std::size_t nblocks = (n + nb - 1) / nb;
  bool fault_pending = options.inject_fault_at_panel.has_value();
  std::size_t next_checkpoint = 0;

  for (std::size_t panel = 0; panel < nblocks;) {
    if (panel == next_checkpoint) {
      // Snapshot: one read + one write of the full local state.
      comm.prof_phase_begin("gepp:checkpoint");
      ckpt_local = local;
      ckpt_pivots = pivots;
      ckpt_panel = panel;
      comm.memory_touch(2.0 * static_cast<double>(local.size_bytes()));
      if (options.partner_copy && comm.size() > 1) {
        // Exchange snapshots with the XOR partner (diskless partner
        // checkpointing): the snapshot actually crosses the network.
        // A trailing odd rank has no partner and keeps its local copy only.
        const int partner = comm.rank() ^ 1;
        if (partner < comm.size()) {
          // The partner sits in a different grid column/row, so its tile
          // block has its own dimensions.
          const std::size_t partner_rows = std::max<std::size_t>(
              ctx.desc.local_rows(ctx.desc.grid.row_of(partner)), 1);
          const std::size_t partner_cols = std::max<std::size_t>(
              ctx.desc.local_cols(ctx.desc.grid.col_of(partner)), 1);
          if (partner_snapshot.rows() != partner_rows ||
              partner_snapshot.cols() != partner_cols) {
            partner_snapshot = linalg::Matrix(partner_rows, partner_cols);
          }
          comm.sendrecv(std::span<const double>(ckpt_local.flat()),
                        std::span<double>(partner_snapshot.flat()), partner,
                        kTagCheckpoint);
        }
      }
      ++result.checkpoints_taken;
      next_checkpoint += options.checkpoint_every_panels;
      comm.prof_phase_end();
    }
    if (fault_pending && panel == *options.inject_fault_at_panel) {
      // The in-flight state is lost; every rank rolls back to the last
      // coordinated checkpoint and recomputes the panels since.
      fault_pending = false;
      comm.prof_phase_begin("gepp:rollback");
      local = ckpt_local;
      pivots = ckpt_pivots;
      comm.memory_touch(2.0 * static_cast<double>(local.size_bytes()));
      comm.prof_phase_end();
      ++result.restarts;
      result.panels_recomputed += panel - ckpt_panel;
      panel = ckpt_panel;
      continue;
    }
    factor_one_panel(ctx, comm, local, pivots, n, nb, panel * nb, workspace);
    ++panel;
  }

  result.factorization.n_ = n;
  result.factorization.nb_ = nb;
  result.factorization.desc_ = ctx.desc;
  result.factorization.myrow_ = ctx.myrow;
  result.factorization.mycol_ = ctx.mycol;
  result.factorization.pivots_ = std::move(pivots);
  result.factorization.local_ = std::move(local);
  return result;
}

std::vector<double> PdluFactorization::solve(std::vector<double> rhs) const {
  const std::size_t n = n_;
  PLIN_CHECK_MSG(rhs.size() == n, "pdgetrs: rhs size mismatch");
  world_.prof_phase_begin("gepp:solve");
  const std::size_t nb = nb_;
  const std::size_t lcols = desc_.local_cols(mycol_);
  const auto local_rows_below = [this](std::size_t g) {
    return linalg::numroc(g, desc_.mb, myrow_, desc_.grid.prows);
  };
  const auto local_cols_below = [this](std::size_t g) {
    return linalg::numroc(g, desc_.nb, mycol_, desc_.grid.pcols);
  };

  // Apply the pivot permutation (known everywhere) locally.
  for (std::size_t j = 0; j < n; ++j) {
    if (pivots_[j] != j) std::swap(rhs[j], rhs[pivots_[j]]);
  }

  std::vector<double> partial;
  std::vector<double> reduced;
  std::vector<double> block_y;

  // Forward substitution with unit L, block by block.
  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t w = std::min(nb, n - k0);
    const int prow_k = desc_.owner_prow(k0);
    const int pcol_k = desc_.owner_pcol(k0);
    partial.assign(w, 0.0);
    if (myrow_ == prow_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_hi = local_cols_below(k0);
      for (std::size_t r = 0; r < w; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < c_hi; ++c) {
          sum += local_(r_k0 + r, c) * rhs[desc_.global_col(c, mycol_)];
        }
        partial[r] = sum;
      }
      world_.compute(cost_of(kSubstitution,
                             2.0 * static_cast<double>(w) *
                                 static_cast<double>(c_hi)));
      reduced.assign(w, 0.0);
      row_comm_.reduce(std::span<const double>(partial),
                       std::span<double>(reduced), xmpi::ReduceOp::kSum,
                       pcol_k);
    }
    block_y.assign(w, 0.0);
    if (myrow_ == prow_k && mycol_ == pcol_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_k0 = local_cols_below(k0);
      for (std::size_t i = 0; i < w; ++i) {
        double v = rhs[k0 + i] - reduced[i];
        for (std::size_t p = 0; p < i; ++p) {
          v -= local_(r_k0 + i, c_k0 + p) * block_y[p];
        }
        block_y[i] = v;
      }
      world_.compute(cost_of(kSubstitution, static_cast<double>(w * w)));
    }
    world_.bcast(std::span<double>(block_y),
                 desc_.grid.rank_of(prow_k, pcol_k));
    for (std::size_t i = 0; i < w; ++i) rhs[k0 + i] = block_y[i];
  }

  // Backward substitution with U.
  const std::size_t nblocks = (n + nb - 1) / nb;
  for (std::size_t bk = nblocks; bk-- > 0;) {
    const std::size_t k0 = bk * nb;
    const std::size_t w = std::min(nb, n - k0);
    const int prow_k = desc_.owner_prow(k0);
    const int pcol_k = desc_.owner_pcol(k0);
    partial.assign(w, 0.0);
    if (myrow_ == prow_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_lo = local_cols_below(k0 + w);
      for (std::size_t r = 0; r < w; ++r) {
        double sum = 0.0;
        for (std::size_t c = c_lo; c < lcols; ++c) {
          sum += local_(r_k0 + r, c) * rhs[desc_.global_col(c, mycol_)];
        }
        partial[r] = sum;
      }
      world_.compute(cost_of(kSubstitution,
                             2.0 * static_cast<double>(w) *
                                 static_cast<double>(lcols - c_lo)));
      reduced.assign(w, 0.0);
      row_comm_.reduce(std::span<const double>(partial),
                       std::span<double>(reduced), xmpi::ReduceOp::kSum,
                       pcol_k);
    }
    block_y.assign(w, 0.0);
    if (myrow_ == prow_k && mycol_ == pcol_k) {
      const std::size_t r_k0 = local_rows_below(k0);
      const std::size_t c_k0 = local_cols_below(k0);
      for (std::size_t ii = w; ii-- > 0;) {
        double v = rhs[k0 + ii] - reduced[ii];
        for (std::size_t p = ii + 1; p < w; ++p) {
          v -= local_(r_k0 + ii, c_k0 + p) * block_y[p];
        }
        const double diag = local_(r_k0 + ii, c_k0 + ii);
        PLIN_CHECK_MSG(diag != 0.0, "pdgesv: singular U block");
        block_y[ii] = v / diag;
      }
      world_.compute(cost_of(kSubstitution, static_cast<double>(w * w)));
    }
    world_.bcast(std::span<double>(block_y),
                 desc_.grid.rank_of(prow_k, pcol_k));
    for (std::size_t i = 0; i < w; ++i) rhs[k0 + i] = block_y[i];
  }

  world_.prof_phase_end();
  return rhs;
}

PdgesvResult solve_pdgesv(xmpi::Comm& comm, const PdgesvOptions& options) {
  const PdluFactorization factorization = pdgetrf(comm, options);

  std::vector<double> rhs = linalg::generate_rhs(options.seed, options.n);
  comm.memory_touch(static_cast<double>(options.n * sizeof(double)));

  PdgesvResult result;
  result.grid = factorization.grid();
  result.pivots = factorization.pivots();
  result.x = factorization.solve(std::move(rhs));
  return result;
}

}  // namespace plin::solvers
