// Sequential Gaussian elimination with partial pivoting — the reference
// implementation both parallel solvers are validated against, and the
// single-rank baseline of the LU solver.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace plin::solvers {

/// In-place LU factorization with partial pivoting: A = P * L * U where L
/// is unit lower triangular (stored below the diagonal) and U upper
/// triangular. `pivots[k]` is the row swapped with row k at step k.
/// Throws Error on an exactly singular matrix.
void lu_factor(linalg::Matrix& a, std::vector<std::size_t>& pivots);

/// Solves A x = b using a factorization produced by lu_factor.
std::vector<double> lu_solve(const linalg::Matrix& lu,
                             const std::vector<std::size_t>& pivots,
                             std::vector<double> b);

/// One-shot convenience: Gaussian elimination with partial pivoting.
std::vector<double> solve_gepp(linalg::Matrix a, std::vector<double> b);

/// Blocked right-looking variant (the algorithm ScaLAPACK parallelizes),
/// with block size `nb`; numerically identical pivot choices to the
/// unblocked code.
void lu_factor_blocked(linalg::Matrix& a, std::vector<std::size_t>& pivots,
                       std::size_t nb);

}  // namespace plin::solvers
