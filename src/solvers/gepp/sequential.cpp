#include "solvers/gepp/sequential.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "support/error.hpp"

namespace plin::solvers {
namespace {

/// Factors the panel A[k:, k:k+w) in place with partial pivoting over the
/// whole trailing height, recording pivots and applying the swaps to the
/// full rows of A (LAPACK dgetf2 behaviour inside dgetrf).
void factor_panel(linalg::MatrixView a, std::size_t k, std::size_t w,
                  std::vector<std::size_t>& pivots) {
  const std::size_t n = a.rows();
  std::vector<double> multipliers;
  for (std::size_t j = k; j < k + w; ++j) {
    // Pivot search in column j, rows j..n.
    std::size_t piv = j;
    double best = std::fabs(a(j, j));
    for (std::size_t i = j + 1; i < n; ++i) {
      const double v = std::fabs(a(i, j));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    PLIN_CHECK_MSG(best != 0.0, "lu_factor: matrix is singular");
    pivots[j] = piv;
    if (piv != j) linalg::dswap(a.row(j), a.row(piv));

    // Scale the multipliers below the diagonal, then update only within the
    // panel via the engine's rank-1 kernel (the multiplier column is
    // strided, so it is gathered once); the trailing update happens per
    // block in lu_factor_blocked.
    const double inv = 1.0 / a(j, j);
    const std::size_t below = n - j - 1;
    multipliers.resize(below);
    for (std::size_t i = j + 1; i < n; ++i) {
      a(i, j) *= inv;
      multipliers[i - j - 1] = a(i, j);
    }
    const std::size_t panel_cols = k + w - (j + 1);
    if (below > 0 && panel_cols > 0) {
      linalg::dger(-1.0, multipliers, a.row(j).subspan(j + 1, panel_cols),
                   a.sub(j + 1, j + 1, below, panel_cols));
    }
  }
}

}  // namespace

void lu_factor_blocked(linalg::Matrix& a, std::vector<std::size_t>& pivots,
                       std::size_t nb) {
  PLIN_CHECK_MSG(a.rows() == a.cols(), "lu_factor: matrix must be square");
  PLIN_CHECK_MSG(nb > 0, "lu_factor: block size must be positive");
  const std::size_t n = a.rows();
  pivots.assign(n, 0);
  linalg::MatrixView av = a.view();

  for (std::size_t k = 0; k < n; k += nb) {
    const std::size_t w = std::min(nb, n - k);
    factor_panel(av, k, w, pivots);
    if (k + w >= n) break;

    // U12 := L11^{-1} * A12.
    linalg::ConstMatrixView l11 = av.sub(k, k, w, w);
    linalg::MatrixView a12 = av.sub(k, k + w, w, n - k - w);
    linalg::dtrsm_lower_unit(l11, a12);

    // A22 := A22 - L21 * U12.
    linalg::ConstMatrixView l21 = av.sub(k + w, k, n - k - w, w);
    linalg::MatrixView a22 = av.sub(k + w, k + w, n - k - w, n - k - w);
    linalg::dgemm(-1.0, l21, a12, 1.0, a22);
  }
}

void lu_factor(linalg::Matrix& a, std::vector<std::size_t>& pivots) {
  lu_factor_blocked(a, pivots, /*nb=*/1);
}

std::vector<double> lu_solve(const linalg::Matrix& lu,
                             const std::vector<std::size_t>& pivots,
                             std::vector<double> b) {
  const std::size_t n = lu.rows();
  PLIN_CHECK_MSG(b.size() == n && pivots.size() == n,
                 "lu_solve: size mismatch");
  // Apply the pivot permutation to b.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
  }
  // Forward substitution with unit L (dot-product form vectorizes, unlike
  // the serial subtract chain).
  for (std::size_t i = 1; i < n; ++i) {
    b[i] -= linalg::ddot(lu.row(i).first(i),
                         std::span<const double>(b.data(), i));
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = lu.row(ii).data();
    const double sum =
        b[ii] - linalg::ddot(lu.row(ii).subspan(ii + 1),
                             std::span<const double>(b.data() + ii + 1,
                                                     n - ii - 1));
    PLIN_CHECK_MSG(row[ii] != 0.0, "lu_solve: singular U");
    b[ii] = sum / row[ii];
  }
  return b;
}

std::vector<double> solve_gepp(linalg::Matrix a, std::vector<double> b) {
  std::vector<std::size_t> pivots;
  lu_factor_blocked(a, pivots, /*nb=*/64);
  return lu_solve(a, pivots, std::move(b));
}

}  // namespace plin::solvers
