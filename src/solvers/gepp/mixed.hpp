// gepp_mixed — mixed-precision parallel LU: single-precision factorization
// with double-precision iterative refinement, after LAPACK's dsgesv and
// SLATE's gesvMixed.
//
// The O(n^3) work (panel factorization, TRSM, trailing GEMM) runs entirely
// in fp32 on the same 2-D block-cyclic layout as pdgesv, halving the bytes
// moved per flop and running against the cores' higher fp32 peak. The
// O(n^2) cleanup runs in fp64: per sweep, a distributed residual
// r = b - A x (each rank regenerates its contiguous row block of A), a
// correction solve against the retained fp32 factors, and x += d. The sweep
// stops when ||r||_inf <= ||A||_inf ||x||_inf n eps64 — the refined answer
// is then as backward-stable as a full fp64 solve.
//
// When fp32 cannot carry the system — a pivot underflows to zero or NaN
// during the factorization, or the residual stops halving between sweeps —
// the solver falls back to one full fp64 factorization (same code path,
// instantiated at double) and reports fell_back. Both the failure detection
// and the fallback are collective and deterministic: every rank takes the
// same branch at the same step, so results stay bit-identical across worker
// counts, executors and collective schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/blockcyclic.hpp"
#include "solvers/efficiency.hpp"
#include "xmpi/comm.hpp"

namespace plin::solvers {

struct GeppMixedOptions {
  std::size_t n = 0;       // system dimension
  std::uint64_t seed = 1;  // generator seed (same system on every rank)
  std::size_t nb = kDefaultBlock;
  /// Refinement sweeps before declaring stagnation. 30 matches LAPACK's
  /// ITERMAX in dsgesv; well-conditioned systems converge in 1-3.
  int max_iters = 30;
  /// Scales every generated matrix entry. 1.0 is the canonical system.
  /// Badly scaled systems are the classic fp32 failure mode; tests use
  /// this knob to force the fallback deterministically (entries below
  /// ~1e-45 flush to zero in fp32, entries near 1e38 overflow).
  double entry_scale = 1.0;
};

struct GeppMixedResult {
  std::vector<double> x;  // replicated solution
  linalg::ProcessGrid grid;
  /// fp64 refinement sweeps performed (0 = the first fp32 solve already
  /// met the tolerance, or the factorization failed before refining).
  int iters = 0;
  /// True when the fp32 path was abandoned and x comes from a full fp64
  /// factorization.
  bool fell_back = false;
  /// ||b - A x||_inf at exit, always evaluated in fp64.
  double residual_norm = 0.0;
};

/// Runs the mixed-precision distributed solve on `comm` for the system
/// generated from (seed, n). Call collectively from every rank. Throws only
/// if the system is singular in fp64 too.
GeppMixedResult solve_gepp_mixed(xmpi::Comm& comm,
                                 const GeppMixedOptions& options);

}  // namespace plin::solvers
