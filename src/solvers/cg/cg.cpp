#include "solvers/cg/cg.hpp"

#include <algorithm>
#include <cmath>

#include "hwmodel/sparse.hpp"
#include "linalg/generate.hpp"
#include "solvers/efficiency.hpp"
#include "support/error.hpp"

namespace plin::solvers {
namespace {

// Point-to-point tags of the CG protocol (halo negotiation + exchange).
constexpr int kTagHaloCount = 901;
constexpr int kTagHaloCols = 902;
constexpr int kTagHaloData = 903;

double dot_span(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

CgResult solve_cg(const sparse::CsrMatrix& a, const std::vector<double>& b,
                  double tolerance, int max_iterations) {
  PLIN_CHECK_MSG(a.rows == a.cols, "cg: A must be square");
  const std::size_t n = a.rows;
  PLIN_CHECK_MSG(b.size() == n, "cg: rhs size mismatch");
  PLIN_CHECK_MSG(tolerance > 0.0 && max_iterations > 0,
                 "cg: bad iteration controls");

  CgResult result;
  result.nnz = a.nnz();
  result.x.assign(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> q(n, 0.0);

  const double b_norm = std::sqrt(dot_span(b, b));
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  double rr = dot_span(r, r);
  for (int iter = 1; iter <= max_iterations; ++iter) {
    sparse::spmv(a, p, q);
    const double pq = dot_span(p, q);
    PLIN_CHECK_MSG(pq > 0.0, "cg: matrix is not positive definite");
    const double alpha = rr / pq;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    const double rr_next = dot_span(r, r);
    result.iterations = iter;
    result.relative_residual = std::sqrt(rr_next) / b_norm;
    if (result.relative_residual <= tolerance) {
      result.converged = true;
      break;
    }
    const double beta = rr_next / rr;
    rr = rr_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  return result;
}

CgResult solve_pcg(xmpi::Comm& comm, const CgOptions& options) {
  const std::size_t n = options.n;
  PLIN_CHECK_MSG(n > 0, "cg: system dimension must be positive");
  PLIN_CHECK_MSG(options.tolerance > 0.0 && options.max_iterations > 0,
                 "cg: bad iteration controls");
  const int ranks = comm.size();
  const int rank = comm.rank();

  // Contiguous row blocks, padded to a uniform chunk so the solution can be
  // rebuilt with a fixed-size allgather (the Jacobi placement arithmetic).
  const std::size_t chunk =
      (n + static_cast<std::size_t>(ranks) - 1) / ranks;
  const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(rank));
  const std::size_t hi = std::min(n, lo + chunk);
  const std::size_t local_rows = hi - lo;

  // -- local slice of the system -------------------------------------------
  comm.prof_phase_begin("cg:generate");
  sparse::CsrMatrix local =
      sparse::generate_rows(options.kind, options.seed, n, lo, hi);
  std::vector<double> local_b(local_rows, 0.0);
  for (std::size_t li = 0; li < local_rows; ++li) {
    local_b[li] = linalg::rhs_entry(options.seed, n, lo + li);
  }
  comm.memory_touch(local.size_bytes());
  comm.prof_phase_end();

  // -- halo negotiation -----------------------------------------------------
  // Ghost columns: every off-block column the local rows reference, sorted
  // ascending. owner(col) = col / chunk is monotone in col, so the sorted
  // ghost list is contiguous per owning rank — each peer's values land in
  // one slice of the ghost region.
  comm.prof_phase_begin("cg:halo-setup");
  std::vector<std::uint32_t> ghosts;
  for (const std::uint32_t col : local.col_idx) {
    if (col < lo || col >= hi) ghosts.push_back(col);
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());

  // Remap the local matrix to compact indexing: [owned rows | ghost slots].
  for (std::uint32_t& col : local.col_idx) {
    if (col >= lo && col < hi) {
      col = static_cast<std::uint32_t>(col - lo);
    } else {
      const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), col);
      col = static_cast<std::uint32_t>(
          local_rows + static_cast<std::size_t>(it - ghosts.begin()));
    }
  }
  local.cols = local_rows + ghosts.size();

  struct InPeer {
    int peer = 0;
    std::size_t offset = 0;  // slice of the ghost region this peer fills
    std::size_t count = 0;
  };
  struct OutPeer {
    int peer = 0;
    std::vector<std::size_t> rows;  // owned local indices this peer needs
  };
  std::vector<InPeer> in_peers;
  {
    std::size_t at = 0;
    while (at < ghosts.size()) {
      const int owner = static_cast<int>(ghosts[at] / chunk);
      std::size_t end = at;
      while (end < ghosts.size() &&
             static_cast<int>(ghosts[end] / chunk) == owner) {
        ++end;
      }
      in_peers.push_back(InPeer{owner, at, end - at});
      at = end;
    }
  }
  // Every rank tells every other rank how many of its entries it needs
  // (possibly zero), then the column lists follow. Sends are buffered, so
  // the symmetric all-to-all cannot deadlock.
  for (int p = 0; p < ranks; ++p) {
    if (p == rank) continue;
    std::uint64_t count = 0;
    const InPeer* in = nullptr;
    for (const InPeer& candidate : in_peers) {
      if (candidate.peer == p) {
        in = &candidate;
        count = candidate.count;
        break;
      }
    }
    comm.send_value(count, p, kTagHaloCount);
    if (in != nullptr) {
      comm.send(std::span<const std::uint32_t>(ghosts.data() + in->offset,
                                               in->count),
                p, kTagHaloCols);
    }
  }
  std::vector<OutPeer> out_peers;
  for (int p = 0; p < ranks; ++p) {
    if (p == rank) continue;
    const auto count = comm.recv_value<std::uint64_t>(p, kTagHaloCount);
    if (count == 0) continue;
    std::vector<std::uint32_t> wanted(count, 0);
    comm.recv(std::span<std::uint32_t>(wanted), p, kTagHaloCols);
    OutPeer out;
    out.peer = p;
    out.rows.reserve(count);
    for (const std::uint32_t col : wanted) {
      PLIN_CHECK_MSG(col >= lo && col < hi, "cg: halo request out of block");
      out.rows.push_back(col - lo);
    }
    out_peers.push_back(std::move(out));
  }
  comm.prof_phase_end();

  // -- CG iteration ---------------------------------------------------------
  const double flops_dot = 2.0 * static_cast<double>(local_rows);
  const auto charge_dot = [&] {
    comm.compute(xmpi::ComputeCost{flops_dot,
                                   flops_dot * kDot.bytes_per_flop,
                                   kDot.efficiency});
  };
  const auto global_dot = [&](std::span<const double> a,
                              std::span<const double> b) {
    comm.prof_phase_begin("cg:dot");
    const double partial = dot_span(a, b);
    charge_dot();
    const double sum = comm.allreduce_value(partial, xmpi::ReduceOp::kSum);
    comm.prof_phase_end();
    return sum;
  };

  CgResult result;
  {
    const double local_nnz = static_cast<double>(local.nnz());
    result.nnz = static_cast<std::size_t>(
        comm.allreduce_value(local_nnz, xmpi::ReduceOp::kSum));
  }
  std::vector<double> x(local_rows, 0.0);
  std::vector<double> r = local_b;
  std::vector<double> q(local_rows, 0.0);
  // p carries the ghost region the remapped SpMV gathers from.
  std::vector<double> p_ext(local_rows + ghosts.size(), 0.0);
  const std::span<double> p_owned(p_ext.data(), local_rows);
  std::copy(r.begin(), r.end(), p_ext.begin());
  std::vector<double> halo_out;

  const auto exchange_halo = [&] {
    if (in_peers.empty() && out_peers.empty()) return;
    comm.prof_phase_begin("cg:halo");
    for (const OutPeer& out : out_peers) {
      halo_out.resize(out.rows.size());
      for (std::size_t i = 0; i < out.rows.size(); ++i) {
        halo_out[i] = p_ext[out.rows[i]];
      }
      comm.send(std::span<const double>(halo_out), out.peer, kTagHaloData);
    }
    for (const InPeer& in : in_peers) {
      comm.recv(std::span<double>(p_ext.data() + local_rows + in.offset,
                                  in.count),
                in.peer, kTagHaloData);
    }
    comm.prof_phase_end();
  };

  const double bb = global_dot(local_b, local_b);
  const double b_norm = std::sqrt(bb);
  if (b_norm == 0.0) {
    result.converged = true;
    result.x.assign(n, 0.0);
    return result;
  }
  double rr = bb;  // r == b at x = 0

  const double flops_spmv = 2.0 * static_cast<double>(local.nnz());
  const double bytes_spmv = hw::csr_spmv_bytes(
      static_cast<double>(local.nnz()), static_cast<double>(local_rows));

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    exchange_halo();

    comm.prof_phase_begin("cg:spmv");
    sparse::spmv(local, p_ext, q);
    comm.compute(xmpi::ComputeCost{flops_spmv, bytes_spmv, kSpmv.efficiency});
    comm.prof_phase_end();

    const double pq = global_dot(p_owned, q);
    PLIN_CHECK_MSG(pq > 0.0, "cg: matrix is not positive definite");
    const double alpha = rr / pq;

    comm.prof_phase_begin("cg:axpy");
    for (std::size_t i = 0; i < local_rows; ++i) {
      x[i] += alpha * p_ext[i];
      r[i] -= alpha * q[i];
    }
    const double flops_axpy = 4.0 * static_cast<double>(local_rows);
    comm.compute(xmpi::ComputeCost{flops_axpy,
                                   flops_axpy * kAxpy.bytes_per_flop,
                                   kAxpy.efficiency});
    comm.prof_phase_end();

    const double rr_next = global_dot(r, r);
    result.iterations = iter;
    result.relative_residual = std::sqrt(rr_next) / b_norm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      break;
    }
    const double beta = rr_next / rr;
    rr = rr_next;

    comm.prof_phase_begin("cg:axpy");
    for (std::size_t i = 0; i < local_rows; ++i) {
      p_ext[i] = r[i] + beta * p_ext[i];
    }
    const double flops_update = 2.0 * static_cast<double>(local_rows);
    comm.compute(xmpi::ComputeCost{flops_update,
                                   flops_update * kAxpy.bytes_per_flop,
                                   kAxpy.efficiency});
    comm.prof_phase_end();
  }

  // -- rebuild the replicated solution --------------------------------------
  comm.prof_phase_begin("cg:gather");
  result.x.assign(n, 0.0);
  if (ranks > 1) {
    std::vector<double> mine(chunk, 0.0);
    std::copy(x.begin(), x.end(), mine.begin());
    std::vector<double> gathered(chunk * static_cast<std::size_t>(ranks),
                                 0.0);
    comm.allgather(std::span<const double>(mine),
                   std::span<double>(gathered));
    std::copy(gathered.begin(),
              gathered.begin() + static_cast<std::ptrdiff_t>(n),
              result.x.begin());
  } else {
    std::copy(x.begin(), x.end(), result.x.begin());
  }
  comm.prof_phase_end();
  return result;
}

}  // namespace plin::solvers
