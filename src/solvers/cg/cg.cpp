#include "solvers/cg/cg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "hwmodel/sparse.hpp"
#include "linalg/generate.hpp"
#include "solvers/efficiency.hpp"
#include "sparse/spmv_kernel.hpp"
#include "support/error.hpp"

namespace plin::solvers {
namespace {

// Point-to-point tags of the CG protocol (halo negotiation + exchange).
constexpr int kTagHaloCount = 901;
constexpr int kTagHaloCols = 902;
constexpr int kTagHaloData = 903;

double dot_span(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

CgPath resolve_path(CgPath path) {
  if (path != CgPath::kAuto) return path;
  if (const char* raw = std::getenv("PLIN_CG_PATH")) {
    if (*raw != '\0') return parse_path_token(raw);
  }
  return CgPath::kFused;
}

/// 1 / diag(A) for the owned rows; `col_of(li)` maps a local row to the
/// column index its diagonal carries (global before the halo remap, local
/// after). The generated diagonal is the absolute off-diagonal row sum
/// plus one, so it is always >= 1.
template <typename ColOf>
std::vector<double> inverse_diagonal(const sparse::CsrMatrix& a,
                                     ColOf&& col_of) {
  std::vector<double> inv(a.rows, 0.0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    const std::size_t want = col_of(r);
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      if (a.col_idx[k] == want) {
        PLIN_CHECK_MSG(a.values[k] > 0.0,
                       "cg: jacobi needs a positive diagonal");
        inv[r] = 1.0 / a.values[k];
        break;
      }
    }
    PLIN_CHECK_MSG(inv[r] > 0.0, "cg: jacobi needs a full diagonal");
  }
  return inv;
}

}  // namespace

const char* path_token(CgPath path) {
  switch (path) {
    case CgPath::kBlocking: return "blocking";
    case CgPath::kOverlap: return "overlap";
    case CgPath::kAuto:
    case CgPath::kFused: break;
  }
  return "fused";
}

CgPath parse_path_token(const std::string& token) {
  if (token == "blocking") return CgPath::kBlocking;
  if (token == "overlap") return CgPath::kOverlap;
  if (token == "fused") return CgPath::kFused;
  throw InvalidArgument(
      "unknown cg path (use blocking | overlap | fused): " + token);
}

CgResult solve_cg(const sparse::CsrMatrix& a, const std::vector<double>& b,
                  double tolerance, int max_iterations, CgPrecond precond) {
  PLIN_CHECK_MSG(a.rows == a.cols, "cg: A must be square");
  const std::size_t n = a.rows;
  PLIN_CHECK_MSG(b.size() == n, "cg: rhs size mismatch");
  PLIN_CHECK_MSG(tolerance > 0.0 && max_iterations > 0,
                 "cg: bad iteration controls");

  CgResult result;
  result.nnz = a.nnz();
  result.x.assign(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> q(n, 0.0);

  const double b_norm = std::sqrt(dot_span(b, b));
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  if (precond == CgPrecond::kNone) {
    std::vector<double> p = r;
    double rr = dot_span(r, r);
    for (int iter = 1; iter <= max_iterations; ++iter) {
      sparse::spmv(a, p, q);
      const double pq = dot_span(p, q);
      PLIN_CHECK_MSG(pq > 0.0, "cg: matrix is not positive definite");
      const double alpha = rr / pq;
      for (std::size_t i = 0; i < n; ++i) {
        result.x[i] += alpha * p[i];
        r[i] -= alpha * q[i];
      }
      const double rr_next = dot_span(r, r);
      result.iterations = iter;
      result.relative_residual = std::sqrt(rr_next) / b_norm;
      if (result.relative_residual <= tolerance) {
        result.converged = true;
        break;
      }
      const double beta = rr_next / rr;
      rr = rr_next;
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    }
    return result;
  }

  // Jacobi PCG: M = diag(A), z = M^{-1} r, direction updates from z.
  const std::vector<double> inv_diag =
      inverse_diagonal(a, [](std::size_t row) { return row; });
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  std::vector<double> p = z;
  double rz = dot_span(r, z);
  for (int iter = 1; iter <= max_iterations; ++iter) {
    sparse::spmv(a, p, q);
    const double pq = dot_span(p, q);
    PLIN_CHECK_MSG(pq > 0.0, "cg: matrix is not positive definite");
    const double alpha = rz / pq;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    const double rr = dot_span(r, r);
    result.iterations = iter;
    result.relative_residual = std::sqrt(rr) / b_norm;
    if (result.relative_residual <= tolerance) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot_span(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

CgResult solve_pcg(xmpi::Comm& comm, const CgOptions& options) {
  const std::size_t n = options.n;
  PLIN_CHECK_MSG(n > 0, "cg: system dimension must be positive");
  PLIN_CHECK_MSG(options.tolerance > 0.0 && options.max_iterations > 0,
                 "cg: bad iteration controls");
  const CgPath path = resolve_path(options.path);
  const bool overlap = path != CgPath::kBlocking;
  const bool fused = path == CgPath::kFused;
  const bool jacobi = options.precond == CgPrecond::kJacobi;
  const int ranks = comm.size();
  const int rank = comm.rank();

  // Contiguous row blocks, padded to a uniform chunk so the solution can be
  // rebuilt with a fixed-size allgather (the Jacobi placement arithmetic).
  const std::size_t chunk =
      (n + static_cast<std::size_t>(ranks) - 1) / ranks;
  const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(rank));
  const std::size_t hi = std::min(n, lo + chunk);
  const std::size_t local_rows = hi - lo;

  // -- local slice of the system -------------------------------------------
  comm.prof_phase_begin("cg:generate");
  sparse::CsrMatrix local =
      sparse::generate_rows(options.kind, options.seed, n, lo, hi);
  std::vector<double> local_b(local_rows, 0.0);
  for (std::size_t li = 0; li < local_rows; ++li) {
    local_b[li] = linalg::rhs_entry(options.seed, n, lo + li);
  }
  std::vector<double> inv_diag;
  if (jacobi) {
    // Columns are still global here, so row li's diagonal sits at lo + li.
    inv_diag = inverse_diagonal(
        local, [lo](std::size_t row) { return lo + row; });
  }
  comm.memory_touch(local.size_bytes());
  comm.prof_phase_end();

  // -- halo negotiation -----------------------------------------------------
  // Ghost columns: every off-block column the local rows reference, sorted
  // ascending. owner(col) = col / chunk is monotone in col, so the sorted
  // ghost list is contiguous per owning rank — each peer's values land in
  // one slice of the ghost region.
  comm.prof_phase_begin("cg:halo-setup");
  std::vector<std::uint32_t> ghosts;
  for (const std::uint32_t col : local.col_idx) {
    if (col < lo || col >= hi) ghosts.push_back(col);
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());

  // Remap the local matrix to compact indexing: [owned rows | ghost slots].
  for (std::uint32_t& col : local.col_idx) {
    if (col >= lo && col < hi) {
      col = static_cast<std::uint32_t>(col - lo);
    } else {
      const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), col);
      col = static_cast<std::uint32_t>(
          local_rows + static_cast<std::size_t>(it - ghosts.begin()));
    }
  }
  local.cols = local_rows + ghosts.size();

  struct InPeer {
    int peer = 0;
    std::size_t offset = 0;  // slice of the ghost region this peer fills
    std::size_t count = 0;
  };
  struct OutPeer {
    int peer = 0;
    std::vector<std::size_t> rows;  // owned local indices this peer needs
  };
  std::vector<InPeer> in_peers;
  {
    std::size_t at = 0;
    while (at < ghosts.size()) {
      const int owner = static_cast<int>(ghosts[at] / chunk);
      std::size_t end = at;
      while (end < ghosts.size() &&
             static_cast<int>(ghosts[end] / chunk) == owner) {
        ++end;
      }
      in_peers.push_back(InPeer{owner, at, end - at});
      at = end;
    }
  }
  // Every rank tells every other rank how many of its entries it needs
  // (possibly zero), then the column lists follow. Sends are buffered, so
  // the symmetric all-to-all cannot deadlock.
  for (int p = 0; p < ranks; ++p) {
    if (p == rank) continue;
    std::uint64_t count = 0;
    const InPeer* in = nullptr;
    for (const InPeer& candidate : in_peers) {
      if (candidate.peer == p) {
        in = &candidate;
        count = candidate.count;
        break;
      }
    }
    comm.send_value(count, p, kTagHaloCount);
    if (in != nullptr) {
      comm.send(std::span<const std::uint32_t>(ghosts.data() + in->offset,
                                               in->count),
                p, kTagHaloCols);
    }
  }
  std::vector<OutPeer> out_peers;
  for (int p = 0; p < ranks; ++p) {
    if (p == rank) continue;
    const auto count = comm.recv_value<std::uint64_t>(p, kTagHaloCount);
    if (count == 0) continue;
    std::vector<std::uint32_t> wanted(count, 0);
    comm.recv(std::span<std::uint32_t>(wanted), p, kTagHaloCols);
    OutPeer out;
    out.peer = p;
    out.rows.reserve(count);
    for (const std::uint32_t col : wanted) {
      PLIN_CHECK_MSG(col >= lo && col < hi, "cg: halo request out of block");
      out.rows.push_back(col - lo);
    }
    out_peers.push_back(std::move(out));
  }

  // Interior/boundary row split for the overlapped paths: a row is
  // boundary iff it gathers from the ghost region (remapped columns
  // >= local_rows). Computing a row in the interior pass or the boundary
  // pass yields the same bits (spmv_rows keeps the per-row accumulation of
  // the full spmv), so the split moves timing only.
  std::vector<std::uint32_t> interior_rows;
  std::vector<std::uint32_t> boundary_rows;
  std::size_t nnz_boundary = 0;
  if (overlap) {
    for (std::size_t li = 0; li < local_rows; ++li) {
      bool boundary = false;
      for (std::size_t k = local.row_ptr[li]; k < local.row_ptr[li + 1];
           ++k) {
        if (local.col_idx[k] >= local_rows) {
          boundary = true;
          break;
        }
      }
      if (boundary) {
        boundary_rows.push_back(static_cast<std::uint32_t>(li));
        nnz_boundary += local.row_ptr[li + 1] - local.row_ptr[li];
      } else {
        interior_rows.push_back(static_cast<std::uint32_t>(li));
      }
    }
  }
  comm.prof_phase_end();

  // -- CG iteration ---------------------------------------------------------
  const double flops_dot = 2.0 * static_cast<double>(local_rows);
  const auto charge_dots = [&](double count) {
    comm.compute(xmpi::ComputeCost{count * flops_dot,
                                   count * flops_dot * kDot.bytes_per_flop,
                                   kDot.efficiency});
  };
  const auto global_dot = [&](std::span<const double> a,
                              std::span<const double> b) {
    comm.prof_phase_begin("cg:dot");
    const double partial = dot_span(a, b);
    charge_dots(1.0);
    const double sum = comm.allreduce_value(partial, xmpi::ReduceOp::kSum);
    comm.prof_phase_end();
    return sum;
  };

  CgResult result;
  {
    const double local_nnz = static_cast<double>(local.nnz());
    result.nnz = static_cast<std::size_t>(
        comm.allreduce_value(local_nnz, xmpi::ReduceOp::kSum));
  }
  std::vector<double> x(local_rows, 0.0);
  std::vector<double> r = local_b;
  std::vector<double> q(local_rows, 0.0);
  std::vector<double> z;  // jacobi only: z = M^{-1} r
  if (jacobi) z.assign(local_rows, 0.0);
  // p carries the ghost region the remapped SpMV gathers from.
  std::vector<double> p_ext(local_rows + ghosts.size(), 0.0);
  const std::span<double> p_owned(p_ext.data(), local_rows);
  std::vector<double> halo_out;
  std::vector<xmpi::Request> halo_requests;

  const auto pack_and_send = [&](const OutPeer& out, bool nonblocking) {
    halo_out.resize(out.rows.size());
    for (std::size_t i = 0; i < out.rows.size(); ++i) {
      halo_out[i] = p_ext[out.rows[i]];
    }
    // Both sends are buffered (the payload is on the wire before the call
    // returns), so reusing halo_out across peers is safe either way.
    if (nonblocking) {
      comm.isend_halo(std::span<const double>(halo_out), out.peer,
                      kTagHaloData);
    } else {
      comm.send_halo(std::span<const double>(halo_out), out.peer,
                     kTagHaloData);
    }
  };

  /// The PR 9 reference: ship every ghost segment, then block on each
  /// incoming slice before any SpMV work starts.
  const auto exchange_halo_blocking = [&] {
    if (in_peers.empty() && out_peers.empty()) return;
    comm.prof_phase_begin("cg:halo");
    for (const OutPeer& out : out_peers) pack_and_send(out, false);
    for (const InPeer& in : in_peers) {
      comm.recv(std::span<double>(p_ext.data() + local_rows + in.offset,
                                  in.count),
                in.peer, kTagHaloData);
    }
    comm.prof_phase_end();
  };

  const auto halo_post = [&] {
    if (in_peers.empty() && out_peers.empty()) return;
    comm.prof_phase_begin("cg:halo-post");
    for (const InPeer& in : in_peers) {
      halo_requests.push_back(comm.irecv(
          std::span<double>(p_ext.data() + local_rows + in.offset, in.count),
          in.peer, kTagHaloData));
    }
    for (const OutPeer& out : out_peers) pack_and_send(out, true);
    comm.prof_phase_end();
  };

  const auto halo_wait = [&] {
    if (halo_requests.empty()) return;
    comm.prof_phase_begin("cg:halo-wait");
    xmpi::wait_all(std::span<xmpi::Request>(halo_requests));
    halo_requests.clear();
    comm.prof_phase_end();
  };

  const double nnz_total = static_cast<double>(local.nnz());
  const double nnz_interior_d =
      nnz_total - static_cast<double>(nnz_boundary);
  // csr_spmv_bytes is linear in (nnz, rows), so the interior and boundary
  // charges sum exactly to the blocking path's single charge.
  const double bytes_interior = hw::csr_spmv_bytes(
      nnz_interior_d, static_cast<double>(interior_rows.size()));
  const double bytes_boundary = hw::csr_spmv_bytes(
      static_cast<double>(nnz_boundary),
      static_cast<double>(boundary_rows.size()));
  const double bytes_spmv = hw::csr_spmv_bytes(
      nnz_total, static_cast<double>(local_rows));

  /// q = A p for one iteration, down the configured halo path.
  const auto apply_operator = [&] {
    if (!overlap) {
      exchange_halo_blocking();
      comm.prof_phase_begin("cg:spmv");
      sparse::spmv(local, p_ext, q);
      comm.compute(
          xmpi::ComputeCost{2.0 * nnz_total, bytes_spmv, kSpmv.efficiency});
      comm.prof_phase_end();
      return;
    }
    halo_post();
    comm.prof_phase_begin("cg:interior");
    sparse::spmv_rows(local, p_ext, q,
                      std::span<const std::uint32_t>(interior_rows));
    comm.compute(xmpi::ComputeCost{2.0 * nnz_interior_d, bytes_interior,
                                   kSpmv.efficiency});
    comm.prof_phase_end();
    halo_wait();
    comm.prof_phase_begin("cg:boundary");
    sparse::spmv_rows(local, p_ext, q,
                      std::span<const std::uint32_t>(boundary_rows));
    comm.compute(xmpi::ComputeCost{
        2.0 * static_cast<double>(nnz_boundary), bytes_boundary,
        kSpmv.efficiency});
    comm.prof_phase_end();
  };

  const auto apply_precond = [&] {
    comm.prof_phase_begin("cg:precond");
    for (std::size_t i = 0; i < local_rows; ++i) z[i] = inv_diag[i] * r[i];
    const double rows_d = static_cast<double>(local_rows);
    comm.compute(xmpi::ComputeCost{rows_d, 24.0 * rows_d, kAxpy.efficiency});
    comm.prof_phase_end();
  };

  const auto charge_axpy = [&](double flops) {
    comm.compute(xmpi::ComputeCost{flops, flops * kAxpy.bytes_per_flop,
                                   kAxpy.efficiency});
  };

  const double bb = global_dot(local_b, local_b);
  const double b_norm = std::sqrt(bb);
  if (b_norm == 0.0) {
    result.converged = true;
    result.x.assign(n, 0.0);
    return result;
  }

  // Residual-replacement guard for the fused recurrences. The recurrence
  // ||r'||^2 = ||r||^2 - 2 a (r.q) + a^2 (q.q) is exact for the *exact*
  // update, but the stored r drifts from it by rounding, and the drift
  // freezes into a constant absolute offset of order eps * ||b||^2 (the
  // scale of the early iterations' terms). Below this floor the recurrence
  // value is noise — feeding it into beta makes the direction recurrence
  // unstable (beta > 1 runaway), the classic attainable-accuracy limit of
  // single-reduction CG. The guard re-measures ||r||^2 directly whenever
  // the recurrence value dips under a generous multiple of the floor; the
  // inputs are replicated bitwise, so every rank takes the same branch and
  // determinism is preserved. 1e-12 leaves ~3 decades of margin over the
  // observed eps-scale offset while keeping the one-round fast path for
  // the whole trajectory above a relative residual of 1e-6.
  const double rec_floor = 1e-12 * bb;

  double rr = bb;   // ||r||^2 (r == b at x = 0)
  double rz = 0.0;  // jacobi: r . M^{-1} r
  if (jacobi) {
    apply_precond();
    std::copy(z.begin(), z.end(), p_ext.begin());
    rz = global_dot(r, z);
  } else {
    std::copy(r.begin(), r.end(), p_ext.begin());
  }
  // The r.M^{-1}r recurrence carries the same frozen offset at its own
  // initial scale.
  const double rz_floor = jacobi ? 1e-12 * rz : 0.0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    apply_operator();

    double alpha = 0.0;
    double rr_next = 0.0;
    // Fused-round scalars: [p.q, r.q, q.q] (+ [z.q, q.M^{-1}q] under
    // jacobi). One accumulation pass brackets each sum exactly like its
    // standalone dot_span, and the small-vector allreduce combines
    // element-wise in rank order — each element is bitwise what the scalar
    // round would have produced.
    double fused_g[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
    if (fused) {
      comm.prof_phase_begin("cg:dot");
      const std::size_t terms = jacobi ? 5 : 3;
      double partial[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
      for (std::size_t i = 0; i < local_rows; ++i) {
        partial[0] += p_ext[i] * q[i];
        partial[1] += r[i] * q[i];
        partial[2] += q[i] * q[i];
        if (jacobi) {
          partial[3] += z[i] * q[i];
          partial[4] += q[i] * inv_diag[i] * q[i];
        }
      }
      // One pass streams each distinct vector once (p, r, q [, z, d]), so
      // the DRAM term is per *vector*, not per dot — half the per-term
      // traffic of standalone dots, and the compute-side payoff of fusing.
      comm.compute(xmpi::ComputeCost{
          static_cast<double>(terms) * flops_dot,
          (jacobi ? 5.0 : 3.0) * 8.0 * static_cast<double>(local_rows),
          kDot.efficiency});
      comm.allreduce(std::span<const double>(partial, terms),
                     std::span<double>(fused_g, terms), xmpi::ReduceOp::kSum);
      comm.prof_phase_end();
      const double pq = fused_g[0];
      PLIN_CHECK_MSG(pq > 0.0, "cg: matrix is not positive definite");
      alpha = (jacobi ? rz : rr) / pq;
    } else {
      const double pq = global_dot(p_owned, q);
      PLIN_CHECK_MSG(pq > 0.0, "cg: matrix is not positive definite");
      alpha = (jacobi ? rz : rr) / pq;
    }

    comm.prof_phase_begin("cg:axpy");
    for (std::size_t i = 0; i < local_rows; ++i) {
      x[i] += alpha * p_ext[i];
      r[i] -= alpha * q[i];
    }
    charge_axpy(4.0 * static_cast<double>(local_rows));
    comm.prof_phase_end();

    if (fused) {
      // ||r - a q||^2 = ||r||^2 - 2 a (r.q) + a^2 (q.q), guarded by the
      // residual-replacement floor above: once the value is small enough
      // for the frozen rounding offset to matter, re-measure directly
      // (deterministically — the recurrence inputs are replicated bitwise,
      // so every rank takes the same branch).
      rr_next =
          rr - 2.0 * alpha * fused_g[1] + alpha * alpha * fused_g[2];
      if (rr_next <= rec_floor) rr_next = global_dot(r, r);
    } else {
      rr_next = global_dot(r, r);
    }
    result.iterations = iter;
    result.relative_residual = std::sqrt(rr_next) / b_norm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      break;
    }

    double beta = 0.0;
    if (jacobi) {
      apply_precond();
      double rz_next = 0.0;
      if (fused) {
        // Same recurrence through M^{-1}: (r-aq).M^{-1}(r-aq)
        //   = rz - 2 a (z.q) + a^2 (q.M^{-1}q), with the same
        //   residual-replacement guard (z holds M^{-1} r_new here, so the
        //   direct re-measure is well-defined).
        rz_next =
            rz - 2.0 * alpha * fused_g[3] + alpha * alpha * fused_g[4];
        if (rz_next <= rz_floor) rz_next = global_dot(r, z);
      } else {
        rz_next = global_dot(r, z);
      }
      beta = rz_next / rz;
      rz = rz_next;
    } else {
      beta = rr_next / rr;
    }
    rr = rr_next;

    comm.prof_phase_begin("cg:axpy");
    const std::vector<double>& direction_src = jacobi ? z : r;
    for (std::size_t i = 0; i < local_rows; ++i) {
      p_ext[i] = direction_src[i] + beta * p_ext[i];
    }
    charge_axpy(2.0 * static_cast<double>(local_rows));
    comm.prof_phase_end();
  }

  // -- rebuild the replicated solution --------------------------------------
  comm.prof_phase_begin("cg:gather");
  result.x.assign(n, 0.0);
  if (ranks > 1) {
    std::vector<double> mine(chunk, 0.0);
    std::copy(x.begin(), x.end(), mine.begin());
    std::vector<double> gathered(chunk * static_cast<std::size_t>(ranks),
                                 0.0);
    comm.allgather(std::span<const double>(mine),
                   std::span<double>(gathered));
    std::copy(gathered.begin(),
              gathered.begin() + static_cast<std::ptrdiff_t>(n),
              result.x.begin());
  } else {
    std::copy(x.begin(), x.end(), result.x.begin());
  }
  comm.prof_phase_end();
  return result;
}

}  // namespace plin::solvers
