// The CG preconditioner axis, split out of cg.hpp so the light layers
// (perfsim workloads, batch specs, manifests) can name it without pulling
// the solver's xmpi dependencies — the same layering the perfsim
// Algorithm/Precision enums follow.
#pragma once

#include <string>

#include "support/error.hpp"

namespace plin::solvers {

/// The campaign's `precond` axis: none, or the Jacobi (diagonal)
/// preconditioner M = diag(A). Jacobi trades an extra per-row vector op
/// (and one more fused scalar) per iteration against the iteration count —
/// the first point on the ROADMAP item-4 cost-vs-count energy trade
/// (docs/sparse.md).
enum class CgPrecond { kNone, kJacobi };

/// Manifest/CLI tokens ("none" | "jacobi").
inline const char* precond_token(CgPrecond precond) {
  return precond == CgPrecond::kJacobi ? "jacobi" : "none";
}

inline CgPrecond parse_precond_token(const std::string& token) {
  if (token == "none") return CgPrecond::kNone;
  if (token == "jacobi") return CgPrecond::kJacobi;
  throw InvalidArgument("unknown preconditioner (use none | jacobi): " +
                        token);
}

}  // namespace plin::solvers
