// Conjugate gradient on CSR matrices — the memory-bound workload family
// next to the dense GEPP/IMe verticals (docs/sparse.md). All generated
// families are SPD by construction (sparse/generate.hpp), so plain
// (unpreconditioned) CG converges with the textbook guarantee.
//
// The distributed solver owns contiguous row blocks (the same
// chunk = ceil(n / P) arithmetic placement as Jacobi), generates its block
// locally from (kind, seed, n), and runs the iteration with
//   - a halo exchange: before each SpMV, each rank ships the p-vector
//     entries its neighbors' off-block columns reference (requests are
//     negotiated once at setup; per-iteration traffic is exactly the ghost
//     values, not whole replicas);
//   - scalar allreduces for the three dot products. Each rank reduces its
//     owned range in index order and the combine bracketing is the
//     schedule-invariant one from xmpi, so iterate trajectories — and
//     therefore iteration counts, residuals, and the solution bit pattern —
//     are identical across worker counts, executors, and collective modes
//     (the same determinism contract every other solver honors).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/generate.hpp"
#include "xmpi/comm.hpp"

namespace plin::solvers {

struct CgOptions {
  sparse::SparseKind kind = sparse::SparseKind::kStencil5;
  std::size_t n = 0;
  std::uint64_t seed = 1;
  /// Relative-residual termination: ||r||_2 <= tolerance * ||b||_2.
  double tolerance = 1e-11;
  int max_iterations = 1000;
};

struct CgResult {
  std::vector<double> x;       // full solution, replicated on every rank
  int iterations = 0;
  bool converged = false;
  double relative_residual = 0.0;  // ||r||_2 / ||b||_2 at exit
  std::size_t nnz = 0;             // global pattern nnz actually streamed
};

/// Sequential reference: CG on an explicit matrix and right-hand side.
CgResult solve_cg(const sparse::CsrMatrix& a, const std::vector<double>& b,
                  double tolerance, int max_iterations);

/// Distributed CG on `comm`; the system is generated from
/// (kind, seed, n) like the other solvers. Call from every rank.
CgResult solve_pcg(xmpi::Comm& comm, const CgOptions& options);

}  // namespace plin::solvers
