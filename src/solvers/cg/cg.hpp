// Conjugate gradient on CSR matrices — the memory-bound workload family
// next to the dense GEPP/IMe verticals (docs/sparse.md). All generated
// families are SPD by construction (sparse/generate.hpp), so plain
// (unpreconditioned) CG converges with the textbook guarantee.
//
// The distributed solver owns contiguous row blocks (the same
// chunk = ceil(n / P) arithmetic placement as Jacobi), generates its block
// locally from (kind, seed, n), and runs the iteration down one of three
// paths (CgPath below):
//   - kBlocking: the reference shape — a fully blocking halo exchange
//     before each SpMV, then separate scalar allreduces per dot product.
//   - kOverlap: local rows are split once at setup into *interior* rows
//     (touch no ghost column) and *boundary* rows; per iteration the halo
//     irecv/isends are posted, the interior SpMV runs while the ghost
//     values are in flight, and the boundary rows finish after wait_all.
//     Per-row accumulation order is unchanged, so solution and iteration
//     count are bit-identical to kBlocking at every P — only the simulated
//     time (and hence energy) moves.
//   - kFused (default): the overlapped halo plus *fused iteration
//     collectives* — the per-iteration scalar allreduces collapse into one
//     small-vector allreduce (element-wise, rank-order-preserving combine,
//     so each element is bitwise the value the scalar round would have
//     produced), and ||r||^2 advances by the standard recurrence
//     rr' = rr - 2 a (r.q) + a^2 (q.q) instead of a second round. The
//     recurrence carries a frozen eps * ||b||^2-scale rounding offset (the
//     attainable-accuracy limit of single-reduction CG), so it is guarded
//     by residual replacement: once the recurrence value dips under
//     1e-12 * ||b||^2, ||r||^2 is re-measured with a direct round — every
//     rank takes the same branch because the recurrence inputs are
//     replicated bitwise. The recurrence legitimately re-brackets the
//     residual trajectory, so kFused may terminate +-1 iteration from the
//     reference paths.
// Every path honors the repo's determinism contract: at a fixed path and
// fixed PLIN_SPARSE_KERNEL, results are bit-identical across worker
// counts, executors and collective modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solvers/cg/precond.hpp"
#include "sparse/csr.hpp"
#include "sparse/generate.hpp"
#include "xmpi/comm.hpp"

namespace plin::solvers {

/// Which iteration shape solve_pcg runs (see the header comment). kAuto
/// resolves PLIN_CG_PATH={blocking,overlap,fused} and defaults to kFused.
enum class CgPath { kAuto, kBlocking, kOverlap, kFused };

/// "blocking" / "overlap" / "fused" (kAuto has no token — it resolves).
const char* path_token(CgPath path);

/// Parses a PLIN_CG_PATH token; throws InvalidArgument otherwise.
CgPath parse_path_token(const std::string& token);

struct CgOptions {
  sparse::SparseKind kind = sparse::SparseKind::kStencil5;
  std::size_t n = 0;
  std::uint64_t seed = 1;
  /// Relative-residual termination: ||r||_2 <= tolerance * ||b||_2.
  double tolerance = 1e-11;
  int max_iterations = 1000;
  CgPath path = CgPath::kAuto;
  CgPrecond precond = CgPrecond::kNone;
};

struct CgResult {
  std::vector<double> x;       // full solution, replicated on every rank
  int iterations = 0;
  bool converged = false;
  double relative_residual = 0.0;  // ||r||_2 / ||b||_2 at exit
  std::size_t nnz = 0;             // global pattern nnz actually streamed
};

/// Sequential reference: (preconditioned) CG on an explicit matrix and
/// right-hand side, with direct (unfused) dot products.
CgResult solve_cg(const sparse::CsrMatrix& a, const std::vector<double>& b,
                  double tolerance, int max_iterations,
                  CgPrecond precond = CgPrecond::kNone);

/// Distributed CG on `comm`; the system is generated from
/// (kind, seed, n) like the other solvers. Call from every rank.
CgResult solve_pcg(xmpi::Comm& comm, const CgOptions& options);

}  // namespace plin::solvers
