// The paper's closed-form traffic and memory models for parallel IMe
// (IMeP), §2.1, plus the column-ownership map our implementation uses.
//
// Counting conventions (documented so the validation tests are meaningful):
// the paper counts a broadcast to N-1 slaves as N-1 messages of the payload
// size (exactly what a binomial tree transmits), the per-level last-row
// exchange as n elements, and the h broadcast volume once per level. Our
// implementation batches each slave's last-row contribution into a single
// message per level, so measured message counts sit below the paper's n^2
// term while volumes agree to leading order; see tests/ime_traffic_test.cpp
// for the asserted envelopes.
#pragma once

#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace plin::solvers {

/// M_IMeP(n, N) = n^2 + 2(N-1)n + 2(N-1)   — total messages.
double imep_paper_messages(std::size_t n, int ranks);

/// V_IMeP(n, N) = (N+2)n^2 + 2(N-1)n        — total volume in floats.
double imep_paper_volume_floats(std::size_t n, int ranks);

/// mo_IMeP(n, N) = 2n^2 + 2nN + 3n          — total memory occupation
/// (matrix elements) across ranks.
double imep_paper_memory_elements(std::size_t n, int ranks);

/// Column ownership for IMeP. The paper's scheme has "N-1 slaves and one
/// master": the master (rank 0) coordinates the auxiliary vector and owns
/// no table columns; column j belongs to slave 1 + (n-1-j) mod (N-1), so
/// ownership of the active pivot column cycles 1, 2, ..., N-1, 1, ... as
/// the level decreases — the rank that owns the *next* pivot column is
/// always the current owner's successor, which keeps the pivot-column
/// broadcast chain one hop long and lets levels pipeline. With a single
/// rank the degenerate map assigns everything to rank 0.
class ImeColumnMap {
 public:
  ImeColumnMap(std::size_t n, int ranks, int rank);

  std::size_t n() const { return n_; }
  int ranks() const { return ranks_; }
  int rank() const { return rank_; }

  int owner_of(std::size_t column) const {
    PLIN_ASSERT(column < n_);
    if (ranks_ == 1) return 0;
    const std::size_t slaves = static_cast<std::size_t>(ranks_ - 1);
    return 1 + static_cast<int>((n_ - 1 - column) % slaves);
  }

  /// Owner of the pivot column of `level` (levels count down n-1 .. 0).
  int owner_of_level(std::size_t level) const { return owner_of(level); }

  /// Globally sorted ascending list of this rank's columns.
  const std::vector<std::size_t>& my_columns() const { return columns_; }

  /// Local index of a column this rank owns.
  std::size_t local_index(std::size_t column) const;

  /// Number of this rank's columns with global index < bound.
  std::size_t count_below(std::size_t bound) const;

  /// Same, for an arbitrary rank (used by the master to size incoming
  /// last-row chunks, and by perfsim for per-rank load).
  static std::size_t count_below_for(std::size_t n, int ranks, int rank,
                                     std::size_t bound);

 private:
  std::size_t n_;
  int ranks_;
  int rank_;
  std::vector<std::size_t> columns_;
};

}  // namespace plin::solvers
