// Sequential Inhibition Method (IMe).
//
// IMe (Ciampolini 1963, Artioli 2001) is an iterative, exact, non-inverting
// solver: it decomposes A x = b into a hierarchy of ever-smaller
// sub-systems, ending at elementary ones. The paper defines the inhibition
// table T(n) (n x 2n; left half D^-1, right half D^-1 A^T) and the
// auxiliary vector h, and describes the level iteration driven by the last
// column t_{*,n+l} and the last row, but not the fundamental formula itself.
//
// Reconstruction (DESIGN.md §4): we implement the level iteration as an
// exact Jordan-style elimination on M = A^T ("the right half of T, unscaled
// by the diagonal") with h initialized to b. Column j of M carries
// equation j; row r indexes unknown r:
//
//   level l = n-1 .. 0:
//     d_l = M(l, l)                        (retiring diagonal)
//     g_j = M(l, j) / d_l                  (per-equation factor, j != l —
//                                           these are the "last row" values
//                                           the slaves ship to the master)
//     M(r, j) -= g_j * M(r, l)             for r <= l (the pivot column
//                                           t_{*,n+l} is zero below level l)
//     h_j    -= g_j * h_l
//   finally x_j = h_j / d_j.
//
// Each level "inhibits" one unknown from every remaining equation; after
// all levels every equation is elementary. Like the original IMe, no
// pivoting is performed, so a nonzero running diagonal is required
// (guaranteed for the strictly diagonally dominant systems the evaluation
// uses). Arithmetic cost: n^3 + O(n^2) flops — between Gaussian
// elimination's 2/3 n^3 and early IMe variants; the paper's latest variant
// claims 3/2 n^3 (see EXPERIMENTS.md for how this affects ratios).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace plin::solvers {

/// Builds the paper's T(n) table (n x 2n): T(i,i) = 1/a(i,i) in the left
/// half; right half T(i, n+j) = a(j,i)/a(i,i) with a unit diagonal.
/// Exposed for table-layout tests and the INITIME fidelity check.
linalg::Matrix build_inhibition_table(const linalg::Matrix& a);

/// Per-level hook for observers (the fault-tolerance rebuild test and the
/// flop-count validation use it). `level` counts down from n-1.
struct ImeLevelStats {
  std::size_t level = 0;
  double retired_diagonal = 0.0;
  std::size_t flops = 0;
};

/// Solves A x = b with the Inhibition Method. Throws Error if a running
/// diagonal entry becomes zero (IMe has no pivoting).
std::vector<double> solve_ime(const linalg::Matrix& a, std::vector<double> b);

/// As solve_ime, but reports per-level statistics.
std::vector<double> solve_ime_instrumented(const linalg::Matrix& a,
                                           std::vector<double> b,
                                           std::vector<ImeLevelStats>* stats);

/// Exact flop count of solve_ime for dimension n (validated by a test
/// against the instrumented counter): sum over levels l of (n-1)*(2l+3),
/// plus n final divisions — n^3 + O(n^2) in total.
std::size_t ime_flop_count(std::size_t n);

/// Full-table IMe: maintains the table's *left* half as well. The left
/// half starts as the identity and receives the same per-equation updates
/// as the working columns, so after the last level column j holds the
/// coefficients expressing the retired equation j in terms of the original
/// right-hand sides: d_j x_j = sum_k W(k,j) b_k. That makes the
/// factorization reusable — solve any number of right-hand sides in
/// O(n^2) each without re-elimination — and is where the historical IMe
/// variants spend their extra flops: this implementation costs
/// ~2 n^3 + O(n^2), our streamlined solve_ime costs ~n^3, and the paper's
/// latest version claims 3/2 n^3, squarely between the two (the empirical
/// grounding for solvers::kImeFlopScale; see EXPERIMENTS.md deviation #1).
class ImeFactorization {
 public:
  /// Factors A (no pivoting; throws on a zero running diagonal).
  explicit ImeFactorization(const linalg::Matrix& a);

  std::size_t n() const { return diagonals_.size(); }
  const std::vector<double>& retired_diagonals() const { return diagonals_; }

  /// Solves A x = b in O(n^2): x_j = (W(:,j) . b) / d_j.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Total flops spent factoring (instrumented; ~2 n^3).
  std::size_t factor_flops() const { return factor_flops_; }

 private:
  linalg::Matrix w_;  // the evolved left half (n x n)
  std::vector<double> diagonals_;
  std::size_t factor_flops_ = 0;
};

/// Table-literal IMe: runs the level recurrence directly on the paper's
/// scaled inhibition table T(n) = [D^-1 | D^-1 A^T] as built by
/// build_inhibition_table. The right half carries the scaled working
/// columns (the variable substitution y_i = a_ii x_i); the retained left
/// half supplies the final 1/a_ii scaling that maps y back to x — i.e.
/// both halves of the paper's 2n-wide table are load-bearing here.
/// Numerically equivalent to solve_ime; exposed to validate the published
/// table layout end to end.
std::vector<double> solve_ime_table(const linalg::Matrix& a,
                                    std::vector<double> b);

/// Level-blocked IMe: processes `kb` levels at a time. Within a block the
/// pivot columns are factored one by one (left-looking), the per-equation
/// factors of every other column are recovered by a small kb-term
/// recurrence, and the bulk of the table receives one rank-kb update — a
/// GEMM instead of kb rank-1 sweeps. This is the memory-efficient kernel
/// shape the KernelProfile in solvers/efficiency.hpp prices (the table
/// streams from DRAM once per block instead of once per level) and is
/// numerically equivalent to solve_ime up to rounding. kb = 1 degenerates
/// to the unblocked algorithm.
std::vector<double> solve_ime_blocked(const linalg::Matrix& a,
                                      std::vector<double> b, std::size_t kb);

}  // namespace plin::solvers
