#include "solvers/ime/traffic.hpp"

namespace plin::solvers {

double imep_paper_messages(std::size_t n, int ranks) {
  const double nn = static_cast<double>(n);
  const double nm1 = static_cast<double>(ranks - 1);
  return nn * nn + 2.0 * nm1 * nn + 2.0 * nm1;
}

double imep_paper_volume_floats(std::size_t n, int ranks) {
  const double nn = static_cast<double>(n);
  return (static_cast<double>(ranks) + 2.0) * nn * nn +
         2.0 * static_cast<double>(ranks - 1) * nn;
}

double imep_paper_memory_elements(std::size_t n, int ranks) {
  const double nn = static_cast<double>(n);
  return 2.0 * nn * nn + 2.0 * nn * static_cast<double>(ranks) + 3.0 * nn;
}

namespace {

/// First owned column of `rank` under the dedicated-master map, or n if it
/// owns nothing. Slaves own j with 1 + (n-1-j) mod (N-1) == rank.
std::size_t first_column_of(std::size_t n, int ranks, int rank) {
  if (ranks == 1) return rank == 0 ? 0 : n;
  if (rank == 0) return n;  // the master owns no columns
  const std::size_t slaves = static_cast<std::size_t>(ranks - 1);
  const std::size_t sp = static_cast<std::size_t>(rank - 1);
  if (sp > n - 1) return n;
  return (n - 1 - sp) % slaves;
}

std::size_t stride_of(int ranks) {
  return ranks == 1 ? 1 : static_cast<std::size_t>(ranks - 1);
}

}  // namespace

ImeColumnMap::ImeColumnMap(std::size_t n, int ranks, int rank)
    : n_(n), ranks_(ranks), rank_(rank) {
  PLIN_CHECK_MSG(n > 0, "IMe column map: empty system");
  PLIN_CHECK_MSG(ranks > 0 && rank >= 0 && rank < ranks,
                 "IMe column map: bad rank");
  const std::size_t stride = stride_of(ranks);
  for (std::size_t j = first_column_of(n, ranks, rank); j < n; j += stride) {
    columns_.push_back(j);
  }
}

std::size_t ImeColumnMap::local_index(std::size_t column) const {
  PLIN_CHECK_MSG(owner_of(column) == rank_, "column not owned by this rank");
  return (column - columns_.front()) / stride_of(ranks_);
}

std::size_t ImeColumnMap::count_below(std::size_t bound) const {
  return count_below_for(n_, ranks_, rank_, bound);
}

std::size_t ImeColumnMap::count_below_for(std::size_t n, int ranks, int rank,
                                          std::size_t bound) {
  PLIN_CHECK_MSG(ranks > 0 && rank >= 0 && rank < ranks,
                 "IMe column map: bad rank");
  const std::size_t j0 = first_column_of(n, ranks, rank);
  if (bound <= j0) return 0;
  const std::size_t stride = stride_of(ranks);
  return (bound - j0 + stride - 1) / stride;
}

}  // namespace plin::solvers
