#include "solvers/ime/imep.hpp"

#include <cmath>
#include <cstring>

#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "solvers/efficiency.hpp"
#include "support/error.hpp"

namespace plin::solvers {
namespace {

constexpr int kTagRowGather = 10;

xmpi::ComputeCost ime_cost(double flops) {
  const double charged = flops * kImeFlopScale;
  return xmpi::ComputeCost{charged, charged * kImeUpdate.bytes_per_flop,
                           kImeUpdate.efficiency};
}

/// Per-rank chunk header inside a gathered blob.
struct ChunkHeader {
  std::uint64_t rank = 0;
  std::uint64_t count = 0;
};

/// Bytes a rank contributes to the row gather (header + its column values).
std::size_t chunk_bytes(std::size_t ncols) {
  return sizeof(ChunkHeader) + ncols * sizeof(double);
}

/// The last-row exchange: a binomial-tree gather of every rank's row-l
/// values toward the master. Batching into a tree keeps the master's
/// per-level cost at O(log N) messages instead of N-1, which is what lets
/// IMeP stay latency-competitive at high rank counts; total volume remains
/// the paper's ~n floats per level. The slave part of the tree is rotated
/// by `shift` every level so the heavy interior-forwarder role (the rank
/// that relays half the row) is amortized across slaves instead of pinning
/// the same ranks every level.
void gather_row_to_master(xmpi::Comm& comm,
                          const std::vector<std::size_t>& ncols_of,
                          std::size_t shift, std::vector<std::byte>& blob,
                          std::vector<std::byte>& incoming) {
  const int ranks = comm.size();
  const int rank = comm.rank();
  const int slaves = ranks - 1;
  // Tree positions: master stays at 0; slave s sits at position
  // 1 + (s - 1 - shift mod slaves).
  const auto rank_of_pos = [&](int pos) {
    if (pos == 0) return 0;
    return 1 + static_cast<int>((static_cast<std::size_t>(pos - 1) + shift) %
                                static_cast<std::size_t>(slaves));
  };
  const int my_pos =
      rank == 0 ? 0
                : 1 + static_cast<int>(
                          (static_cast<std::size_t>(rank - 1) +
                           static_cast<std::size_t>(slaves) - shift %
                               static_cast<std::size_t>(slaves)) %
                          static_cast<std::size_t>(slaves));
  const auto subtree_bytes = [&](int pos_root, int span) {
    std::size_t bytes = 0;
    for (int p = pos_root; p < std::min(pos_root + span, ranks); ++p) {
      bytes += chunk_bytes(ncols_of[static_cast<std::size_t>(rank_of_pos(p))]);
    }
    return bytes;
  };
  int mask = 1;
  while (mask < ranks) {
    if ((my_pos & mask) == 0) {
      const int peer_pos = my_pos | mask;
      if (peer_pos < ranks) {
        incoming.resize(subtree_bytes(peer_pos, mask));
        comm.recv(std::span<std::byte>(incoming), rank_of_pos(peer_pos),
                  kTagRowGather);
        blob.insert(blob.end(), incoming.begin(), incoming.end());
      }
    } else {
      comm.send(std::span<const std::byte>(blob),
                rank_of_pos(my_pos & ~mask), kTagRowGather);
      return;
    }
    mask <<= 1;
  }
}

}  // namespace

ImepResult solve_imep(xmpi::Comm& comm, const ImepOptions& options) {
  const std::size_t n = options.n;
  PLIN_CHECK_MSG(n > 0, "IMeP: system dimension must be positive");
  const int ranks = comm.size();
  const int rank = comm.rank();
  PLIN_CHECK_MSG(options.inject_faults.empty() || options.checksum_ft,
                 "IMeP: fault injection requires checksum_ft");

  const ImeColumnMap map(n, ranks, rank);
  const std::vector<std::size_t>& my_cols = map.my_columns();
  const std::size_t ncols = my_cols.size();

  std::vector<std::size_t> ncols_of(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    ncols_of[static_cast<std::size_t>(r)] =
        ImeColumnMap::count_below_for(n, ranks, r, n);
  }

  // ---- allocation + generation ("matrix allocation" phase) ---------------
  comm.prof_phase_begin("ime:setup");
  // Local row k holds the working values M(*, j_k) of equation j_k, where
  // M = A^T — the distributed equivalent of every rank loading its share of
  // the same input file. Storing each owned table column as a contiguous
  // row lets every level update stream it with unit stride through the
  // engine's daxpy (same arithmetic order, so results are bit-identical).
  linalg::Matrix local(std::max<std::size_t>(ncols, 1), n);
  for (std::size_t k = 0; k < ncols; ++k) {
    const std::size_t j = my_cols[k];
    for (std::size_t i = 0; i < n; ++i) {
      local(k, i) = linalg::system_entry(options.seed, n, j, i);
    }
  }
  comm.memory_touch(static_cast<double>(local.size_bytes()));

  std::vector<double> h(n, 0.0);
  if (rank == 0) {
    h = linalg::generate_rhs(options.seed, n);
    comm.memory_touch(static_cast<double>(n * sizeof(double)));
  }
  // Initialization broadcast (the paper's 2(N-1)-message init/fini term).
  // Stream 1 is the auxiliary-vector channel (see Comm::bcast).
  if (ranks > 1) comm.bcast(std::span<double>(h), 0, /*stream=*/1);

  // Checksum column for algorithm-based fault tolerance:
  // s(r) = sum over this rank's columns of M(r, j). Columns are updated
  // with per-column factors g_j against the shared pivot column, so the
  // checksum follows with the factor sum.
  std::vector<double> checksum;
  if (options.checksum_ft) {
    checksum.assign(n, 0.0);
    for (std::size_t k = 0; k < ncols; ++k) {
      for (std::size_t i = 0; i < n; ++i) checksum[i] += local(k, i);
    }
    comm.compute(ime_cost(static_cast<double>(n) *
                          static_cast<double>(ncols > 0 ? ncols : 1)));
  }
  comm.prof_phase_end();

  ImepResult result;
  result.retired_diagonals.assign(n, 0.0);
  std::vector<double> c(n, 0.0);       // current pivot column
  std::vector<double> next_c(n, 0.0);  // pivot column sent early (pipelining)
  std::vector<double> row_l(n, 0.0);   // master: assembled last row
  std::vector<std::byte> blob;
  std::vector<std::byte> incoming;
  bool next_pivot_sent = false;

  // Master-side column lists for decoding gathered blobs.
  std::vector<std::vector<std::size_t>> columns_of;
  if (rank == 0) {
    columns_of.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      columns_of[static_cast<std::size_t>(r)] =
          ImeColumnMap(n, ranks, r).my_columns();
    }
  }

  for (std::size_t l = n; l-- > 0;) {
    const int owner = map.owner_of_level(l);

    // ---- auxiliary vector broadcast (master's send side) -----------------
    // The master broadcasts h as updated through the previous level — its
    // level-l update below needs this level's gathered row. Posting the
    // sends before anything else keeps the h stream off the critical path;
    // slaves collect it after their bulk updates (stream 1 is an
    // independent FIFO channel, so the two broadcast sequences cannot
    // cross-match).
    if (rank == 0 && ranks > 1) {
      comm.prof_phase_begin("ime:aux_bcast");
      comm.bcast(std::span<double>(h), 0, /*stream=*/1);
      comm.prof_phase_end();
    }

    // ---- last-row exchange (t_{l,*} to the master) -----------------------
    // Sent before this level's updates: these are exactly the values the
    // fundamental formula is about to zero, and the master needs them for
    // the auxiliary update. Sending first keeps the master's pipeline fed.
    if (ranks > 1) {
      comm.prof_phase_begin("ime:gather_row");
      // One resize + direct stores (capacity persists across levels): the
      // per-element insert() paid a growth check per double on a path that
      // runs every level.
      const ChunkHeader header{static_cast<std::uint64_t>(rank),
                               static_cast<std::uint64_t>(ncols)};
      blob.resize(sizeof(header) + ncols * sizeof(double));
      std::memcpy(blob.data(), &header, sizeof(header));
      for (std::size_t k = 0; k < ncols; ++k) {
        const double v = local(k, l);
        std::memcpy(blob.data() + sizeof(header) + k * sizeof(double), &v,
                    sizeof(double));
      }
      gather_row_to_master(comm, ncols_of,
                           l % static_cast<std::size_t>(ranks - 1), blob,
                           incoming);
      comm.prof_phase_end();
    }

    // ---- pivot column broadcast t_{*,n+l} --------------------------------
    // Only rows 0..l are live (unknowns above l were already inhibited from
    // equation l, so the column is "certainly 0" below — the same structure
    // the paper exploits for the last-row exchange).
    const std::size_t live = l + 1;
    comm.prof_phase_begin("ime:pivot_bcast");
    if (rank == owner) {
      if (next_pivot_sent) {
        c.swap(next_c);  // already updated and broadcast during level l+1
      } else {
        const std::size_t k = map.local_index(l);
        const double* col = local.row(k).data();
        std::copy(col, col + live, c.begin());
        if (ranks > 1) comm.bcast(std::span<double>(c.data(), live), owner);
      }
    } else if (ranks > 1) {
      comm.bcast(std::span<double>(c.data(), live), owner);
    }
    comm.prof_phase_end();
    next_pivot_sent = false;

    const double dl = c[l];
    PLIN_CHECK_MSG(std::isfinite(dl) && dl != 0.0,
                   "IMeP: zero running diagonal at level " + std::to_string(l));
    result.retired_diagonals[l] = dl;
    const double inv = 1.0 / dl;

    // ---- master: decode the gathered last row and update h ----------------
    if (rank == 0) {
      comm.prof_phase_begin("ime:master_update");
      if (ranks > 1) {
        std::size_t offset = 0;
        while (offset < blob.size()) {
          ChunkHeader header;
          std::memcpy(&header, blob.data() + offset, sizeof(header));
          offset += sizeof(header);
          const auto& cols = columns_of[header.rank];
          PLIN_CHECK(header.count == cols.size());
          for (std::size_t k = 0; k < cols.size(); ++k) {
            std::memcpy(&row_l[cols[k]], blob.data() + offset,
                        sizeof(double));
            offset += sizeof(double);
          }
        }
      } else {
        for (std::size_t k = 0; k < ncols; ++k) row_l[my_cols[k]] = local(k, l);
      }
      const double hl = h[l];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == l) continue;
        h[j] -= (row_l[j] * inv) * hl;
      }
      comm.compute(ime_cost(3.0 * static_cast<double>(n - 1)));
      // Blob decode + the shared h write are memory traffic the master pays
      // every level (matched by the analytic replay's master term).
      comm.memory_touch(static_cast<double>(blob.size()) +
                        8.0 * static_cast<double>(n));
      comm.prof_phase_end();
    }

    // ---- column updates ----------------------------------------------------
    // Fundamental formula on my columns: g_j = t_{l,j}/d_l, then subtract
    // g_j * pivot column from rows 0..l (the column is zero below l). The
    // column is a contiguous row of `local`, so this is one engine daxpy.
    const auto update_column = [&](std::size_t k) {
      double* col = local.row(k).data();
      const double g = col[l] * inv;
      linalg::daxpy(-g, std::span<const double>(c.data(), l + 1),
                    std::span<double>(col, l + 1));
      return g;
    };
    const double per_column_flops = 1.0 + 2.0 * static_cast<double>(l + 1);

    // Pipelining: the owner of the *next* pivot column updates it first and
    // broadcasts it immediately, so the next level's critical input is on
    // the wire while everyone (including us) finishes this level's bulk.
    comm.prof_phase_begin("ime:update");
    double factor_sum = 0.0;
    std::size_t early_k = ncols;  // sentinel: none
    if (l > 0 && rank == map.owner_of(l - 1)) {
      early_k = map.local_index(l - 1);
      factor_sum += update_column(early_k);
      comm.compute(ime_cost(per_column_flops));
      const double* col = local.row(early_k).data();
      std::copy(col, col + l, next_c.begin());
      if (ranks > 1) {
        // Root-side sends only; the live prefix of level l-1 is l entries.
        comm.bcast(std::span<double>(next_c.data(), l), rank);
      }
      next_pivot_sent = true;
    }

    std::size_t updated = 0;
    for (std::size_t k = 0; k < ncols; ++k) {
      if (my_cols[k] == l || k == early_k) continue;
      factor_sum += update_column(k);
      ++updated;
    }
    if (updated > 0) {
      comm.compute(
          ime_cost(per_column_flops * static_cast<double>(updated)));
    }
    comm.prof_phase_end();

    // ---- auxiliary vector broadcast (slaves' receive side) -----------------
    // Collected after the bulk updates: nothing here depends on it (it
    // backs the fault-tolerance story and is the paper's stated protocol),
    // so it must not stall the pipeline.
    if (rank != 0 && ranks > 1) {
      comm.prof_phase_begin("ime:aux_bcast");
      comm.bcast(std::span<double>(h), 0, /*stream=*/1);
      comm.prof_phase_end();
    }

    // Checksum maintenance mirrors the column updates with the factor sum
    // (the pivot column l itself is not updated, so remove its would-be
    // contribution explicitly: it stays in the checksum unchanged).
    if (options.checksum_ft) {
      comm.prof_phase_begin("ime:checksum");
      for (std::size_t r = 0; r <= l; ++r) {
        checksum[r] -= factor_sum * c[r];
      }
      comm.compute(ime_cost(2.0 * static_cast<double>(l + 1)));
      comm.prof_phase_end();
    }

    // ---- fault injection / checksum recovery (test hook) -------------------
    for (const ImeFault& fault : options.inject_faults) {
      if (fault.level != l || fault.rank != rank || ncols == 0) continue;
      comm.prof_phase_begin("ime:recovery");
      // Corrupt the first local column...
      for (std::size_t i = 0; i < n; ++i) local(0, i) = 1e30;
      // ...and rebuild it from the checksum minus the other columns.
      std::vector<double> rebuilt(checksum);
      for (std::size_t k = 1; k < ncols; ++k) {
        for (std::size_t i = 0; i < n; ++i) rebuilt[i] -= local(k, i);
      }
      for (std::size_t i = 0; i < n; ++i) local(0, i) = rebuilt[i];
      comm.compute(ime_cost(static_cast<double>(n) *
                            static_cast<double>(ncols)));
      comm.prof_phase_end();
      ++result.ft_recoveries;
    }
  }

  // ---- solution ------------------------------------------------------------
  comm.prof_phase_begin("ime:solution");
  if (rank == 0) {
    result.x.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] = h[i] / result.retired_diagonals[i];
    }
    comm.compute(ime_cost(static_cast<double>(n)));
  }
  if (options.broadcast_solution && ranks > 1) {
    if (rank != 0) result.x.assign(n, 0.0);
    comm.bcast(std::span<double>(result.x), 0);
  }
  comm.prof_phase_end();
  return result;
}

}  // namespace plin::solvers
