#include "solvers/ime/sequential.hpp"

#include <cmath>

#include "linalg/kernels.hpp"
#include "support/error.hpp"

namespace plin::solvers {

linalg::Matrix build_inhibition_table(const linalg::Matrix& a) {
  PLIN_CHECK_MSG(a.rows() == a.cols(), "inhibition table: A must be square");
  const std::size_t n = a.rows();
  linalg::Matrix t(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double diag = a(i, i);
    PLIN_CHECK_MSG(diag != 0.0,
                   "inhibition table: zero diagonal (IMe has no pivoting)");
    t(i, i) = 1.0 / diag;
    for (std::size_t j = 0; j < n; ++j) {
      t(i, n + j) = i == j ? 1.0 : a(j, i) / diag;
    }
  }
  return t;
}

std::vector<double> solve_ime_instrumented(const linalg::Matrix& a,
                                           std::vector<double> b,
                                           std::vector<ImeLevelStats>* stats) {
  PLIN_CHECK_MSG(a.rows() == a.cols(), "IMe: A must be square");
  const std::size_t n = a.rows();
  PLIN_CHECK_MSG(b.size() == n, "IMe: rhs size mismatch");
  PLIN_CHECK_MSG(n > 0, "IMe: empty system");

  // M = A^T: column j of M carries equation j, indexed by unknown (row).
  // This is the (unscaled) right half of the paper's inhibition table; the
  // parallel version distributes these columns.
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = a(j, i);
  }
  std::vector<double> h = std::move(b);
  std::vector<double> d(n, 0.0);

  if (stats != nullptr) stats->clear();

  for (std::size_t l = n; l-- > 0;) {
    const double diag = m(l, l);
    PLIN_CHECK_MSG(std::isfinite(diag) && diag != 0.0,
                   "IMe: zero running diagonal at level " + std::to_string(l));
    d[l] = diag;
    const double inv = 1.0 / diag;
    std::size_t flops = 0;

    // Inhibit unknown l from every other equation j: the per-equation
    // factor g_j = m(l, j) / d_l comes from the retiring last row, the
    // update vector is the pivot column t_{*,n+l}. Unknowns r > l were
    // already inhibited from equation l, so the pivot column is zero there
    // and only rows r <= l move.
    for (std::size_t j = 0; j < n; ++j) {
      if (j == l) continue;
      const double g = m(l, j) * inv;
      ++flops;
      for (std::size_t r = 0; r <= l; ++r) {
        m(r, j) -= g * m(r, l);
      }
      flops += 2 * (l + 1);
      h[j] -= g * h[l];
      flops += 2;
    }

    if (stats != nullptr) {
      stats->push_back(ImeLevelStats{l, diag, flops});
    }
  }

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = h[i] / d[i];
  return x;
}

std::vector<double> solve_ime(const linalg::Matrix& a, std::vector<double> b) {
  return solve_ime_instrumented(a, std::move(b), nullptr);
}

ImeFactorization::ImeFactorization(const linalg::Matrix& a) {
  PLIN_CHECK_MSG(a.rows() == a.cols(), "IMe: A must be square");
  const std::size_t n = a.rows();
  PLIN_CHECK_MSG(n > 0, "IMe: empty system");

  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = a(j, i);
  }
  // The left half: column j starts as e_j and accumulates the combination
  // of original equations that produced the retired equation j.
  w_ = linalg::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) w_(i, i) = 1.0;
  diagonals_.assign(n, 0.0);

  for (std::size_t l = n; l-- > 0;) {
    const double diag = m(l, l);
    PLIN_CHECK_MSG(std::isfinite(diag) && diag != 0.0,
                   "IMe: zero running diagonal at level " + std::to_string(l));
    diagonals_[l] = diag;
    const double inv = 1.0 / diag;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == l) continue;
      const double g = m(l, j) * inv;
      ++factor_flops_;
      // Working column: rows <= l (the pivot column is zero below).
      for (std::size_t r = 0; r <= l; ++r) m(r, j) -= g * m(r, l);
      factor_flops_ += 2 * (l + 1);
      // Left column: the pivot's left column has fill-in only at rows >= l
      // (it combines equations retired at levels >= l).
      for (std::size_t r = l; r < n; ++r) w_(r, j) -= g * w_(r, l);
      factor_flops_ += 2 * (n - l);
    }
  }
}

std::vector<double> ImeFactorization::solve(const std::vector<double>& b)
    const {
  const std::size_t n = diagonals_.size();
  PLIN_CHECK_MSG(b.size() == n, "IMe: rhs size mismatch");
  std::vector<double> x(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double dot = 0.0;
    for (std::size_t k = 0; k < n; ++k) dot += w_(k, j) * b[k];
    x[j] = dot / diagonals_[j];
  }
  return x;
}

std::vector<double> solve_ime_table(const linalg::Matrix& a,
                                    std::vector<double> b) {
  PLIN_CHECK_MSG(a.rows() == a.cols(), "IMe: A must be square");
  const std::size_t n = a.rows();
  PLIN_CHECK_MSG(b.size() == n, "IMe: rhs size mismatch");

  // INITIME: the paper's T(n) with left half D^-1 and right half D^-1 A^T.
  linalg::Matrix t = build_inhibition_table(a);
  std::vector<double> h = std::move(b);
  std::vector<double> d(n, 0.0);

  // The right-half columns carry the scaled system R y = b with
  // y_i = a_ii x_i; the level recurrence is identical to solve_ime's
  // because the per-equation factors are scale-invariant.
  for (std::size_t l = n; l-- > 0;) {
    const double diag = t(l, n + l);
    PLIN_CHECK_MSG(std::isfinite(diag) && diag != 0.0,
                   "IMe: zero running diagonal at level " + std::to_string(l));
    d[l] = diag;
    const double inv = 1.0 / diag;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == l) continue;
      const double g = t(l, n + j) * inv;
      for (std::size_t r = 0; r <= l; ++r) {
        t(r, n + j) -= g * t(r, n + l);
      }
      h[j] -= g * h[l];
    }
  }

  // Elementary systems: y_j = h_j / d_j, then the left half's 1/a_jj
  // entries undo the variable scaling.
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = (h[j] / d[j]) * t(j, j);
  }
  return x;
}

std::vector<double> solve_ime_blocked(const linalg::Matrix& a,
                                      std::vector<double> b, std::size_t kb) {
  PLIN_CHECK_MSG(a.rows() == a.cols(), "IMe: A must be square");
  const std::size_t n = a.rows();
  PLIN_CHECK_MSG(b.size() == n, "IMe: rhs size mismatch");
  PLIN_CHECK_MSG(n > 0, "IMe: empty system");
  PLIN_CHECK_MSG(kb > 0, "IMe: block size must be positive");

  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = a(j, i);
  }
  std::vector<double> h = std::move(b);
  std::vector<double> d(n, 0.0);

  // Per-block workspaces: the kb factored pivot columns (C) and the
  // per-equation factor table (G). C is stored table-row-major — C(r, b) is
  // row r of the pivot column retired at block level l = hi - 1 - b — so the
  // bulk update below is a plain dgemm over contiguous operands.
  linalg::Matrix c(n, kb);  // C(r, b) = pivot column of level hi-1-b, row r
  linalg::Matrix g(kb, n);  // G(b, j) = factor g_j at level hi-1-b

  for (std::size_t hi = n; hi > 0;) {
    const std::size_t width = std::min(kb, hi);
    const std::size_t lo = hi - width;  // block levels: hi-1 .. lo

    // ---- phase 1: factor the block's pivot columns (left-looking) --------
    for (std::size_t b1 = 0; b1 < width; ++b1) {
      const std::size_t l = hi - 1 - b1;
      // Apply the block's earlier levels l' > l to column l and record the
      // factors (they also drive equation l's h update).
      for (std::size_t b2 = 0; b2 < b1; ++b2) {
        const std::size_t lp = hi - 1 - b2;
        const double gv = m(lp, l) / d[lp];
        g(b2, l) = gv;
        for (std::size_t r = 0; r <= lp; ++r) m(r, l) -= gv * c(r, b2);
      }
      const double diag = m(l, l);
      PLIN_CHECK_MSG(std::isfinite(diag) && diag != 0.0,
                     "IMe: zero running diagonal at level " +
                         std::to_string(l));
      d[l] = diag;
      for (std::size_t r = 0; r < n; ++r) c(r, b1) = m(r, l);
      g(b1, l) = 0.0;
    }

    // ---- phases 2+3: factor recovery and rank-k bulk update ---------------
    // For each column, the levels still owed to it are all block levels for
    // a column outside the block, and only the levels *below* its own pivot
    // turn for a block column (phase 1 already applied the ones above).
    // The deferred updates change row l of column j by the earlier
    // considered levels' contributions, so the factors follow the
    // recurrence g_j(l) = (M(l,j) - sum g_j(l') * C(l')[l]) / d_l. The
    // column update splits by row range: rows inside the block's level band
    // (and in-block columns, whose live level set varies) stay scalar, and
    // the dense bulk — rows [0, lo) of every out-of-block column, where all
    // `width` levels apply — runs through the engine's dgemm:
    //   M[0:lo, J] -= C[0:lo, :] * G[:, J].
    for (std::size_t j = 0; j < n; ++j) {
      const bool in_block = j >= lo && j < hi;
      const std::size_t b_first = in_block ? hi - j : 0;
      for (std::size_t b1 = b_first; b1 < width; ++b1) {
        const std::size_t l = hi - 1 - b1;
        double value = m(l, j);
        for (std::size_t b2 = b_first; b2 < b1; ++b2) {
          value -= g(b2, j) * c(l, b2);
        }
        g(b1, j) = value / d[l];
      }
      const std::size_t r_lo = in_block ? 0 : lo;
      for (std::size_t b1 = b_first; b1 < width; ++b1) {
        const double gv = g(b1, j);
        const std::size_t l = hi - 1 - b1;
        for (std::size_t r = r_lo; r <= l; ++r) m(r, j) -= gv * c(r, b1);
      }
    }
    if (lo > 0) {
      const linalg::ConstMatrixView cv = c.view().sub(0, 0, lo, width);
      linalg::dgemm(-1.0, cv, g.view().sub(0, 0, width, lo), 1.0,
                    m.view().sub(0, 0, lo, lo));
      if (hi < n) {
        linalg::dgemm(-1.0, cv, g.view().sub(0, hi, width, n - hi), 1.0,
                      m.view().sub(0, hi, lo, n - hi));
      }
    }

    // ---- phase 4: auxiliary updates in level order -------------------------
    for (std::size_t b1 = 0; b1 < width; ++b1) {
      const std::size_t l = hi - 1 - b1;
      const double hl = h[l];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == l) continue;
        // In-block columns below l carry their factor from phase 1.
        h[j] -= g(b1, j) * hl;
      }
    }

    hi = lo;
  }

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = h[i] / d[i];
  return x;
}

std::size_t ime_flop_count(std::size_t n) {
  // Per level l (counting down): (n-1) equations, each paying one factor
  // division, 2(l+1) pivot-column update flops and 2 auxiliary flops;
  // finally n solution divisions.
  std::size_t total = 0;
  for (std::size_t l = 0; l < n; ++l) {
    total += (n - 1) * (1 + 2 * (l + 1) + 2);
  }
  return total + n;
}

}  // namespace plin::solvers
