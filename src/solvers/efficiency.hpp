// Kernel efficiency and memory-traffic constants shared by the executing
// solvers (which charge Comm::compute with them) and the analytic replay in
// perfsim. Keeping them in one place is what makes the model-vs-execution
// consistency tests meaningful: both tiers price identical work through
// identical profiles.
//
// Efficiencies are fractions of a core's peak double-precision throughput.
// bytes_per_flop drives both the memory-bandwidth ceiling (a socket's
// DRAM bandwidth is shared by its resident ranks) and the DRAM-domain
// energy. The numbers describe *production-grade* kernels on Skylake:
//
//   * kGemm — blocked trailing-update DGEMM, heavy cache reuse;
//   * kPanel — LU panel factorization: pivot search + rank-1 updates,
//     stream-bound by construction;
//   * kImeUpdate — the Inhibition Method's table update. Applied naively
//     (one level at a time) this is a rank-1 outer-product that re-streams
//     the whole local table every level; any production IMe batches k
//     levels into a rank-k update (a GEMM), which is what the profile
//     prices. Our executed kernel applies levels one at a time for clarity
//     and protocol fidelity — at numeric-tier sizes the table is
//     cache-resident so the distinction is invisible to correctness, and
//     both tiers charge this same profile. It remains markedly more
//     memory-hungry per flop than LU's GEMM (2x), which is what reproduces
//     the paper's DRAM power gap (§5.4).
#pragma once

#include <cstddef>

namespace plin::solvers {

struct KernelProfile {
  double efficiency;      // fraction of core peak flops
  double bytes_per_flop;  // DRAM traffic per flop
};

/// Blocked GEMM trailing update (ScaLAPACK's pdgemm workhorse).
inline constexpr KernelProfile kGemm{0.65, 0.04};
/// LU panel factorization (pivot search + rank-1 updates, latency-bound).
inline constexpr KernelProfile kPanel{0.25, 1.0};
/// Triangular solve of the U12 row block.
inline constexpr KernelProfile kTrsm{0.50, 0.30};
/// Row swap during pivoting (pure memory movement).
inline constexpr KernelProfile kSwap{0.10, 16.0};
/// Inhibition Method table update (level-blocked rank-k kernel, see above).
inline constexpr KernelProfile kImeUpdate{0.50, 0.08};
/// Back/forward substitution in the solve phase.
inline constexpr KernelProfile kSubstitution{0.30, 1.0};
/// Dense matrix-vector product (the iterative-refinement residual sweep):
/// streams the whole matrix once per call, so bandwidth-bound like the
/// substitution kernels.
inline constexpr KernelProfile kGemv{0.30, 1.0};
/// CSR SpMV: the irregular x-gather caps useful issue width well below the
/// dense kernels. bytes_per_flop is *not* a constant for SpMV — it depends
/// on nnz/rows — so callers price it per matrix with
/// hw::csr_spmv_bytes_per_flop and use only this efficiency.
inline constexpr KernelProfile kSpmv{0.22, 10.0};
/// Fused dot product (two loads per multiply-add).
inline constexpr KernelProfile kDot{0.30, 8.0};
/// axpy-style vector update (two loads + one store per multiply-add).
inline constexpr KernelProfile kAxpy{0.30, 12.0};

/// Flop-count coefficient applied to the Inhibition Method's charged work.
/// The paper states the latest IMe costs 3/2 n^3 + O(n^2); our streamlined
/// reconstruction executes n^3 + O(n^2) (it does not carry the table's left
/// half — DESIGN.md §4). To reproduce the published complexity, both tiers
/// charge the paper's coefficient: every IMe flop is billed at 1.5x.
inline constexpr double kImeFlopScale = 1.5;

/// Default ScaLAPACK block size (the paper does not state one; 64 is the
/// common choice for Skylake-era clusters).
inline constexpr std::size_t kDefaultBlock = 64;

}  // namespace plin::solvers
