#include "papisim/papi.hpp"

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "msr/device.hpp"
#include "support/error.hpp"
#include "trace/hardware_context.hpp"

namespace plin::papisim {
namespace {

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

enum class EventKind { kPackageEnergy, kDramEnergy, kPowerLimit };

enum class Component { kPowercap = 0, kRapl = 1 };

struct EventSpec {
  Component component = Component::kPowercap;
  EventKind kind = EventKind::kPackageEnergy;
  int package = 0;
};

constexpr int kComponentShift = 24;
constexpr int kKindShift = 16;

int encode_event(const EventSpec& spec) {
  return (static_cast<int>(spec.component) + 1) << kComponentShift |
         static_cast<int>(spec.kind) << kKindShift | spec.package;
}

std::optional<EventSpec> decode_event(int code) {
  const int component = (code >> kComponentShift) - 1;
  const int kind = (code >> kKindShift) & 0xFF;
  const int package = code & 0xFFFF;
  if (component < 0 || component > 1 || kind > 2 || package < 0) {
    return std::nullopt;
  }
  return EventSpec{static_cast<Component>(component),
                   static_cast<EventKind>(kind), package};
}

std::string event_name(const EventSpec& spec) {
  const std::string p = std::to_string(spec.package);
  switch (spec.component) {
    case Component::kPowercap:
      switch (spec.kind) {
        case EventKind::kPackageEnergy:
          return "powercap:::ENERGY_UJ:ZONE" + p;
        case EventKind::kDramEnergy:
          return "powercap:::ENERGY_UJ:ZONE" + p + "_SUBZONE0";
        case EventKind::kPowerLimit:
          return "powercap:::POWER_LIMIT_A_UW:ZONE" + p;
      }
      break;
    case Component::kRapl:
      switch (spec.kind) {
        case EventKind::kPackageEnergy:
          return "rapl:::PACKAGE_ENERGY:PACKAGE" + p;
        case EventKind::kDramEnergy:
          return "rapl:::DRAM_ENERGY:PACKAGE" + p;
        case EventKind::kPowerLimit:
          return "rapl:::POWER_LIMIT:PACKAGE" + p;  // not enumerated
      }
      break;
  }
  return {};
}

/// Parses "<prefix><number><suffix>"; returns the number or nullopt.
std::optional<int> parse_indexed(const std::string& text,
                                 const std::string& prefix,
                                 const std::string& suffix) {
  if (text.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string rest = text.substr(prefix.size());
  if (rest.size() < 1 + suffix.size()) return std::nullopt;
  if (rest.compare(rest.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = rest.substr(0, rest.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  int value = 0;
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return std::nullopt;
    value = value * 10 + (ch - '0');
  }
  return value;
}

std::optional<EventSpec> parse_event_name(const std::string& name) {
  if (auto p = parse_indexed(name, "powercap:::ENERGY_UJ:ZONE", "_SUBZONE0")) {
    return EventSpec{Component::kPowercap, EventKind::kDramEnergy, *p};
  }
  if (auto p = parse_indexed(name, "powercap:::ENERGY_UJ:ZONE", "")) {
    return EventSpec{Component::kPowercap, EventKind::kPackageEnergy, *p};
  }
  if (auto p = parse_indexed(name, "powercap:::POWER_LIMIT_A_UW:ZONE", "")) {
    return EventSpec{Component::kPowercap, EventKind::kPowerLimit, *p};
  }
  if (auto p = parse_indexed(name, "rapl:::PACKAGE_ENERGY:PACKAGE", "")) {
    return EventSpec{Component::kRapl, EventKind::kPackageEnergy, *p};
  }
  if (auto p = parse_indexed(name, "rapl:::DRAM_ENERGY:PACKAGE", "")) {
    return EventSpec{Component::kRapl, EventKind::kDramEnergy, *p};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Library state
// ---------------------------------------------------------------------------

struct EventState {
  EventSpec spec;
  std::unique_ptr<msr::RaplEnergyReader> reader;  // energy events only
  double base_uj = 0.0;
};

struct EventSet {
  std::vector<EventSpec> events;
  bool running = false;
  // Populated while running:
  const trace::HardwareContext* context = nullptr;
  std::vector<std::unique_ptr<msr::MsrDevice>> devices;  // per package
  std::vector<EventState> states;
};

struct Library {
  std::mutex mutex;
  bool initialized = false;
  bool threads_ready = false;
  unsigned long (*thread_id_fn)() = nullptr;
  std::map<int, EventSet> sets;
  int next_set_id = 1;
};

Library& lib() {
  static Library instance;
  return instance;
}

int packages_on_thread() {
  const trace::HardwareContext* ctx = trace::thread_hardware();
  if (ctx == nullptr || ctx->ledger == nullptr) return -1;
  return ctx->ledger->packages();
}

msr::MsrDevice* device_for(EventSet& set, int package) {
  if (static_cast<int>(set.devices.size()) <= package) {
    set.devices.resize(static_cast<std::size_t>(package) + 1);
  }
  auto& slot = set.devices[static_cast<std::size_t>(package)];
  if (!slot) slot = std::make_unique<msr::MsrDevice>(set.context, package);
  return slot.get();
}

long long read_event_locked(EventSet& set, EventState& state) {
  switch (state.spec.kind) {
    case EventKind::kPackageEnergy:
    case EventKind::kDramEnergy: {
      const double uj = state.reader->energy_uj() - state.base_uj;
      // powercap counts microjoules, rapl counts nanojoules.
      return state.spec.component == Component::kRapl
                 ? static_cast<long long>(uj * 1e3)
                 : static_cast<long long>(uj);
    }
    case EventKind::kPowerLimit: {
      const msr::MsrDevice* device = device_for(set, state.spec.package);
      const auto raw = device->read(msr::kMsrPkgPowerLimit);
      const auto limit = msr::PkgPowerLimit::decode(raw, device->units());
      return limit.enabled ? static_cast<long long>(limit.limit_w * 1e6) : 0;
    }
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

int library_init(int version) {
  if (version != PAPI_VER_CURRENT) return PAPI_EINVAL;
  std::lock_guard<std::mutex> lock(lib().mutex);
  lib().initialized = true;
  return PAPI_VER_CURRENT;
}

bool is_initialized() {
  std::lock_guard<std::mutex> lock(lib().mutex);
  return lib().initialized;
}

int thread_init(unsigned long (*id_fn)()) {
  std::lock_guard<std::mutex> lock(lib().mutex);
  if (!lib().initialized) return PAPI_ENOINIT;
  if (id_fn == nullptr) return PAPI_EINVAL;
  lib().threads_ready = true;
  lib().thread_id_fn = id_fn;
  return PAPI_OK;
}

void shutdown() {
  std::lock_guard<std::mutex> lock(lib().mutex);
  lib().sets.clear();
  lib().initialized = false;
  lib().threads_ready = false;
  lib().thread_id_fn = nullptr;
}

int num_components() { return 2; }

const ComponentInfo* get_component_info(int index) {
  static const ComponentInfo kInfos[2] = {
      {"powercap", "Linux powercap (RAPL sysfs) energy and power-limit", 0},
      {"rapl", "Direct RAPL MSR energy counters", 1},
  };
  if (index < 0 || index >= 2) return nullptr;
  return &kInfos[index];
}

std::vector<std::string> enum_component_events(const std::string& component) {
  int packages = packages_on_thread();
  if (packages < 0) packages = 2;  // unbound: describe a standard node
  std::vector<std::string> names;
  for (int p = 0; p < packages; ++p) {
    if (component == "powercap") {
      names.push_back(
          event_name({Component::kPowercap, EventKind::kPackageEnergy, p}));
      names.push_back(
          event_name({Component::kPowercap, EventKind::kDramEnergy, p}));
      names.push_back(
          event_name({Component::kPowercap, EventKind::kPowerLimit, p}));
    } else if (component == "rapl") {
      names.push_back(
          event_name({Component::kRapl, EventKind::kPackageEnergy, p}));
      names.push_back(
          event_name({Component::kRapl, EventKind::kDramEnergy, p}));
    }
  }
  return names;
}

int event_name_to_code(const std::string& name, int* code) {
  if (code == nullptr) return PAPI_EINVAL;
  if (!is_initialized()) return PAPI_ENOINIT;
  const auto spec = parse_event_name(name);
  if (!spec) return PAPI_ENOEVNT;
  const int packages = packages_on_thread();
  if (packages >= 0 && spec->package >= packages) return PAPI_ENOEVNT;
  *code = encode_event(*spec);
  return PAPI_OK;
}

int event_code_to_name(int code, std::string* name) {
  if (name == nullptr) return PAPI_EINVAL;
  const auto spec = decode_event(code);
  if (!spec) return PAPI_ENOEVNT;
  *name = event_name(*spec);
  return name->empty() ? PAPI_ENOEVNT : PAPI_OK;
}

int create_eventset(int* eventset) {
  if (eventset == nullptr) return PAPI_EINVAL;
  std::lock_guard<std::mutex> lock(lib().mutex);
  if (!lib().initialized) return PAPI_ENOINIT;
  const int id = lib().next_set_id++;
  lib().sets.emplace(id, EventSet{});
  *eventset = id;
  return PAPI_OK;
}

int add_event(int eventset, int code) {
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  if (it->second.running) return PAPI_EISRUN;
  const auto spec = decode_event(code);
  if (!spec) return PAPI_ENOEVNT;
  it->second.events.push_back(*spec);
  return PAPI_OK;
}

int add_named_event(int eventset, const std::string& name) {
  int code = 0;
  const int status = event_name_to_code(name, &code);
  if (status != PAPI_OK) return status;
  return add_event(eventset, code);
}

int num_events(int eventset) {
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  return static_cast<int>(it->second.events.size());
}

int start(int eventset) {
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  EventSet& set = it->second;
  if (set.running) return PAPI_EISRUN;
  const trace::HardwareContext* ctx = trace::thread_hardware();
  if (ctx == nullptr || ctx->ledger == nullptr || ctx->clock == nullptr) {
    return PAPI_ENOHW;
  }
  set.context = ctx;
  set.devices.clear();
  set.states.clear();
  for (const EventSpec& spec : set.events) {
    if (spec.package >= ctx->ledger->packages()) return PAPI_ENOEVNT;
    EventState state;
    state.spec = spec;
    if (spec.kind != EventKind::kPowerLimit) {
      const auto domain = spec.kind == EventKind::kDramEnergy
                              ? msr::RaplEnergyReader::Domain::kDram
                              : msr::RaplEnergyReader::Domain::kPackage;
      state.reader = std::make_unique<msr::RaplEnergyReader>(
          device_for(set, spec.package), domain);
      state.base_uj = state.reader->energy_uj();
    }
    set.states.push_back(std::move(state));
  }
  set.running = true;
  return PAPI_OK;
}

int read(int eventset, long long* values) {
  if (values == nullptr) return PAPI_EINVAL;
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  EventSet& set = it->second;
  if (!set.running) return PAPI_ENOTRUN;
  for (std::size_t i = 0; i < set.states.size(); ++i) {
    values[i] = read_event_locked(set, set.states[i]);
  }
  return PAPI_OK;
}

int reset(int eventset) {
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  EventSet& set = it->second;
  if (!set.running) return PAPI_ENOTRUN;
  for (EventState& state : set.states) {
    if (state.reader) state.base_uj = state.reader->energy_uj();
  }
  return PAPI_OK;
}

int stop(int eventset, long long* values) {
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  EventSet& set = it->second;
  if (!set.running) return PAPI_ENOTRUN;
  if (values != nullptr) {
    for (std::size_t i = 0; i < set.states.size(); ++i) {
      values[i] = read_event_locked(set, set.states[i]);
    }
  }
  set.running = false;
  set.states.clear();
  set.devices.clear();
  set.context = nullptr;
  return PAPI_OK;
}

int cleanup_eventset(int eventset) {
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  if (it->second.running) return PAPI_EISRUN;
  it->second.events.clear();
  return PAPI_OK;
}

int destroy_eventset(int* eventset) {
  if (eventset == nullptr) return PAPI_EINVAL;
  std::lock_guard<std::mutex> lock(lib().mutex);
  auto it = lib().sets.find(*eventset);
  if (it == lib().sets.end()) return PAPI_ENOEVST;
  if (it->second.running) return PAPI_EISRUN;
  if (!it->second.events.empty()) return PAPI_EINVAL;  // cleanup first
  lib().sets.erase(it);
  *eventset = PAPI_NULL;
  return PAPI_OK;
}

int set_powercap_limit(const std::string& event_name_str,
                       long long microwatts) {
  if (!is_initialized()) return PAPI_ENOINIT;
  if (microwatts < 0) return PAPI_EINVAL;
  const auto spec = parse_event_name(event_name_str);
  if (!spec || spec->kind != EventKind::kPowerLimit ||
      spec->component != Component::kPowercap) {
    return PAPI_ENOEVNT;
  }
  const trace::HardwareContext* ctx = trace::thread_hardware();
  if (ctx == nullptr || ctx->ledger == nullptr) return PAPI_ENOHW;
  if (spec->package >= ctx->ledger->packages()) return PAPI_ENOEVNT;
  msr::MsrDevice device(ctx, spec->package);
  msr::PkgPowerLimit limit;
  limit.limit_w = static_cast<double>(microwatts) * 1e-6;
  limit.enabled = microwatts > 0;
  device.write(msr::kMsrPkgPowerLimit, limit.encode(device.units()));
  return PAPI_OK;
}

const char* strerror(int status) {
  switch (status) {
    case PAPI_OK: return "no error";
    case PAPI_EINVAL: return "invalid argument";
    case PAPI_ENOMEM: return "insufficient memory";
    case PAPI_ECMP: return "component error";
    case PAPI_ENOEVNT: return "event does not exist";
    case PAPI_ENOEVST: return "no such event set";
    case PAPI_EISRUN: return "event set is running";
    case PAPI_ENOTRUN: return "event set is not running";
    case PAPI_ENOINIT: return "library not initialized";
    case PAPI_ENOHW: return "no hardware bound to this thread";
    default: return "unknown error";
  }
}

}  // namespace plin::papisim
