// papisim — a PAPI-shaped performance/energy API backed by the simulated
// MSR/RAPL stack.
//
// The paper's monitoring layer (papi_monitoring.h) is written against real
// PAPI: library init, thread init, event-set creation, adding every event of
// the *powercap* component by name, PAPI_start/PAPI_stop, PAPI_term. This
// module reproduces that surface (C-style int status codes, long long
// counter values) so src/monitor can be a faithful port of the paper's flow.
//
// Two components are exposed, mirroring real PAPI on an Intel node:
//   powercap — ENERGY_UJ:ZONE<p> (package energy, microjoules),
//              ENERGY_UJ:ZONE<p>_SUBZONE0 (DRAM energy, microjoules),
//              POWER_LIMIT_A_UW:ZONE<p> (read/write power cap, microwatts);
//   rapl     — PACKAGE_ENERGY:PACKAGE<p> / DRAM_ENERGY:PACKAGE<p>
//              (nanojoules).
//
// Counters are sampled against the calling thread's bound HardwareContext
// (see trace/hardware_context.hpp), exactly as real PAPI reads the MSRs of
// the node it executes on. Event sets follow PAPI semantics: counters are
// zeroed by start(), accumulate until stop(), and may be read mid-flight.
#pragma once

#include <string>
#include <vector>

namespace plin::papisim {

// Status codes (values follow real PAPI where one exists).
inline constexpr int PAPI_OK = 0;
inline constexpr int PAPI_EINVAL = -1;
inline constexpr int PAPI_ENOMEM = -2;
inline constexpr int PAPI_ECMP = -4;
inline constexpr int PAPI_ENOEVNT = -7;
inline constexpr int PAPI_ENOEVST = -9;
inline constexpr int PAPI_EISRUN = -13;
inline constexpr int PAPI_ENOTRUN = -14;
inline constexpr int PAPI_ENOINIT = -22;
inline constexpr int PAPI_ENOHW = -25;

inline constexpr int PAPI_NULL = -1;

/// Version handshake, PAPI-style: library_init must receive the version the
/// caller was compiled against.
inline constexpr int PAPI_VER_CURRENT = (7 << 16) | (0 << 8) | 1;

/// Initializes the library. Returns PAPI_VER_CURRENT on success, PAPI_EINVAL
/// on version mismatch. Idempotent.
int library_init(int version);

/// True once library_init succeeded.
bool is_initialized();

/// Registers threading support; `id_fn` must return a stable id for the
/// calling thread. Returns PAPI_OK.
int thread_init(unsigned long (*id_fn)());

/// Shuts the library down and destroys all event sets (PAPI_shutdown; the
/// paper calls its wrapper PAPI_term).
void shutdown();

// -- Component and event enumeration ---------------------------------------

struct ComponentInfo {
  std::string name;
  std::string description;
  int index = 0;
};

int num_components();
/// Returns nullptr for an out-of-range index.
const ComponentInfo* get_component_info(int index);

/// All event names of a component, for the hardware bound to this thread
/// (the powercap component exposes one zone per package). This is what the
/// paper's event_names array is filled from.
std::vector<std::string> enum_component_events(const std::string& component);

/// Translates an event name to a code (papi_event_name_to_code in the
/// paper). Requires a bound HardwareContext for zone validation.
int event_name_to_code(const std::string& name, int* code);
int event_code_to_name(int code, std::string* name);

// -- Event sets --------------------------------------------------------------

int create_eventset(int* eventset);
int add_event(int eventset, int code);
int add_named_event(int eventset, const std::string& name);
/// Number of events in the set, or a negative status code.
int num_events(int eventset);

int start(int eventset);
/// Reads counters without stopping; `values` must hold num_events entries.
int read(int eventset, long long* values);
/// Zeroes the running counters.
int reset(int eventset);
/// Stops counting and (if `values` non-null) reads final counters.
int stop(int eventset, long long* values);

/// Removes all events (set must be stopped).
int cleanup_eventset(int eventset);
/// Destroys an empty event set and writes PAPI_NULL through `eventset`.
int destroy_eventset(int* eventset);

// -- Power capping (powercap component write path) ---------------------------

/// Writes a package power limit through the powercap component, e.g.
/// set_powercap_limit("powercap:::POWER_LIMIT_A_UW:ZONE0", 90'000'000).
/// Pass 0 to clear the cap. Returns PAPI_OK or an error.
int set_powercap_limit(const std::string& event_name, long long microwatts);

/// Human-readable status string.
const char* strerror(int status);

}  // namespace plin::papisim
