// Prediction — what the analytic replay reports for one (algorithm,
// placement, matrix size) configuration: the same quantities the paper's
// charts plot.
#pragma once

#include <cstddef>

#include "solvers/cg/precond.hpp"
#include "sparse/generate.hpp"

namespace plin::perfsim {

enum class Algorithm { kIme, kScalapack, kJacobi, kCg };

const char* to_string(Algorithm algorithm);

/// Job-level arithmetic policy, shared by the campaign layers. kFp64 is the
/// paper's baseline; kMixed is the fp32-factorize + fp64-refine GEPP
/// variant (docs/mixed_precision.md) — numeric tier, scalapack only.
enum class Precision { kFp64, kMixed };

const char* to_string(Precision precision);

struct Workload {
  Algorithm algorithm = Algorithm::kScalapack;
  std::size_t n = 0;
  std::size_t nb = 64;      // ScaLAPACK block size (ignored by others)
  int iterations = 100;     // Jacobi sweep count (ignored by the direct
                            // solvers; pick from the tolerance/dominance
                            // pair you plan to run)
  /// kMixed replays the fp32-factorize + fp64-refine GEPP variant
  /// (scalapack only — the refinement-iteration model in
  /// scalapack_model.cpp); every other algorithm requires kFp64.
  Precision precision = Precision::kFp64;
  /// CG only: which sparse family the job solves, and the relative-residual
  /// target that (with the family's spectrum) fixes the iteration count.
  sparse::SparseKind matrix = sparse::SparseKind::kStencil5;
  double tolerance = 1e-11;
  /// CG only: the campaign's preconditioner axis (none | jacobi).
  solvers::CgPrecond precond = solvers::CgPrecond::kNone;
};

struct Prediction {
  double duration_s = 0.0;

  // Energy split by RAPL domain, summed over all nodes of the placement;
  // index = socket position within a node (package 0 / package 1).
  double pkg_j[2] = {0.0, 0.0};
  double dram_j[2] = {0.0, 0.0};

  // Critical-path decomposition (diagnostics and the ablation bench).
  double compute_s = 0.0;
  double comm_s = 0.0;

  double total_pkg_j() const { return pkg_j[0] + pkg_j[1]; }
  double total_dram_j() const { return dram_j[0] + dram_j[1]; }
  double total_j() const { return total_pkg_j() + total_dram_j(); }
  double avg_power_w() const {
    return duration_s > 0.0 ? total_j() / duration_s : 0.0;
  }
  double dram_power_w() const {
    return duration_s > 0.0 ? total_dram_j() / duration_s : 0.0;
  }
};

}  // namespace plin::perfsim
