// Analytic replay of the distributed CG solver (see solvers/cg/cg.cpp for
// the executed twin, default kFused path). Each iteration prices the
// overlapped halo — max(halo exchange, interior SpMV) followed by the
// boundary-row SpMV — then the fused small-vector allreduce that carries
// the iteration's dot products in one latency round, and the axpy updates.
// The Jacobi preconditioner adds one per-row vector op and widens the
// fused round from 3 to 5 scalars; the iteration count comes from the
// classic CG error bound at the family's Gershgorin condition estimate
// (unchanged by Jacobi — the generated families leave kappa where it was).
#include <algorithm>
#include <cmath>

#include "hwmodel/sparse.hpp"
#include "perfsim/activity.hpp"
#include "perfsim/simulator.hpp"
#include "support/error.hpp"

namespace plin::perfsim {

int cg_model_iters(sparse::SparseKind kind, double tolerance) {
  PLIN_CHECK_MSG(tolerance > 0.0 && tolerance < 1.0,
                 "perfsim: cg tolerance out of range");
  const double kappa = 2.0 * sparse::pattern_offdiag_sum(kind) + 1.0;
  const double rho =
      (std::sqrt(kappa) - 1.0) / (std::sqrt(kappa) + 1.0);
  const double iters =
      std::ceil(std::log(2.0 / tolerance) / -std::log(rho));
  return std::max(1, static_cast<int>(iters));
}

Prediction predict_cg(const hw::MachineSpec& machine,
                      const hw::Placement& placement, std::size_t n,
                      sparse::SparseKind kind, double tolerance,
                      solvers::CgPrecond precond) {
  PLIN_CHECK_MSG(n > 0, "perfsim: empty system");
  const hw::ClusterLayout layout(machine, placement);
  const hw::NetworkModel network(machine.network);
  const int ranks = placement.ranks;
  const double ovh = network.per_message_overhead();
  const int sharers =
      std::max(placement.ranks_socket0, placement.ranks_socket1);
  const hw::LinkClass worst =
      placement.nodes > 1
          ? hw::LinkClass::kCrossNode
          : (placement.sockets_used == 2 ? hw::LinkClass::kCrossSocket
                                         : hw::LinkClass::kSameSocket);
  std::vector<int> world_members;
  for (int r = 0; r < ranks; ++r) world_members.push_back(r);

  const bool jacobi = precond == solvers::CgPrecond::kJacobi;
  const int iterations = cg_model_iters(kind, tolerance);
  const double nnz = static_cast<double>(sparse::pattern_nnz(kind, n));
  const double nnz_rank = nnz / ranks;
  const std::size_t chunk =
      (n + static_cast<std::size_t>(ranks) - 1) / ranks;
  const double rows = static_cast<double>(chunk);
  const double chunk_bytes = 8.0 * rows;
  const double x_bytes = chunk_bytes * static_cast<double>(ranks);

  Prediction prediction;
  const double bw_share =
      machine.node.socket.dram_bandwidth_bs / std::max(1, sharers);

  // Allocation: each rank's CSR slice (8-byte values + 4-byte indices +
  // row offsets — the same streams CsrMatrix::size_bytes walks).
  const double slice_bytes = 12.0 * nnz_rank + 8.0 * (rows + 1.0);
  double T = slice_bytes / bw_share;

  // Per iteration, on the critical path:
  //   halo — each boundary rank trades ghost values with both neighbors;
  //     the ghost count per side is the pattern's reach clipped to the
  //     block (a rank cannot need more ghosts than a neighbor owns). With
  //     the overlapped path the exchange hides behind the interior SpMV;
  const double ghost_vals = static_cast<double>(
      std::min(sparse::pattern_reach(kind, n), chunk));
  const double t_halo =
      ranks > 1
          ? 2.0 * (ovh + network.transfer_time(worst, 8.0 * ghost_vals))
          : 0.0;
  //   SpMV — the sparse bytes/flop is a property of the matrix, not a
  //     constant, so the profile is assembled per call. The interior /
  //     boundary split mirrors the solver's: at most 2 * reach rows touch
  //     a ghost column, and the boundary nnz scales with the row share;
  const solvers::KernelProfile spmv_profile{
      solvers::kSpmv.efficiency,
      hw::csr_spmv_bytes_per_flop(nnz_rank, rows)};
  const double spmv_flops = 2.0 * nnz_rank;
  const double rows_boundary =
      ranks > 1 ? hw::csr_boundary_rows(
                      static_cast<double>(sparse::pattern_reach(kind, n)),
                      rows)
                : 0.0;
  const double boundary_share = rows > 0.0 ? rows_boundary / rows : 0.0;
  const double t_spmv_boundary =
      kernel_time(machine, sharers, spmv_profile,
                  spmv_flops * boundary_share)
          .seconds;
  const double t_spmv_interior =
      kernel_time(machine, sharers, spmv_profile,
                  spmv_flops * (1.0 - boundary_share))
          .seconds;
  const double t_spmv_phase =
      std::max(t_halo, t_spmv_interior) + t_spmv_boundary;
  //   the fused dot round — `terms` local partials (p.q, r.q, q.q, plus
  //     z.q and q.M^-1 q under Jacobi) combined in ONE small-vector
  //     allreduce instead of per-scalar rounds. The single accumulation
  //     pass streams each distinct vector once (p, r, q [, z, d]), so its
  //     DRAM term is per vector — 4 bytes/flop instead of kDot's 8;
  const double terms = jacobi ? 5.0 : 3.0;
  const double dot_flops = 2.0 * rows;
  const double t_dot =
      kernel_time(machine, sharers, solvers::kDot, dot_flops).seconds;
  const solvers::KernelProfile fused_pass{solvers::kDot.efficiency, 4.0};
  const double t_fused_pass =
      kernel_time(machine, sharers, fused_pass, terms * dot_flops).seconds;
  const double t_round_scalar =
      2.0 * tree_time(layout, network, world_members, 8.0);
  const double t_round_fused =
      2.0 * tree_time(layout, network, world_members, 8.0 * terms);
  //   axpy updates — x/r (4 flops per row) and the p refresh (2 per row),
  //     plus the Jacobi z = M^-1 r sweep (1 mul per row, 24 bytes).
  const double axpy_flops = 6.0 * rows;
  const double t_axpy =
      kernel_time(machine, sharers, solvers::kAxpy, axpy_flops).seconds;
  const double t_z =
      jacobi ? kernel_time(machine, sharers, solvers::kAxpy, rows).seconds
             : 0.0;

  const double t_iter = t_spmv_phase + t_fused_pass + t_round_fused +
                        t_axpy + t_z;
  // Setup rounds (||b||, the nnz reduction, and r.z under Jacobi) ride the
  // scalar allreduce path.
  const double setup_rounds = jacobi ? 3.0 : 2.0;
  T += setup_rounds * (t_dot + t_round_scalar);
  T += static_cast<double>(iterations) * t_iter;

  // Final solution rebuild: padded allgather (gather fan-in + broadcast,
  // matching the executed tree collective) plus ingestion of the iterate.
  const double t_gather =
      ranks > 1 ? static_cast<double>(ranks - 1) * ovh +
                      network.transfer_time(worst, chunk_bytes) +
                      tree_time(layout, network, world_members, x_bytes) +
                      x_bytes / bw_share
                : 0.0;
  T += t_gather;

  prediction.duration_s = T;
  // Exposed comm: the halo time not hidden by the interior SpMV, plus the
  // fused round, plus setup rounds and the gather.
  prediction.comm_s =
      static_cast<double>(iterations) *
          (std::max(t_halo - t_spmv_interior, 0.0) + t_round_fused) +
      setup_rounds * t_round_scalar + t_gather;
  prediction.compute_s = T - prediction.comm_s;

  // Per-rank activity for energy.
  const double iters_d = static_cast<double>(iterations);
  std::vector<RankActivity> per_rank(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    RankActivity& a = per_rank[static_cast<std::size_t>(r)];
    charge_kernel(a, machine, sharers, spmv_profile, iters_d * spmv_flops);
    charge_kernel(a, machine, sharers, fused_pass,
                  terms * iters_d * dot_flops);
    charge_kernel(a, machine, sharers, solvers::kDot,
                  setup_rounds * dot_flops);
    charge_kernel(a, machine, sharers, solvers::kAxpy,
                  iters_d * (axpy_flops + (jacobi ? rows : 0.0)));
    a.membound_s += slice_bytes / bw_share + x_bytes / bw_share;
    a.dram_bytes += slice_bytes;
    // Halo traffic + the fused round's hops + the final gather, spread
    // evenly: per iteration 4 halo messages (2 out, 2 in) and ~2 tree hops
    // for the fused allreduce, then the gather's chunk + broadcast share.
    charge_messages(a, network, iters_d * (4.0 + 2.0) + 2.0,
                    iters_d * (2.0 * 8.0 * ghost_vals + 2.0 * 8.0 * terms) +
                        chunk_bytes + 2.0 * x_bytes / ranks);
  }
  fill_energy(prediction, machine, layout, per_rank, T);
  return prediction;
}

}  // namespace plin::perfsim
