// Analytic replay of the distributed CG solver (see solvers/cg/cg.cpp for
// the executed twin). Each iteration is bulk synchronous: halo exchange of
// the search-direction ghosts, local CSR SpMV priced with the sparse
// DRAM-traffic term, two scalar allreduce dot products, and the axpy
// updates; the iteration count comes from the classic CG error bound at
// the family's Gershgorin condition estimate.
#include <algorithm>
#include <cmath>

#include "hwmodel/sparse.hpp"
#include "perfsim/activity.hpp"
#include "perfsim/simulator.hpp"
#include "support/error.hpp"

namespace plin::perfsim {

int cg_model_iters(sparse::SparseKind kind, double tolerance) {
  PLIN_CHECK_MSG(tolerance > 0.0 && tolerance < 1.0,
                 "perfsim: cg tolerance out of range");
  const double kappa = 2.0 * sparse::pattern_offdiag_sum(kind) + 1.0;
  const double rho =
      (std::sqrt(kappa) - 1.0) / (std::sqrt(kappa) + 1.0);
  const double iters =
      std::ceil(std::log(2.0 / tolerance) / -std::log(rho));
  return std::max(1, static_cast<int>(iters));
}

Prediction predict_cg(const hw::MachineSpec& machine,
                      const hw::Placement& placement, std::size_t n,
                      sparse::SparseKind kind, double tolerance) {
  PLIN_CHECK_MSG(n > 0, "perfsim: empty system");
  const hw::ClusterLayout layout(machine, placement);
  const hw::NetworkModel network(machine.network);
  const int ranks = placement.ranks;
  const double ovh = network.per_message_overhead();
  const int sharers =
      std::max(placement.ranks_socket0, placement.ranks_socket1);
  const hw::LinkClass worst =
      placement.nodes > 1
          ? hw::LinkClass::kCrossNode
          : (placement.sockets_used == 2 ? hw::LinkClass::kCrossSocket
                                         : hw::LinkClass::kSameSocket);
  std::vector<int> world_members;
  for (int r = 0; r < ranks; ++r) world_members.push_back(r);

  const int iterations = cg_model_iters(kind, tolerance);
  const double nnz = static_cast<double>(sparse::pattern_nnz(kind, n));
  const double nnz_rank = nnz / ranks;
  const std::size_t chunk =
      (n + static_cast<std::size_t>(ranks) - 1) / ranks;
  const double rows = static_cast<double>(chunk);
  const double chunk_bytes = 8.0 * rows;
  const double x_bytes = chunk_bytes * static_cast<double>(ranks);

  Prediction prediction;
  const double bw_share =
      machine.node.socket.dram_bandwidth_bs / std::max(1, sharers);

  // Allocation: each rank's CSR slice (8-byte values + 4-byte indices +
  // row offsets — the same streams CsrMatrix::size_bytes walks).
  const double slice_bytes = 12.0 * nnz_rank + 8.0 * (rows + 1.0);
  double T = slice_bytes / bw_share;

  // Per iteration, on the critical path:
  //   halo — each boundary rank trades ghost values with both neighbors;
  //     the ghost count per side is the pattern's reach clipped to the
  //     block (a rank cannot need more ghosts than a neighbor owns);
  const double ghost_vals = static_cast<double>(
      std::min(sparse::pattern_reach(kind, n), chunk));
  const double t_halo =
      ranks > 1
          ? 2.0 * (ovh + network.transfer_time(worst, 8.0 * ghost_vals))
          : 0.0;
  //   SpMV — the sparse bytes/flop is a property of the matrix, not a
  //     constant, so the profile is assembled per call;
  const solvers::KernelProfile spmv_profile{
      solvers::kSpmv.efficiency,
      hw::csr_spmv_bytes_per_flop(nnz_rank, rows)};
  const double spmv_flops = 2.0 * nnz_rank;
  const double t_spmv =
      kernel_time(machine, sharers, spmv_profile, spmv_flops).seconds;
  //   two dot products — local partial + scalar allreduce each;
  const double dot_flops = 2.0 * rows;
  const double t_dot =
      kernel_time(machine, sharers, solvers::kDot, dot_flops).seconds;
  const double t_allreduce =
      2.0 * tree_time(layout, network, world_members, 8.0);
  //   axpy updates — x/r (4 flops per row) and the p refresh (2 per row).
  const double axpy_flops = 6.0 * rows;
  const double t_axpy =
      kernel_time(machine, sharers, solvers::kAxpy, axpy_flops).seconds;

  const double t_iter =
      t_halo + t_spmv + 2.0 * (t_dot + t_allreduce) + t_axpy;
  // Setup dots (||b|| and the nnz reduction) ride the same primitives.
  T += 2.0 * (t_dot + t_allreduce);
  T += static_cast<double>(iterations) * t_iter;

  // Final solution rebuild: padded allgather (gather fan-in + broadcast,
  // matching the executed tree collective) plus ingestion of the iterate.
  const double t_gather =
      ranks > 1 ? static_cast<double>(ranks - 1) * ovh +
                      network.transfer_time(worst, chunk_bytes) +
                      tree_time(layout, network, world_members, x_bytes) +
                      x_bytes / bw_share
                : 0.0;
  T += t_gather;

  prediction.duration_s = T;
  prediction.comm_s =
      static_cast<double>(iterations) * (t_halo + 2.0 * t_allreduce) +
      2.0 * t_allreduce + t_gather;
  prediction.compute_s = T - prediction.comm_s;

  // Per-rank activity for energy.
  const double iters_d = static_cast<double>(iterations);
  std::vector<RankActivity> per_rank(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    RankActivity& a = per_rank[static_cast<std::size_t>(r)];
    charge_kernel(a, machine, sharers, spmv_profile, iters_d * spmv_flops);
    charge_kernel(a, machine, sharers, solvers::kDot,
                  (2.0 * iters_d + 2.0) * dot_flops);
    charge_kernel(a, machine, sharers, solvers::kAxpy, iters_d * axpy_flops);
    a.membound_s += slice_bytes / bw_share + x_bytes / bw_share;
    a.dram_bytes += slice_bytes;
    // Halo traffic + allreduce hops + the final gather, spread evenly.
    charge_messages(a, network, iters_d * (4.0 + 4.0) + 2.0,
                    iters_d * (2.0 * 8.0 * ghost_vals + 4.0 * 8.0) +
                        chunk_bytes + 2.0 * x_bytes / ranks);
  }
  fill_energy(prediction, machine, layout, per_rank, T);
  return prediction;
}

}  // namespace plin::perfsim
