// Analytic replay of the distributed Jacobi iteration (see
// solvers/jacobi/jacobi.cpp for the executed twin). Each sweep is bulk
// synchronous: local matvec, allgather of the iterate (gather to the root
// plus a broadcast, matching the executed collective), and a scalar
// allreduce for the convergence test.
#include <algorithm>

#include "perfsim/activity.hpp"
#include "perfsim/simulator.hpp"
#include "support/error.hpp"

namespace plin::perfsim {

Prediction predict_jacobi(const hw::MachineSpec& machine,
                          const hw::Placement& placement, std::size_t n,
                          int iterations) {
  PLIN_CHECK_MSG(n > 0, "perfsim: empty system");
  PLIN_CHECK_MSG(iterations > 0, "perfsim: need at least one iteration");
  const hw::ClusterLayout layout(machine, placement);
  const hw::NetworkModel network(machine.network);
  const int ranks = placement.ranks;
  const double ovh = network.per_message_overhead();
  const int sharers =
      std::max(placement.ranks_socket0, placement.ranks_socket1);
  const hw::LinkClass worst =
      placement.nodes > 1
          ? hw::LinkClass::kCrossNode
          : (placement.sockets_used == 2 ? hw::LinkClass::kCrossSocket
                                         : hw::LinkClass::kSameSocket);
  std::vector<int> world_members;
  for (int r = 0; r < ranks; ++r) world_members.push_back(r);

  const std::size_t chunk =
      (n + static_cast<std::size_t>(ranks) - 1) / ranks;
  const double chunk_bytes = 8.0 * static_cast<double>(chunk);
  const double x_bytes =
      chunk_bytes * static_cast<double>(ranks);  // padded iterate

  Prediction prediction;
  const double bw_share =
      machine.node.socket.dram_bandwidth_bs / std::max(1, sharers);

  // Allocation: each rank's row slice.
  const double slice_bytes = 8.0 * static_cast<double>(n) *
                             static_cast<double>(chunk);
  double T = slice_bytes / bw_share;

  // Per sweep: the heaviest rank's matvec, the root's gather fan-in, the
  // iterate broadcast, and the convergence allreduce.
  const double sweep_flops = 2.0 * static_cast<double>(n) *
                             static_cast<double>(chunk);
  const double t_sweep =
      kernel_time(machine, sharers, solvers::kSubstitution, sweep_flops)
          .seconds;
  const double t_gather =
      static_cast<double>(ranks - 1) * ovh +
      network.transfer_time(worst, chunk_bytes);  // last arrival
  const double t_bcast = tree_time(layout, network, world_members, x_bytes) +
                         x_bytes / bw_share;  // ingestion of the iterate
  const double t_allreduce =
      2.0 * tree_time(layout, network, world_members, 8.0);
  const double t_iter = t_sweep + t_gather + t_bcast + t_allreduce;
  T += static_cast<double>(iterations) * t_iter;

  prediction.duration_s = T;
  prediction.comm_s =
      static_cast<double>(iterations) * (t_gather + t_bcast + t_allreduce);
  prediction.compute_s = T - prediction.comm_s;

  // Per-rank activity for energy.
  std::vector<RankActivity> per_rank(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    RankActivity& a = per_rank[static_cast<std::size_t>(r)];
    charge_kernel(a, machine, sharers, solvers::kSubstitution,
                  static_cast<double>(iterations) * sweep_flops);
    a.membound_s += slice_bytes / bw_share +
                    static_cast<double>(iterations) * x_bytes / bw_share;
    a.dram_bytes += slice_bytes;
    // Gather + broadcast message handling, spread evenly.
    charge_messages(a, network,
                    static_cast<double>(iterations) * 4.0,
                    static_cast<double>(iterations) *
                        (chunk_bytes + 2.0 * x_bytes / ranks));
  }
  fill_energy(prediction, machine, layout, per_rank, T);
  return prediction;
}

}  // namespace plin::perfsim
