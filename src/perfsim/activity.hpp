// Per-rank activity accounting for the analytic replay, mirroring what the
// executing tier's EnergyLedger integrates: time spent computing /
// memory-bound / driving messages, and DRAM traffic. fill_energy() then
// applies the same PowerModel arithmetic as trace::EnergyLedger (including
// the idle-socket leakage artifact), so the two tiers price identical
// activity identically.
#pragma once

#include <vector>

#include "hwmodel/layout.hpp"
#include "hwmodel/network.hpp"
#include "perfsim/prediction.hpp"
#include "solvers/efficiency.hpp"

namespace plin::perfsim {

struct RankActivity {
  double compute_s = 0.0;
  double membound_s = 0.0;
  double commactive_s = 0.0;
  double dram_bytes = 0.0;
};

/// Time a kernel of `flops` takes on one core (same max(flop, memory)
/// rule as xmpi::Comm::compute) and its classification. With fp32 = true
/// the kernel is priced at single precision: the fp32 peak (twice the
/// lanes) and half the DRAM bytes per flop (elements are half the size) —
/// the same pricing xmpi::Comm::compute applies for fp32 work.
struct KernelTime {
  double seconds = 0.0;
  bool memory_bound = false;
};
KernelTime kernel_time(const hw::MachineSpec& machine, int socket_sharers,
                       const solvers::KernelProfile& profile, double flops,
                       bool fp32 = false);

/// Adds a kernel execution to a rank's activity.
void charge_kernel(RankActivity& activity, const hw::MachineSpec& machine,
                   int socket_sharers, const solvers::KernelProfile& profile,
                   double flops, bool fp32 = false);

/// Adds message-handling CPU time and the associated memory traffic.
void charge_messages(RankActivity& activity, const hw::NetworkModel& network,
                     double count, double bytes);

/// Conservative link classification for a communicator containing `ranks`:
/// the widest span any tree edge may cross.
hw::LinkClass group_link(const hw::ClusterLayout& layout,
                         const std::vector<int>& ranks);

/// Average one-hop transfer time from rank r to rank (r+1) mod N carrying
/// `bytes` — the IMe pivot-column chain hop.
double successor_hop_time(const hw::ClusterLayout& layout,
                          const hw::NetworkModel& network, double bytes);

/// Critical-path time of one binomial-tree collective over `members`
/// (world ranks, tree rooted at members[0]): sum over stages of the
/// slowest edge in that stage, plus per-message overhead per stage. This
/// matches the tree shape xmpi's bcast/reduce use, so mixed link classes
/// (intra-socket stages vs the one cross-node stage) are priced exactly.
double tree_time(const hw::ClusterLayout& layout,
                 const hw::NetworkModel& network,
                 const std::vector<int>& members, double bytes);

/// Fills prediction.pkg_j / dram_j from per-rank activity over duration T,
/// replicating trace::EnergyLedger's integration per (node, socket).
void fill_energy(Prediction& prediction, const hw::MachineSpec& machine,
                 const hw::ClusterLayout& layout,
                 const std::vector<RankActivity>& per_rank, double duration_s);

}  // namespace plin::perfsim
