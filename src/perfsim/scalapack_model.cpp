// Analytic replay of the ScaLAPACK-style LU (see solvers/gepp/pdgesv.cpp
// for the executed twin). LU is bulk-synchronous per panel — the pivot
// allreduce serializes the panel process column per matrix column — so the
// critical path is the sum over panels of communication plus the slowest
// rank's compute in each stage.
//
// The same walk prices the mixed-precision GEPP variant
// (solvers/gepp/mixed.cpp): factorization and triangular solves at fp32
// payloads (4-byte elements, twice the per-core peak), then
// refinement_iters(n) fp64 refinement sweeps, each a distributed residual
// GEMV plus an fp32 correction solve plus the norm/solution collectives.
#include <algorithm>
#include <cmath>

#include "linalg/blockcyclic.hpp"
#include "perfsim/activity.hpp"
#include "perfsim/simulator.hpp"
#include "support/error.hpp"

namespace plin::perfsim {
namespace {

/// Local rows owned by process row p with global index >= g.
std::size_t rows_geq(const linalg::BlockCyclicDesc& desc, int p,
                     std::size_t g) {
  return linalg::numroc(desc.m, desc.mb, p, desc.grid.prows) -
         linalg::numroc(std::min(g, desc.m), desc.mb, p, desc.grid.prows);
}
std::size_t cols_geq(const linalg::BlockCyclicDesc& desc, int q,
                     std::size_t g) {
  return linalg::numroc(desc.n, desc.nb, q, desc.grid.pcols) -
         linalg::numroc(std::min(g, desc.n), desc.nb, q, desc.grid.pcols);
}

/// Shared LU walk. `mixed` prices factorization + solves at fp32 (elem =
/// 4 bytes, fp32 kernel pricing) and appends the fp64 refinement sweeps;
/// otherwise every constant reduces to the original fp64 literals, keeping
/// the fp64 prediction bit-identical to the pre-mixed model.
Prediction scalapack_model(const hw::MachineSpec& machine,
                           const hw::Placement& placement, std::size_t n,
                           std::size_t nb, bool mixed) {
  PLIN_CHECK_MSG(n > 0, "perfsim: empty system");
  PLIN_CHECK_MSG(nb > 0, "perfsim: block size must be positive");
  const hw::ClusterLayout layout(machine, placement);
  const hw::NetworkModel network(machine.network);
  const int ranks = placement.ranks;
  const double ovh = network.per_message_overhead();
  const int sharers =
      std::max(placement.ranks_socket0, placement.ranks_socket1);

  const bool f32 = mixed;          // factorization/solve element precision
  const double elem = f32 ? 4.0 : 8.0;  // bytes per matrix element

  const linalg::ProcessGrid grid = linalg::ProcessGrid::squarest(ranks);
  const linalg::BlockCyclicDesc desc{n, n, nb, nb, grid};

  // Communicator link classes: a process row is pcols consecutive ranks, a
  // process column is prows ranks strided by pcols.
  std::vector<int> row_members;
  for (int q = 0; q < grid.pcols; ++q) row_members.push_back(q);
  std::vector<int> col_members;
  for (int p = 0; p < grid.prows; ++p) col_members.push_back(p * grid.pcols);
  std::vector<int> world_members;
  for (int r = 0; r < ranks; ++r) world_members.push_back(r);
  const hw::LinkClass link_col = group_link(layout, col_members);
  const auto col_tree = [&](double bytes) {
    return tree_time(layout, network, col_members, bytes);
  };
  const auto row_tree = [&](double bytes) {
    return tree_time(layout, network, row_members, bytes);
  };
  const double offrow_frac =
      grid.prows > 1 ? 1.0 - 1.0 / grid.prows : 0.0;

  std::vector<RankActivity> per_rank(static_cast<std::size_t>(ranks));
  Prediction prediction;
  double T = 0.0;
  double comm_total = 0.0;
  double msg_events = 0.0;
  double msg_bytes = 0.0;

  const auto add_comm = [&](double seconds, double count, double bytes) {
    T += seconds;
    comm_total += seconds;
    msg_events += 2.0 * count;  // send + receive side
    msg_bytes += 2.0 * bytes;
  };
  const auto add_compute = [&](const solvers::KernelProfile& profile,
                               double max_flops, bool fp32 = false) {
    T += kernel_time(machine, sharers, profile, max_flops, fp32).seconds;
  };

  // ---- allocation phase ------------------------------------------------------
  // Mixed keeps the fp64 operand and first-touches the fp32 working copy on
  // top of it (solvers/gepp/mixed.cpp), so 12 bytes per local element.
  const double alloc_bytes = mixed ? 12.0 : 8.0;
  std::size_t max_local = 0;
  for (int p = 0; p < grid.prows; ++p) {
    for (int q = 0; q < grid.pcols; ++q) {
      max_local = std::max(max_local, desc.local_rows(p) * desc.local_cols(q));
    }
  }
  const double bw_share =
      machine.node.socket.dram_bandwidth_bs / std::max(1, sharers);
  T += alloc_bytes * static_cast<double>(max_local) / bw_share;
  for (int r = 0; r < ranks; ++r) {
    RankActivity& a = per_rank[static_cast<std::size_t>(r)];
    const std::size_t mine = desc.local_rows(grid.row_of(r)) *
                             desc.local_cols(grid.col_of(r));
    a.membound_s += alloc_bytes * static_cast<double>(mine) / bw_share;
    a.dram_bytes += alloc_bytes * static_cast<double>(mine);
  }

  // ---- factorization -----------------------------------------------------------
  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t w = std::min(nb, n - k0);
    const int prow_k = desc.owner_prow(k0);

    // Panel: per-column pivot allreduce (reduce + broadcast; successive
    // columns overlap the down-phase with the next column's up-phase, so
    // the effective serial cost is about one tree traversal) + expected
    // swap + pivot-row bcast. The maxloc payload is one element plus an
    // 8-byte index.
    const double t_maxloc = col_tree(elem + 8.0);
    const double t_swap =
        offrow_frac *
        (network.transfer_time(link_col, elem * static_cast<double>(w)) +
         2.0 * ovh);
    const double t_prow = col_tree(elem / 2.0 * static_cast<double>(w));
    add_comm(static_cast<double>(w) * (t_maxloc + t_swap + t_prow),
             static_cast<double>(w) *
                 (2.0 * (grid.prows - 1) + 2.0 * offrow_frac +
                  (grid.prows - 1)),
             static_cast<double>(w) *
                 ((grid.prows - 1) * (elem + 8.0) +
                  offrow_frac * 2.0 * elem * w +
                  (grid.prows - 1) * elem / 2.0 * w));

    // Panel compute: slowest process row.
    double panel_max = 0.0;
    for (int p = 0; p < grid.prows; ++p) {
      double flops = 0.0;
      for (std::size_t j = k0; j < k0 + w; ++j) {
        const std::size_t seg = k0 + w - j;
        flops += static_cast<double>(rows_geq(desc, p, j + 1)) *
                     (2.0 * static_cast<double>(seg) - 1.0) +
                 static_cast<double>(rows_geq(desc, p, j));
      }
      panel_max = std::max(panel_max, flops);
    }
    add_compute(solvers::kPanel, panel_max, f32);
    // Attribute panel flops to the owning process column's ranks.
    const int panel_q = desc.owner_pcol(k0);
    for (int p = 0; p < grid.prows; ++p) {
      double flops = 0.0;
      for (std::size_t j = k0; j < k0 + w; ++j) {
        const std::size_t seg = k0 + w - j;
        flops += static_cast<double>(rows_geq(desc, p, j + 1)) *
                     (2.0 * static_cast<double>(seg) - 1.0) +
                 static_cast<double>(rows_geq(desc, p, j));
      }
      charge_kernel(per_rank[static_cast<std::size_t>(
                        grid.rank_of(p, panel_q))],
                    machine, sharers, solvers::kPanel, flops, f32);
    }

    // Pivot indices along the row (8-byte indices, precision-independent) +
    // trailing swaps in every process column.
    add_comm(row_tree(8.0 * static_cast<double>(w)),
             static_cast<double>(grid.pcols - 1),
             static_cast<double>(grid.pcols - 1) * 8.0 *
                 static_cast<double>(w));
    std::size_t max_lcols = 0;
    for (int q = 0; q < grid.pcols; ++q) {
      max_lcols = std::max(max_lcols, desc.local_cols(q));
    }
    add_comm(static_cast<double>(w) * offrow_frac *
                 (network.transfer_time(
                      link_col, elem * static_cast<double>(max_lcols)) +
                  2.0 * ovh),
             static_cast<double>(w) * offrow_frac * 2.0 *
                 static_cast<double>(grid.pcols),
             static_cast<double>(w) * offrow_frac * 2.0 *
                 static_cast<double>(grid.pcols) * elem *
                 static_cast<double>(max_lcols) / 2.0);

    // L panel slab along process rows.
    std::size_t slab_max = 0;
    for (int p = 0; p < grid.prows; ++p) {
      slab_max = std::max(slab_max, rows_geq(desc, p, k0));
    }
    const double slab_bytes =
        elem * static_cast<double>(slab_max) * static_cast<double>(w);
    // Payload ingestion: receivers read the slab out of shared memory once
    // (see the matching note in ime_model.cpp).
    add_comm(row_tree(slab_bytes) + slab_bytes / bw_share,
             static_cast<double>(grid.pcols - 1) * grid.prows,
             static_cast<double>(grid.pcols - 1) * grid.prows * slab_bytes);

    if (k0 + w >= n) break;

    // U12 triangular solve in the pivot process row, then down columns.
    std::size_t trail_max = 0;
    for (int q = 0; q < grid.pcols; ++q) {
      trail_max = std::max(trail_max, cols_geq(desc, q, k0 + w));
    }
    add_compute(solvers::kTrsm,
                static_cast<double>(w) * static_cast<double>(w) *
                    static_cast<double>(trail_max),
                f32);
    for (int q = 0; q < grid.pcols; ++q) {
      charge_kernel(
          per_rank[static_cast<std::size_t>(grid.rank_of(prow_k, q))],
          machine, sharers, solvers::kTrsm,
          static_cast<double>(w) * static_cast<double>(w) *
              static_cast<double>(cols_geq(desc, q, k0 + w)),
          f32);
    }
    const double u12_bytes =
        elem * static_cast<double>(w) * static_cast<double>(trail_max);
    add_comm(col_tree(u12_bytes) + u12_bytes / bw_share,  // + ingestion
             static_cast<double>(grid.prows - 1) * grid.pcols,
             static_cast<double>(grid.prows - 1) * grid.pcols * u12_bytes);

    // Trailing GEMM: slowest rank.
    double gemm_max = 0.0;
    for (int p = 0; p < grid.prows; ++p) {
      for (int q = 0; q < grid.pcols; ++q) {
        const double flops = 2.0 *
                             static_cast<double>(rows_geq(desc, p, k0 + w)) *
                             static_cast<double>(w) *
                             static_cast<double>(cols_geq(desc, q, k0 + w));
        gemm_max = std::max(gemm_max, flops);
        charge_kernel(per_rank[static_cast<std::size_t>(grid.rank_of(p, q))],
                      machine, sharers, solvers::kGemm, flops, f32);
      }
    }
    add_compute(solvers::kGemm, gemm_max, f32);
  }

  // ---- solve phase (forward + backward substitution) -------------------------
  // Shared between the direct solve and each refinement iteration's
  // correction solve (both sweep the factors at the working precision).
  const std::size_t nblocks = (n + nb - 1) / nb;
  const auto solve_sweeps = [&]() {
    for (std::size_t bk = 0; bk < 2 * nblocks; ++bk) {
      const std::size_t w = std::min(nb, n - (bk % nblocks) * nb);
      // gemv on the pivot process row (about half the local columns involved
      // on average over the sweep).
      std::size_t max_lcols = 0;
      for (int q = 0; q < grid.pcols; ++q) {
        max_lcols = std::max(max_lcols, desc.local_cols(q));
      }
      add_compute(solvers::kSubstitution,
                  2.0 * static_cast<double>(w) *
                      static_cast<double>(max_lcols) / 2.0,
                  f32);
      add_comm(row_tree(elem * static_cast<double>(w)),
               static_cast<double>(grid.pcols - 1),
               static_cast<double>(grid.pcols - 1) * elem *
                   static_cast<double>(w));
      add_compute(solvers::kSubstitution,
                  static_cast<double>(w) * static_cast<double>(w), f32);
      add_comm(tree_time(layout, network, world_members,
                         elem * static_cast<double>(w)),
               static_cast<double>(ranks - 1),
               static_cast<double>(ranks - 1) * elem *
                   static_cast<double>(w));
    }
    // Attribute substitution flops evenly across the pivot rows' ranks.
    for (int r = 0; r < ranks; ++r) {
      charge_kernel(per_rank[static_cast<std::size_t>(r)], machine, sharers,
                    solvers::kSubstitution,
                    2.0 * static_cast<double>(n) * static_cast<double>(n) /
                        static_cast<double>(ranks),
                    f32);
    }
  };
  solve_sweeps();

  // ---- refinement sweeps (mixed only) ----------------------------------------
  if (mixed) {
    const int iters = refinement_iters(n);
    const double nd = static_cast<double>(n);
    for (int it = 0; it < iters; ++it) {
      // fp64 residual r = b - A x: distributed GEMV over the block-cyclic
      // operand; critical path is the heaviest rank's local tile.
      double gemv_max = 0.0;
      for (int p = 0; p < grid.prows; ++p) {
        for (int q = 0; q < grid.pcols; ++q) {
          const double flops = 2.0 *
                               static_cast<double>(desc.local_rows(p)) *
                               static_cast<double>(desc.local_cols(q));
          gemv_max = std::max(gemv_max, flops);
          charge_kernel(
              per_rank[static_cast<std::size_t>(grid.rank_of(p, q))], machine,
              sharers, solvers::kGemv, flops);
        }
      }
      add_compute(solvers::kGemv, gemv_max);
      // Residual-norm allreduce (reduce + bcast of one fp64 scalar).
      add_comm(2.0 * tree_time(layout, network, world_members, 8.0),
               2.0 * static_cast<double>(ranks - 1),
               2.0 * static_cast<double>(ranks - 1) * 8.0);
      // fp32 correction solve reusing the factors: same sweeps as the
      // direct solve.
      solve_sweeps();
      // fp64 solution refresh: bcast of the corrected x.
      add_comm(tree_time(layout, network, world_members, 8.0 * nd),
               static_cast<double>(ranks - 1),
               static_cast<double>(ranks - 1) * 8.0 * nd);
      // axpy x += d (fp64, n flops spread over ranks — noise, but keep the
      // ledger honest).
      for (int r = 0; r < ranks; ++r) {
        charge_kernel(per_rank[static_cast<std::size_t>(r)], machine, sharers,
                      solvers::kSubstitution, 2.0 * nd / ranks);
      }
      add_compute(solvers::kSubstitution, 2.0 * nd / ranks);
    }
  }

  // Message handling energy, spread evenly.
  for (int r = 0; r < ranks; ++r) {
    charge_messages(per_rank[static_cast<std::size_t>(r)], network,
                    msg_events / ranks, msg_bytes / ranks);
  }

  prediction.duration_s = T;
  prediction.comm_s = comm_total;
  prediction.compute_s = T - comm_total;
  fill_energy(prediction, machine, layout, per_rank, T);
  return prediction;
}

}  // namespace

Prediction predict_scalapack(const hw::MachineSpec& machine,
                             const hw::Placement& placement, std::size_t n,
                             std::size_t nb) {
  return scalapack_model(machine, placement, n, nb, /*mixed=*/false);
}

Prediction predict_scalapack_mixed(const hw::MachineSpec& machine,
                                   const hw::Placement& placement,
                                   std::size_t n, std::size_t nb) {
  return scalapack_model(machine, placement, n, nb, /*mixed=*/true);
}

int refinement_iters(std::size_t n) {
  PLIN_CHECK_MSG(n > 0, "perfsim: empty system");
  // Backward-error target n*eps64 with per-sweep contraction
  // rho = eps32 * sqrt(n) (the growth-adjusted single-precision residual
  // floor the executed mixed solver exhibits). k = ceil(log target /
  // log rho), clamped to the [2, 30] band the numeric tier enforces.
  const double nd = static_cast<double>(n);
  const double target = nd * 1.1e-16;
  const double rho = 6.0e-8 * std::sqrt(nd);
  if (rho >= 1.0) return 30;  // fp32 floor too coarse: cap at the max
  const double k = std::ceil(std::log(target) / std::log(rho));
  return std::clamp(static_cast<int>(k), 2, 30);
}

}  // namespace plin::perfsim
