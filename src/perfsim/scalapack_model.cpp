// Analytic replay of the ScaLAPACK-style LU (see solvers/gepp/pdgesv.cpp
// for the executed twin). LU is bulk-synchronous per panel — the pivot
// allreduce serializes the panel process column per matrix column — so the
// critical path is the sum over panels of communication plus the slowest
// rank's compute in each stage.
#include <algorithm>
#include <cmath>

#include "linalg/blockcyclic.hpp"
#include "perfsim/activity.hpp"
#include "perfsim/simulator.hpp"
#include "support/error.hpp"

namespace plin::perfsim {
namespace {

/// Local rows owned by process row p with global index >= g.
std::size_t rows_geq(const linalg::BlockCyclicDesc& desc, int p,
                     std::size_t g) {
  return linalg::numroc(desc.m, desc.mb, p, desc.grid.prows) -
         linalg::numroc(std::min(g, desc.m), desc.mb, p, desc.grid.prows);
}
std::size_t cols_geq(const linalg::BlockCyclicDesc& desc, int q,
                     std::size_t g) {
  return linalg::numroc(desc.n, desc.nb, q, desc.grid.pcols) -
         linalg::numroc(std::min(g, desc.n), desc.nb, q, desc.grid.pcols);
}

}  // namespace

Prediction predict_scalapack(const hw::MachineSpec& machine,
                             const hw::Placement& placement, std::size_t n,
                             std::size_t nb) {
  PLIN_CHECK_MSG(n > 0, "perfsim: empty system");
  PLIN_CHECK_MSG(nb > 0, "perfsim: block size must be positive");
  const hw::ClusterLayout layout(machine, placement);
  const hw::NetworkModel network(machine.network);
  const int ranks = placement.ranks;
  const double ovh = network.per_message_overhead();
  const int sharers =
      std::max(placement.ranks_socket0, placement.ranks_socket1);

  const linalg::ProcessGrid grid = linalg::ProcessGrid::squarest(ranks);
  const linalg::BlockCyclicDesc desc{n, n, nb, nb, grid};

  // Communicator link classes: a process row is pcols consecutive ranks, a
  // process column is prows ranks strided by pcols.
  std::vector<int> row_members;
  for (int q = 0; q < grid.pcols; ++q) row_members.push_back(q);
  std::vector<int> col_members;
  for (int p = 0; p < grid.prows; ++p) col_members.push_back(p * grid.pcols);
  std::vector<int> world_members;
  for (int r = 0; r < ranks; ++r) world_members.push_back(r);
  const hw::LinkClass link_col = group_link(layout, col_members);
  const auto col_tree = [&](double bytes) {
    return tree_time(layout, network, col_members, bytes);
  };
  const auto row_tree = [&](double bytes) {
    return tree_time(layout, network, row_members, bytes);
  };
  const double offrow_frac =
      grid.prows > 1 ? 1.0 - 1.0 / grid.prows : 0.0;

  std::vector<RankActivity> per_rank(static_cast<std::size_t>(ranks));
  Prediction prediction;
  double T = 0.0;
  double comm_total = 0.0;
  double msg_events = 0.0;
  double msg_bytes = 0.0;

  const auto add_comm = [&](double seconds, double count, double bytes) {
    T += seconds;
    comm_total += seconds;
    msg_events += 2.0 * count;  // send + receive side
    msg_bytes += 2.0 * bytes;
  };
  const auto add_compute = [&](const solvers::KernelProfile& profile,
                               double max_flops) {
    T += kernel_time(machine, sharers, profile, max_flops).seconds;
  };

  // ---- allocation phase ------------------------------------------------------
  std::size_t max_local = 0;
  for (int p = 0; p < grid.prows; ++p) {
    for (int q = 0; q < grid.pcols; ++q) {
      max_local = std::max(max_local, desc.local_rows(p) * desc.local_cols(q));
    }
  }
  const double bw_share =
      machine.node.socket.dram_bandwidth_bs / std::max(1, sharers);
  T += 8.0 * static_cast<double>(max_local) / bw_share;
  for (int r = 0; r < ranks; ++r) {
    RankActivity& a = per_rank[static_cast<std::size_t>(r)];
    const std::size_t mine = desc.local_rows(grid.row_of(r)) *
                             desc.local_cols(grid.col_of(r));
    a.membound_s += 8.0 * static_cast<double>(mine) / bw_share;
    a.dram_bytes += 8.0 * static_cast<double>(mine);
  }

  // ---- factorization -----------------------------------------------------------
  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t w = std::min(nb, n - k0);
    const int prow_k = desc.owner_prow(k0);

    // Panel: per-column pivot allreduce (reduce + broadcast; successive
    // columns overlap the down-phase with the next column's up-phase, so
    // the effective serial cost is about one tree traversal) + expected
    // swap + pivot-row bcast.
    const double t_maxloc = col_tree(16.0);
    const double t_swap =
        offrow_frac *
        (network.transfer_time(link_col, 8.0 * static_cast<double>(w)) +
         2.0 * ovh);
    const double t_prow = col_tree(4.0 * static_cast<double>(w));
    add_comm(static_cast<double>(w) * (t_maxloc + t_swap + t_prow),
             static_cast<double>(w) *
                 (2.0 * (grid.prows - 1) + 2.0 * offrow_frac +
                  (grid.prows - 1)),
             static_cast<double>(w) *
                 ((grid.prows - 1) * 16.0 + offrow_frac * 16.0 * w +
                  (grid.prows - 1) * 4.0 * w));

    // Panel compute: slowest process row.
    double panel_max = 0.0;
    for (int p = 0; p < grid.prows; ++p) {
      double flops = 0.0;
      for (std::size_t j = k0; j < k0 + w; ++j) {
        const std::size_t seg = k0 + w - j;
        flops += static_cast<double>(rows_geq(desc, p, j + 1)) *
                     (2.0 * static_cast<double>(seg) - 1.0) +
                 static_cast<double>(rows_geq(desc, p, j));
      }
      panel_max = std::max(panel_max, flops);
    }
    add_compute(solvers::kPanel, panel_max);
    // Attribute panel flops to the owning process column's ranks.
    const int panel_q = desc.owner_pcol(k0);
    for (int p = 0; p < grid.prows; ++p) {
      double flops = 0.0;
      for (std::size_t j = k0; j < k0 + w; ++j) {
        const std::size_t seg = k0 + w - j;
        flops += static_cast<double>(rows_geq(desc, p, j + 1)) *
                     (2.0 * static_cast<double>(seg) - 1.0) +
                 static_cast<double>(rows_geq(desc, p, j));
      }
      charge_kernel(per_rank[static_cast<std::size_t>(
                        grid.rank_of(p, panel_q))],
                    machine, sharers, solvers::kPanel, flops);
    }

    // Pivot indices along the row + trailing swaps in every process column.
    add_comm(row_tree(8.0 * static_cast<double>(w)),
             static_cast<double>(grid.pcols - 1),
             static_cast<double>(grid.pcols - 1) * 8.0 *
                 static_cast<double>(w));
    std::size_t max_lcols = 0;
    for (int q = 0; q < grid.pcols; ++q) {
      max_lcols = std::max(max_lcols, desc.local_cols(q));
    }
    add_comm(static_cast<double>(w) * offrow_frac *
                 (network.transfer_time(link_col,
                                        8.0 * static_cast<double>(max_lcols)) +
                  2.0 * ovh),
             static_cast<double>(w) * offrow_frac * 2.0 *
                 static_cast<double>(grid.pcols),
             static_cast<double>(w) * offrow_frac * 2.0 *
                 static_cast<double>(grid.pcols) * 8.0 *
                 static_cast<double>(max_lcols) / 2.0);

    // L panel slab along process rows.
    std::size_t slab_max = 0;
    for (int p = 0; p < grid.prows; ++p) {
      slab_max = std::max(slab_max, rows_geq(desc, p, k0));
    }
    const double slab_bytes =
        8.0 * static_cast<double>(slab_max) * static_cast<double>(w);
    // Payload ingestion: receivers read the slab out of shared memory once
    // (see the matching note in ime_model.cpp).
    add_comm(row_tree(slab_bytes) + slab_bytes / bw_share,
             static_cast<double>(grid.pcols - 1) * grid.prows,
             static_cast<double>(grid.pcols - 1) * grid.prows * slab_bytes);

    if (k0 + w >= n) break;

    // U12 triangular solve in the pivot process row, then down columns.
    std::size_t trail_max = 0;
    for (int q = 0; q < grid.pcols; ++q) {
      trail_max = std::max(trail_max, cols_geq(desc, q, k0 + w));
    }
    add_compute(solvers::kTrsm, static_cast<double>(w) *
                                    static_cast<double>(w) *
                                    static_cast<double>(trail_max));
    for (int q = 0; q < grid.pcols; ++q) {
      charge_kernel(
          per_rank[static_cast<std::size_t>(grid.rank_of(prow_k, q))],
          machine, sharers, solvers::kTrsm,
          static_cast<double>(w) * static_cast<double>(w) *
              static_cast<double>(cols_geq(desc, q, k0 + w)));
    }
    const double u12_bytes =
        8.0 * static_cast<double>(w) * static_cast<double>(trail_max);
    add_comm(col_tree(u12_bytes) + u12_bytes / bw_share,  // + ingestion
             static_cast<double>(grid.prows - 1) * grid.pcols,
             static_cast<double>(grid.prows - 1) * grid.pcols * u12_bytes);

    // Trailing GEMM: slowest rank.
    double gemm_max = 0.0;
    for (int p = 0; p < grid.prows; ++p) {
      for (int q = 0; q < grid.pcols; ++q) {
        const double flops = 2.0 *
                             static_cast<double>(rows_geq(desc, p, k0 + w)) *
                             static_cast<double>(w) *
                             static_cast<double>(cols_geq(desc, q, k0 + w));
        gemm_max = std::max(gemm_max, flops);
        charge_kernel(per_rank[static_cast<std::size_t>(grid.rank_of(p, q))],
                      machine, sharers, solvers::kGemm, flops);
      }
    }
    add_compute(solvers::kGemm, gemm_max);
  }

  // ---- solve phase (forward + backward substitution) -------------------------
  const std::size_t nblocks = (n + nb - 1) / nb;
  for (std::size_t bk = 0; bk < 2 * nblocks; ++bk) {
    const std::size_t w = std::min(nb, n - (bk % nblocks) * nb);
    // gemv on the pivot process row (about half the local columns involved
    // on average over the sweep).
    std::size_t max_lcols = 0;
    for (int q = 0; q < grid.pcols; ++q) {
      max_lcols = std::max(max_lcols, desc.local_cols(q));
    }
    add_compute(solvers::kSubstitution,
                2.0 * static_cast<double>(w) *
                    static_cast<double>(max_lcols) / 2.0);
    add_comm(row_tree(8.0 * static_cast<double>(w)),
             static_cast<double>(grid.pcols - 1),
             static_cast<double>(grid.pcols - 1) * 8.0 *
                 static_cast<double>(w));
    add_compute(solvers::kSubstitution,
                static_cast<double>(w) * static_cast<double>(w));
    add_comm(tree_time(layout, network, world_members,
                       8.0 * static_cast<double>(w)),
             static_cast<double>(ranks - 1),
             static_cast<double>(ranks - 1) * 8.0 * static_cast<double>(w));
  }
  // Attribute substitution flops evenly across the pivot rows' ranks.
  for (int r = 0; r < ranks; ++r) {
    charge_kernel(per_rank[static_cast<std::size_t>(r)], machine, sharers,
                  solvers::kSubstitution,
                  2.0 * static_cast<double>(n) * static_cast<double>(n) /
                      static_cast<double>(ranks));
  }

  // Message handling energy, spread evenly.
  for (int r = 0; r < ranks; ++r) {
    charge_messages(per_rank[static_cast<std::size_t>(r)], network,
                    msg_events / ranks, msg_bytes / ranks);
  }

  prediction.duration_s = T;
  prediction.comm_s = comm_total;
  prediction.compute_s = T - comm_total;
  fill_energy(prediction, machine, layout, per_rank, T);
  return prediction;
}

}  // namespace plin::perfsim
