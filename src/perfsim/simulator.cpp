#include "perfsim/simulator.hpp"

#include "support/error.hpp"

namespace plin::perfsim {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kIme: return "IMe";
    case Algorithm::kScalapack: return "ScaLAPACK";
    case Algorithm::kJacobi: return "Jacobi";
    case Algorithm::kCg: return "CG";
  }
  return "?";
}

const char* to_string(Precision precision) {
  return precision == Precision::kMixed ? "mixed" : "fp64";
}

Prediction Simulator::predict(const Workload& workload,
                              const hw::Placement& placement) const {
  if (workload.precision != Precision::kFp64) {
    PLIN_CHECK_MSG(workload.algorithm == Algorithm::kScalapack,
                   "perfsim: mixed precision is a GEPP (scalapack) variant; "
                   "IMe/Jacobi have no fp32 path");
    return predict_scalapack_mixed(machine_, placement, workload.n,
                                   workload.nb);
  }
  switch (workload.algorithm) {
    case Algorithm::kIme:
      return predict_ime(machine_, placement, workload.n);
    case Algorithm::kScalapack:
      return predict_scalapack(machine_, placement, workload.n, workload.nb);
    case Algorithm::kJacobi:
      return predict_jacobi(machine_, placement, workload.n,
                            workload.iterations);
    case Algorithm::kCg:
      return predict_cg(machine_, placement, workload.n, workload.matrix,
                        workload.tolerance, workload.precond);
  }
  throw InvalidArgument("unknown algorithm");
}

}  // namespace plin::perfsim
