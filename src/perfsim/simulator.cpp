#include "perfsim/simulator.hpp"

#include "support/error.hpp"

namespace plin::perfsim {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kIme: return "IMe";
    case Algorithm::kScalapack: return "ScaLAPACK";
    case Algorithm::kJacobi: return "Jacobi";
  }
  return "?";
}

const char* to_string(Precision precision) {
  return precision == Precision::kMixed ? "mixed" : "fp64";
}

Prediction Simulator::predict(const Workload& workload,
                              const hw::Placement& placement) const {
  switch (workload.algorithm) {
    case Algorithm::kIme:
      return predict_ime(machine_, placement, workload.n);
    case Algorithm::kScalapack:
      return predict_scalapack(machine_, placement, workload.n, workload.nb);
    case Algorithm::kJacobi:
      return predict_jacobi(machine_, placement, workload.n,
                            workload.iterations);
  }
  throw InvalidArgument("unknown algorithm");
}

}  // namespace plin::perfsim
