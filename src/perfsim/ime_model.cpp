// Analytic replay of IMeP (see solvers/ime/imep.cpp for the executed
// twin). The per-level duration is the maximum over the three concurrent
// bottlenecks the pipelined execution exposes:
//   * the bulk update on the most-loaded slave,
//   * the master's gather + auxiliary-vector work,
//   * the pivot-column chain (one successor hop + one column update).
#include <algorithm>
#include <cmath>

#include "perfsim/activity.hpp"
#include "perfsim/simulator.hpp"
#include "solvers/ime/traffic.hpp"
#include "support/error.hpp"

namespace plin::perfsim {

Prediction predict_ime(const hw::MachineSpec& machine,
                       const hw::Placement& placement, std::size_t n) {
  PLIN_CHECK_MSG(n > 0, "perfsim: empty system");
  const hw::ClusterLayout layout(machine, placement);
  const hw::NetworkModel network(machine.network);
  const int ranks = placement.ranks;
  const double ovh = network.per_message_overhead();
  const int sharers =
      std::max(placement.ranks_socket0, placement.ranks_socket1);
  const hw::LinkClass worst =
      placement.nodes > 1
          ? hw::LinkClass::kCrossNode
          : (placement.sockets_used == 2 ? hw::LinkClass::kCrossSocket
                                         : hw::LinkClass::kSameSocket);
  const int depth = hw::NetworkModel::tree_depth(ranks);
  const double col_bytes = 8.0 * static_cast<double>(n);

  // Column counts per rank (constant across levels: every equation keeps
  // receiving updates until its own pivot turn, and afterwards its column
  // still feeds later levels' h factors).
  std::vector<std::size_t> ncols_of(static_cast<std::size_t>(ranks));
  std::size_t max_ncols = 0;
  for (int r = 0; r < ranks; ++r) {
    ncols_of[static_cast<std::size_t>(r)] =
        solvers::ImeColumnMap::count_below_for(n, ranks, r, n);
    max_ncols = std::max(max_ncols, ncols_of[static_cast<std::size_t>(r)]);
  }

  Prediction prediction;
  double T = 0.0;

  // ---- allocation phase: local table first-touch ---------------------------
  const double table_bytes = 8.0 * static_cast<double>(n) *
                             static_cast<double>(std::max<std::size_t>(max_ncols, 1));
  const double bw_share =
      machine.node.socket.dram_bandwidth_bs / std::max(1, sharers);
  T += table_bytes / bw_share;

  // ---- init broadcast of h --------------------------------------------------
  T += network.tree_bcast_time(col_bytes, ranks, worst);

  // ---- level loop -------------------------------------------------------------
  // Successor-hop cost, split into a latency part and a per-byte part so
  // the shrinking live prefix of the pivot column is priced per level.
  const double hop_lat = successor_hop_time(layout, network, 0.0);
  const double hop_per_byte =
      (successor_hop_time(layout, network, 1e6) - hop_lat) / 1e6;
  double chain_comm_total = 0.0;
  double wire_bytes_total = 0.0;
  for (std::size_t l = n; l-- > 0;) {
    const double per_col =
        (2.0 * static_cast<double>(l + 1) + 1.0) * solvers::kImeFlopScale;
    // Only rows 0..l of the pivot column are live (broadcast as a prefix).
    const double live_bytes = 8.0 * static_cast<double>(l + 1);
    // Payload ingestion: every rank reads the live pivot-column prefix out
    // of shared memory once per level. The in-process execution tier does
    // not pay this (payloads are tiny at numeric-tier sizes); at paper
    // scale it is the bandwidth term that keeps IMeP's per-level time
    // honest. The h broadcast is buffered lazily and stays off the
    // critical path.
    const double ingest = live_bytes / bw_share;

    // Most-loaded slave: updates all its columns, ingests the pivot
    // column, handles ~6 messages.
    const double t_slave =
        kernel_time(machine, sharers, solvers::kImeUpdate,
                    static_cast<double>(max_ncols) * per_col)
            .seconds +
        ingest + 6.0 * ovh;

    // Master (dedicated, owns no columns): decodes the gathered row blob
    // (~8n bytes), updates h, writes it to shared memory once. It streams
    // alone while the slaves compute, so its traffic runs at the per-core
    // limit rather than the contended share.
    const double t_master =
        kernel_time(machine, sharers, solvers::kImeUpdate,
                    3.0 * static_cast<double>(n - 1) * solvers::kImeFlopScale)
            .seconds +
        2.0 * col_bytes / machine.node.socket.per_core_bandwidth_bs +
        2.0 * depth * ovh;

    // Pivot-column chain: one hop to the successor plus one column update.
    const double chain_comm = hop_lat + hop_per_byte * live_bytes + 2.0 * ovh;
    const double t_chain =
        chain_comm +
        kernel_time(machine, sharers, solvers::kImeUpdate, per_col).seconds;
    // Energy-relevant memory traffic: every rank ingests the live pivot
    // prefix; h is written once per node's shared segment (slaves map it
    // lazily and only materialize it on a fault); the gather moves ~one
    // row through cache-resident forwarding buffers.
    wire_bytes_total += static_cast<double>(ranks) * live_bytes +
                        static_cast<double>(placement.nodes) * col_bytes +
                        4.0 * col_bytes;

    // Pipeline resync: the broadcast/gather roots rotate every level, so
    // each level pays collective software latency proportional to the tree
    // depth on top of the bottleneck stage (calibrated against the
    // executed tier at container scale and against production MPI
    // collective latencies at paper scale).
    const double resync = depth * (ovh + 0.5 * network.latency(worst));
    const double t_level = std::max({t_slave, t_master, t_chain}) + resync;
    T += t_level;
    chain_comm_total += resync;
    if (std::max({t_slave, t_master, t_chain}) == t_chain) {
      chain_comm_total += chain_comm;
    }
  }

  // ---- drain: last pivot column / h reach the leaves, final x broadcast ----
  const double drain =
      depth * (network.transfer_time(worst, col_bytes) + ovh);
  T += drain + network.tree_bcast_time(col_bytes, ranks, worst);

  prediction.duration_s = T;

  // ---- per-rank activity for energy ----------------------------------------
  std::vector<RankActivity> per_rank(static_cast<std::size_t>(ranks));
  const double sum_per_col = [&] {
    // sum over levels of (2(l+1)+1), scaled like the executed charges
    const double nn = static_cast<double>(n);
    return (nn * (nn + 1.0) + nn) * solvers::kImeFlopScale;
  }();
  for (int r = 0; r < ranks; ++r) {
    RankActivity& a = per_rank[static_cast<std::size_t>(r)];
    const double cols = static_cast<double>(ncols_of[static_cast<std::size_t>(r)]);
    charge_kernel(a, machine, sharers, solvers::kImeUpdate,
                  cols * sum_per_col);
    // Allocation traffic and per-level pivot-column ingestion (live
    // prefix averages n/2 entries).
    a.membound_s += table_bytes / bw_share +
                    static_cast<double>(n) * 0.5 * col_bytes / bw_share;
    a.dram_bytes += table_bytes;
  }
  // Master blob decode + shared h write, every level.
  per_rank[0].membound_s +=
      static_cast<double>(n) * 2.0 * col_bytes / bw_share;
  per_rank[0].dram_bytes += static_cast<double>(n) * 2.0 * col_bytes;
  // Master extras: h updates plus the final division pass.
  charge_kernel(per_rank[0], machine, sharers, solvers::kImeUpdate,
                (3.0 * static_cast<double>(n - 1) * static_cast<double>(n) +
                 static_cast<double>(n)) *
                    solvers::kImeFlopScale);

  // Message handling: per level, one tree gather (N-1 sends + N-1
  // receives) and two broadcasts (2(N-1) each side); spread evenly.
  const double events_per_level = 6.0 * static_cast<double>(ranks - 1);
  for (int r = 0; r < ranks; ++r) {
    charge_messages(per_rank[static_cast<std::size_t>(r)], network,
                    static_cast<double>(n) * events_per_level / ranks,
                    wire_bytes_total / ranks);
  }

  fill_energy(prediction, machine, layout, per_rank, T);

  // Critical-path decomposition: approximate communication share.
  prediction.comm_s = chain_comm_total + drain +
                      2.0 * network.tree_bcast_time(col_bytes, ranks, worst);
  prediction.compute_s = T - prediction.comm_s;
  return prediction;
}

}  // namespace plin::perfsim
