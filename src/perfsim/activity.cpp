#include "perfsim/activity.hpp"

#include <algorithm>

#include "hwmodel/power.hpp"
#include "support/error.hpp"

namespace plin::perfsim {

KernelTime kernel_time(const hw::MachineSpec& machine, int socket_sharers,
                       const solvers::KernelProfile& profile, double flops,
                       bool fp32) {
  PLIN_ASSERT(flops >= 0.0);
  KernelTime result;
  if (flops <= 0.0) return result;
  const double peak = (fp32 ? machine.node.socket.core.peak_fp32_flops()
                            : machine.node.socket.core.peak_flops()) *
                      profile.efficiency;
  const double t_flop = flops / peak;
  const double bw_share = machine.node.socket.dram_bandwidth_bs /
                          std::max(1, socket_sharers);
  const double bytes_per_flop =
      fp32 ? profile.bytes_per_flop / 2.0 : profile.bytes_per_flop;
  const double t_mem = flops * bytes_per_flop / bw_share;
  result.memory_bound = t_mem > t_flop;
  result.seconds = std::max(t_flop, t_mem);
  return result;
}

void charge_kernel(RankActivity& activity, const hw::MachineSpec& machine,
                   int socket_sharers, const solvers::KernelProfile& profile,
                   double flops, bool fp32) {
  const KernelTime t =
      kernel_time(machine, socket_sharers, profile, flops, fp32);
  if (t.memory_bound) {
    activity.membound_s += t.seconds;
  } else {
    activity.compute_s += t.seconds;
  }
  activity.dram_bytes +=
      flops * (fp32 ? profile.bytes_per_flop / 2.0 : profile.bytes_per_flop);
}

void charge_messages(RankActivity& activity, const hw::NetworkModel& network,
                     double count, double bytes) {
  activity.commactive_s += count * network.per_message_overhead();
  activity.dram_bytes += bytes;
}

hw::LinkClass group_link(const hw::ClusterLayout& layout,
                         const std::vector<int>& ranks) {
  if (ranks.size() < 2) return hw::LinkClass::kSameSocket;
  const hw::RankLocation& first = layout.location_of(ranks.front());
  hw::LinkClass worst = hw::LinkClass::kSameSocket;
  for (int rank : ranks) {
    const hw::RankLocation& loc = layout.location_of(rank);
    if (loc.node != first.node) return hw::LinkClass::kCrossNode;
    if (loc.socket != first.socket) worst = hw::LinkClass::kCrossSocket;
  }
  return worst;
}

double tree_time(const hw::ClusterLayout& layout,
                 const hw::NetworkModel& network,
                 const std::vector<int>& members, double bytes) {
  const int count = static_cast<int>(members.size());
  if (count < 2) return 0.0;
  double total = 0.0;
  for (int mask = 1; mask < count; mask <<= 1) {
    double stage = 0.0;
    for (int v = 0; v + mask < count; v += 2 * mask) {
      const hw::LinkClass link = layout.link_between(
          members[static_cast<std::size_t>(v)],
          members[static_cast<std::size_t>(v + mask)]);
      stage = std::max(stage, network.transfer_time(link, bytes));
    }
    total += stage + network.per_message_overhead();
  }
  return total;
}

double successor_hop_time(const hw::ClusterLayout& layout,
                          const hw::NetworkModel& network, double bytes) {
  const int ranks = layout.ranks();
  if (ranks < 2) return 0.0;
  double total = 0.0;
  for (int r = 0; r < ranks; ++r) {
    total += network.transfer_time(layout.link_between(r, (r + 1) % ranks),
                                   bytes);
  }
  return total / ranks;
}

void fill_energy(Prediction& prediction, const hw::MachineSpec& machine,
                 const hw::ClusterLayout& layout,
                 const std::vector<RankActivity>& per_rank,
                 double duration_s) {
  PLIN_CHECK(static_cast<int>(per_rank.size()) == layout.ranks());
  const hw::PowerModel power(machine.power);
  const double T = duration_s;
  const double idle_w = power.core_power_w(hw::ActivityKind::kIdle);
  const int sockets = machine.node.sockets;

  for (int node = 0; node < layout.nodes(); ++node) {
    std::vector<double> dynamic(static_cast<std::size_t>(sockets), 0.0);
    std::vector<double> traffic(static_cast<std::size_t>(sockets), 0.0);
    std::vector<int> ranked(static_cast<std::size_t>(sockets), 0);
    for (int rank : layout.ranks_on_node(node)) {
      const hw::RankLocation& loc = layout.location_of(rank);
      const RankActivity& a = per_rank[static_cast<std::size_t>(rank)];
      const std::size_t s = static_cast<std::size_t>(loc.socket);
      ++ranked[s];
      const double busy = a.compute_s + a.membound_s + a.commactive_s;
      const double wait = std::max(0.0, T - busy);
      dynamic[s] +=
          a.compute_s *
              (power.core_power_w(hw::ActivityKind::kCompute) - idle_w) +
          a.membound_s *
              (power.core_power_w(hw::ActivityKind::kMemBound) - idle_w) +
          a.commactive_s *
              (power.core_power_w(hw::ActivityKind::kCommActive) - idle_w) +
          wait * (power.core_power_w(hw::ActivityKind::kCommWait) - idle_w);
      traffic[s] += a.dram_bytes;
    }
    for (int s = 0; s < sockets && s < 2; ++s) {
      double dyn = dynamic[static_cast<std::size_t>(s)];
      if (ranked[static_cast<std::size_t>(s)] == 0 && sockets == 2) {
        const int sibling = s == 0 ? 1 : 0;
        dyn = power.idle_socket_leakage() *
              dynamic[static_cast<std::size_t>(sibling)];
      }
      prediction.pkg_j[s] += power.pkg_base_w() * T +
                             machine.node.socket.cores * idle_w * T + dyn;
      prediction.dram_j[s] +=
          power.dram_base_w() * T +
          traffic[static_cast<std::size_t>(s)] * power.dram_energy_per_byte();
    }
  }
}

}  // namespace plin::perfsim
