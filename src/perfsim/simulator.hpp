// Simulator — the paper-scale analytic replay ("replay tier", DESIGN.md §2).
//
// For each (algorithm, matrix size, placement) configuration it walks the
// same per-level / per-panel schedule the executing solvers follow,
// advancing a critical-path clock with the shared NetworkModel and pricing
// per-rank activity with the shared KernelProfiles and PowerModel. At
// container scale its predictions are pinned against the actually-executed
// solvers (tests/model_validation_test.cpp, bench_model_validation); at
// Marconi scale (n up to 34560, 1296 ranks) it regenerates the paper's
// figures in milliseconds instead of node-hours.
#pragma once

#include "hwmodel/layout.hpp"
#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "perfsim/prediction.hpp"

namespace plin::perfsim {

class Simulator {
 public:
  explicit Simulator(hw::MachineSpec machine) : machine_(std::move(machine)) {}

  /// Predicts duration, energy and power for one configuration.
  Prediction predict(const Workload& workload,
                     const hw::Placement& placement) const;

  const hw::MachineSpec& machine() const { return machine_; }

 private:
  hw::MachineSpec machine_;
};

/// Individual models (exposed for targeted tests).
Prediction predict_ime(const hw::MachineSpec& machine,
                       const hw::Placement& placement, std::size_t n);
Prediction predict_scalapack(const hw::MachineSpec& machine,
                             const hw::Placement& placement, std::size_t n,
                             std::size_t nb);
Prediction predict_jacobi(const hw::MachineSpec& machine,
                          const hw::Placement& placement, std::size_t n,
                          int iterations);

/// Mixed-precision GEPP replay: the full factorization + solve pipeline at
/// fp32 cost (half the bytes per element, twice the per-core peak), plus
/// refinement_iters(n) fp64 refinement sweeps (docs/mixed_precision.md).
Prediction predict_scalapack_mixed(const hw::MachineSpec& machine,
                                   const hw::Placement& placement,
                                   std::size_t n, std::size_t nb);

/// The refinement-iteration model: fp64 sweeps until the backward error
/// reaches the n*eps64 bound, assuming the contraction factor
/// rho = eps32 * sqrt(n) per sweep that the executed solver exhibits
/// (solvers/gepp/mixed.cpp converges in 3 sweeps across the numeric-tier
/// range; this model reproduces that and stays at 3 through Marconi scale).
int refinement_iters(std::size_t n);

/// Distributed-CG replay of the default fused/overlapped path: per
/// iteration max(halo exchange, interior SpMV) + boundary SpMV (priced
/// with the sparse DRAM-traffic term from hwmodel/sparse.hpp and the
/// csr_boundary_rows split), one fused small-vector allreduce carrying the
/// iteration's dot products (3 scalars, 5 under Jacobi), and the axpy
/// updates — iterated cg_model_iters times, then the final solution
/// allgather (docs/sparse.md).
Prediction predict_cg(const hw::MachineSpec& machine,
                      const hw::Placement& placement, std::size_t n,
                      sparse::SparseKind kind, double tolerance,
                      solvers::CgPrecond precond = solvers::CgPrecond::kNone);

/// The analytic iteration-count model: the classic CG error bound
/// ||e_k|| <= 2 ((sqrt(k)-1)/(sqrt(k)+1))^k ||e_0|| evaluated at the
/// family's Gershgorin condition estimate kappa = 2 S + 1 (diagonal =
/// row sum S + 1 puts the spectrum in [1, 2 S + 1]). An upper bound, so it
/// tracks — without matching bit-for-bit — the executed iteration counts.
int cg_model_iters(sparse::SparseKind kind, double tolerance);

}  // namespace plin::perfsim
