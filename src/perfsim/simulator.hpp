// Simulator — the paper-scale analytic replay ("replay tier", DESIGN.md §2).
//
// For each (algorithm, matrix size, placement) configuration it walks the
// same per-level / per-panel schedule the executing solvers follow,
// advancing a critical-path clock with the shared NetworkModel and pricing
// per-rank activity with the shared KernelProfiles and PowerModel. At
// container scale its predictions are pinned against the actually-executed
// solvers (tests/model_validation_test.cpp, bench_model_validation); at
// Marconi scale (n up to 34560, 1296 ranks) it regenerates the paper's
// figures in milliseconds instead of node-hours.
#pragma once

#include "hwmodel/layout.hpp"
#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"
#include "perfsim/prediction.hpp"

namespace plin::perfsim {

class Simulator {
 public:
  explicit Simulator(hw::MachineSpec machine) : machine_(std::move(machine)) {}

  /// Predicts duration, energy and power for one configuration.
  Prediction predict(const Workload& workload,
                     const hw::Placement& placement) const;

  const hw::MachineSpec& machine() const { return machine_; }

 private:
  hw::MachineSpec machine_;
};

/// Individual models (exposed for targeted tests).
Prediction predict_ime(const hw::MachineSpec& machine,
                       const hw::Placement& placement, std::size_t n);
Prediction predict_scalapack(const hw::MachineSpec& machine,
                             const hw::Placement& placement, std::size_t n,
                             std::size_t nb);
Prediction predict_jacobi(const hw::MachineSpec& machine,
                          const hw::Placement& placement, std::size_t n,
                          int iterations);

}  // namespace plin::perfsim
