#include "hwmodel/machine.hpp"

#include "support/error.hpp"

namespace plin::hw {

MachineSpec marconi_a3() {
  MachineSpec spec;
  spec.name = "Marconi-A3";
  spec.total_nodes = 3188;
  // NodeSpec/SocketSpec/CoreSpec defaults are the Marconi A3 numbers.
  return spec;
}

MachineSpec epyc_cluster() {
  MachineSpec spec;
  spec.name = "EPYC-cluster";
  spec.total_nodes = 1024;
  spec.node.sockets = 2;
  spec.node.socket.cores = 64;
  spec.node.socket.core.clock_ghz = 2.4;
  spec.node.socket.core.flops_per_cycle = 16.0;  // 2x AVX-512-as-2x256 FMA
  spec.node.socket.core.fp32_flops_per_cycle = 32.0;
  spec.node.socket.dram_bandwidth_bs = 300e9;    // 8-channel DDR
  spec.node.socket.per_core_bandwidth_bs = 22e9;
  spec.node.dram_gib = 512.0;
  // 200 Gb/s fabric, slightly lower latency than the Omni-Path numbers
  // (same MPI-software-path calibration factor).
  spec.network.internode_latency_s = 3.4e-6;
  spec.network.internode_bandwidth_bs = 2.3e10;
  spec.network.intersocket_latency_s = 1.1e-6;
  spec.network.intersocket_bandwidth_bs = 4.5e10;
  spec.network.intrasocket_latency_s = 4.0e-7;
  spec.network.intrasocket_bandwidth_bs = 8.0e10;
  // Denser cores draw less each; the uncore/IO die draws more.
  spec.power.pkg_base_w = 95.0;
  spec.power.core_compute_w = 2.6;
  spec.power.core_membound_w = 2.0;
  spec.power.core_commwait_w = 1.8;
  spec.power.core_commactive_w = 1.7;
  spec.power.core_idle_w = 0.4;
  spec.power.dram_base_w = 18.0;
  return spec;
}

MachineSpec mini_cluster(int nodes, int cores_per_socket) {
  PLIN_CHECK(nodes >= 1);
  PLIN_CHECK(cores_per_socket >= 1);
  MachineSpec spec = marconi_a3();
  spec.name = "mini-cluster";
  spec.total_nodes = nodes;
  spec.node.socket.cores = cores_per_socket;
  return spec;
}

}  // namespace plin::hw
