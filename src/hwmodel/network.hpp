// Hockney-model interconnect timing shared by xmpi (execution) and perfsim
// (analytic replay). A point-to-point transfer of m bytes over link class c
// costs alpha(c) + m / bandwidth(c); tree collectives pay ceil(log2 P)
// sequential stages.
#pragma once

#include <cmath>

#include "hwmodel/layout.hpp"
#include "hwmodel/machine.hpp"

namespace plin::hw {

class NetworkModel {
 public:
  explicit NetworkModel(NetworkSpec spec) : spec_(spec) {}

  double latency(LinkClass link) const;
  double bandwidth(LinkClass link) const;

  /// One point-to-point transfer (wire time, excluding CPU overhead).
  double transfer_time(LinkClass link, double bytes) const {
    return latency(link) + bytes / bandwidth(link);
  }

  /// CPU time a rank pays per posted message (send or receive side).
  double per_message_overhead() const { return spec_.per_message_overhead_s; }

  /// Number of sequential stages of a binomial tree over `participants`.
  static int tree_depth(int participants) {
    int depth = 0;
    int reach = 1;
    while (reach < participants) {
      reach *= 2;
      ++depth;
    }
    return depth;
  }

  /// Time for a binomial-tree broadcast of `bytes` to `participants` ranks
  /// whose worst pairwise link is `worst`. Used by perfsim; xmpi reproduces
  /// the same number implicitly by executing the tree.
  double tree_bcast_time(double bytes, int participants,
                         LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return tree_depth(participants) *
           (transfer_time(worst, bytes) + per_message_overhead());
  }

  /// Time for a binomial-tree reduction/allreduce of `bytes` (allreduce =
  /// reduce + bcast).
  double tree_reduce_time(double bytes, int participants,
                          LinkClass worst) const {
    return tree_bcast_time(bytes, participants, worst);
  }
  double tree_allreduce_time(double bytes, int participants,
                             LinkClass worst) const {
    return 2.0 * tree_bcast_time(bytes, participants, worst);
  }

  /// Dissemination barrier over `participants`.
  double barrier_time(int participants, LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return tree_depth(participants) *
           (latency(worst) + per_message_overhead());
  }

  const NetworkSpec& spec() const { return spec_; }

 private:
  NetworkSpec spec_;
};

}  // namespace plin::hw
