// Hockney-model interconnect timing shared by xmpi (execution) and perfsim
// (analytic replay). A point-to-point transfer of m bytes over link class c
// costs alpha(c) + m / bandwidth(c); tree collectives pay ceil(log2 P)
// sequential stages.
#pragma once

#include <cmath>

#include "hwmodel/layout.hpp"
#include "hwmodel/machine.hpp"

namespace plin::hw {

class NetworkModel {
 public:
  explicit NetworkModel(NetworkSpec spec) : spec_(spec) {}

  double latency(LinkClass link) const;
  double bandwidth(LinkClass link) const;

  /// One point-to-point transfer (wire time, excluding CPU overhead).
  double transfer_time(LinkClass link, double bytes) const {
    return latency(link) + bytes / bandwidth(link);
  }

  /// CPU time a rank pays per posted message (send or receive side).
  double per_message_overhead() const { return spec_.per_message_overhead_s; }

  /// Number of sequential stages of a binomial tree over `participants`.
  static int tree_depth(int participants) {
    int depth = 0;
    int reach = 1;
    while (reach < participants) {
      reach *= 2;
      ++depth;
    }
    return depth;
  }

  /// Time for a binomial-tree broadcast of `bytes` to `participants` ranks
  /// whose worst pairwise link is `worst`. Used by perfsim; xmpi reproduces
  /// the same number implicitly by executing the tree.
  double tree_bcast_time(double bytes, int participants,
                         LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return tree_depth(participants) *
           (transfer_time(worst, bytes) + per_message_overhead());
  }

  /// Time for a binomial-tree reduction/allreduce of `bytes` (allreduce =
  /// reduce + bcast).
  double tree_reduce_time(double bytes, int participants,
                          LinkClass worst) const {
    return tree_bcast_time(bytes, participants, worst);
  }
  double tree_allreduce_time(double bytes, int participants,
                             LinkClass worst) const {
    return 2.0 * tree_bcast_time(bytes, participants, worst);
  }

  /// Largest power of two <= participants (participants >= 1): the core
  /// width of the pre-folded scalable allreduce schedules.
  static int floor_pof2(int participants) {
    int pof2 = 1;
    while (pof2 * 2 <= participants) pof2 *= 2;
    return pof2;
  }

  // -- scalable collective schedules (CollectiveMode::kScalable) ------------
  //
  // Analytic mirrors of the xmpi schedules, for the perfsim tier and for
  // sanity-checking bench_collectives: the executed virtual durations
  // emerge from the same alpha/beta/overhead terms these closed forms sum.

  /// Ring allgather: P-1 sequential steps, each forwarding one
  /// `chunk_bytes` block (every rank sends and receives one block per
  /// step, so per-step cost is one transfer plus both message overheads).
  double ring_allgather_time(double chunk_bytes, int participants,
                             LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return (participants - 1) *
           (transfer_time(worst, chunk_bytes) + 2.0 * per_message_overhead());
  }

  /// Recursive-doubling allreduce: log2(pof2) pairwise full-vector
  /// exchanges (plus a pre/post fold round when P is not a power of two).
  double rd_allreduce_time(double bytes, int participants,
                           LinkClass worst) const {
    if (participants <= 1) return 0.0;
    const int pof2 = floor_pof2(participants);
    const double round =
        transfer_time(worst, bytes) + 2.0 * per_message_overhead();
    double total = tree_depth(pof2) * round;
    if (pof2 != participants) total += 2.0 * round;  // pre + post fold
    return total;
  }

  /// Reduce-scatter + allgather allreduce (vector halving): each of the
  /// two phases moves bytes * (pof2-1)/pof2 through every rank across
  /// log2(pof2) halving rounds.
  double rsag_allreduce_time(double bytes, int participants,
                             LinkClass worst) const {
    if (participants <= 1) return 0.0;
    const int pof2 = floor_pof2(participants);
    const int depth = tree_depth(pof2);
    const double fraction =
        static_cast<double>(pof2 - 1) / static_cast<double>(pof2);
    double total = 2.0 * (depth * (latency(worst) +
                                   2.0 * per_message_overhead()) +
                          bytes * fraction / bandwidth(worst));
    if (pof2 != participants) {
      total += 2.0 * (transfer_time(worst, bytes) +
                      2.0 * per_message_overhead());
    }
    return total;
  }

  /// Dissemination barrier over `participants`.
  double barrier_time(int participants, LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return tree_depth(participants) *
           (latency(worst) + per_message_overhead());
  }

  const NetworkSpec& spec() const { return spec_; }

 private:
  NetworkSpec spec_;
};

}  // namespace plin::hw
