// Hockney-model interconnect timing shared by xmpi (execution) and perfsim
// (analytic replay). A point-to-point transfer of m bytes over link class c
// costs alpha(c) + m / bandwidth(c); tree collectives pay ceil(log2 P)
// sequential stages.
#pragma once

#include <cmath>

#include "hwmodel/layout.hpp"
#include "hwmodel/machine.hpp"

namespace plin::hw {

class NetworkModel {
 public:
  explicit NetworkModel(NetworkSpec spec) : spec_(spec) {}

  double latency(LinkClass link) const;
  double bandwidth(LinkClass link) const;

  /// One point-to-point transfer (wire time, excluding CPU overhead).
  double transfer_time(LinkClass link, double bytes) const {
    return latency(link) + bytes / bandwidth(link);
  }

  /// CPU time a rank pays per posted message (send or receive side).
  double per_message_overhead() const { return spec_.per_message_overhead_s; }

  /// Number of sequential stages of a binomial tree over `participants`.
  static int tree_depth(int participants) {
    int depth = 0;
    int reach = 1;
    while (reach < participants) {
      reach *= 2;
      ++depth;
    }
    return depth;
  }

  /// Time for a binomial-tree broadcast of `bytes` to `participants` ranks
  /// whose worst pairwise link is `worst`. Used by perfsim; xmpi reproduces
  /// the same number implicitly by executing the tree.
  double tree_bcast_time(double bytes, int participants,
                         LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return tree_depth(participants) *
           (transfer_time(worst, bytes) + per_message_overhead());
  }

  /// Time for a binomial-tree reduction/allreduce of `bytes` (allreduce =
  /// reduce + bcast).
  double tree_reduce_time(double bytes, int participants,
                          LinkClass worst) const {
    return tree_bcast_time(bytes, participants, worst);
  }
  double tree_allreduce_time(double bytes, int participants,
                             LinkClass worst) const {
    return 2.0 * tree_bcast_time(bytes, participants, worst);
  }

  /// Largest power of two <= participants (participants >= 1): the width
  /// of the leading block in the binary-blocks decomposition the scalable
  /// allreduce schedules run on.
  static int floor_pof2(int participants) {
    int pof2 = 1;
    while (pof2 * 2 <= participants) pof2 *= 2;
    return pof2;
  }

  /// Number of blocks in the binary-blocks decomposition of
  /// `participants` (its popcount): the extra fold depth the non-pof2
  /// scalable schedules pay.
  static int block_count(int participants) {
    int blocks = 0;
    while (participants > 0) {
      blocks += participants & 1;
      participants >>= 1;
    }
    return blocks;
  }

  // -- scalable collective schedules (CollectiveMode::kScalable) ------------
  //
  // Analytic mirrors of the xmpi schedules, for the perfsim tier and for
  // sanity-checking bench_collectives: the executed virtual durations
  // emerge from the same alpha/beta/overhead terms these closed forms sum.

  /// Ring allgather: P-1 sequential steps, each forwarding one
  /// `chunk_bytes` block (every rank sends and receives one block per
  /// step, so per-step cost is one transfer plus both message overheads).
  double ring_allgather_time(double chunk_bytes, int participants,
                             LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return (participants - 1) *
           (transfer_time(worst, chunk_bytes) + 2.0 * per_message_overhead());
  }

  /// Binary-blocks recursive-doubling allreduce: log2(pof2) pairwise
  /// full-vector exchanges inside the leading block (the smaller blocks'
  /// rounds overlap them), then — when P is not a power of two — the
  /// leader chain folds the L blocks right-to-left (L-1 sequential
  /// full-vector hops) and a binomial tree broadcasts the result over all
  /// P ranks.
  double rd_allreduce_time(double bytes, int participants,
                           LinkClass worst) const {
    if (participants <= 1) return 0.0;
    const int pof2 = floor_pof2(participants);
    const double round =
        transfer_time(worst, bytes) + 2.0 * per_message_overhead();
    double total = tree_depth(pof2) * round;
    const int blocks = block_count(participants);
    if (blocks > 1) {
      total += (blocks - 1) * round;  // leader fold chain
      total += tree_bcast_time(bytes, participants, worst);
    }
    return total;
  }

  /// Binary-blocks reduce-scatter + allgather allreduce (vector halving):
  /// each of the two leading-block phases moves bytes * (pof2-1)/pof2
  /// through every rank across log2(pof2) halving rounds. When P is not a
  /// power of two, the cross-block fold adds L-1 sequential scattered-
  /// range hops (each at most bytes/m_b, bounded here by one full-vector
  /// beta term split across the chain) and the distribution phase one
  /// full-vector hop from block 0 to the remainder ranks.
  double rsag_allreduce_time(double bytes, int participants,
                             LinkClass worst) const {
    if (participants <= 1) return 0.0;
    const int pof2 = floor_pof2(participants);
    const int depth = tree_depth(pof2);
    const double fraction =
        static_cast<double>(pof2 - 1) / static_cast<double>(pof2);
    double total = 2.0 * (depth * (latency(worst) +
                                   2.0 * per_message_overhead()) +
                          bytes * fraction / bandwidth(worst));
    const int blocks = block_count(participants);
    if (blocks > 1) {
      // Fold chain: L-1 hops of shrinking scattered ranges (~bytes/pof2
      // each after the leading block's reduce-scatter).
      total += (blocks - 1) * (latency(worst) +
                               2.0 * per_message_overhead() +
                               bytes / (pof2 * bandwidth(worst)));
      // Distribution: one full-vector hop to the ranks past block 0.
      total += transfer_time(worst, bytes) + 2.0 * per_message_overhead();
    }
    return total;
  }

  /// Bruck allgather: ceil(log2 P) doubling rounds; round k ships
  /// min(2^k, P - 2^k) chunks, so the beta term telescopes to the same
  /// ~(P-1) * chunk_bytes per rank the ring moves, with log-depth latency.
  double bruck_allgather_time(double chunk_bytes, int participants,
                              LinkClass worst) const {
    if (participants <= 1) return 0.0;
    double total = 0.0;
    int have = 1;
    while (have < participants) {
      const int quota =
          have < participants - have ? have : participants - have;
      total += transfer_time(worst, quota * chunk_bytes) +
               2.0 * per_message_overhead();
      have += quota;
    }
    return total;
  }

  /// Dissemination barrier over `participants`.
  double barrier_time(int participants, LinkClass worst) const {
    if (participants <= 1) return 0.0;
    return tree_depth(participants) *
           (latency(worst) + per_message_overhead());
  }

  const NetworkSpec& spec() const { return spec_; }

 private:
  NetworkSpec spec_;
};

}  // namespace plin::hw
