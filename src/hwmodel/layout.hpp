// ClusterLayout — the concrete rank → (node, socket, core) map for a
// Placement, plus link classification between ranks. Both the executing
// runtime (xmpi) and the analytic replay (perfsim) consume this, so the two
// tiers see identical topology.
//
// The block placement is fully deterministic (a node's socket-0 slots, then
// its socket-1 slots, node after node), so the map is pure arithmetic: no
// per-rank location vector and no per-node rank lists are stored. That
// removes the last O(ranks) term this layer contributed to per-rank memory
// (the PR 6 follow-on from ROADMAP item 1 — bench_scale gates bytes/rank).
#pragma once

#include <cstddef>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"

namespace plin::hw {

struct RankLocation {
  int node = 0;
  int socket = 0;
  int core = 0;  // core index within the socket
};

enum class LinkClass { kSameSocket, kCrossSocket, kCrossNode };

/// Contiguous world-rank interval [first, first + count). Block placement
/// puts every node's ranks in one such interval, so node → ranks is a pair
/// of ints instead of a stored vector; iterable like the vector it
/// replaced.
class RankRange {
 public:
  class iterator {
   public:
    using value_type = int;
    explicit iterator(int rank) : rank_(rank) {}
    int operator*() const { return rank_; }
    iterator& operator++() {
      ++rank_;
      return *this;
    }
    bool operator==(const iterator& other) const = default;

   private:
    int rank_ = 0;
  };

  RankRange(int first, int count) : first_(first), count_(count) {}

  iterator begin() const { return iterator(first_); }
  iterator end() const { return iterator(first_ + count_); }
  std::size_t size() const { return static_cast<std::size_t>(count_); }
  bool empty() const { return count_ == 0; }
  int front() const { return first_; }

 private:
  int first_ = 0;
  int count_ = 0;
};

class ClusterLayout {
 public:
  /// Fills nodes sequentially with ranks in order: a node's socket-0 slots
  /// first, then socket-1 slots (matching a block Slurm distribution).
  ClusterLayout(MachineSpec machine, Placement placement);

  int ranks() const { return placement_.ranks; }
  int nodes() const { return placement_.nodes; }
  const MachineSpec& machine() const { return machine_; }
  const Placement& placement() const { return placement_; }

  RankLocation location_of(int rank) const;
  int node_of(int rank) const { return location_of(rank).node; }

  /// All ranks placed on `node`, in rank order.
  RankRange ranks_on_node(int node) const;

  /// Ranks on a given (node, socket).
  int ranks_on_socket(int node, int socket) const;

  LinkClass link_between(int rank_a, int rank_b) const;

  /// True if both sockets of every used node receive ranks.
  bool uses_both_sockets() const { return placement_.sockets_used == 2; }

 private:
  MachineSpec machine_;
  Placement placement_;
  /// Effective ranks filled into socket 0 / socket 1 of a full node, and
  /// their sum — the whole layout state (everything else is arithmetic).
  int socket0_ = 0;
  int socket1_ = 0;
  int per_node_ = 0;
};

}  // namespace plin::hw
