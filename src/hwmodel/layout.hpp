// ClusterLayout — the concrete rank → (node, socket, core) map for a
// Placement, plus link classification between ranks. Both the executing
// runtime (xmpi) and the analytic replay (perfsim) consume this, so the two
// tiers see identical topology.
#pragma once

#include <vector>

#include "hwmodel/machine.hpp"
#include "hwmodel/placement.hpp"

namespace plin::hw {

struct RankLocation {
  int node = 0;
  int socket = 0;
  int core = 0;  // core index within the socket
};

enum class LinkClass { kSameSocket, kCrossSocket, kCrossNode };

class ClusterLayout {
 public:
  /// Fills nodes sequentially with ranks in order: a node's socket-0 slots
  /// first, then socket-1 slots (matching a block Slurm distribution).
  ClusterLayout(MachineSpec machine, Placement placement);

  int ranks() const { return placement_.ranks; }
  int nodes() const { return placement_.nodes; }
  const MachineSpec& machine() const { return machine_; }
  const Placement& placement() const { return placement_; }

  const RankLocation& location_of(int rank) const;
  int node_of(int rank) const { return location_of(rank).node; }

  /// All ranks placed on `node`, in rank order.
  const std::vector<int>& ranks_on_node(int node) const;

  /// Ranks on a given (node, socket).
  int ranks_on_socket(int node, int socket) const;

  LinkClass link_between(int rank_a, int rank_b) const;

  /// True if both sockets of every used node receive ranks.
  bool uses_both_sockets() const { return placement_.sockets_used == 2; }

 private:
  MachineSpec machine_;
  Placement placement_;
  std::vector<RankLocation> locations_;
  std::vector<std::vector<int>> node_ranks_;
};

}  // namespace plin::hw
