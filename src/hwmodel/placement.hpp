// Rank placement policies — the paper's Table 1.
//
// For each total rank count the paper tests three layouts:
//   * full load:          48 ranks/node, both sockets (24 + 24);
//   * half load/1 socket: 24 ranks/node, all on socket 0, socket 1 idle;
//   * half load/2 socket: 24 ranks/node, split 12 + 12 across sockets.
#pragma once

#include <string>
#include <vector>

#include "hwmodel/machine.hpp"

namespace plin::hw {

enum class LoadLayout {
  kFullLoad,           // 48 ranks/node on Marconi: 2 sockets × 24
  kHalfLoadOneSocket,  // 24 ranks/node: socket 0 full, socket 1 idle
  kHalfLoadTwoSockets  // 24 ranks/node: 12 + 12
};

const char* to_string(LoadLayout layout);

/// A concrete assignment of `ranks` MPI ranks onto nodes/sockets.
struct Placement {
  int ranks = 0;
  int nodes = 0;
  int ranks_per_node = 0;
  int sockets_used = 0;        // sockets per node that receive ranks
  int ranks_socket0 = 0;       // ranks per node on socket 0
  int ranks_socket1 = 0;       // ranks per node on socket 1
  LoadLayout layout = LoadLayout::kFullLoad;

  std::string describe() const;
};

/// Builds the placement for `ranks` total ranks under `layout` on `machine`.
/// Throws InvalidArgument if ranks does not divide evenly or the machine is
/// too small.
Placement make_placement(int ranks, LoadLayout layout,
                         const MachineSpec& machine);

/// One row of the paper's Table 1 plus the layout tag.
struct Table1Row {
  Placement placement;
};

/// The nine configurations of Table 1: ranks ∈ {144, 576, 1296} × 3 layouts.
std::vector<Table1Row> table1_configurations(const MachineSpec& machine);

/// The rank counts the paper sweeps (square numbers, as IMe requires).
inline constexpr int kPaperRankCounts[] = {144, 576, 1296};
/// The matrix dimensions the paper sweeps.
inline constexpr int kPaperMatrixSizes[] = {8640, 17280, 25920, 34560};

}  // namespace plin::hw
