#include "hwmodel/power.hpp"

namespace plin::hw {

const char* to_string(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kCompute: return "compute";
    case ActivityKind::kMemBound: return "membound";
    case ActivityKind::kCommWait: return "commwait";
    case ActivityKind::kCommActive: return "commactive";
    case ActivityKind::kIdle: return "idle";
  }
  return "?";
}

double PowerModel::core_power_w(ActivityKind kind) const {
  switch (kind) {
    case ActivityKind::kCompute: return spec_.core_compute_w;
    case ActivityKind::kMemBound: return spec_.core_membound_w;
    case ActivityKind::kCommWait: return spec_.core_commwait_w;
    case ActivityKind::kCommActive: return spec_.core_commactive_w;
    case ActivityKind::kIdle: return spec_.core_idle_w;
  }
  return spec_.core_idle_w;
}

}  // namespace plin::hw
