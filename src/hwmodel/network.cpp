#include "hwmodel/network.hpp"

namespace plin::hw {

double NetworkModel::latency(LinkClass link) const {
  switch (link) {
    case LinkClass::kSameSocket: return spec_.intrasocket_latency_s;
    case LinkClass::kCrossSocket: return spec_.intersocket_latency_s;
    case LinkClass::kCrossNode: return spec_.internode_latency_s;
  }
  return spec_.internode_latency_s;
}

double NetworkModel::bandwidth(LinkClass link) const {
  switch (link) {
    case LinkClass::kSameSocket: return spec_.intrasocket_bandwidth_bs;
    case LinkClass::kCrossSocket: return spec_.intersocket_bandwidth_bs;
    case LinkClass::kCrossNode: return spec_.internode_bandwidth_bs;
  }
  return spec_.internode_bandwidth_bs;
}

}  // namespace plin::hw
