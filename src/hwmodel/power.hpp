// PowerModel — converts core activity into RAPL-domain power.
//
// Package power = pkg_base + sum over cores of core_power(kind).
// DRAM power   = dram_base + traffic * energy_per_byte / dt.
// A per-package power cap (the paper's stated future work, which we
// implement) reduces core frequency DVFS-style: sustained dynamic power is
// clamped to (cap - base) and compute slows by the cube-root law.
#pragma once

#include <algorithm>
#include <cmath>

#include "hwmodel/machine.hpp"

namespace plin::hw {

/// What a core is doing during an activity segment.
enum class ActivityKind {
  kCompute,     // floating-point bound work
  kMemBound,    // stalled on DRAM traffic
  kCommWait,    // blocked in MPI waiting for a peer
  kCommActive,  // actively moving message data
  kIdle         // no rank scheduled
};

const char* to_string(ActivityKind kind);

class PowerModel {
 public:
  explicit PowerModel(PowerSpec spec) : spec_(spec) {}

  /// Per-core power contribution for a given activity.
  double core_power_w(ActivityKind kind) const;

  double pkg_base_w() const { return spec_.pkg_base_w; }
  double dram_base_w() const { return spec_.dram_base_w; }
  double dram_energy_per_byte() const { return spec_.dram_energy_per_byte_j; }
  double idle_socket_leakage() const { return spec_.idle_socket_leakage; }

  /// Nominal package power with `cores` cores computing flat out.
  double package_full_power_w(int cores) const {
    return spec_.pkg_base_w + cores * core_power_w(ActivityKind::kCompute);
  }

  /// Effect of capping a package at cap_w while `cores` cores compute.
  struct CapEffect {
    double speed_factor = 1.0;   // multiply core throughput by this
    double dynamic_scale = 1.0;  // multiply per-core dynamic power by this
  };
  CapEffect cap_effect(double cap_w, int cores) const {
    CapEffect effect;
    if (cap_w <= 0.0 || cores <= 0) return effect;  // cap disabled
    const double nominal = cores * core_power_w(ActivityKind::kCompute);
    const double budget = cap_w - spec_.pkg_base_w;
    if (budget >= nominal) return effect;
    // Dynamic power scales ~f^3, throughput ~f.
    const double ratio = std::max(budget / nominal, 0.027);  // f >= 0.3
    effect.speed_factor = std::cbrt(ratio);
    effect.dynamic_scale = ratio;
    return effect;
  }

  const PowerSpec& spec() const { return spec_; }

 private:
  PowerSpec spec_;
};

}  // namespace plin::hw
