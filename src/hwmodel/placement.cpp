#include "hwmodel/placement.hpp"

#include "support/error.hpp"

namespace plin::hw {

const char* to_string(LoadLayout layout) {
  switch (layout) {
    case LoadLayout::kFullLoad: return "full-load";
    case LoadLayout::kHalfLoadOneSocket: return "half-load-1socket";
    case LoadLayout::kHalfLoadTwoSockets: return "half-load-2sockets";
  }
  return "?";
}

std::string Placement::describe() const {
  std::string out = std::to_string(ranks) + " ranks on " +
                    std::to_string(nodes) + " nodes (" +
                    std::to_string(ranks_per_node) + "/node, " +
                    std::to_string(ranks_socket0) + "+" +
                    std::to_string(ranks_socket1) + " per socket, " +
                    to_string(layout) + ")";
  return out;
}

Placement make_placement(int ranks, LoadLayout layout,
                         const MachineSpec& machine) {
  PLIN_CHECK_MSG(ranks > 0, "rank count must be positive");
  const int cores_per_node = machine.node.cores();
  const int half_node = cores_per_node / 2;
  PLIN_CHECK_MSG(half_node > 0, "machine node has no cores");

  Placement p;
  p.ranks = ranks;
  p.layout = layout;
  switch (layout) {
    case LoadLayout::kFullLoad:
      p.ranks_per_node = cores_per_node;
      p.sockets_used = machine.node.sockets;
      p.ranks_socket0 = half_node;
      p.ranks_socket1 = cores_per_node - half_node;
      break;
    case LoadLayout::kHalfLoadOneSocket:
      p.ranks_per_node = half_node;
      p.sockets_used = 1;
      p.ranks_socket0 = half_node;
      p.ranks_socket1 = 0;
      break;
    case LoadLayout::kHalfLoadTwoSockets:
      PLIN_CHECK_MSG(half_node % 2 == 0,
                     "cores/socket must be even to split 50/50");
      p.ranks_per_node = half_node;
      p.sockets_used = machine.node.sockets;
      p.ranks_socket0 = half_node / 2;
      p.ranks_socket1 = half_node / 2;
      break;
  }
  // The last node may be partially filled (as a block Slurm distribution
  // would leave it); the paper's Table 1 configurations always divide
  // evenly.
  p.nodes = (ranks + p.ranks_per_node - 1) / p.ranks_per_node;
  PLIN_CHECK_MSG(p.nodes <= machine.total_nodes,
                 "placement needs more nodes than the machine has");
  return p;
}

std::vector<Table1Row> table1_configurations(const MachineSpec& machine) {
  std::vector<Table1Row> rows;
  for (int ranks : kPaperRankCounts) {
    for (LoadLayout layout :
         {LoadLayout::kFullLoad, LoadLayout::kHalfLoadOneSocket,
          LoadLayout::kHalfLoadTwoSockets}) {
      rows.push_back(Table1Row{make_placement(ranks, layout, machine)});
    }
  }
  return rows;
}

}  // namespace plin::hw
