// Machine description for the simulated cluster.
//
// All paper experiments ran on CINECA Marconi A3: 3188 nodes, each with
// 2 × 24-core Intel Xeon 8160 (Skylake) @ 2.10 GHz, 192 GB DDR4, Intel
// Omni-Path interconnect, 3.2 TFlop/s node peak. marconi_a3() encodes those
// numbers; every other component (layout, network model, power model,
// perfsim) is parameterized on a MachineSpec so other machines can be
// described for sensitivity studies.
#pragma once

#include <string>

namespace plin::hw {

/// One CPU core.
struct CoreSpec {
  double clock_ghz = 2.10;
  /// Peak double-precision flops per cycle (2 × AVX-512 FMA units).
  double flops_per_cycle = 32.0;
  /// Peak single-precision flops per cycle: the same FMA units drive twice
  /// the lanes per register, so fp32 peak is 2x the fp64 peak on every
  /// machine modeled here (the throughput side of the mixed-precision
  /// solver's energy story — docs/mixed_precision.md).
  double fp32_flops_per_cycle = 64.0;

  double peak_flops() const { return clock_ghz * 1e9 * flops_per_cycle; }
  double peak_fp32_flops() const {
    return clock_ghz * 1e9 * fp32_flops_per_cycle;
  }
};

/// One socket (= one RAPL package, with one attached DRAM domain).
struct SocketSpec {
  int cores = 24;
  CoreSpec core;
  /// Sustained memory bandwidth of the socket's DRAM channels (bytes/s).
  double dram_bandwidth_bs = 96e9;
  /// Streaming bandwidth one core can pull when the socket is otherwise
  /// quiet (load/store unit limit, not a fair share).
  double per_core_bandwidth_bs = 14e9;
};

/// One compute node.
struct NodeSpec {
  int sockets = 2;
  SocketSpec socket;
  double dram_gib = 192.0;

  int cores() const { return sockets * socket.cores; }
  double peak_flops() const { return cores() * socket.core.peak_flops(); }
};

/// Interconnect cost coefficients for the Hockney model t = alpha + beta*m.
/// Three link classes: two ranks on the same socket exchange through the
/// shared L3/memory, cross-socket goes over UPI, cross-node over Omni-Path.
struct NetworkSpec {
  // Latencies include the MPI software path (matching, progression), not
  // just the wire: calibrated so the replay tier lands the paper's
  // IMe-vs-ScaLAPACK duration crossovers (EXPERIMENTS.md, Figure 5).
  double intrasocket_latency_s = 5.1e-7;
  double intrasocket_bandwidth_bs = 5.0e10;
  double intersocket_latency_s = 1.36e-6;
  double intersocket_bandwidth_bs = 2.2e10;
  double internode_latency_s = 4.25e-6;
  double internode_bandwidth_bs = 1.1e10;  // ~100 Gb/s Omni-Path, sustained
  /// CPU time a rank spends per posted message regardless of link (matching,
  /// packetization); models the software overhead of the MPI stack.
  double per_message_overhead_s = 1.2e-7;
};

/// Power coefficients for the RAPL-visible domains. Calibrated so a fully
/// loaded node lands near the Xeon 8160's 150 W/socket TDP and so the
/// evaluation reproduces the paper's observed ratios (see DESIGN.md §5).
struct PowerSpec {
  /// Package power with all cores halted (uncore, caches, fabric).
  double pkg_base_w = 38.0;
  /// Extra per-core power while executing floating-point compute.
  double core_compute_w = 4.2;
  /// Extra per-core power while memory-bound (stalled on DRAM).
  double core_membound_w = 3.1;
  /// Extra per-core power while busy-waiting inside MPI (progress engines
  /// poll, so a blocked rank draws close to compute power).
  double core_commwait_w = 2.8;
  /// Extra per-core power while actively driving communication.
  double core_commactive_w = 2.6;
  /// Extra per-core power for an idle (unscheduled) core.
  double core_idle_w = 0.6;
  /// DRAM domain background power.
  double dram_base_w = 11.0;
  /// DRAM access energy per byte actually moved to/from memory.
  double dram_energy_per_byte_j = 2.5e-10;
  /// Fraction of the busy socket's *dynamic* power that shows up on a
  /// nominally idle socket (OS noise, snoop traffic, uncore clocks). The
  /// paper observed the "idle" socket consuming only 50-60% less than the
  /// busy one instead of being near zero (§5.3); this models that artifact.
  double idle_socket_leakage = 0.25;
};

/// A whole machine.
struct MachineSpec {
  std::string name = "unnamed";
  int total_nodes = 1;
  NodeSpec node;
  NetworkSpec network;
  PowerSpec power;
};

/// CINECA Marconi A3 as described in the paper (§5) and the CINECA user
/// guide the paper cites.
MachineSpec marconi_a3();

/// A small machine that fits comfortably in this container for numeric-tier
/// runs: `nodes` nodes of 2 sockets × 4 cores. Same network/power models.
MachineSpec mini_cluster(int nodes, int cores_per_socket = 4);

/// A hypothetical EPYC-generation cluster (2 × 64-core, 8-channel DDR,
/// 200 Gb/s fabric) for portability studies: would the paper's
/// conclusions hold on a fatter, higher-bandwidth node?
/// (bench_machines runs the full evaluation grid on both machines.)
MachineSpec epyc_cluster();

}  // namespace plin::hw
