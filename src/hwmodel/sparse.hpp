// Sparse-aware DRAM-traffic pricing: the bytes the CSR SpMV streams per
// call, shared by the executing CG solver (which charges Comm::compute
// with it) and the perfsim replay. Pricing the 4-byte index stream next to
// the value stream is what makes SpMV traffic-dominated in the model —
// ~10 bytes/flop in fp64 against the dense kernels' 0.04–1.0 — so the
// sparse family stresses the hwmodel's DRAM term the way the memory-bound
// regime demands (docs/sparse.md).
#pragma once

#include <cstddef>

namespace plin::hw {

/// Bytes of one stored matrix value (8 in fp64 campaigns, 4 in fp32 —
/// per-machine pricing honors the same precision split as the dense BLAS).
inline constexpr double csr_value_bytes(bool fp32 = false) {
  return fp32 ? 4.0 : 8.0;
}

/// DRAM traffic of one CSR SpMV over `nnz` entries and `rows` owned rows:
/// per entry, the stored value, its 4-byte column index, and the gathered
/// x element (the worst-case cold-gather model — stencil reuse is priced
/// into the kernel's efficiency, not the byte count); per row, the row_ptr
/// offset and the y write (8 bytes each).
inline constexpr double csr_spmv_bytes(double nnz, double rows,
                                       bool fp32 = false) {
  const double vb = csr_value_bytes(fp32);
  return nnz * (vb + 4.0 + vb) + rows * 16.0;
}

/// The same traffic normalized per flop (SpMV does 2 flops per entry) —
/// the bytes_per_flop a KernelProfile carries.
inline constexpr double csr_spmv_bytes_per_flop(double nnz, double rows,
                                                bool fp32 = false) {
  return csr_spmv_bytes(nnz, rows, fp32) / (2.0 * nnz);
}

/// Analytic mirror of the CG interior/boundary row split (solvers/cg):
/// a row is boundary iff it reaches outside the owned block, and the
/// pattern families bound that to `reach` rows at each block edge — so at
/// most 2 * reach of a rank's `rows` rows are boundary. The replay prices
/// the overlapped iteration as max(halo, interior SpMV) + boundary SpMV
/// with this split (docs/sparse.md).
inline constexpr double csr_boundary_rows(double reach, double rows) {
  return 2.0 * reach < rows ? 2.0 * reach : rows;
}

}  // namespace plin::hw
