#include "hwmodel/layout.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace plin::hw {

ClusterLayout::ClusterLayout(MachineSpec machine, Placement placement)
    : machine_(std::move(machine)), placement_(placement) {
  PLIN_CHECK(placement_.ranks > 0);
  socket0_ = std::max(0, placement_.ranks_socket0);
  socket1_ =
      machine_.node.sockets >= 2 ? std::max(0, placement_.ranks_socket1) : 0;
  per_node_ = socket0_ + socket1_;

  // Validation walks nodes, not ranks, but fails exactly where the old
  // per-rank fill loop did: a socket oversubscribes iff the ranks actually
  // placed on it (which the trailing partial node may cut short) exceed its
  // core count, and coverage fails iff the nodes run out first.
  const int cores = machine_.node.socket.cores;
  int rank = 0;
  for (int node = 0; node < placement_.nodes && rank < placement_.ranks;
       ++node) {
    const int placed0 = std::min(socket0_, placement_.ranks - rank);
    PLIN_CHECK_MSG(placed0 <= cores, "placement oversubscribes a socket");
    rank += placed0;
    if (rank >= placement_.ranks) break;
    const int placed1 = std::min(socket1_, placement_.ranks - rank);
    PLIN_CHECK_MSG(placed1 <= cores, "placement oversubscribes a socket");
    rank += placed1;
  }
  PLIN_CHECK_MSG(rank == placement_.ranks,
                 "placement does not cover all ranks");
}

RankLocation ClusterLayout::location_of(int rank) const {
  PLIN_CHECK_MSG(rank >= 0 && rank < placement_.ranks, "rank out of range");
  const int node = rank / per_node_;
  const int idx = rank - node * per_node_;
  if (idx < socket0_) return RankLocation{node, 0, idx};
  return RankLocation{node, 1, idx - socket0_};
}

RankRange ClusterLayout::ranks_on_node(int node) const {
  PLIN_CHECK_MSG(node >= 0 && node < placement_.nodes, "node out of range");
  const int first = node * per_node_;
  const int count = std::clamp(placement_.ranks - first, 0, per_node_);
  return RankRange(first, count);
}

int ClusterLayout::ranks_on_socket(int node, int socket) const {
  const int on_node = static_cast<int>(ranks_on_node(node).size());
  const int placed0 = std::min(socket0_, on_node);
  if (socket == 0) return placed0;
  if (socket == 1) return on_node - placed0;
  return 0;
}

LinkClass ClusterLayout::link_between(int rank_a, int rank_b) const {
  const RankLocation a = location_of(rank_a);
  const RankLocation b = location_of(rank_b);
  if (a.node != b.node) return LinkClass::kCrossNode;
  if (a.socket != b.socket) return LinkClass::kCrossSocket;
  return LinkClass::kSameSocket;
}

}  // namespace plin::hw
