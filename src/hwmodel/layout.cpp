#include "hwmodel/layout.hpp"

#include "support/error.hpp"

namespace plin::hw {

ClusterLayout::ClusterLayout(MachineSpec machine, Placement placement)
    : machine_(std::move(machine)), placement_(placement) {
  PLIN_CHECK(placement_.ranks > 0);
  locations_.reserve(placement_.ranks);
  node_ranks_.resize(placement_.nodes);

  int rank = 0;
  for (int node = 0; node < placement_.nodes && rank < placement_.ranks;
       ++node) {
    const int per_socket[2] = {placement_.ranks_socket0,
                               placement_.ranks_socket1};
    for (int socket = 0; socket < machine_.node.sockets; ++socket) {
      const int count = socket < 2 ? per_socket[socket] : 0;
      for (int core = 0; core < count && rank < placement_.ranks; ++core) {
        PLIN_CHECK_MSG(core < machine_.node.socket.cores,
                       "placement oversubscribes a socket");
        locations_.push_back(RankLocation{node, socket, core});
        node_ranks_[node].push_back(rank);
        ++rank;
      }
    }
  }
  PLIN_CHECK_MSG(rank == placement_.ranks,
                 "placement does not cover all ranks");
}

const RankLocation& ClusterLayout::location_of(int rank) const {
  PLIN_CHECK_MSG(rank >= 0 && rank < static_cast<int>(locations_.size()),
                 "rank out of range");
  return locations_[static_cast<std::size_t>(rank)];
}

const std::vector<int>& ClusterLayout::ranks_on_node(int node) const {
  PLIN_CHECK_MSG(node >= 0 && node < static_cast<int>(node_ranks_.size()),
                 "node out of range");
  return node_ranks_[static_cast<std::size_t>(node)];
}

int ClusterLayout::ranks_on_socket(int node, int socket) const {
  int count = 0;
  for (int rank : ranks_on_node(node)) {
    if (location_of(rank).socket == socket) ++count;
  }
  return count;
}

LinkClass ClusterLayout::link_between(int rank_a, int rank_b) const {
  const RankLocation& a = location_of(rank_a);
  const RankLocation& b = location_of(rank_b);
  if (a.node != b.node) return LinkClass::kCrossNode;
  if (a.socket != b.socket) return LinkClass::kCrossSocket;
  return LinkClass::kSameSocket;
}

}  // namespace plin::hw
