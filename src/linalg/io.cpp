#include "linalg/io.hpp"

#include <cstdint>
#include <fstream>

#include "support/error.hpp"

namespace plin::linalg {
namespace {

constexpr std::uint64_t kMatrixMagic = 0x504C4D31ULL;  // "PLM1"
constexpr std::uint64_t kVectorMagic = 0x504C5631ULL;  // "PLV1"

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

void save_matrix_binary(const Matrix& a, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw IoError("cannot open for writing: " + path);
  write_u64(os, kMatrixMagic);
  write_u64(os, a.rows());
  write_u64(os, a.cols());
  os.write(reinterpret_cast<const char*>(a.flat().data()),
           static_cast<std::streamsize>(a.size_bytes()));
  if (!os) throw IoError("write failed: " + path);
}

Matrix load_matrix_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open for reading: " + path);
  if (read_u64(is) != kMatrixMagic) {
    throw IoError("bad matrix magic in " + path);
  }
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  if (!is) throw IoError("truncated header in " + path);
  Matrix a(rows, cols);
  is.read(reinterpret_cast<char*>(a.flat().data()),
          static_cast<std::streamsize>(a.size_bytes()));
  if (!is) throw IoError("truncated matrix data in " + path);
  return a;
}

void save_matrix_text(const Matrix& a, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw IoError("cannot open for writing: " + path);
  os.precision(17);
  os << a.rows() << ' ' << a.cols() << '\n';
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (j != 0) os << ' ';
      os << a(i, j);
    }
    os << '\n';
  }
  if (!os) throw IoError("write failed: " + path);
}

Matrix load_matrix_text(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  std::size_t rows = 0;
  std::size_t cols = 0;
  is >> rows >> cols;
  if (!is) throw IoError("bad text matrix header in " + path);
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      is >> a(i, j);
    }
  }
  if (!is) throw IoError("truncated text matrix in " + path);
  return a;
}

void save_vector_binary(const std::vector<double>& v,
                        const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw IoError("cannot open for writing: " + path);
  write_u64(os, kVectorMagic);
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
  if (!os) throw IoError("write failed: " + path);
}

std::vector<double> load_vector_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open for reading: " + path);
  if (read_u64(is) != kVectorMagic) {
    throw IoError("bad vector magic in " + path);
  }
  const std::uint64_t size = read_u64(is);
  std::vector<double> v(size);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(double)));
  if (!is) throw IoError("truncated vector data in " + path);
  return v;
}

}  // namespace plin::linalg
