#include "linalg/kernel_config.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace plin::linalg {
namespace {

/// Micro-kernel variants compiled into kernels.cpp. Keep in sync with the
/// dispatch table there.
constexpr std::size_t kSupportedTiles[][2] = {
    {4, 4}, {4, 8}, {8, 4}, {6, 8}, {8, 8}, {8, 16},
};

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || value == 0) return fallback;
  return static_cast<std::size_t>(value);
}

std::size_t round_up(std::size_t value, std::size_t multiple) {
  return ((value + multiple - 1) / multiple) * multiple;
}

KernelConfig& mutable_active() {
  static KernelConfig config = KernelConfig::from_env().normalized();
  return config;
}

}  // namespace

KernelConfig KernelConfig::defaults() {
  KernelConfig config;
#if defined(__AVX512F__)
  config.mr = 8;
  config.nr = 16;
#elif defined(__AVX__)
  config.mr = 6;
  config.nr = 8;
#else
  config.mr = 4;
  config.nr = 8;
#endif
  return config;
}

KernelConfig KernelConfig::from_env() {
  KernelConfig config = defaults();
  config.mc = env_size("PLIN_GEMM_MC", config.mc);
  config.kc = env_size("PLIN_GEMM_KC", config.kc);
  config.nc = env_size("PLIN_GEMM_NC", config.nc);
  config.mr = env_size("PLIN_GEMM_MR", config.mr);
  config.nr = env_size("PLIN_GEMM_NR", config.nr);
  config.trsm_block = env_size("PLIN_TRSM_NB", config.trsm_block);
  config.ger_block = env_size("PLIN_GER_NB", config.ger_block);
  if (const char* path = std::getenv("PLIN_KERNEL_PATH")) {
    config.blocked = std::string(path) != "naive";
  }
  return config;
}

KernelConfig KernelConfig::normalized() const {
  KernelConfig config = *this;
  const KernelConfig base = defaults();
  if (config.mr == 0) config.mr = base.mr;
  if (config.nr == 0) config.nr = base.nr;
  // Snap (mr, nr) to the compiled variant with the least mismatch; ties go
  // to the larger tile (more register reuse).
  std::size_t best_mr = base.mr;
  std::size_t best_nr = base.nr;
  std::size_t best_cost = static_cast<std::size_t>(-1);
  for (const auto& tile : kSupportedTiles) {
    const std::size_t dm = tile[0] > config.mr ? tile[0] - config.mr
                                               : config.mr - tile[0];
    const std::size_t dn = tile[1] > config.nr ? tile[1] - config.nr
                                               : config.nr - tile[1];
    const std::size_t cost = dm + dn;
    if (cost < best_cost ||
        (cost == best_cost && tile[0] * tile[1] > best_mr * best_nr)) {
      best_cost = cost;
      best_mr = tile[0];
      best_nr = tile[1];
    }
  }
  config.mr = best_mr;
  config.nr = best_nr;
  config.mc = round_up(std::max<std::size_t>(config.mc, config.mr), config.mr);
  config.nc = round_up(std::max<std::size_t>(config.nc, config.nr), config.nr);
  config.kc = std::max<std::size_t>(config.kc, 1);
  config.trsm_block = std::max<std::size_t>(config.trsm_block, 1);
  config.ger_block = std::max<std::size_t>(config.ger_block, 1);
  return config;
}

const KernelConfig& active_kernel_config() { return mutable_active(); }

void set_kernel_config(const KernelConfig& config) {
  mutable_active() = config.normalized();
}

void reset_kernel_config() {
  mutable_active() = KernelConfig::from_env().normalized();
}

}  // namespace plin::linalg
